#!/usr/bin/env python
"""Train a policy with periodic checkpoints and exact resume.

The single-process consumer of the fault-tolerance stack
(:mod:`repro.execution.checkpointing`): a DQN act/observe/update loop
over one environment that checkpoints its COMPLETE state — every
variable (optimizer slots, target net, in-graph replay buffer +
cursors), un-flushed observe buffers, backend RNG node states, the
environment physics/RNG and the in-flight observation — every
``--checkpoint-interval`` steps.  Re-running with ``--resume`` picks up
the newest checkpoint and continues **bitwise-identically** to a run
that was never interrupted (the resume-equivalence property
``tests/test_checkpoint_roundtrip.py`` asserts).

Examples:
    PYTHONPATH=src python scripts/train_policy.py --env cartpole \
        --steps 500 --checkpoint-dir /tmp/ckpt
    # kill it mid-run, then continue exactly where it stopped:
    PYTHONPATH=src python scripts/train_policy.py --env cartpole \
        --steps 500 --checkpoint-dir /tmp/ckpt --resume
"""

from __future__ import annotations

import argparse
import json

NETWORK = [{"type": "dense", "units": 32, "activation": "tanh"}]


def build_env(name: str, seed: int):
    from repro.environments import CartPole, GridWorld
    if name == "gridworld":
        return GridWorld("4x4", seed=seed)
    if name == "cartpole":
        return CartPole(seed=seed)
    raise SystemExit(f"Unknown --env {name!r} (gridworld|cartpole)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--env", default="cartpole",
                        help="environment (gridworld|cartpole)")
    parser.add_argument("--steps", type=int, default=500,
                        help="TOTAL environment steps for the run; a "
                             "resumed run only executes the remainder")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--learning-starts", type=int, default=64)
    parser.add_argument("--update-interval", type=int, default=2)
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for periodic checkpoints "
                             "(none: no checkpointing)")
    parser.add_argument("--checkpoint-interval", type=int, default=100,
                        help="steps between checkpoints")
    parser.add_argument("--resume", action="store_true",
                        help="restore the newest checkpoint in "
                             "--checkpoint-dir before training")
    parser.add_argument("--export", default=None,
                        help="export final weights here (Agent.export_model)")
    args = parser.parse_args(argv)

    from repro.agents import DQNAgent
    from repro.execution.checkpointing import ResumableTrainer

    env = build_env(args.env, args.seed)
    agent = DQNAgent(
        state_space=env.state_space, action_space=env.action_space,
        network_spec=NETWORK, seed=args.seed, optimize="basic",
        memory_capacity=10_000, batch_size=32,
        observe_flush_size=16)

    checkpoint = None
    if args.checkpoint_dir:
        checkpoint = {"directory": args.checkpoint_dir,
                      "interval": args.checkpoint_interval}
    trainer = ResumableTrainer(
        agent, env, learning_starts=args.learning_starts,
        update_interval=args.update_interval, checkpoint=checkpoint)

    if args.resume:
        if not args.checkpoint_dir:
            raise SystemExit("--resume requires --checkpoint-dir")
        if trainer.resume():
            print(f"resumed from step {trainer.step}")
        else:
            print("no checkpoint found; starting fresh")

    remaining = max(0, args.steps - trainer.step)
    stats = trainer.run(remaining)
    if trainer.manager is not None and remaining:
        trainer.checkpoint()  # final state, so --resume is always exact
    if args.export:
        agent.export_model(args.export)
    print(json.dumps(stats, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
