#!/usr/bin/env python
"""Import smoke test: import every ``repro.*`` module, fail on errors.

Catches broken imports (renamed symbols, missing deps, circular imports)
in seconds, without running any test logic. Used as the first CI step.

Run:  python scripts/smoke_imports.py
"""

from __future__ import annotations

import importlib
import pkgutil
import sys
import traceback
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def main() -> int:
    import repro

    modules = ["repro"] + [
        info.name
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    ]
    failures = []
    for name in sorted(modules):
        try:
            importlib.import_module(name)
        except Exception:
            failures.append((name, traceback.format_exc()))
    print(f"imported {len(modules) - len(failures)}/{len(modules)} modules")
    for name, tb in failures:
        print(f"\nFAILED: {name}\n{tb}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
