#!/usr/bin/env python
"""Serve a trained policy under synthetic concurrent load.

Loads agent weights (``--checkpoint`` from ``Agent.export_model``; a
fresh agent otherwise), stands up the serving stack — an in-process
:class:`PolicyServer`, or an :class:`InferenceWorkerPool` with
``--replicas N`` — and drives it with ``--clients`` concurrent
synchronous clients for ``--duration`` seconds.  Prints a JSON summary:
req/s, p50/p99 latency, batch-size distribution.

Overload knobs: ``--max-queue`` bounds the request queue (with
``--admission-policy`` reject|drop-oldest and ``--codel-target`` for
sojourn-based shedding), ``--deadline-ms`` attaches a budget to every
request, ``--autoscale-max N`` turns on the queue-depth autoscaler for
pooled serving.

``--gateway`` fronts the stack with the stdlib HTTP/JSON gateway and
drives the same load over real sockets (keep-alive clients, typed
503/504 handling); ``--gateway-port 0`` picks an ephemeral port.

Examples:
    PYTHONPATH=src python scripts/serve_policy.py --env gridworld \
        --clients 8 --duration 3
    PYTHONPATH=src python scripts/serve_policy.py --env cartpole \
        --replicas 2 --backend process --checkpoint model.pkl
    # overload behavior over HTTP, bounded queue:
    PYTHONPATH=src python scripts/serve_policy.py --gateway \
        --max-queue 16 --deadline-ms 250 --clients 32
    # unbatched baseline for comparison:
    PYTHONPATH=src python scripts/serve_policy.py --max-batch-size 1
"""

from __future__ import annotations

import argparse
import functools
import json
import sys

NETWORK = [{"type": "dense", "units": 64, "activation": "relu"}]


def build_env(name: str):
    from repro.environments import CartPole, GridWorld
    if name == "gridworld":
        return GridWorld("4x4", seed=0)
    if name == "cartpole":
        return CartPole(seed=0)
    raise SystemExit(f"Unknown --env {name!r} (gridworld|cartpole)")


def build_agent(env_name: str, agent_type: str, checkpoint, seed: int):
    """Replica factory — module-level so process replicas can pickle it
    (``functools.partial`` over this function ships across spawn)."""
    from repro.agents import AGENTS
    env = build_env(env_name)
    agent = AGENTS.from_spec(
        {"type": agent_type, "state_space": env.state_space,
         "action_space": env.action_space, "network_spec": NETWORK,
         "seed": seed})
    if checkpoint:
        agent.import_model(checkpoint)
    return agent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--env", default="gridworld",
                        help="observation/action spaces source "
                             "(gridworld|cartpole)")
    parser.add_argument("--agent", default="dqn",
                        help="agent registry name (default: %(default)s)")
    parser.add_argument("--checkpoint", default=None,
                        help="weights file from Agent.export_model")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=3.0)
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--batch-window", type=float, default=0.002,
                        help="seconds an open batch waits for stragglers")
    parser.add_argument("--replicas", type=int, default=0,
                        help="0 = single in-process server; N>0 = "
                             "InferenceWorkerPool with N actor replicas")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="raylite backend for --replicas > 0")
    parser.add_argument("--max-queue", type=int, default=0,
                        help="bound the request queue (0 = unbounded)")
    parser.add_argument("--admission-policy", default="reject",
                        choices=("reject", "drop-oldest"),
                        help="full-queue policy for --max-queue > 0")
    parser.add_argument("--codel-target", type=float, default=0.0,
                        help="CoDel sojourn target in seconds "
                             "(0 = no delay-based shedding)")
    parser.add_argument("--deadline-ms", type=float, default=0.0,
                        help="per-request deadline budget "
                             "(0 = no deadline)")
    parser.add_argument("--autoscale-max", type=int, default=0,
                        help="enable the queue-depth autoscaler up to N "
                             "replicas (pooled serving only)")
    parser.add_argument("--gateway", action="store_true",
                        help="serve over the HTTP/JSON gateway and drive "
                             "the load over real sockets")
    parser.add_argument("--gateway-port", type=int, default=0,
                        help="gateway TCP port (0 = ephemeral)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    from repro import raylite
    from repro.serving import (
        HttpGateway,
        InferenceWorkerPool,
        PolicyServer,
        drive_concurrent_load,
        drive_http_load,
    )

    env = build_env(args.env)
    agent_factory = functools.partial(build_agent, args.env, args.agent,
                                      args.checkpoint, args.seed)

    admission = None
    if args.max_queue > 0 or args.codel_target > 0:
        admission = {"policy": args.admission_policy}
        if args.max_queue > 0:
            admission["max_queue"] = args.max_queue
        if args.codel_target > 0:
            admission["codel_target"] = args.codel_target
    deadline = args.deadline_ms / 1e3 if args.deadline_ms > 0 else None
    autoscale = None
    if args.autoscale_max > 0:
        if args.replicas <= 0:
            raise SystemExit("--autoscale-max needs pooled serving "
                             "(--replicas N)")
        autoscale = {"min_replicas": args.replicas,
                     "max_replicas": args.autoscale_max}

    if args.replicas > 0:
        server = InferenceWorkerPool(
            agent_factory, env.state_space, num_replicas=args.replicas,
            max_batch_size=args.max_batch_size,
            batch_window=args.batch_window, parallel_spec=args.backend,
            admission_spec=admission, default_deadline=deadline,
            autoscale_spec=autoscale)
    else:
        server = PolicyServer(agent_factory(),
                              max_batch_size=args.max_batch_size,
                              batch_window=args.batch_window,
                              admission_spec=admission,
                              default_deadline=deadline)

    summary = {
        "env": args.env,
        "agent": args.agent,
        "clients": args.clients,
        "replicas": args.replicas,
        "backend": args.backend if args.replicas else "in-process",
        "max_batch_size": args.max_batch_size,
        "batch_window_ms": args.batch_window * 1e3,
        "max_queue": args.max_queue or None,
        "deadline_ms": args.deadline_ms or None,
    }
    gateway = None
    if args.gateway:
        gateway = HttpGateway(server, port=args.gateway_port,
                              default_deadline=(deadline or 30.0)).start()
        summary["gateway"] = gateway.url
        load = drive_http_load(gateway, args.clients, args.duration,
                               deadline_ms=args.deadline_ms or None)
        summary.update({
            "requests": load["requests"],
            "attempts": load["attempts"],
            "shed_rate": round(load["shed_rate"], 4),
            "deadline_rate": round(load["deadline_rate"], 4),
            "stragglers": load["stragglers"],
        })
    else:
        load = drive_concurrent_load(
            server, args.clients, args.duration,
            tolerate_overload=admission is not None)
        summary.update({
            "requests": load["requests"],
            "overload_errors": load["overload_errors"],
            "stragglers": load["stragglers"],
        })
    summary.update({
        "duration_s": round(load["wall_time"], 3),
        "requests_per_s": round(load["req_per_s"], 1),
        "p50_latency_ms": round(load["p50_ms"], 3),
        "p99_latency_ms": round(load["p99_ms"], 3),
        "server": server.metrics_snapshot(),
    })
    if gateway is not None:
        summary["routes"] = gateway.metrics_snapshot()["gateway"]
        gateway.stop()
    server.stop()
    raylite.shutdown()
    json.dump(summary, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
