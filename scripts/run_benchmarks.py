#!/usr/bin/env python
"""Quick-mode performance snapshots -> BENCH_compiler.json +
BENCH_parallel.json + BENCH_learner.json.

Runs the hot-path micro-benchmarks that track the repo's perf
trajectory — `session.run` on the DQN update fetch-set (per optimize
level, including ``"native"`` C codegen when a toolchain is present),
vector-env stepping, and prioritized-replay sampling — plus a
thread-vs-process snapshot of Ape-X/IMPALA actor-side sample throughput
on a CPU-bound env (the ISSUE-3 axis) and the learner-path snapshot
(fused vs per-variable optimizer step, dict vs flat weight push — the
ISSUE-4 axis), each in a few seconds, and writes ops/sec summaries. CI
calls this in a non-blocking step so every PR from the graph-compiler
PR onward records machine-readable perf points.

Usage:
    PYTHONPATH=src python scripts/run_benchmarks.py \
        [--output BENCH_compiler.json] \
        [--parallel-output BENCH_parallel.json] [--skip-parallel] \
        [--learner-output BENCH_learner.json] [--skip-learner] \
        [--serving-output BENCH_serving.json] [--skip-serving] \
        [--multi-learner-output BENCH_multi_learner.json] \
        [--skip-multi-learner] \
        [--gateway-output BENCH_gateway.json] [--skip-gateway] \
        [--continuous-output BENCH_continuous.json] [--skip-continuous]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time


def _measure(fn, window: float = 0.3, rounds: int = 3) -> float:
    """Best-of-``rounds`` calls/sec for ``fn`` (robust to CPU-clock drift)."""
    fn()  # warm
    best = 0.0
    for _ in range(rounds):
        n, t0 = 0, time.perf_counter()
        while time.perf_counter() - t0 < window:
            fn()
            n += 1
        best = max(best, n / (time.perf_counter() - t0))
    return best


def _optimize_levels() -> tuple:
    """The sweepable optimize levels on this host (``"native"`` needs a
    C toolchain; without one the level would just re-measure fused)."""
    from repro.backend import native

    return ("none", "basic", "fused") + (
        ("native",) if native.toolchain_available() else ())


def bench_session_run() -> dict:
    """DQN update fetch-set throughput per optimize level (the E10
    configuration, so this snapshot tracks that bench's series)."""
    import numpy as np
    from repro.agents import DQNAgent
    from repro.spaces import FloatBox, IntBox

    results = {}
    for optimize in _optimize_levels():
        agent = DQNAgent(
            state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
            network_spec=[{"type": "dense", "units": 16,
                           "activation": "relu"},
                          {"type": "dense", "units": 16,
                           "activation": "relu"}],
            prioritized_replay=True, dueling=True, double_q=True,
            batch_size=4, memory_capacity=512, seed=11, optimize=optimize)
        rng = np.random.default_rng(0)
        agent.observe_batch(
            states=rng.standard_normal((128, 4)).astype(np.float32),
            actions=rng.integers(0, 2, 128),
            rewards=rng.standard_normal(128).astype(np.float32),
            terminals=rng.random(128) < 0.1,
            next_states=rng.standard_normal((128, 4)).astype(np.float32))
        batch = np.asarray(4)
        results[optimize] = round(_measure(
            lambda: agent.call_api("update_from_memory", batch)), 1)
    results["fused_speedup_vs_none"] = round(
        results["fused"] / results["none"], 3)
    if "native" in results:
        results["native_speedup_vs_fused"] = round(
            results["native"] / results["fused"], 3)
    return results


def bench_vector_env_step() -> dict:
    """Sequential vector-env stepping throughput (8 GridWorlds)."""
    import numpy as np
    from repro.environments import GridWorld, SequentialVectorEnv

    vec = SequentialVectorEnv(envs=[GridWorld(seed=i) for i in range(8)])
    vec.reset_all()
    actions = np.zeros(vec.num_envs, dtype=np.int64)

    def step():
        vec.step_async(actions)
        vec.step_wait()

    steps_per_s = _measure(step)
    return {"steps_per_s": round(steps_per_s, 1),
            "env_frames_per_s": round(steps_per_s * vec.num_envs, 1)}


def bench_per_sample() -> dict:
    """Prioritized-replay insert/sample/update on the host-side buffer."""
    import numpy as np
    from repro.components.memories.python_memory import (
        PrioritizedReplayBuffer,
    )

    rng = np.random.default_rng(0)
    buf = PrioritizedReplayBuffer(capacity=2 ** 16, seed=0)
    n = 2 ** 16
    records = {
        "states": rng.standard_normal((n, 8)).astype(np.float32),
        "rewards": rng.standard_normal(n).astype(np.float32),
    }
    buf.insert(records, priorities=rng.random(n))
    sampled = {}

    def sample():
        _, idx, _ = buf.sample(256)
        sampled["idx"] = idx

    sample_per_s = _measure(sample)
    idx = sampled["idx"]
    priorities = rng.random(256)
    update_per_s = _measure(lambda: buf.update_priorities(idx, priorities))
    chunk = {k: v[:1024] for k, v in records.items()}
    prio_chunk = rng.random(1024)
    insert_per_s = _measure(lambda: buf.insert(chunk, priorities=prio_chunk))
    return {"sample256_per_s": round(sample_per_s, 1),
            "update256_per_s": round(update_per_s, 1),
            "insert1024_per_s": round(insert_per_s, 1)}


def bench_parallel_backends(duration: float = 2.0) -> dict:
    """Ape-X/IMPALA actor-side throughput, thread vs. process backends.

    CPU-bound pure-Python env (GIL-holding spin): the thread backend
    serializes its actors; the process backend scales with cores.
    Updates are disabled so the numbers isolate sample collection.
    """
    import os

    from repro import raylite
    from repro.agents import ApexAgent, IMPALAAgent
    from repro.environments import RandomEnv
    from repro.execution.impala_runner import IMPALARunner
    from repro.execution.ray import ApexExecutor
    from repro.spaces import IntBox

    def env_factory(seed):
        return RandomEnv(state_space=(8,), action_space=4,
                         terminal_prob=0.02, cpu_work=2000, seed=seed)

    def apex_agent_factory(worker_index=0):
        return ApexAgent(state_space=(8,), action_space=IntBox(4),
                         network_spec=[{"type": "dense", "units": 16}],
                         seed=worker_index + 1)

    def impala_agent_factory():
        return IMPALAAgent(state_space=(8,), action_space=IntBox(4),
                           network_spec=[{"type": "dense", "units": 16,
                                          "activation": "tanh"}], seed=2)

    def apex_rate(parallel_spec):
        executor = ApexExecutor(
            learner_agent=apex_agent_factory(),
            agent_factory=apex_agent_factory, env_factory=env_factory,
            num_workers=4, envs_per_worker=2, num_replay_shards=2,
            task_size=50, batch_size=16, replay_capacity=4096,
            learning_starts=10 ** 9, parallel_spec=parallel_spec)
        try:
            result = executor.execute_workload(duration=duration,
                                               updates_enabled=False)
            return round(result.env_frames_per_second, 1)
        finally:
            raylite.shutdown()

    def impala_rate(parallel_spec):
        runner = IMPALARunner(
            learner_agent=impala_agent_factory(),
            agent_factory=impala_agent_factory, env_factory=env_factory,
            num_actors=4, envs_per_actor=2, rollout_length=10,
            batch_size=2, parallel_spec=parallel_spec)
        try:
            result = runner.run(duration=duration, updates_enabled=False)
            return round(result["env_frames_per_second"], 1)
        finally:
            raylite.shutdown()

    summary = {
        "cores": os.cpu_count() or 1,
        "cpu_work": 2000,
        "num_workers": 4,
        "apex_frames_per_s": {
            "thread": apex_rate("thread"),
            "process": apex_rate({"backend": "process",
                                  "env_backend": "subproc",
                                  "env_workers": 2}),
        },
        "impala_frames_per_s": {
            "thread": impala_rate("thread"),
            "process": impala_rate("process"),
        },
    }
    for key in ("apex_frames_per_s", "impala_frames_per_s"):
        rates = summary[key]
        rates["process_speedup"] = round(
            rates["process"] / rates["thread"], 3) if rates["thread"] else None
    return summary


def bench_learner_path() -> dict:
    """Flat-parameter learner path: fused vs per-variable update step
    (K=100 Adam variables) and dict vs flat weight push (thread
    backend; the E12 bench covers the process backend)."""
    import numpy as np

    from repro import raylite
    from repro.agents import DQNAgent
    from repro.backend import functional as F
    from repro.components.optimizers import Adam
    from repro.core import Component, graph_fn, rlgraph_api
    from repro.core.graph_builder import build_graph
    from repro.spaces import FloatBox, IntBox

    class KVar(Component):
        def __init__(self, optimizer, num_vars, scope="kvar"):
            super().__init__(scope=scope)
            self.optimizer = optimizer
            self.num_vars = num_vars
            self.add_components(optimizer)

        def create_variables(self, input_spaces):
            ws = [self.get_variable(f"w-{i:03d}", shape=(16,),
                                    initializer="normal")
                  for i in range(self.num_vars)]
            self.optimizer.set_variables(ws)

        @rlgraph_api
        def update(self, target):
            loss = self._graph_fn_loss(target)
            return self._graph_fn_result(loss, self.optimizer.step(loss))

        @graph_fn
        def _graph_fn_loss(self, target):
            total = None
            for name in sorted(self.variables):
                var = self.variables[name]
                term = F.reduce_sum(F.square(F.sub(var.read(), target)))
                total = term if total is None else F.add(total, term)
            return total

        @graph_fn(requires_variables=False)
        def _graph_fn_result(self, loss, step_op):
            return F.with_deps(loss, step_op) if step_op is not None else loss

    target = np.zeros(16, np.float32)
    update_rates = {}
    update_nodes = {}
    levels = tuple(lv for lv in _optimize_levels() if lv != "basic")
    for optimize in levels:
        problem = KVar(Adam(learning_rate=1e-3), num_vars=100)
        built = build_graph(problem, {"target": FloatBox(shape=(16,))},
                            seed=1, optimize=optimize)
        update_rates[optimize] = round(
            _measure(lambda: built.execute("update", target)), 1)
        update_nodes[optimize] = problem.optimizer.update_node_count

    def agent_factory():
        return DQNAgent(
            state_space=FloatBox(shape=(8,)), action_space=IntBox(4),
            network_spec=[{"type": "dense", "units": 128,
                           "activation": "relu"}], seed=5)

    class Sink:
        def __init__(self, factory):
            self.agent = factory()

        def set_weights(self, weights) -> int:
            self.agent.set_weights(weights)
            return 0

    learner = agent_factory()
    sink = raylite.remote(Sink).remote(agent_factory)
    push_rates = {}
    try:
        for kind in ("dict", "flat"):
            def push():
                weights = learner.get_weights(flat=(kind == "flat"))
                raylite.get(sink.set_weights.remote(weights))
            push_rates[kind] = round(_measure(push), 1)
    finally:
        raylite.shutdown()

    summary = {
        "update_step_k100_per_s": update_rates,
        "update_graph_nodes_k100": update_nodes,
        "weight_push_thread_per_s": push_rates,
    }
    summary["fused_update_speedup"] = round(
        update_rates["fused"] / update_rates["none"], 3) \
        if update_rates["none"] else None
    if "native" in update_rates:
        summary["native_update_speedup_vs_fused"] = round(
            update_rates["native"] / update_rates["fused"], 3) \
            if update_rates["fused"] else None
    summary["flat_push_speedup"] = round(
        push_rates["flat"] / push_rates["dict"], 3) \
        if push_rates["dict"] else None
    return summary


def bench_serving(duration: float = 1.0, num_clients: int = 6) -> dict:
    """Policy-serving snapshot (the E13 axis): req/s and client-side
    p50/p99 latency, micro-batched vs unbatched single-call serving,
    under closed-loop concurrent clients.  Ratios are recorded, not
    asserted — like E11/E12 the batched/unbatched bar only means much
    on multi-core hosts (though the batching win is per-call overhead
    amortization and usually shows even on one core)."""
    import os

    import numpy as np

    from repro.agents import DQNAgent
    from repro.serving import PolicyServer, drive_concurrent_load
    from repro.spaces import FloatBox, IntBox

    def agent():
        return DQNAgent(state_space=FloatBox(shape=(8,)),
                        action_space=IntBox(4),
                        network_spec=[{"type": "dense", "units": 64,
                                       "activation": "relu"}], seed=3)

    rng = np.random.default_rng(0)
    observations = rng.standard_normal((num_clients, 8)).astype(np.float32)

    def drive(server):
        load = drive_concurrent_load(server, num_clients, duration,
                                     observations=observations)
        return {"req_per_s": round(load["req_per_s"], 1),
                "p50_ms": round(load["p50_ms"], 3),
                "p99_ms": round(load["p99_ms"], 3)}

    summary = {"cores": os.cpu_count() or 1, "clients": num_clients}
    server = PolicyServer(agent(), max_batch_size=1, batch_window=0.0)
    summary["unbatched"] = drive(server)
    server.stop()
    server = PolicyServer(agent(), max_batch_size=16, batch_window=0.0)
    summary["batched"] = drive(server)
    summary["batched"]["mean_batch_size"] = round(
        server.stats.mean_batch_size, 2)
    server.stop()
    base = summary["unbatched"]["req_per_s"]
    summary["batched_speedup"] = round(
        summary["batched"]["req_per_s"] / base, 3) if base else None
    return summary


def bench_gateway(duration: float = 0.8) -> dict:
    """HTTP gateway overload snapshot (the E15 axis): req/s, success
    p50/p99 and shed rate at 1x/4x/16x client multiples against a
    bounded-queue (reject) gateway, plus the unbounded ablation at 16x.
    The contract the numbers should show: admitted p99 stays flat while
    the shed rate absorbs the oversubscription; the ablation instead
    converts the same load into queueing delay."""
    import os

    import numpy as np

    from repro.agents import DQNAgent
    from repro.serving import HttpGateway, PolicyServer, drive_http_load
    from repro.spaces import FloatBox, IntBox

    def agent():
        return DQNAgent(state_space=FloatBox(shape=(8,)),
                        action_space=IntBox(4),
                        network_spec=[{"type": "dense", "units": 64,
                                       "activation": "relu"}], seed=3)

    rng = np.random.default_rng(0)
    deadline_ms = 250.0
    levels = {"1x": 2, "4x": 8, "16x": 32}

    def drive(gateway, clients):
        load = drive_http_load(
            gateway, clients, duration, deadline_ms=deadline_ms,
            observations=rng.standard_normal(
                (clients, 8)).astype(np.float32))
        return {"clients": clients,
                "req_per_s": round(load["req_per_s"], 1),
                "p50_ms": round(load["p50_ms"], 3),
                "p99_ms": round(load["p99_ms"], 3),
                "shed_rate": round(load["shed_rate"], 4),
                "deadline_rate": round(load["deadline_rate"], 4),
                "stragglers": load["stragglers"]}

    summary = {"cores": os.cpu_count() or 1, "max_queue": 16,
               "deadline_ms": deadline_ms}
    server = PolicyServer(
        agent(), max_batch_size=16, batch_window=0.0,
        admission_spec={"max_queue": 16, "retry_after": 0.002})
    with HttpGateway(server, default_deadline=deadline_ms / 1e3) as gateway:
        for level, clients in levels.items():
            summary[level] = drive(gateway, clients)
    server.stop()
    server = PolicyServer(agent(), max_batch_size=16, batch_window=0.0)
    with HttpGateway(server, default_deadline=deadline_ms / 1e3) as gateway:
        summary["16x_unbounded"] = drive(gateway, levels["16x"])
    server.stop()
    base = summary["1x"]["p99_ms"]
    summary["p99_growth_16x_vs_1x"] = round(
        summary["16x"]["p99_ms"] / base, 3) if base else None
    return summary


def bench_multi_learner(window: float = 0.5) -> dict:
    """Learner-group snapshot (the E14 axis): single vs K-replica
    update throughput on one total batch, plus the bare all-reduce
    round time over a 1M-element slab (ring and tree).  Ratios are
    recorded, not asserted — on a 1-core host the replicas serialize
    (same gating note as E11/E12)."""
    import numpy as np

    from repro.agents import DQNAgent
    from repro.execution.learner_group import LearnerGroup
    from repro.raylite import collectives
    from repro.raylite.shm import get_pool
    from repro.spaces import FloatBox, IntBox

    def agent_factory(worker_index=0):
        return DQNAgent(
            state_space=FloatBox(shape=(16,)), action_space=IntBox(4),
            network_spec=[{"type": "dense", "units": 64,
                           "activation": "relu"},
                          {"type": "dense", "units": 64,
                           "activation": "relu"}],
            double_q=True, dueling=True, sync_interval=50, batch_size=32,
            memory_capacity=512, seed=3)

    rng = np.random.default_rng(0)
    n = 256
    batch = {
        "states": rng.standard_normal((n, 16)).astype(np.float32),
        "actions": rng.integers(0, 4, n),
        "rewards": rng.standard_normal(n).astype(np.float32),
        "terminals": rng.random(n) < 0.1,
        "next_states": rng.standard_normal((n, 16)).astype(np.float32),
    }

    update_rates = {}
    pool_misses = {}
    single = agent_factory()
    update_rates["single"] = round(
        _measure(lambda: single.update(batch), window=window), 1)
    for k in (2, 4):
        group = LearnerGroup(agent_factory(), agent_factory, spec=k,
                             parallel_spec="thread")
        try:
            group.update(batch)  # warm: ring members attach lazily
            before = get_pool().stats()["misses"]
            update_rates[f"k{k}"] = round(
                _measure(lambda: group.update(batch), window=window), 1)
            pool_misses[f"k{k}"] = get_pool().stats()["misses"] - before
        finally:
            group.shutdown()

    slab = 1_000_000
    allreduce_ms = {}
    for algorithm, world in (("ring", 4), ("tree", 4), ("tree", 2)):
        ring = collectives.SlabRing(world, slab)
        if not ring.available:
            allreduce_ms = {"unavailable": True}
            break
        members = [collectives.RingMember(r, world, ring.names(), slab, slab)
                   for r in range(world)]
        vec = np.ones(slab, np.float32)
        steps = collectives.allreduce_steps(algorithm, world)

        def round_trip():
            for m in members:
                m.write(vec)
            for method, step in steps:
                for m in members:
                    getattr(m, method)(step)

        rate = _measure(round_trip, window=window)
        allreduce_ms[f"{algorithm}_k{world}"] = round(1e3 / rate, 3)
        for m in members:
            m.close()
        ring.release()

    summary = {
        "group_update_per_s": update_rates,
        "pool_misses_during_run": pool_misses,
        "allreduce_round_ms_1m_slab": allreduce_ms,
    }
    base = update_rates["single"]
    summary["k2_vs_single"] = round(update_rates["k2"] / base, 3) \
        if base else None
    return summary


def bench_continuous(window: float = 0.3) -> dict:
    """Continuous-control snapshot (the E16 axis): SAC update
    throughput per optimize level on an identical external batch, plus
    raw pendulum stepping.  The SAC update fetch-set is the largest in
    the suite (two policy evaluations, six critic towers, grouped
    gradient step), so its fused/native speedups track whether the
    compiler win generalizes beyond the DQN-shaped updates of E10."""
    import numpy as np

    from repro.agents import SACAgent
    from repro.environments import Pendulum
    from repro.spaces import FloatBox

    state_dim, action_dim, batch_size = 3, 1, 32

    def agent(optimize):
        return SACAgent(
            state_space=FloatBox(shape=(state_dim,)),
            action_space=FloatBox(
                low=-2.0 * np.ones(action_dim, np.float32),
                high=2.0 * np.ones(action_dim, np.float32)),
            network_spec=[{"type": "dense", "units": 64,
                           "activation": "relu"},
                          {"type": "dense", "units": 64,
                           "activation": "relu"}],
            batch_size=batch_size, memory_capacity=1024, seed=11,
            optimize=optimize)

    rng = np.random.default_rng(0)
    batch = {
        "states": rng.standard_normal(
            (batch_size, state_dim)).astype(np.float32),
        "actions": rng.uniform(
            -2.0, 2.0, (batch_size, action_dim)).astype(np.float32),
        "rewards": rng.standard_normal(batch_size).astype(np.float32),
        "terminals": rng.random(batch_size) < 0.1,
        "next_states": rng.standard_normal(
            (batch_size, state_dim)).astype(np.float32),
    }

    update_rates = {}
    for optimize in _optimize_levels():
        sac = agent(optimize)
        update_rates[optimize] = round(
            _measure(lambda: sac.update(batch), window=window), 1)

    env = Pendulum(max_steps=200, seed=0)
    env.reset()
    torques = rng.uniform(-2.0, 2.0, 4096).astype(np.float32)
    idx = [0]

    def step():
        _, _, terminal, _ = env.step(torques[idx[0] % 4096])
        idx[0] += 1
        if terminal:
            env.reset()

    summary = {
        "sac_update_per_s": update_rates,
        "pendulum_steps_per_s": round(_measure(step, window=window), 1),
    }
    summary["fused_update_speedup"] = round(
        update_rates["fused"] / update_rates["none"], 3) \
        if update_rates["none"] else None
    if "native" in update_rates:
        summary["native_update_speedup_vs_fused"] = round(
            update_rates["native"] / update_rates["fused"], 3) \
            if update_rates["fused"] else None
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_compiler.json",
                        help="summary JSON path (default: %(default)s)")
    parser.add_argument("--parallel-output", default="BENCH_parallel.json",
                        help="thread-vs-process snapshot path "
                             "(default: %(default)s)")
    parser.add_argument("--skip-parallel", action="store_true",
                        help="skip the thread-vs-process actor snapshot")
    parser.add_argument("--learner-output", default="BENCH_learner.json",
                        help="learner-path snapshot path "
                             "(default: %(default)s)")
    parser.add_argument("--skip-learner", action="store_true",
                        help="skip the learner-path snapshot")
    parser.add_argument("--serving-output", default="BENCH_serving.json",
                        help="policy-serving snapshot path "
                             "(default: %(default)s)")
    parser.add_argument("--skip-serving", action="store_true",
                        help="skip the policy-serving snapshot")
    parser.add_argument("--multi-learner-output",
                        default="BENCH_multi_learner.json",
                        help="learner-group snapshot path "
                             "(default: %(default)s)")
    parser.add_argument("--skip-multi-learner", action="store_true",
                        help="skip the learner-group snapshot")
    parser.add_argument("--gateway-output", default="BENCH_gateway.json",
                        help="HTTP gateway overload snapshot path "
                             "(default: %(default)s)")
    parser.add_argument("--skip-gateway", action="store_true",
                        help="skip the HTTP gateway overload snapshot")
    parser.add_argument("--continuous-output",
                        default="BENCH_continuous.json",
                        help="continuous-control snapshot path "
                             "(default: %(default)s)")
    parser.add_argument("--skip-continuous", action="store_true",
                        help="skip the continuous-control snapshot")
    args = parser.parse_args(argv)

    from repro.backend import native

    host = {"python": platform.python_version(),
            "platform": platform.platform(),
            "cores": os.cpu_count() or 1,
            "optimize_levels": list(_optimize_levels()),
            "native_toolchain": native.toolchain_available()}
    summary = {
        **host,
        "session_run_dqn_update_per_s": bench_session_run(),
        "vector_env_step": bench_vector_env_step(),
        "prioritized_replay": bench_per_sample(),
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    json.dump(summary, sys.stdout, indent=2)
    print()
    if not args.skip_parallel:
        parallel = {**host, **bench_parallel_backends()}
        with open(args.parallel_output, "w") as f:
            json.dump(parallel, f, indent=2)
            f.write("\n")
        json.dump(parallel, sys.stdout, indent=2)
        print()
    if not args.skip_learner:
        learner = {**host, **bench_learner_path()}
        with open(args.learner_output, "w") as f:
            json.dump(learner, f, indent=2)
            f.write("\n")
        json.dump(learner, sys.stdout, indent=2)
        print()
    if not args.skip_serving:
        serving = {**host, **bench_serving()}
        with open(args.serving_output, "w") as f:
            json.dump(serving, f, indent=2)
            f.write("\n")
        json.dump(serving, sys.stdout, indent=2)
        print()
    if not args.skip_multi_learner:
        multi = {**host, **bench_multi_learner()}
        with open(args.multi_learner_output, "w") as f:
            json.dump(multi, f, indent=2)
            f.write("\n")
        json.dump(multi, sys.stdout, indent=2)
        print()
    if not args.skip_gateway:
        gateway = {**host, **bench_gateway()}
        with open(args.gateway_output, "w") as f:
            json.dump(gateway, f, indent=2)
            f.write("\n")
        json.dump(gateway, sys.stdout, indent=2)
        print()
    if not args.skip_continuous:
        continuous = {**host, **bench_continuous()}
        with open(args.continuous_output, "w") as f:
            json.dump(continuous, f, indent=2)
            f.write("\n")
        json.dump(continuous, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
