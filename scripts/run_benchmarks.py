#!/usr/bin/env python
"""Quick-mode performance snapshot -> BENCH_compiler.json.

Runs the three hot-path micro-benchmarks that track the repo's perf
trajectory — `session.run` on the DQN update fetch-set (per optimize
level), vector-env stepping, and prioritized-replay sampling — in a few
seconds each and writes an ops/sec summary. CI calls this in a
non-blocking step so every PR from the graph-compiler PR onward records
a machine-readable perf point.

Usage:
    PYTHONPATH=src python scripts/run_benchmarks.py [--output BENCH_compiler.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time


def _measure(fn, window: float = 0.3, rounds: int = 3) -> float:
    """Best-of-``rounds`` calls/sec for ``fn`` (robust to CPU-clock drift)."""
    fn()  # warm
    best = 0.0
    for _ in range(rounds):
        n, t0 = 0, time.perf_counter()
        while time.perf_counter() - t0 < window:
            fn()
            n += 1
        best = max(best, n / (time.perf_counter() - t0))
    return best


def bench_session_run() -> dict:
    """DQN update fetch-set throughput per optimize level (batch 8)."""
    import numpy as np
    from repro.agents import DQNAgent
    from repro.spaces import FloatBox, IntBox

    results = {}
    for optimize in ("none", "basic", "fused"):
        agent = DQNAgent(
            state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
            network_spec=[{"type": "dense", "units": 32,
                           "activation": "relu"},
                          {"type": "dense", "units": 32,
                           "activation": "relu"}],
            prioritized_replay=True, dueling=True, double_q=True,
            batch_size=8, memory_capacity=512, seed=11, optimize=optimize)
        rng = np.random.default_rng(0)
        agent.observe_batch(
            states=rng.standard_normal((128, 4)).astype(np.float32),
            actions=rng.integers(0, 2, 128),
            rewards=rng.standard_normal(128).astype(np.float32),
            terminals=rng.random(128) < 0.1,
            next_states=rng.standard_normal((128, 4)).astype(np.float32))
        batch = np.asarray(8)
        results[optimize] = round(_measure(
            lambda: agent.call_api("update_from_memory", batch)), 1)
    results["fused_speedup_vs_none"] = round(
        results["fused"] / results["none"], 3)
    return results


def bench_vector_env_step() -> dict:
    """Sequential vector-env stepping throughput (8 GridWorlds)."""
    import numpy as np
    from repro.environments import GridWorld, SequentialVectorEnv

    vec = SequentialVectorEnv(envs=[GridWorld(seed=i) for i in range(8)])
    vec.reset_all()
    actions = np.zeros(vec.num_envs, dtype=np.int64)

    def step():
        vec.step_async(actions)
        vec.step_wait()

    steps_per_s = _measure(step)
    return {"steps_per_s": round(steps_per_s, 1),
            "env_frames_per_s": round(steps_per_s * vec.num_envs, 1)}


def bench_per_sample() -> dict:
    """Prioritized-replay insert/sample/update on the host-side buffer."""
    import numpy as np
    from repro.components.memories.python_memory import (
        PrioritizedReplayBuffer,
    )

    rng = np.random.default_rng(0)
    buf = PrioritizedReplayBuffer(capacity=2 ** 16, seed=0)
    n = 2 ** 16
    records = {
        "states": rng.standard_normal((n, 8)).astype(np.float32),
        "rewards": rng.standard_normal(n).astype(np.float32),
    }
    buf.insert(records, priorities=rng.random(n))
    sampled = {}

    def sample():
        _, idx, _ = buf.sample(256)
        sampled["idx"] = idx

    sample_per_s = _measure(sample)
    idx = sampled["idx"]
    priorities = rng.random(256)
    update_per_s = _measure(lambda: buf.update_priorities(idx, priorities))
    chunk = {k: v[:1024] for k, v in records.items()}
    prio_chunk = rng.random(1024)
    insert_per_s = _measure(lambda: buf.insert(chunk, priorities=prio_chunk))
    return {"sample256_per_s": round(sample_per_s, 1),
            "update256_per_s": round(update_per_s, 1),
            "insert1024_per_s": round(insert_per_s, 1)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_compiler.json",
                        help="summary JSON path (default: %(default)s)")
    args = parser.parse_args(argv)

    summary = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "session_run_dqn_update_per_s": bench_session_run(),
        "vector_env_step": bench_vector_env_step(),
        "prioritized_replay": bench_per_sample(),
    }
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    json.dump(summary, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
