#!/usr/bin/env python
"""Quickstart: train a double DQN on GridWorld in ~30 seconds.

Demonstrates the core loop of the agent API (paper Listing 2):
``get_actions`` -> ``observe`` -> ``update``, plus weight export.

Run:  python examples/quickstart.py [xgraph|xtape]
"""

import sys
import time

import numpy as np

from repro.agents import DQNAgent
from repro.environments import GridWorld


def main(backend: str = "xgraph"):
    env = GridWorld("4x4", max_steps=30, seed=0)
    print(f"Environment: {env}")

    agent = DQNAgent(
        state_space=env.state_space,
        action_space=env.action_space,
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        double_q=True,
        memory_capacity=2000,
        batch_size=64,
        discount=0.95,
        sync_interval=25,
        optimizer_spec={"type": "adam", "learning_rate": 3e-3},
        epsilon_spec={"type": "linear", "from_": 1.0, "to_": 0.05,
                      "num_timesteps": 2000},
        observe_flush_size=8,
        backend=backend,
        seed=5,
    )
    stats = agent.build_stats
    print(f"Built {stats.num_components} components on '{backend}' in "
          f"{stats.trace_time * 1e3:.1f} ms (trace) + "
          f"{stats.build_time * 1e3:.1f} ms (build)")

    # -- training loop ------------------------------------------------------
    t0 = time.perf_counter()
    state = env.reset()
    episode_returns = []
    for step in range(5000):
        action, _ = agent.get_actions(state)
        next_state, reward, terminal, _ = env.step(action)
        agent.observe(state, action, reward, terminal, next_state)
        if terminal:
            episode_returns.append(env.episode_return)
            state = env.reset()
        else:
            state = next_state
        if step > 200 and step % 2 == 0:
            agent.update()
        if step % 1000 == 999:
            recent = np.mean(episode_returns[-20:]) if episode_returns else 0
            print(f"  step {step + 1:5d}  episodes {len(episode_returns):4d}  "
                  f"mean return (last 20) {recent:+.2f}")
    print(f"Training took {time.perf_counter() - t0:.1f}s "
          f"({agent.updates} updates)")

    # -- greedy evaluation ----------------------------------------------------
    wins = 0
    for _ in range(10):
        state = env.reset()
        for _ in range(30):
            action, _ = agent.get_actions(state, explore=False)
            state, reward, terminal, _ = env.step(action)
            if terminal:
                break
        wins += int(terminal and reward == 1.0)
    print(f"Greedy evaluation: {wins}/10 episodes reach the goal")

    agent.export_model("/tmp/quickstart_dqn.pkl")
    print("Saved weights to /tmp/quickstart_dqn.pkl")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "xgraph")
