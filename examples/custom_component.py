#!/usr/bin/env python
"""Writing a custom component and testing it as a sub-graph.

This is the paper's Listing 1 workflow: define a component whose only
backend code lives in graph functions, then build and probe it from
input spaces on either backend — no manual tensor plumbing.

Run:  python examples/custom_component.py
"""

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.components.policies import Policy
from repro.spaces import Dict, FloatBox, IntBox
from repro.testing import ComponentTest


class RunningMeanBaseline(Component):
    """A custom component: exponential running mean of returns.

    Demonstrates (a) variables created from input spaces, (b) stateful
    graph functions working identically on both backends.
    """

    def __init__(self, decay=0.99, scope="running-baseline", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.decay = decay

    def create_variables(self, input_spaces):
        self.mean = self.get_variable("mean", shape=(), trainable=False)

    @rlgraph_api
    def advantage(self, returns):
        return self._graph_fn_advantage(returns)

    @graph_fn
    def _graph_fn_advantage(self, returns):
        batch_mean = F.reduce_mean(returns)
        new_mean = F.add(F.mul(self.decay, self.mean.read()),
                         F.mul(1.0 - self.decay, batch_mean))
        update = self.mean.assign(new_mean)
        adv = F.sub(returns, self.mean.read())
        return F.with_deps(adv, update) if update is not None else adv


def main():
    print("=== Custom component, built from spaces on both backends ===")
    for backend in ("xgraph", "xtape"):
        test = ComponentTest(
            RunningMeanBaseline(decay=0.5),
            input_spaces={"returns": FloatBox(add_batch_rank=True)},
            backend=backend)
        out1 = test.test("advantage", np.asarray([1.0, 3.0], np.float32))
        out2 = test.test("advantage", np.asarray([1.0, 3.0], np.float32))
        print(f"  [{backend}] first call advantages:  {np.asarray(out1)}")
        print(f"  [{backend}] second call advantages: {np.asarray(out2)} "
              f"(baseline has moved)")

    print("\n=== Listing 1: testing a Policy sub-graph from spaces ===")
    state_space = FloatBox(shape=(64,), add_batch_rank=True)
    action_space = IntBox(4)
    policy = Policy([{"type": "dense", "units": 32, "activation": "tanh"}],
                    action_space=action_space)
    test = ComponentTest(policy, input_spaces=dict(nn_input=state_space))
    sample = state_space.sample(size=8, rng=np.random.default_rng(0))
    actions = test.test("get_action", sample)
    print(f"  sampled actions for a random batch: {np.asarray(actions)}")
    q = test.test("get_logits", sample)
    print(f"  logits shape: {np.asarray(q).shape}")
    print(f"  build: {test.stats.num_components} components, "
          f"{test.stats.num_graph_fn_nodes} graph functions")


def visualize_demo():
    """Appendix-A style visualization of a built agent graph."""
    from repro.agents import DQNAgent
    from repro.spaces import IntBox
    from repro.utils.visualize import component_tree, summarize, to_dot

    agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                     network_spec=[{"type": "dense", "units": 16}],
                     backend="xgraph", seed=0)
    print("\n=== Appendix A: component tree of a built DQN agent ===")
    print(component_tree(agent.root))
    print("\nGraph summary:", summarize(agent.graph))
    dot = to_dot(agent.graph, api_name="get_actions")
    path = "/tmp/dqn_act_graph.dot"
    with open(path, "w") as f:
        f.write(dot)
    print(f"DOT graph of the act dataflow written to {path} "
          f"(render with `dot -Tpng`)")


if __name__ == "__main__":
    main()
    visualize_demo()
