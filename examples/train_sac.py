#!/usr/bin/env python
"""Soft actor-critic on pendulum swing-up — the continuous-action path.

The discrete agents pick an integer from a softmax; SAC instead emits a
torque *vector* through a tanh-squashed Gaussian policy, trains twin Q
critics against a min-backup soft target, Polyak-averages target
critics, and tunes its entropy temperature automatically — all built
from the same component/graph machinery as the rest of the suite, so
the graph compiler (``optimize="fused"`` below), flat weights and
checkpointing apply unchanged.

The loop mirrors quickstart.py: uniform warmup to fill the replay
memory, then act → observe → update every step.  Returns are negative
costs, so the curve rises toward 0 as the pendulum learns to swing up
and balance.

Run:  PYTHONPATH=src python examples/train_sac.py [xgraph|xtape]
"""

import sys

import numpy as np

from repro.agents import SACAgent
from repro.environments import Pendulum

WARMUP_STEPS = 300
EPISODES = 25


def make_agent(env, backend: str) -> SACAgent:
    return SACAgent(
        state_space=env.state_space, action_space=env.action_space,
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"},
                      {"type": "dense", "units": 64, "activation": "relu"}],
        batch_size=64, memory_capacity=20_000,
        optimizer_spec={"type": "adam", "learning_rate": 1e-3},
        observe_flush_size=1, seed=5, backend=backend, optimize="fused")


def main() -> None:
    backend = sys.argv[1] if len(sys.argv) > 1 else "xtape"
    env = Pendulum(max_steps=200, seed=3)
    agent = make_agent(env, backend)
    print(f"Training SAC on pendulum swing-up ({backend}, "
          f"target entropy {agent.target_entropy:.1f}) ...")

    rng = np.random.default_rng(0)
    steps = 0
    returns = []
    for episode in range(EPISODES):
        state, episode_return = env.reset(), 0.0
        while True:
            if steps < WARMUP_STEPS:  # uniform exploration fills replay
                action = rng.uniform(env.action_space.low,
                                     env.action_space.high).astype(np.float32)
            else:
                action, _ = agent.get_actions(state)
            next_state, reward, terminal, _ = env.step(action)
            agent.observe(state, action, reward, terminal, next_state)
            steps += 1
            if steps > WARMUP_STEPS:
                agent.update()
            episode_return += reward
            if terminal:
                break
            state = next_state
        returns.append(episode_return)
        log_alpha = next(v for k, v in agent.get_weights().items()
                         if "log-alpha" in k)
        alpha = float(np.exp(log_alpha[0]))
        print(f"  episode {episode + 1:2d}  return {episode_return:8.1f}"
              f"  alpha {alpha:.3f}")

    first = float(np.mean(returns[:5]))
    last = float(np.mean(returns[-5:]))
    print(f"Mean return, first 5 episodes: {first:.1f}; last 5: {last:.1f}")

    # Greedy (deterministic tanh(mean)) eval through the serving path.
    act = agent.serving_act_fn()
    state, total = env.reset(), 0.0
    while True:
        state, reward, terminal, _ = env.step(act(state[None])[0])
        total += reward
        if terminal:
            break
    print(f"Greedy eval return: {total:.1f} (random policy is ~ -1200)")


if __name__ == "__main__":
    main()
