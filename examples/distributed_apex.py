#!/usr/bin/env python
"""Distributed prioritized experience replay (Ape-X) on the raylite
actor engine — the paper's Fig. 6 workload at laptop scale.

Spawns N sample-collection workers (each a vector of SimPong
environments with n-step post-processing and worker-side
prioritization), routes batches to prioritized replay shards, and trains
a central learner, comparing the RLgraph worker against the RLlib-like
incremental baseline.

Run:  python examples/distributed_apex.py [num_workers]
"""

import sys

from repro import raylite
from repro.agents import ApexAgent
from repro.baselines import RLlibLikeApexExecutor
from repro.environments import SimPong
from repro.execution.ray import ApexExecutor
from repro.spaces import IntBox


FRAME = 16          # small frames keep the demo fast
FRAME_SKIP = 4


def env_factory(seed):
    return SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=seed)


def agent_factory():
    probe = SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=0)
    return ApexAgent(
        state_space=probe.state_space,
        action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0},
                            {"type": "flatten"}],
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        dueling=True, n_step=3,
        optimizer_spec={"type": "rmsprop", "learning_rate": 1e-4},
        backend="xgraph", seed=7)


def run(executor_cls, label, num_workers):
    executor = executor_cls(
        learner_agent=agent_factory(), agent_factory=agent_factory,
        env_factory=env_factory, num_workers=num_workers, envs_per_worker=4,
        num_replay_shards=2, task_size=200, batch_size=64,
        replay_capacity=20_000, learning_starts=1000, weight_sync_steps=10,
        frame_multiplier=FRAME_SKIP)
    result = executor.execute_workload(duration=8.0)
    print(f"  [{label:>10}] {result.env_frames_per_second:9.0f} env frames/s"
          f"   {result.learner_updates:4d} learner updates"
          f"   mean return {result.mean_worker_return}")
    return result


def main(num_workers: int = 2):
    print(f"Ape-X on raylite, {num_workers} workers x 4 envs, 2 replay shards")
    rlgraph = run(ApexExecutor, "RLgraph", num_workers)
    rllib = run(RLlibLikeApexExecutor, "RLlib-like", num_workers)
    speedup = rlgraph.env_frames_per_second / max(
        rllib.env_frames_per_second, 1e-9)
    print(f"RLgraph / RLlib-like throughput: {speedup:.2f}x "
          f"(paper Fig. 6: 1.6x-2.8x depending on scale)")
    raylite.shutdown()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
