#!/usr/bin/env python
"""Actor-critic (A2C) on CartPole with on-policy rollout batches.

Run:  python examples/cartpole_a2c.py [xgraph|xtape]
"""

import sys
import time

import numpy as np

from repro.agents import ActorCriticAgent
from repro.agents.actor_critic_agent import discounted_returns
from repro.environments import CartPole


def main(backend: str = "xgraph"):
    env = CartPole(max_steps=200, seed=0)
    agent = ActorCriticAgent(
        state_space=env.state_space,
        action_space=env.action_space,
        network_spec=[{"type": "dense", "units": 64, "activation": "tanh"}],
        entropy_coeff=0.01,
        optimizer_spec={"type": "adam", "learning_rate": 3e-3},
        backend=backend, seed=1)

    t0 = time.perf_counter()
    state = env.reset()
    returns = []
    for iteration in range(120):
        traj = {"states": [], "actions": [], "rewards": [], "terminals": []}
        for _ in range(128):
            action, preprocessed = agent.get_actions(state)
            next_state, reward, terminal, _ = env.step(action)
            traj["states"].append(preprocessed)
            traj["actions"].append(action)
            traj["rewards"].append(reward)
            traj["terminals"].append(terminal)
            if terminal:
                returns.append(env.episode_return)
                state = env.reset()
            else:
                state = next_state
        rets = discounted_returns(traj["rewards"], traj["terminals"],
                                  agent.discount)
        total, policy_loss, value_loss = agent.update({
            "states": np.asarray(traj["states"]),
            "actions": np.asarray(traj["actions"]),
            "returns": rets})
        if iteration % 20 == 19:
            recent = np.mean(returns[-10:]) if returns else 0.0
            print(f"  iter {iteration + 1:3d}  mean return (last 10) "
                  f"{recent:6.1f}  loss {total:+.3f}")
    print(f"Done in {time.perf_counter() - t0:.1f}s on '{backend}'. "
          f"Final mean return: {np.mean(returns[-10:]):.1f} (200 = solved)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "xgraph")
