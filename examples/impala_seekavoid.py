#!/usr/bin/env python
"""IMPALA actor-learner training on the SeekAvoid arena — the paper's
Fig. 9 workload at laptop scale.

Actors push fixed-length rollouts with behaviour log-probs into a shared
blocking queue; the learner applies v-trace-corrected updates and
publishes fresh weights. Compares the RLgraph implementation against the
DeepMind-reference actor (redundant per-step weight assignments).

Run:  python examples/impala_seekavoid.py [num_actors]
"""

import sys

from repro.agents import IMPALAAgent
from repro.baselines import DMReferenceIMPALARunner
from repro.environments import SeekAvoid
from repro.execution.impala_runner import IMPALARunner

WIDTH, HEIGHT = 32, 24


def env_factory(seed):
    return SeekAvoid(width=WIDTH, height=HEIGHT, max_steps=150, seed=seed)


def agent_factory():
    probe = SeekAvoid(width=WIDTH, height=HEIGHT, seed=0)
    return IMPALAAgent(
        state_space=probe.state_space,
        action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0},
                            {"type": "flatten"}],
        network_spec=[{"type": "dense", "units": 128, "activation": "relu"}],
        rollout_length=20,
        entropy_coeff=0.01,
        optimizer_spec={"type": "rmsprop", "learning_rate": 2e-4},
        backend="xgraph", seed=3)


def run(runner_cls, label, num_actors):
    runner = runner_cls(
        learner_agent=agent_factory(), agent_factory=agent_factory,
        env_factory=env_factory, num_actors=num_actors, envs_per_actor=1,
        rollout_length=20, batch_size=max(num_actors // 2, 1))
    result = runner.run(duration=8.0)
    print(f"  [{label:>12}] {result['env_frames_per_second']:8.0f} env "
          f"frames/s   {result['learner_updates']:4d} updates   "
          f"mean return {result['mean_return']}")
    return result


def main(num_actors: int = 2):
    print(f"IMPALA on SeekAvoid ({WIDTH}x{HEIGHT} RGB), "
          f"{num_actors} actors, shared FIFO queue")
    rlgraph = run(IMPALARunner, "RLgraph", num_actors)
    reference = run(DMReferenceIMPALARunner, "DM reference", num_actors)
    speedup = (rlgraph["env_frames_per_second"]
               / max(reference["env_frames_per_second"], 1e-9))
    print(f"RLgraph / reference throughput: {speedup:.2f}x "
          f"(paper Fig. 9: 1.10-1.15x at low actor counts)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
