#!/usr/bin/env python
"""Train a DQN briefly, then serve it to concurrent clients.

Demonstrates the full serving loop:

1. train a small double DQN on GridWorld (as in quickstart.py);
2. export the weights and load them into a serving agent;
3. stand up a :class:`PolicyServer` and hammer it with concurrent
   synchronous clients — requests micro-batch into single compiled
   ``act`` calls;
4. hot-swap fresh weights mid-traffic (the eval-during-training path
   executors drive through their ``weight_listeners`` hook) without
   dropping a request.

Run:  PYTHONPATH=src python examples/serve_dqn.py
"""

import os
import tempfile
import threading
import time

import numpy as np

from repro.agents import DQNAgent
from repro.environments import GridWorld
from repro.serving import PolicyClient, PolicyServer


def make_agent(seed: int = 5) -> DQNAgent:
    env = GridWorld("4x4", max_steps=30, seed=0)
    return DQNAgent(
        state_space=env.state_space, action_space=env.action_space,
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        double_q=True, memory_capacity=2000, batch_size=64, discount=0.95,
        sync_interval=25, observe_flush_size=8, seed=seed)


def train(agent: DQNAgent, steps: int = 2000) -> None:
    env = GridWorld("4x4", max_steps=30, seed=0)
    state = env.reset()
    for step in range(steps):
        action, _ = agent.get_actions(state)
        next_state, reward, terminal, _ = env.step(action)
        agent.observe(state, action, reward, terminal, next_state)
        state = env.reset() if terminal else next_state
        if step > 200 and step % 2 == 0:
            agent.update()


def main() -> None:
    print("Training a small DQN on GridWorld ...")
    learner = make_agent()
    train(learner)

    # Checkpoint round trip: the dict path serves saved models.
    path = os.path.join(tempfile.mkdtemp(), "dqn_gridworld.pkl")
    learner.export_model(path)
    serving_agent = make_agent(seed=11)
    serving_agent.import_model(path)
    print(f"Exported weights -> {path}; loaded into a serving agent")

    server = PolicyServer(serving_agent, max_batch_size=16, batch_window=0.001)
    env = GridWorld("4x4", max_steps=30, seed=0)
    stop = threading.Event()
    clients = [PolicyClient(server) for _ in range(6)]

    def client_loop(client: PolicyClient) -> None:
        obs = env.state_space.sample()
        while not stop.is_set():
            client.act(obs)

    threads = [threading.Thread(target=client_loop, args=(c,), daemon=True)
               for c in clients]
    for thread in threads:
        thread.start()

    time.sleep(1.0)
    # Mid-traffic hot swap: push fresh weights while clients hammer the
    # server — one flat vector, applied between micro-batches.
    train(learner, steps=500)
    server.set_weights(learner.get_weights(flat=True), wait=True)
    print("Hot-swapped fresh learner weights mid-traffic")
    time.sleep(1.0)

    stop.set()
    for thread in threads:
        thread.join(timeout=5.0)
    server.stop()

    stats = server.stats.as_dict()
    total = sum(c.num_requests for c in clients)
    print(f"Served {total} requests in {stats['batches']} batches "
          f"(mean batch {stats['mean_batch_size']}, "
          f"{stats['weight_swaps']} weight swap)")
    print(f"Server-side latency: p50={stats['p50_latency_ms']}ms "
          f"p99={stats['p99_latency_ms']}ms; errors={stats['errors']}")

    # Greedy rollout through the served policy (sanity check).
    client = PolicyClient(PolicyServer(serving_agent, max_batch_size=4))
    state, total_reward = env.reset(), 0.0
    for _ in range(30):
        action = int(client.act(state))
        state, reward, terminal, _ = env.step(action)
        total_reward += reward
        if terminal:
            break
    client.target.stop()
    print(f"Greedy served rollout return: {total_reward:.1f}")


if __name__ == "__main__":
    main()
