#!/usr/bin/env python
"""Atari-style pipeline: dueling DQN with a full image preprocessing
stack on SimPong — the paper's running example architecture (dueling DQN
with prioritized replay; Fig. 5a's "43 components").

Shows: image preprocessing stack (grayscale frames are native here, so
resize + scale), conv torso, dueling head, prioritized replay, and a
vectorized acting worker. A short demo run; full training takes longer
than an example should.

Run:  python examples/atari_style_dqn.py
"""

import time

import numpy as np

from repro.agents import DQNAgent
from repro.environments import SequentialVectorEnv, SimPong
from repro.execution import SingleThreadedWorker


def main():
    num_envs = 4
    envs = [SimPong(size=32, frame_skip=4, seed=i) for i in range(num_envs)]
    vec = SequentialVectorEnv(envs=envs)

    agent = DQNAgent(
        state_space=vec.state_space,
        action_space=vec.action_space,
        preprocessing_spec=[
            {"type": "image_resize", "width": 16, "height": 16},
            {"type": "divide", "divisor": 255.0},
        ],
        network_spec=[
            {"type": "conv2d", "filters": 8, "kernel_size": 4, "stride": 2,
             "activation": "relu"},
            {"type": "conv2d", "filters": 16, "kernel_size": 3, "stride": 2,
             "activation": "relu"},
            {"type": "dense", "units": 128, "activation": "relu"},
        ],
        dueling=True,
        double_q=True,
        prioritized_replay=True,
        alpha=0.6, beta=0.4,
        memory_capacity=20_000,
        batch_size=32,
        optimizer_spec={"type": "rmsprop", "learning_rate": 1e-4},
        epsilon_spec={"type": "linear", "from_": 1.0, "to_": 0.1,
                      "num_timesteps": 20_000},
        backend="xgraph", seed=9)

    stats = agent.build_stats
    print(f"Built {stats.num_components} components "
          f"({stats.num_graph_fn_nodes} graph functions) in "
          f"{(stats.trace_time + stats.build_time) * 1e3:.0f} ms "
          f"— the paper's dueling-DQN-with-prioritized-replay architecture")

    worker = SingleThreadedWorker(agent, vec, n_step=1)
    print(f"\nActing throughput on {num_envs} vectorized SimPong envs:")
    t0 = time.perf_counter()
    stats = worker.execute_timesteps(2000, update_interval=8,
                                     update_after=500)
    elapsed = time.perf_counter() - t0
    print(f"  {stats.env_frames} agent steps "
          f"({stats.env_frames * 4} env frames with skip) in {elapsed:.1f}s "
          f"-> {stats.env_frames * 4 / elapsed:.0f} frames/s")
    print(f"  learner updates: {agent.updates}")
    mean_ret = stats.mean_return()
    print(f"  mean episode return so far: {mean_ret}")
    print("\n(Short demo — full Pong training needs millions of frames; "
          "see benchmarks/test_bench_learning_curves.py for the "
          "learning-curve reproduction.)")


if __name__ == "__main__":
    main()
