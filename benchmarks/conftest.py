"""Shared benchmark fixtures/helpers.

Every bench prints the table/series of its paper figure so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
section row by row. EXPERIMENTS.md records paper-vs-measured.
"""

import pytest


def print_table(title, headers, rows):
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    return print_table


def shutdown_raylite():
    from repro import raylite
    raylite.shutdown()


@pytest.fixture(autouse=True)
def _raylite_cleanup():
    yield
    shutdown_raylite()
