"""Shared benchmark fixtures/helpers.

Every bench prints the table/series of its paper figure so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation
section row by row. EXPERIMENTS.md records paper-vs-measured.
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    # Everything under benchmarks/ is a perf reproduction, not a unit
    # test; mark slow so `-m "not slow"` gives a fast CI loop.  The hook
    # receives the whole session's items (also tests/ on a repo-root
    # run), so scope the marker to this directory.
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


def print_table(title, headers, rows):
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    return print_table


def shutdown_raylite():
    from repro import raylite
    raylite.shutdown()


@pytest.fixture(autouse=True)
def _raylite_cleanup():
    yield
    shutdown_raylite()
