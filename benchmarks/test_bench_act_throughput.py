"""E2 — Fig. 5b: single-threaded worker act (inference) throughput.

A single worker acts on a vector of SimPong environments through a conv
torso + dueling head. Compares the static-graph backend (xgraph ~ TF
RLgraph), define-by-run (xtape ~ PT RLgraph), the define-by-run fast
path (the paper's edge-contraction optimization) and the hand-tuned
bare-NumPy actor (~ PT hand-tuned).

Paper shape: the static backend wins as the environment vector (i.e.
inference batch) grows because the session amortizes Python dispatch;
define-by-run pays per-call component-traversal overhead that becomes
negligible at large batch; hand-tuned bounds the define-by-run path.
"""

import time

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.backend import XGRAPH, XTAPE
from repro.baselines import HandTunedActor
from repro.environments import SequentialVectorEnv, SimPong

FRAME = 32
FRAME_SKIP = 4
VECTOR_SIZES = [1, 2, 4, 8, 16, 32]
STEPS = 30


def _make_agent(backend):
    probe = SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=0)
    return DQNAgent(
        state_space=probe.state_space, action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0}],
        network_spec=[
            {"type": "conv2d", "filters": 8, "kernel_size": 8, "stride": 4},
            {"type": "conv2d", "filters": 16, "kernel_size": 4, "stride": 2},
            {"type": "dense", "units": 128},
        ],
        dueling=True, backend=backend, seed=0)


def _act_loop(act_fn, num_envs: int, steps: int = STEPS) -> float:
    """Frames/s of an act->env-step loop on a fresh env vector."""
    vec = SequentialVectorEnv(
        envs=[SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=i)
              for i in range(num_envs)])
    states = vec.reset_all()
    act_fn(states)  # warm-up (plan caching etc.)
    t0 = time.perf_counter()
    for _ in range(steps):
        actions = act_fn(states)
        states, _, _ = vec.step(actions)
    elapsed = time.perf_counter() - t0
    return steps * num_envs * FRAME_SKIP / elapsed


def _variants():
    xgraph_agent = _make_agent(XGRAPH)
    xtape_agent = _make_agent(XTAPE)
    xtape_fast_agent = _make_agent(XTAPE)
    xtape_fast_agent.graph.eager_fastpath = True
    handtuned = HandTunedActor.from_agent(xgraph_agent)
    ts = np.asarray(0)
    return {
        "xgraph (TF RLgraph)": lambda s: np.asarray(
            xgraph_agent.call_api("get_greedy_actions", s, ts)[0]),
        "xtape (PT RLgraph)": lambda s: np.asarray(
            xtape_agent.call_api("get_greedy_actions", s, ts)[0]),
        "xtape fast-path": lambda s: np.asarray(
            xtape_fast_agent.call_api("get_greedy_actions", s, ts)[0]),
        "hand-tuned numpy": handtuned.act,
    }


def test_act_throughput(benchmark, table):
    variants = _variants()
    results = {name: [] for name in variants}

    def sweep():
        for num_envs in VECTOR_SIZES:
            for name, fn in variants.items():
                results[name].append(_act_loop(fn, num_envs))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for i, num_envs in enumerate(VECTOR_SIZES):
        rows.append([num_envs] + [f"{results[name][i]:.0f}"
                                  for name in variants])
    table("Fig. 5b — act throughput (env frames/s incl. frame-skip)",
          ["envs"] + list(variants), rows)
    for name in variants:
        benchmark.extra_info[name] = [round(v) for v in results[name]]

    xgraph = results["xgraph (TF RLgraph)"]
    xtape = results["xtape (PT RLgraph)"]
    fast = results["xtape fast-path"]
    # Paper shape 1: throughput grows with the vector size (batching).
    assert xgraph[-1] > xgraph[0] * 2
    assert xtape[-1] > xtape[0] * 2
    # Paper shape 2: the static backend is at least competitive with the
    # define-by-run dispatch path at large batch sizes.
    assert xgraph[-1] > 0.7 * xtape[-1]
    # Paper shape 3 (weak): the fast path stays within noise of regular
    # define-by-run dispatch — in CPython the meta-graph replay costs
    # about as much as plain method dispatch, so the paper's fast-path
    # win does not reproduce at this scale (recorded in EXPERIMENTS.md).
    assert np.mean(fast) >= 0.7 * np.mean(xtape)
