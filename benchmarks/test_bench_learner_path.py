"""E12 — flat-parameter learner path: fused multi-tensor updates and
flat weight sync.

PRs 1-3 made acting, the forward pass, and actor parallelism fast; the
learner update step became the dominant hot path.  This bench measures
the flat-parameter subsystem against the seed construction on the two
halves of that path:

* **update-step throughput** — one optimizer step over K variables,
  per-variable ablation (``optimize="none"``: ~10+ interpreted nodes
  per variable) vs the fused path (one ``flatcat`` + ONE multi-tensor
  op over the coalesced slab), and — when a C toolchain is present —
  ``"native"`` (the fused plan lowered to C segments, including the
  fused Adam kernel itself).  Swept at K in {10, 100}.
* **weight push latency** — learner->actor weight sync through raylite
  actors: per-variable dict vs one flat ndarray, on the thread and the
  process backend (flat rides a single shared-memory block).

Acceptance (per the 1-CPU container rule, wall-clock ratios only
assert where the hardware can show them):

* fused >= 2x per-variable update-step throughput at K=100 (pure
  single-thread compute — asserted on any core count);
* native >= 2x fused at K=100 when a C toolchain is present;
* flat push >= dict push on >= 2 cores per backend; on 1 core the
  process-backend ratio is recorded only (worker scheduling noise
  dominates sub-millisecond pushes there).
"""

import os
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import DQNAgent
from repro.backend import functional as F
from repro.backend import native
from repro.components.optimizers import Adam
from repro.core import Component, graph_fn, rlgraph_api
from repro.core.graph_builder import build_graph
from repro.spaces import FloatBox, IntBox

pytestmark = pytest.mark.mp_timeout(300)

CORES = os.cpu_count() or 1
UPDATE_LEVELS = ("none", "fused") + (
    ("native",) if native.toolchain_available() else ())


# ---------------------------------------------------------------------------
# Update-step throughput: per-variable vs fused at K variables
# ---------------------------------------------------------------------------
class _KVarProblem(Component):
    def __init__(self, optimizer, num_vars, dim=16, scope="kvar", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.optimizer = optimizer
        self.num_vars = num_vars
        self.dim = dim
        self.add_components(optimizer)

    def create_variables(self, input_spaces):
        self.ws = [self.get_variable(f"w-{i:03d}", shape=(self.dim,),
                                     initializer="normal")
                   for i in range(self.num_vars)]
        self.optimizer.set_variables(self.ws)

    @rlgraph_api
    def update(self, target):
        loss = self._graph_fn_loss(target)
        return self._graph_fn_result(loss, self.optimizer.step(loss))

    @graph_fn
    def _graph_fn_loss(self, target):
        total = F.reduce_sum(F.square(F.sub(self.ws[0].read(), target)))
        for w in self.ws[1:]:
            total = F.add(total,
                          F.reduce_sum(F.square(F.sub(w.read(), target))))
        return total

    @graph_fn(requires_variables=False)
    def _graph_fn_result(self, loss, step_op):
        return F.with_deps(loss, step_op) if step_op is not None else loss


def _update_rate(num_vars, optimize, window=0.25, rounds=3):
    problem = _KVarProblem(Adam(learning_rate=1e-3), num_vars)
    built = build_graph(problem, {"target": FloatBox(shape=(16,))},
                        seed=1, optimize=optimize)
    target = np.zeros(16, np.float32)
    built.execute("update", target)  # warm: plan + compile
    best = 0.0
    for _ in range(rounds):
        n, t0 = 0, time.perf_counter()
        while time.perf_counter() - t0 < window:
            built.execute("update", target)
            n += 1
        best = max(best, n / (time.perf_counter() - t0))
    return best, problem.optimizer.update_node_count


def test_update_step_throughput(benchmark, table):
    rates = {}
    node_counts = {}

    def sweep():
        for num_vars in (10, 100):
            for optimize in UPDATE_LEVELS:
                rate, nodes = _update_rate(num_vars, optimize)
                rates[(num_vars, optimize)] = rate
                node_counts[(num_vars, optimize)] = nodes
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for num_vars in (10, 100):
        base = rates[(num_vars, "none")]
        for optimize in UPDATE_LEVELS:
            rate = rates[(num_vars, optimize)]
            rows.append([num_vars, optimize, node_counts[(num_vars, optimize)],
                         f"{rate:.0f}", f"{rate / base:.2f}x"])
    table("E12 — optimizer update-step throughput (Adam, per-var vs fused)",
          ["K vars", "path", "update nodes", "updates/s", "speedup"], rows)
    benchmark.extra_info.update(
        {f"k{num_vars}_{optimize}": round(rates[(num_vars, optimize)], 1)
         for num_vars in (10, 100) for optimize in UPDATE_LEVELS})

    # Graph-size collapse: O(10·K) -> O(1).
    assert node_counts[(100, "fused")] <= 20
    assert node_counts[(100, "none")] >= 500
    # Pure single-thread compute: asserted regardless of core count.
    speedup = rates[(100, "fused")] / rates[(100, "none")]
    assert speedup >= 2.0, (
        f"fused update step must be >= 2x the per-variable path at K=100, "
        f"got {speedup:.2f}x")
    assert rates[(10, "fused")] > rates[(10, "none")], \
        "fused path should win at K=10 already"
    if "native" in UPDATE_LEVELS:
        native_speedup = rates[(100, "native")] / rates[(100, "fused")]
        assert native_speedup >= 2.0, (
            f"native codegen must be >= 2x the fused executor at K=100, "
            f"got {native_speedup:.2f}x")


# ---------------------------------------------------------------------------
# Weight push: dict vs flat over raylite thread/process actors
# ---------------------------------------------------------------------------
class _WeightSink:
    """Stands in for a worker actor: applies pushed weights to its own
    agent copy (the receive-side scatter is part of the cost)."""

    def __init__(self, agent_factory):
        self.agent = agent_factory()

    def set_weights(self, weights) -> int:
        self.agent.set_weights(weights)
        return 0


def _agent_factory():
    return DQNAgent(state_space=FloatBox(shape=(8,)), action_space=IntBox(4),
                    network_spec=[{"type": "dense", "units": 128,
                                   "activation": "relu"},
                                  {"type": "dense", "units": 128,
                                   "activation": "relu"}],
                    seed=5)


def _push_rate(learner, sink, flat, pushes=30):
    weights = learner.get_weights(flat=True) if flat \
        else learner.get_weights()
    raylite.get(sink.set_weights.remote(weights))  # warm
    t0 = time.perf_counter()
    for _ in range(pushes):
        weights = learner.get_weights(flat=True) if flat \
            else learner.get_weights()
        raylite.get(sink.set_weights.remote(weights))
    return pushes / (time.perf_counter() - t0)


def test_weight_push_dict_vs_flat(benchmark, table):
    learner = _agent_factory()
    rates = {}

    def sweep():
        for backend in ("thread", "process"):
            actor_cls = raylite.remote(_WeightSink).options(backend=backend)
            sink = actor_cls.remote(_agent_factory)
            try:
                rates[(backend, "dict")] = _push_rate(learner, sink, False)
                rates[(backend, "flat")] = _push_rate(learner, sink, True)
            finally:
                raylite.shutdown()
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for backend in ("thread", "process"):
        ratio = rates[(backend, "flat")] / rates[(backend, "dict")]
        rows.append([backend, f"{rates[(backend, 'dict')]:.0f}",
                     f"{rates[(backend, 'flat')]:.0f}", f"{ratio:.2f}x"])
    table("E12 — learner->actor weight push (dict vs flat vector)",
          ["raylite backend", "dict pushes/s", "flat pushes/s",
           "flat speedup"], rows)
    benchmark.extra_info.update(
        {f"{backend}_{kind}": round(rates[(backend, kind)], 1)
         for backend in ("thread", "process") for kind in ("dict", "flat")})

    if CORES < 2:
        # 1-CPU container: record the numbers, skip the ratio bars —
        # process-worker scheduling noise dominates at this scale.
        pytest.skip(f"single-core host — recorded only: {rates}")
    for backend in ("thread", "process"):
        ratio = rates[(backend, "flat")] / rates[(backend, "dict")]
        assert ratio >= 1.0, (
            f"{backend}: flat push {rates[(backend, 'flat')]:.0f}/s slower "
            f"than dict push {rates[(backend, 'dict')]:.0f}/s")


def test_flat_push_is_one_shm_block(table):
    """Process-mode invariant: one flat push = ONE shared-memory block
    carrying exactly one array (the dict push packs one block with K
    tokens plus a pickled tree)."""
    from repro.raylite import shm

    learner = _agent_factory()
    flat_tree, flat_block = shm.encode(learner.get_weights(flat=True))
    dict_tree, dict_block = shm.encode(learner.get_weights())
    try:
        flat_tokens = 1 if isinstance(flat_tree, shm.ShmArray) else 0
        dict_tokens = sum(isinstance(v, shm.ShmArray)
                          for v in dict_tree.values())
        table("E12 — shm blocks per weight push (process mode)",
              ["payload", "blocks", "array tokens"],
              [["flat vector", int(flat_block is not None), flat_tokens],
               ["per-variable dict", int(dict_block is not None),
                dict_tokens]])
        assert flat_block is not None and flat_tokens == 1
        assert dict_tokens > 1
    finally:
        shm.discard(flat_tree, flat_block)
        shm.discard(dict_tree, dict_block)
