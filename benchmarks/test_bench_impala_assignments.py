"""E8 — §5.1 text: "DM's code also carried out unneeded variable
assignments in the actor. Removing these yielded 20% improvement in a
single-worker setting."

Single actor, updates disabled (pure acting), with and without the
redundant per-step assignment.
"""

import pytest

from repro.agents import IMPALAAgent
from repro.environments import SeekAvoid
from repro.execution.impala_runner import IMPALARunner

WIDTH, HEIGHT = 32, 24


def _env_factory(seed):
    return SeekAvoid(width=WIDTH, height=HEIGHT, max_steps=150, seed=seed)


def _agent_factory():
    probe = SeekAvoid(width=WIDTH, height=HEIGHT, seed=0)
    return IMPALAAgent(
        state_space=probe.state_space, action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0},
                            {"type": "flatten"}],
        network_spec=[{"type": "dense", "units": 128, "activation": "relu"}],
        backend="xgraph", seed=2)


def _run(redundant):
    runner = IMPALARunner(
        learner_agent=_agent_factory(), agent_factory=_agent_factory,
        env_factory=_env_factory, num_actors=1, envs_per_actor=1,
        rollout_length=20, batch_size=1,
        redundant_assignments=redundant)
    return runner.run(duration=3.0, updates_enabled=False)


def test_redundant_assignment_cost(benchmark, table):
    outcome = {}

    def run_both():
        outcome["clean"] = _run(redundant=False)
        outcome["redundant"] = _run(redundant=True)
        return outcome

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    clean = outcome["clean"]["env_frames_per_second"]
    redundant = outcome["redundant"]["env_frames_per_second"]
    gain = clean / max(redundant, 1e-9) - 1.0
    table("E8 — single-actor acting throughput",
          ["variant", "env frames/s"],
          [["without redundant assignments", f"{clean:.0f}"],
           ["with redundant assignments (DM ref)", f"{redundant:.0f}"],
           ["improvement", f"{gain * 100:.0f}%  (paper: ~20%)"]])
    benchmark.extra_info.update({"clean_fps": round(clean),
                                 "redundant_fps": round(redundant),
                                 "gain": round(gain, 3)})
    # Paper shape: removing the assignments is a clear single-worker win.
    assert gain > 0.05
