"""E16 — continuous control: SAC update throughput across optimize
levels, plus pendulum env stepping.

The continuous-action path stresses the compiler differently from the
discrete agents: one SAC update evaluates the policy network twice
(current and next states, reparameterized through the squashed
Gaussian), four critic towers plus two target towers, and steps the
policy / twin-critic / temperature variables from a single grouped
gradient extraction.  That is a much larger fetch-set than the DQN
update E10 tracks, with the same tiny-batch regime where per-node
interpreter overhead dominates — so the fused/native lowering should
carry over to it rather than being a DQN-shaped special case.

The bench sweeps ``optimize`` in {"none", "basic", "fused"} (+
``"native"`` when a C toolchain is present) on an identical external
update batch (same seed keys the host-side noise stream, so every level
does the same arithmetic — parity is locked by
tests/test_parity_matrix.py), and separately measures raw Pendulum
stepping plus the act+step loop that feeds SAC training.

Acceptance:

* ``fused`` beats ``none`` on the SAC update fetch-set (the E10 claim,
  transplanted to the continuous path);
* ``native``, when available, is no slower than ``fused``;
* raw pendulum stepping clears 2k steps/s (it is ~20 numpy scalar ops
  per step; anything slower means the env grew accidental overhead).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.agents import SACAgent
from repro.backend import native
from repro.environments import Pendulum
from repro.spaces import FloatBox

pytestmark = pytest.mark.mp_timeout(300)

CORES = os.cpu_count() or 1
LEVELS = ("none", "basic", "fused") + (
    ("native",) if native.toolchain_available() else ())
STATE_DIM = 3
ACTION_DIM = 1
BATCH = 32


def _sac(optimize):
    return SACAgent(
        state_space=FloatBox(shape=(STATE_DIM,)),
        action_space=FloatBox(low=-2.0 * np.ones(ACTION_DIM, np.float32),
                              high=2.0 * np.ones(ACTION_DIM, np.float32)),
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"},
                      {"type": "dense", "units": 64, "activation": "relu"}],
        batch_size=BATCH, memory_capacity=1024, seed=11, optimize=optimize)


def _update_batch():
    rng = np.random.default_rng(0)
    return {
        "states": rng.standard_normal((BATCH, STATE_DIM)).astype(np.float32),
        "actions": rng.uniform(-2.0, 2.0, (BATCH, ACTION_DIM))
        .astype(np.float32),
        "rewards": rng.standard_normal(BATCH).astype(np.float32),
        "terminals": rng.random(BATCH) < 0.1,
        "next_states": rng.standard_normal((BATCH, STATE_DIM))
        .astype(np.float32),
    }


def _time_interleaved(fns, rounds=6, window=0.3):
    """Best-of-``rounds`` calls/s per label, levels interleaved
    round-robin so CPU-clock drift hits all of them equally."""
    best = {label: 0.0 for label in fns}
    for fn in fns.values():
        fn()  # warm: build + plan + compile
    for _ in range(rounds):
        for label, fn in fns.items():
            n, t0 = 0, time.perf_counter()
            while time.perf_counter() - t0 < window:
                fn()
                n += 1
            best[label] = max(best[label], n / (time.perf_counter() - t0))
    return best


def test_sac_update_throughput_across_levels(benchmark, table):
    rates = {}

    def sweep():
        batch = _update_batch()
        fns = {}
        for opt in LEVELS:
            agent = _sac(opt)
            fns[opt] = (lambda a=agent: a.update(batch))
        rates.update(_time_interleaved(fns))
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = rates["none"]
    rows = [[opt, f"{rate:.1f}", f"{rate / base:.2f}x"]
            for opt, rate in rates.items()]
    table(f"E16 — SAC update throughput, batch {BATCH} ({CORES} cores)",
          ["optimize", "updates/s", "vs none"], rows)
    benchmark.extra_info.update(
        cores=CORES, batch=BATCH,
        results={opt: round(rate, 1) for opt, rate in rates.items()})

    assert rates["fused"] > rates["none"], (
        "fused SAC update slower than the per-node interpreter "
        f"({rates['fused']:.1f} vs {rates['none']:.1f}/s): the compiler "
        "win did not carry over to the continuous path")
    if "native" in rates:
        assert rates["native"] >= 0.9 * rates["fused"], (
            f"native SAC update regressed vs fused ({rates['native']:.1f} "
            f"vs {rates['fused']:.1f}/s)")


def test_pendulum_step_throughput(benchmark, table):
    results = {}

    def sweep():
        # Raw env stepping: numpy dynamics only.
        env = Pendulum(max_steps=200, seed=0)
        env.reset()
        rng = np.random.default_rng(1)
        torques = rng.uniform(-2.0, 2.0, 4096).astype(np.float32)
        idx = [0]

        def raw_step():
            _, _, terminal, _ = env.step(torques[idx[0] % 4096])
            idx[0] += 1
            if terminal:
                env.reset()

        raw_step()
        n, t0 = 0, time.perf_counter()
        while time.perf_counter() - t0 < 1.0:
            raw_step()
            n += 1
        results["raw_steps_per_s"] = n / (time.perf_counter() - t0)

        # Act+step loop: the single-row SAC inference path that feeds
        # training (greedy serving callable, one obs per call).
        agent = _sac("fused")
        act = agent.serving_act_fn()
        env.reset()
        state = env.reset()

        def act_step():
            nonlocal state
            action = act(state[None])[0]
            state, _, terminal, _ = env.step(action)
            if terminal:
                state = env.reset()

        act_step()
        n, t0 = 0, time.perf_counter()
        while time.perf_counter() - t0 < 1.0:
            act_step()
            n += 1
        results["act_steps_per_s"] = n / (time.perf_counter() - t0)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table(f"E16 — pendulum stepping ({CORES} cores)",
          ["loop", "steps/s"],
          [["raw env", f"{results['raw_steps_per_s']:.0f}"],
           ["act + step", f"{results['act_steps_per_s']:.0f}"]])
    benchmark.extra_info.update(
        cores=CORES,
        results={k: round(v, 1) for k, v in results.items()})

    assert results["raw_steps_per_s"] > 2000, (
        "raw pendulum stepping below 2k steps/s — the env dynamics "
        "grew accidental overhead")
    assert results["act_steps_per_s"] > 0
