"""E6 — Fig. 8: synchronous multi-GPU device strategy.

The strategy (paper §4.1): the update batch is split into one sub-batch
per (simulated) device, per-tower losses/gradients are computed and
averaged for one update. With D devices, a real system trains on a D x
larger batch at roughly the wall time of one shard, so convergence per
wall-second improves — Fig. 8's observation.

On simulated devices (one core) the towers run sequentially, so we plot
reward against *simulated* time: per update, one tower's measured
compute plus a fixed sync overhead (documented substitution,
DESIGN.md §2). The mechanism — batch splitting and gradient averaging —
runs for real and is additionally verified against single-batch
gradients in tests.
"""

import time

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.environments import GridWorld
from repro.spaces import IntBox

SYNC_OVERHEAD = 0.05  # fraction of tower time spent averaging/sync


def _make_agent(num_devices, batch_size, seed=5):
    return DQNAgent(
        state_space=(16,), action_space=IntBox(4),
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        double_q=True, discount=0.95, num_devices=num_devices,
        batch_size=batch_size, memory_capacity=4000, sync_interval=25,
        optimizer_spec={"type": "adam", "learning_rate": 2e-3},
        epsilon_spec={"type": "linear", "from_": 1.0, "to_": 0.05,
                      "num_timesteps": 2000},
        backend="xgraph", seed=seed)


def _train(num_devices, per_device_batch=32, budget_updates=900):
    env = GridWorld("4x4", max_steps=30, seed=0)
    batch = per_device_batch * num_devices
    agent = _make_agent(num_devices, batch)
    rng = np.random.default_rng(0)

    state = env.reset()
    returns = []
    timeline = []  # (simulated seconds, mean recent return)
    sim_time = 0.0
    updates = 0
    step = 0
    while updates < budget_updates:
        action, pre = agent.get_actions(state)
        next_state, reward, terminal, _ = env.step(action)
        agent.observe(state, action, reward, terminal, next_state)
        if terminal:
            returns.append(env.episode_return)  # before reset clears it
            state = env.reset()
        else:
            state = next_state
        step += 1
        if step > 200 and step % 2 == 0:
            t0 = time.perf_counter()
            agent.update()
            wall = time.perf_counter() - t0
            # Towers would run in parallel on D devices: simulated cost is
            # one tower's share plus sync overhead.
            sim_time += wall / num_devices * (1.0 + SYNC_OVERHEAD
                                              * (num_devices - 1))
            updates += 1
            if updates % 50 == 0:
                recent = np.mean(returns[-30:]) if returns else -0.3
                timeline.append((sim_time, float(recent)))
    return timeline


def _time_to_threshold(timeline, threshold=0.5):
    for t, reward in timeline:
        if reward >= threshold:
            return t
    return float("inf")


def test_multi_device_strategy(benchmark, table):
    outcome = {}

    def run_both():
        outcome[1] = _train(num_devices=1)
        outcome[2] = _train(num_devices=2)
        return outcome

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for (t1, r1), (t2, r2) in zip(outcome[1], outcome[2]):
        rows.append([f"{t1:.2f}s / {t2:.2f}s", f"{r1:+.2f}", f"{r2:+.2f}"])
    table("Fig. 8 — mean reward vs simulated wall time",
          ["sim time (1dev / 2dev)", "single device", "2-device sync"], rows)

    t1 = _time_to_threshold(outcome[1])
    t2 = _time_to_threshold(outcome[2])
    print(f"  simulated time to reward 0.5: 1 device {t1:.2f}s, "
          f"2 devices {t2:.2f}s")
    benchmark.extra_info.update({"time_to_0.5_1dev": t1,
                                 "time_to_0.5_2dev": t2})

    # Paper shape: the 2-device strategy converges at least as fast in
    # simulated wall time (it trains on 2x data per update).
    assert np.isfinite(t2), "2-device run never reached the threshold"
    assert t2 <= t1 * 1.15
    # Both must actually learn.
    assert outcome[1][-1][1] > 0.3
    assert outcome[2][-1][1] > 0.3
