"""E1 — Fig. 5a: one-time build overheads.

Measures component-graph trace time and main build time for (a) a single
PrioritizedReplay component and (b) the full dueling-DQN-with-
prioritized-replay architecture, on the static-graph (xgraph ~ TF) and
define-by-run (xtape ~ PT) backends.

Paper shape: single component < 100 ms total; full architecture ~1 s
(TF) / ~650 ms (PT); define-by-run *build* is much cheaper than the
static build because variables are plain arrays.
"""

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.backend import XGRAPH, XTAPE
from repro.components.memories import PrioritizedReplay
from repro.spaces import BoolBox, Dict, FloatBox, IntBox
from repro.testing import ComponentTest


def _memory_spaces():
    return {
        "records": Dict(states=FloatBox(shape=(16, 16, 4)), actions=IntBox(4),
                        rewards=FloatBox(), terminals=BoolBox(),
                        next_states=FloatBox(shape=(16, 16, 4)),
                        add_batch_rank=True),
        "batch_size": IntBox(low=0, high=2**31 - 1),
        "indices": IntBox(low=0, high=2**31 - 1, shape=(),
                          add_batch_rank=True),
        "update": FloatBox(add_batch_rank=True),
    }


def _build_memory(backend):
    test = ComponentTest(PrioritizedReplay(capacity=512),
                         input_spaces=_memory_spaces(), backend=backend)
    return test.stats


def _build_dqn_agent(backend):
    agent = DQNAgent(
        state_space=FloatBox(shape=(32, 32, 1)),
        action_space=IntBox(4),
        preprocessing_spec=[{"type": "divide", "divisor": 255.0}],
        network_spec=[
            {"type": "conv2d", "filters": 16, "kernel_size": 8, "stride": 4},
            {"type": "conv2d", "filters": 32, "kernel_size": 4, "stride": 2},
            {"type": "dense", "units": 256},
        ],
        dueling=True, double_q=True, prioritized_replay=True,
        memory_capacity=2048, backend=backend, seed=0)
    return agent.build_stats


ROWS = []


@pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
@pytest.mark.parametrize("arch", ["prioritized-replay", "dqn"])
def test_build_overhead(benchmark, backend, arch, table):
    build = _build_memory if arch == "prioritized-replay" else _build_dqn_agent
    stats = benchmark.pedantic(build, args=(backend,), rounds=3, iterations=1)
    benchmark.extra_info.update(stats.as_dict())

    ROWS.append([arch, backend, f"{stats.trace_time * 1e3:.1f}",
                 f"{stats.build_overhead * 1e3:.1f}",
                 f"{stats.var_creation_time * 1e3:.1f}",
                 stats.num_components, stats.num_graph_fn_nodes])

    # Paper shape assertions. The paper's "overhead" excludes variable
    # creation ("time spent on top of creating variables and operations").
    if arch == "prioritized-replay":
        assert stats.trace_time + stats.build_overhead < 0.5, \
            "single-component build overhead must be small (paper: < 100 ms)"
    else:
        assert stats.num_components >= 20, \
            "full architecture should be tens of components (paper: 43)"
        assert stats.trace_time + stats.build_overhead < 5.0

    if len(ROWS) == 4:
        table("Fig. 5a — build overheads (ms)",
              ["architecture", "backend", "trace_ms", "overhead_ms",
               "variables_ms", "components", "graph_fns"], ROWS)
