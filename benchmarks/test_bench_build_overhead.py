"""E1 — Fig. 5a: one-time build overheads.

Measures component-graph trace time and main build time for (a) a single
PrioritizedReplay component and (b) the full dueling-DQN-with-
prioritized-replay architecture, on the static-graph (xgraph ~ TF) and
define-by-run (xtape ~ PT) backends. A second table breaks the static
backend's per-fetch-set cost into plan build, compile (graph-compiler
passes), and steady-state run time.

Paper shape: single component < 100 ms total; full architecture ~1 s
(TF) / ~650 ms (PT); define-by-run *build* is much cheaper than the
static build because variables are plain arrays.
"""

import time

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.backend import XGRAPH, XTAPE
from repro.components.memories import PrioritizedReplay
from repro.spaces import BoolBox, Dict, FloatBox, IntBox
from repro.testing import ComponentTest


def _memory_spaces():
    return {
        "records": Dict(states=FloatBox(shape=(16, 16, 4)), actions=IntBox(4),
                        rewards=FloatBox(), terminals=BoolBox(),
                        next_states=FloatBox(shape=(16, 16, 4)),
                        add_batch_rank=True),
        "batch_size": IntBox(low=0, high=2**31 - 1),
        "indices": IntBox(low=0, high=2**31 - 1, shape=(),
                          add_batch_rank=True),
        "update": FloatBox(add_batch_rank=True),
    }


def _build_memory(backend):
    test = ComponentTest(PrioritizedReplay(capacity=512),
                         input_spaces=_memory_spaces(), backend=backend)
    return test.stats


def _build_dqn_agent(backend):
    agent = DQNAgent(
        state_space=FloatBox(shape=(32, 32, 1)),
        action_space=IntBox(4),
        preprocessing_spec=[{"type": "divide", "divisor": 255.0}],
        network_spec=[
            {"type": "conv2d", "filters": 16, "kernel_size": 8, "stride": 4},
            {"type": "conv2d", "filters": 32, "kernel_size": 4, "stride": 2},
            {"type": "dense", "units": 256},
        ],
        dueling=True, double_q=True, prioritized_replay=True,
        memory_capacity=2048, backend=backend, seed=0)
    return agent.build_stats


ROWS = []


@pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
@pytest.mark.parametrize("arch", ["prioritized-replay", "dqn"])
def test_build_overhead(benchmark, backend, arch, table):
    build = _build_memory if arch == "prioritized-replay" else _build_dqn_agent
    stats = benchmark.pedantic(build, args=(backend,), rounds=3, iterations=1)
    benchmark.extra_info.update(stats.as_dict())

    ROWS.append([arch, backend, f"{stats.trace_time * 1e3:.1f}",
                 f"{stats.build_overhead * 1e3:.1f}",
                 f"{stats.var_creation_time * 1e3:.1f}",
                 stats.num_components, stats.num_graph_fn_nodes])

    # Paper shape assertions. The paper's "overhead" excludes variable
    # creation ("time spent on top of creating variables and operations").
    if arch == "prioritized-replay":
        assert stats.trace_time + stats.build_overhead < 0.5, \
            "single-component build overhead must be small (paper: < 100 ms)"
    else:
        assert stats.num_components >= 20, \
            "full architecture should be tens of components (paper: 43)"
        assert stats.trace_time + stats.build_overhead < 5.0

    if len(ROWS) == 4:
        table("Fig. 5a — build overheads (ms)",
              ["architecture", "backend", "trace_ms", "overhead_ms",
               "variables_ms", "components", "graph_fns"], ROWS)


def test_compile_vs_run_breakdown(benchmark, table):
    """One-time compile cost vs steady-state run cost per optimize level.

    The graph-compiler passes add a one-off per-fetch-set cost on top of
    plan building; this shows how many runs amortize it (it is paid once
    per process, like the build itself)."""
    rows = []
    amortization = {}

    def sweep():
        for opt in ("none", "basic", "fused"):
            agent = _build_agent_for_breakdown(opt)
            batch = np.asarray(32)
            t0 = time.perf_counter()
            agent.call_api("update_from_memory", batch)  # plan+compile+run
            first_call = time.perf_counter() - t0
            sess = agent.graph.session
            n, t0 = 0, time.perf_counter()
            while time.perf_counter() - t0 < 0.4:
                agent.call_api("update_from_memory", batch)
                n += 1
            per_run = (time.perf_counter() - t0) / n
            compile_time = sess.stats.compile_time
            rows.append([opt, f"{first_call * 1e3:.1f}",
                         f"{compile_time * 1e3:.1f}",
                         f"{per_run * 1e3:.2f}"])
            amortization[opt] = (compile_time, per_run)
        return amortization

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table("E1 follow-up — DQN update fetch-set: compile vs run (ms)",
          ["optimize", "first call", "compile passes", "steady-state run"],
          rows)
    benchmark.extra_info.update(
        {f"{opt}_compile_s": c for opt, (c, _) in amortization.items()})
    benchmark.extra_info.update(
        {f"{opt}_run_s": r for opt, (_, r) in amortization.items()})
    assert amortization["none"][0] == 0.0, "optimize='none' must not compile"


def _build_agent_for_breakdown(optimize):
    agent = DQNAgent(
        state_space=FloatBox(shape=(16,)), action_space=IntBox(4),
        network_spec=[{"type": "dense", "units": 64}],
        dueling=True, double_q=True, prioritized_replay=True,
        memory_capacity=2048, batch_size=32, seed=0, optimize=optimize)
    rng = np.random.default_rng(0)
    agent.observe_batch(
        states=rng.standard_normal((256, 16)).astype(np.float32),
        actions=rng.integers(0, 4, 256),
        rewards=rng.standard_normal(256).astype(np.float32),
        terminals=rng.random(256) < 0.1,
        next_states=rng.standard_normal((256, 16)).astype(np.float32))
    return agent
