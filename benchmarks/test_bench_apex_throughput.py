"""E3 — Fig. 6: distributed Ape-X sample throughput vs worker count.

RLgraph's Ray executor vs the RLlib-like baseline on the raylite engine,
with the full loop live (replay shards, learner updates, priority
pushes, weight syncs). Worker counts {1, 2, 4} map to the paper's
{16, 64, 256} (laptop scale; the *shape* — RLgraph ahead by a large
factor at low counts, margin narrowing as shared resources saturate —
is the reproduction target).
"""

import numpy as np
import pytest

from repro.agents import ApexAgent
from repro.baselines import RLlibLikeApexExecutor
from repro.environments import SimPong
from repro.execution.ray import ApexExecutor

FRAME = 16
FRAME_SKIP = 4
WORKER_COUNTS = [1, 2, 4]
DURATION = 4.0


def _env_factory(seed):
    return SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=seed)


def _agent_factory():
    probe = SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=0)
    return ApexAgent(
        state_space=probe.state_space, action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0},
                            {"type": "flatten"}],
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        dueling=True, n_step=3,
        optimizer_spec={"type": "rmsprop", "learning_rate": 1e-4},
        backend="xgraph", seed=11)


def _run(executor_cls, num_workers):
    executor = executor_cls(
        learner_agent=_agent_factory(), agent_factory=_agent_factory,
        env_factory=_env_factory, num_workers=num_workers,
        envs_per_worker=4, num_replay_shards=2, task_size=200,
        batch_size=64, replay_capacity=20_000, learning_starts=800,
        weight_sync_steps=10, frame_multiplier=FRAME_SKIP)
    result = executor.execute_workload(duration=DURATION)
    from repro import raylite
    raylite.shutdown()
    return result


def test_apex_distributed_throughput(benchmark, table):
    results = {}

    def sweep():
        for n in WORKER_COUNTS:
            results[("rlgraph", n)] = _run(ApexExecutor, n)
            results[("rllib_like", n)] = _run(RLlibLikeApexExecutor, n)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n in WORKER_COUNTS:
        rg = results[("rlgraph", n)]
        rl = results[("rllib_like", n)]
        ratio = rg.env_frames_per_second / max(rl.env_frames_per_second, 1e-9)
        rows.append([n, f"{rg.env_frames_per_second:.0f}",
                     f"{rl.env_frames_per_second:.0f}", f"{ratio:.2f}x",
                     rg.learner_updates, rl.learner_updates])
        benchmark.extra_info[f"workers={n}"] = {
            "rlgraph_fps": round(rg.env_frames_per_second),
            "rllib_like_fps": round(rl.env_frames_per_second),
            "ratio": round(ratio, 2),
        }
    table("Fig. 6 — Ape-X env frames/s (incl. frame-skip) vs workers",
          ["workers", "RLgraph", "RLlib-like", "ratio",
           "RLgraph updates", "RLlib-like updates"], rows)

    # Paper shape: RLgraph outperforms the RLlib-like baseline at every
    # worker count (paper: +185% at 16 workers, +60% at 256).
    for n in WORKER_COUNTS:
        rg = results[("rlgraph", n)].env_frames_per_second
        rl = results[("rllib_like", n)].env_frames_per_second
        assert rg > rl * 1.1, f"workers={n}: RLgraph {rg:.0f} vs {rl:.0f}"
    # Scaling slope depends on available cores (this box may have one, in
    # which case aggregate throughput saturates immediately — the analogue
    # of the paper's own "16 workers is highest due to better resource
    # utilization" saturation note). Assert no *collapse* under added
    # workers; the slope itself is recorded in EXPERIMENTS.md.
    import os
    first = results[("rlgraph", WORKER_COUNTS[0])].env_frames_per_second
    last = results[("rlgraph", WORKER_COUNTS[-1])].env_frames_per_second
    assert last > first * 0.7
    if (os.cpu_count() or 1) >= 2 * WORKER_COUNTS[-1]:
        assert last > first * 1.3  # real scaling needs real cores
