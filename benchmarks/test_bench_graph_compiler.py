"""E10 — graph-compiler speedup on agent update fetch-sets.

The paper's systems claim is that a backend-side executor can optimize a
component graph's execution plan instead of replaying it op by op. This
bench isolates that claim on the `session.run` hot path: the DQN and
IMPALA *update* fetch-sets (hundreds of small ops — the regime where
per-node interpreter overhead dominates) are executed at small batch
sizes under ``optimize="none"`` (the paper-faithful per-node executor),
``"basic"`` (fold + CSE + DCE on the slot executor), ``"fused"`` (plus
elementwise fusion), and — when a C toolchain is present — ``"native"``
(whole-plan C codegen executing segments with zero Python dispatch).

Acceptance: ``fused`` ≥ 1.5x ``none`` on the DQN update fetch-set
(bitwise-identical results guaranteed by tests/test_graph_compiler.py),
and ``native`` ≥ 2x ``fused`` on both update fetch-sets (allclose
parity guaranteed by tests/test_parity_matrix.py).
"""

import time

import numpy as np
import pytest

from repro.agents import DQNAgent, IMPALAAgent
from repro.backend import native
from repro.core.op_records import map_records
from repro.spaces import FloatBox, IntBox
from repro.spaces.space_utils import flatten_value

LEVELS = ("none", "basic", "fused") + (
    ("native",) if native.toolchain_available() else ())


def _session_fetches(agent, api_name, *args):
    """The raw (fetches, feed_dict) a BuiltGraph.execute call would issue."""
    endpoint = agent.graph.api[api_name]
    feed = {}
    for rec, value in zip(endpoint.in_records, args):
        handle_flat = flatten_value(rec.handle)
        value_flat = flatten_value(value, rec.space)
        for key, ph in handle_flat.items():
            feed[ph] = value_flat[key]
    handles = map_records(endpoint.out_structure, lambda r: r.handle)
    fetches = list(flatten_value(handles).values())
    return fetches, feed


def _time_interleaved(setups, rounds=8, window=0.3):
    """Best-of-``rounds`` runs/s per level, with the levels interleaved
    round-robin so CPU-clock drift hits all of them equally."""
    best = {label: 0.0 for label in setups}
    for label, (session, fetches, feed) in setups.items():
        session.run(fetches, feed)  # warm: plan + compile
    for _ in range(rounds):
        for label, (session, fetches, feed) in setups.items():
            n, t0 = 0, time.perf_counter()
            while time.perf_counter() - t0 < window:
                session.run(fetches, feed)
                n += 1
            best[label] = max(best[label], n / (time.perf_counter() - t0))
    return best


def _dqn(optimize):
    agent = DQNAgent(
        state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
        network_spec=[{"type": "dense", "units": 16, "activation": "relu"},
                      {"type": "dense", "units": 16, "activation": "relu"}],
        prioritized_replay=True, dueling=True, double_q=True,
        batch_size=4, memory_capacity=512, seed=11, optimize=optimize)
    rng = np.random.default_rng(0)
    agent.observe_batch(
        states=rng.standard_normal((128, 4)).astype(np.float32),
        actions=rng.integers(0, 2, 128),
        rewards=rng.standard_normal(128).astype(np.float32),
        terminals=rng.random(128) < 0.1,
        next_states=rng.standard_normal((128, 4)).astype(np.float32))
    return agent


def _impala(optimize):
    return IMPALAAgent(state_space=(4,), action_space=IntBox(3), seed=7,
                       network_spec=[{"type": "dense", "units": 32,
                                      "activation": "relu"}],
                       optimize=optimize)


def test_graph_compiler_update_throughput(benchmark, table):
    rows = []
    rates = {}
    setups_by_arch = {}

    def sweep():
        # DQN update-from-memory fetch-set (batch 8).
        dqn_setups = {}
        for opt in LEVELS:
            agent = _dqn(opt)
            fetches, feed = _session_fetches(
                agent, "update_from_memory", np.asarray(4))
            dqn_setups[opt] = (agent.graph.session, fetches, feed)
        setups_by_arch["dqn"] = dqn_setups
        for opt, rate in _time_interleaved(dqn_setups).items():
            rates[("dqn", opt)] = rate
        # IMPALA rollout update fetch-set (T=5, B=4).
        rng = np.random.default_rng(2)
        t_steps, batch = 5, 4
        rollout = (
            rng.standard_normal((t_steps, batch, 4)).astype(np.float32),
            rng.integers(0, 3, (t_steps, batch)),
            np.full((t_steps, batch), -1.0, np.float32),
            rng.normal(size=(t_steps, batch)).astype(np.float32),
            np.zeros((t_steps, batch), bool),
            rng.standard_normal((batch, 4)).astype(np.float32),
        )
        impala_setups = {}
        for opt in LEVELS:
            agent = _impala(opt)
            fetches, feed = _session_fetches(
                agent, "update_from_rollout", *rollout)
            impala_setups[opt] = (agent.graph.session, fetches, feed)
        setups_by_arch["impala"] = impala_setups
        for opt, rate in _time_interleaved(impala_setups).items():
            rates[("impala", opt)] = rate
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    if "native" in LEVELS:
        # The native bar sits well above 2x in steady state, but a single
        # noisy round on a loaded single-core host can dent best-of; one
        # re-measure (keeping per-level maxima) de-flakes the gate.
        for arch in ("dqn", "impala"):
            if rates[(arch, "native")] < 2.0 * rates[(arch, "fused")]:
                for opt, rate in _time_interleaved(
                        setups_by_arch[arch]).items():
                    rates[(arch, opt)] = max(rates[(arch, opt)], rate)

    for arch in ("dqn", "impala"):
        base = rates[(arch, "none")]
        for opt in LEVELS:
            rows.append([arch, opt, f"{rates[(arch, opt)]:.0f}",
                         f"{rates[(arch, opt)] / base:.2f}x"])
    table("E10 — graph compiler: update fetch-set session.run throughput",
          ["architecture", "optimize", "runs/s", "speedup vs none"], rows)
    benchmark.extra_info.update(
        {f"{arch}_{opt}": round(rates[(arch, opt)], 1)
         for arch in ("dqn", "impala") for opt in LEVELS})

    dqn_speedup = rates[("dqn", "fused")] / rates[("dqn", "none")]
    assert dqn_speedup >= 1.5, (
        f"fused executor must be >= 1.5x the per-node interpreter on the "
        f"DQN update fetch-set, got {dqn_speedup:.2f}x")
    assert rates[("impala", "fused")] > rates[("impala", "none")], \
        "fused executor should not be slower on the IMPALA update graph"
    if "native" in LEVELS:
        for arch in ("dqn", "impala"):
            native_speedup = rates[(arch, "native")] / rates[(arch, "fused")]
            assert native_speedup >= 2.0, (
                f"native codegen must be >= 2x the fused executor on the "
                f"{arch} update fetch-set, got {native_speedup:.2f}x")


def test_compiler_pass_statistics(table):
    """Shape check: the passes actually find work on a real agent graph."""
    agent = _dqn("fused")
    fetches, feed = _session_fetches(agent, "update_from_memory",
                                     np.asarray(4))
    sess = agent.graph.session
    sess.run(fetches, feed)
    stats = sess.stats
    plan_len = sess.plan_size(fetches)
    compiled = sess.compiled_plan(fetches)
    table("E10 — compiler pass results (DQN update fetch-set)",
          ["metric", "value"],
          [["interpreter plan nodes", plan_len],
           ["compiled steps", compiled.stats.num_steps],
           ["nodes fused", compiled.stats.nodes_fused],
           ["fused kernels", compiled.stats.fused_kernels],
           ["slab slots", compiled.stats.slab_slots],
           ["slab slots saved by reuse", compiled.stats.slab_slots_saved],
           ["buffers donated", compiled.stats.buffers_donated],
           ["bytes saved by donation", compiled.stats.bytes_saved],
           ["compile time (ms)", f"{stats.compile_time * 1e3:.1f}"]])
    assert compiled.stats.num_steps < plan_len
    assert compiled.stats.fused_kernels > 0
    assert compiled.stats.slab_slots_saved > 0
    assert compiled.stats.buffers_donated > 0


@pytest.mark.skipif(not native.toolchain_available(),
                    reason="no C toolchain in environment")
def test_native_lowering_statistics(table):
    """Shape check: most DQN update steps land in C segments."""
    agent = _dqn("native")
    fetches, feed = _session_fetches(agent, "update_from_memory",
                                     np.asarray(4))
    sess = agent.graph.session
    sess.run(fetches, feed)
    stats = sess.stats
    table("E10 — native codegen lowering (DQN update fetch-set)",
          ["metric", "value"],
          [["plans lowered to C", stats.plans_native],
           ["C segments", stats.native_segments],
           ["steps in C", stats.native_steps],
           ["steps left in Python", stats.native_py_steps],
           ["C build time (ms)", f"{stats.native_compile_time * 1e3:.1f}"],
           ["shared-lib cache hits", stats.native_cache_hits]])
    assert stats.plans_native >= 1
    assert stats.native_segments >= 1
    # The lowering should capture the overwhelming majority of the plan.
    assert stats.native_steps > 4 * max(stats.native_py_steps, 1)
