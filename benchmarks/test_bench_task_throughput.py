"""E4 — Fig. 7a: single-worker task throughput vs task size and
environment-vector size.

One RLgraph RayWorker vs one RLlib-like policy evaluator, sweeping the
requested task size (num samples) and the number of sequential envs.

Paper shape: RLgraph is faster at every task size, and its advantage
*grows* with vectorization (faster accounting across envs/episodes);
both implementations improve with larger tasks (per-task overhead
amortizes).
"""

import numpy as np
import pytest

from repro.agents import ApexAgent
from repro.environments import SequentialVectorEnv, SimPong
from repro.execution import SingleThreadedWorker

FRAME = 16
FRAME_SKIP = 4
TASK_SIZES = [200, 400, 800, 1600, 3200]
ENV_COUNTS = [1, 4, 8]


def _make_worker(num_envs, batched):
    probe = SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=0)
    agent = ApexAgent(
        state_space=probe.state_space, action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0},
                            {"type": "flatten"}],
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        dueling=True, backend="xgraph", seed=5)
    vec = SequentialVectorEnv(
        envs=[SimPong(size=FRAME, frame_skip=FRAME_SKIP, seed=i)
              for i in range(num_envs)])
    return SingleThreadedWorker(agent, vec, n_step=3, discount=0.99,
                                worker_side_prioritization=True,
                                batched_postprocessing=batched)


def _throughput(worker, task_size) -> float:
    import time
    t0 = time.perf_counter()
    worker.collect_samples(task_size)
    return task_size * FRAME_SKIP / (time.perf_counter() - t0)


def test_task_throughput(benchmark, table):
    results = {}

    def sweep():
        for num_envs in ENV_COUNTS:
            for batched, label in [(True, "rlgraph"), (False, "rllib_like")]:
                worker = _make_worker(num_envs, batched)
                worker.collect_samples(64)  # warm-up
                for task in TASK_SIZES:
                    results[(label, num_envs, task)] = _throughput(worker,
                                                                   task)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for task in TASK_SIZES:
        row = [task]
        for num_envs in ENV_COUNTS:
            rg = results[("rlgraph", num_envs, task)]
            rl = results[("rllib_like", num_envs, task)]
            row += [f"{rg:.0f}", f"{rl:.0f}"]
        rows.append(row)
    headers = ["task size"]
    for num_envs in ENV_COUNTS:
        headers += [f"RLgraph {num_envs}env", f"RLlib {num_envs}env"]
    table("Fig. 7a — single worker env frames/s by task size", headers, rows)
    benchmark.extra_info["results"] = {
        f"{k[0]}-envs{k[1]}-task{k[2]}": round(v) for k, v in results.items()}

    # Paper shape 1: RLgraph beats the evaluator at every configuration.
    for num_envs in ENV_COUNTS:
        for task in TASK_SIZES:
            rg = results[("rlgraph", num_envs, task)]
            rl = results[("rllib_like", num_envs, task)]
            assert rg > rl, (num_envs, task, rg, rl)
    # Paper shape 2: the advantage grows with vectorization.
    def advantage(num_envs):
        return np.mean([results[("rlgraph", num_envs, t)]
                        / results[("rllib_like", num_envs, t)]
                        for t in TASK_SIZES])
    assert advantage(ENV_COUNTS[-1]) > advantage(ENV_COUNTS[0])
