"""E7 — Fig. 9: IMPALA throughput on SeekAvoid vs actor count.

RLgraph IMPALA vs the DeepMind-reference implementation (redundant
per-step actor weight assignments) on the same substrate: shared FIFO
queue, staging area, v-trace learner.

Paper shape: RLgraph ~10-15% ahead at low actor counts; both converge
as the learner becomes the bottleneck at scale. Actor counts {1, 2, 4}
map to the paper's {16, 64, 256} (laptop scale; one core here, see
EXPERIMENTS.md for the scaling caveat).
"""

import numpy as np
import pytest

from repro.agents import IMPALAAgent
from repro.baselines import DMReferenceIMPALARunner
from repro.environments import SeekAvoid
from repro.execution.impala_runner import IMPALARunner

WIDTH, HEIGHT = 32, 24
ACTOR_COUNTS = [1, 2, 4]
DURATION = 4.0


def _env_factory(seed):
    return SeekAvoid(width=WIDTH, height=HEIGHT, max_steps=150, seed=seed)


def _agent_factory():
    probe = SeekAvoid(width=WIDTH, height=HEIGHT, seed=0)
    return IMPALAAgent(
        state_space=probe.state_space, action_space=probe.action_space,
        preprocessing_spec=[{"type": "divide", "divisor": 255.0},
                            {"type": "flatten"}],
        network_spec=[{"type": "dense", "units": 128, "activation": "relu"}],
        optimizer_spec={"type": "rmsprop", "learning_rate": 2e-4},
        backend="xgraph", seed=2)


def _run(runner_cls, num_actors, updates_enabled):
    runner = runner_cls(
        learner_agent=_agent_factory(), agent_factory=_agent_factory,
        env_factory=_env_factory, num_actors=num_actors, envs_per_actor=1,
        rollout_length=20, batch_size=max(num_actors // 2, 1))
    return runner.run(duration=DURATION, updates_enabled=updates_enabled)


def test_impala_throughput(benchmark, table):
    """Acting throughput (updates off) carries the Fig. 9 shape
    assertion: on a single core, enabling updates couples actor
    throughput to how many updates the learner happens to win from the
    scheduler, swamping the 10-15% actor-efficiency effect the figure
    isolates (see EXPERIMENTS.md). The updates-on sweep is reported as a
    supplementary table."""
    results = {}

    def sweep():
        for n in ACTOR_COUNTS:
            results[("rlgraph", n)] = _run(IMPALARunner, n, False)
            results[("dm_reference", n)] = _run(DMReferenceIMPALARunner, n,
                                                False)
        results["training_rlgraph"] = _run(IMPALARunner, 2, True)
        results["training_dm"] = _run(DMReferenceIMPALARunner, 2, True)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n in ACTOR_COUNTS:
        rg = results[("rlgraph", n)]
        dm = results[("dm_reference", n)]
        ratio = (rg["env_frames_per_second"]
                 / max(dm["env_frames_per_second"], 1e-9))
        rows.append([n, f"{rg['env_frames_per_second']:.0f}",
                     f"{dm['env_frames_per_second']:.0f}", f"{ratio:.2f}x"])
        benchmark.extra_info[f"actors={n}"] = {
            "rlgraph_fps": round(rg["env_frames_per_second"]),
            "dm_fps": round(dm["env_frames_per_second"]),
            "ratio": round(ratio, 2)}
    table("Fig. 9 — IMPALA acting env frames/s on seekavoid vs actors",
          ["actors", "RLgraph", "DM reference", "ratio"], rows)

    trg, tdm = results["training_rlgraph"], results["training_dm"]
    table("Fig. 9 (supplementary) — full training loop, 2 actors",
          ["impl", "frames/s", "updates"],
          [["RLgraph", f"{trg['env_frames_per_second']:.0f}",
            trg["learner_updates"]],
           ["DM reference", f"{tdm['env_frames_per_second']:.0f}",
            tdm["learner_updates"]]])

    # Paper shape: RLgraph >= reference at every actor count, with a
    # clear margin at low counts where actor efficiency dominates.
    # (0.85 tolerance: at the highest count a single oversubscribed core
    # adds scheduler noise on the order of the measured effect.)
    for n in ACTOR_COUNTS:
        rg = results[("rlgraph", n)]["env_frames_per_second"]
        dm = results[("dm_reference", n)]["env_frames_per_second"]
        assert rg > dm * 0.85, (n, rg, dm)
    low = ACTOR_COUNTS[0]
    rg = results[("rlgraph", low)]["env_frames_per_second"]
    dm = results[("dm_reference", low)]["env_frames_per_second"]
    assert rg > dm * 1.05, "low-actor-count margin (paper: 10-15%)"
    # The training loop must sustain updates on both implementations.
    assert trg["learner_updates"] > 0 and tdm["learner_updates"] > 0
