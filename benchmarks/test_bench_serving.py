"""E13 — policy serving under concurrent load: micro-batching vs
unbatched single-call serving, single server vs sharded pool, thread vs
process replicas.

The serving claim is an amortization claim: one compiled ``act`` call
over a batch of B concurrent requests costs far less than B single-row
calls, because the per-call Python dispatch + session overhead dominates
small-batch inference.  This bench drives closed-loop synchronous
clients against four configurations and reports req/s and client-side
p50/p99 latency:

* ``unbatched``   — PolicyServer, max_batch_size=1 (single-call
  baseline; same mailbox machinery, no coalescing);
* ``batched``     — PolicyServer, max_batch_size=16, window=0 (the
  opportunistic drain batches whatever concurrency provides);
* ``pool-thread`` — InferenceWorkerPool, 2 raylite thread replicas;
* ``pool-process``— InferenceWorkerPool, 2 process replicas (inference
  sharded across cores; shm batch transport).

Acceptance (core-count-gated per the 1-CPU container rule):

* batched >= 2x unbatched req/s with >= 4 concurrent clients on >= 4
  cores (>= 1.2x on 2-3 cores; recorded-only on 1 core — though the
  batching win is overhead amortization, not parallelism, so it
  usually shows even there);
* batched vs unbatched must actually have batched (mean batch > 1.5).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import DQNAgent
from repro.serving import (
    InferenceWorkerPool,
    PolicyServer,
    drive_concurrent_load,
)
from repro.spaces import FloatBox, IntBox

pytestmark = pytest.mark.mp_timeout(300)

CORES = os.cpu_count() or 1
STATE_DIM = 8
NUM_CLIENTS = 6
DURATION = 1.0


def _agent_factory():
    return DQNAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                    action_space=IntBox(4),
                    network_spec=[{"type": "dense", "units": 64,
                                   "activation": "relu"}], seed=3)


def _drive(server, num_clients: int, duration: float):
    """Closed-loop synchronous clients; returns (req/s, p50 ms, p99 ms)."""
    rng = np.random.default_rng(0)
    observations = rng.standard_normal(
        (num_clients, STATE_DIM)).astype(np.float32)
    load = drive_concurrent_load(server, num_clients, duration,
                                 observations=observations)
    return load["req_per_s"], load["p50_ms"], load["p99_ms"]


def test_serving_throughput_and_latency(benchmark, table):
    results = {}
    mean_batches = {}

    def sweep():
        # Unbatched single-call baseline.
        server = PolicyServer(_agent_factory(), max_batch_size=1,
                              batch_window=0.0)
        results["unbatched"] = _drive(server, NUM_CLIENTS, DURATION)
        mean_batches["unbatched"] = server.stats.mean_batch_size
        server.stop()
        # Micro-batched single server.
        server = PolicyServer(_agent_factory(), max_batch_size=16,
                              batch_window=0.0)
        results["batched"] = _drive(server, NUM_CLIENTS, DURATION)
        mean_batches["batched"] = server.stats.mean_batch_size
        server.stop()
        # Sharded pools.
        for backend in ("thread", "process"):
            pool = InferenceWorkerPool(
                _agent_factory, FloatBox(shape=(STATE_DIM,)),
                num_replicas=2, max_batch_size=16, batch_window=0.0,
                parallel_spec=backend)
            results[f"pool-{backend}"] = _drive(pool, NUM_CLIENTS, DURATION)
            mean_batches[f"pool-{backend}"] = pool.stats.mean_batch_size
            pool.stop()
            raylite.shutdown()
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results["unbatched"][0]
    rows = []
    for key in ("unbatched", "batched", "pool-thread", "pool-process"):
        rate, p50, p99 = results[key]
        rows.append([key, f"{rate:.0f}", f"{p50:.3f}", f"{p99:.3f}",
                     f"{mean_batches[key]:.1f}", f"{rate / base:.2f}x"])
    table(f"E13 — policy serving, {NUM_CLIENTS} concurrent clients "
          f"({CORES} cores)",
          ["config", "req/s", "p50 ms", "p99 ms", "mean batch", "vs unbatched"],
          rows)
    benchmark.extra_info.update(
        cores=CORES, clients=NUM_CLIENTS,
        results={k: {"req_per_s": round(v[0], 1),
                     "p50_ms": round(v[1], 3), "p99_ms": round(v[2], 3)}
                 for k, v in results.items()})

    ratio = results["batched"][0] / base
    assert mean_batches["batched"] > 1.5, (
        "micro-batching never engaged under concurrent load")
    if CORES >= 4:
        assert ratio >= 2.0, (
            f"batched serving only {ratio:.2f}x unbatched on {CORES} cores")
    elif CORES >= 2:
        assert ratio >= 1.2, (
            f"batched serving only {ratio:.2f}x unbatched on {CORES} cores")


def test_hot_swap_latency_under_load(benchmark, table):
    """Weight hot-swap cost while serving: swaps/s a loaded server can
    absorb and the request p99 while swapping (no dropped requests)."""
    server = PolicyServer(_agent_factory(), max_batch_size=16,
                          batch_window=0.0)
    donor = _agent_factory()
    flat = donor.get_weights(flat=True)
    stop = threading.Event()
    swap_times = []

    def swapper():
        while not stop.is_set():
            t0 = time.perf_counter()
            server.set_weights(flat, wait=True)
            swap_times.append(time.perf_counter() - t0)
            time.sleep(0.01)

    def run():
        swap_thread = threading.Thread(target=swapper, daemon=True)
        swap_thread.start()
        rate, p50, p99 = _drive(server, 4, DURATION)
        stop.set()
        swap_thread.join(timeout=10)
        return rate, p50, p99

    rate, p50, p99 = benchmark.pedantic(run, rounds=1, iterations=1)
    server.stop()
    table("E13b — serving while hot-swapping weights every ~10ms",
          ["req/s", "p50 ms", "p99 ms", "swaps", "swap p50 ms"],
          [[f"{rate:.0f}", f"{p50:.3f}", f"{p99:.3f}", len(swap_times),
            f"{np.percentile(swap_times, 50) * 1e3:.3f}"]])
    assert server.stats.errors == 0
    assert len(swap_times) > 5
