"""E5 — Fig. 7b: training-time comparison, RLgraph vs RLlib-like Ape-X.

The paper trains Pong to reward 21 in ~hours on a GPU cluster; at laptop
scale we substitute GridWorld (mean episode return in [-1, 1], solved
around +0.9) and train both executors for the same wall-clock budget.
The reproduced shape: at equal wall time the RLgraph executor has pushed
more samples and updates through the learner and reaches a higher mean
worker reward.
"""

import numpy as np
import pytest

from repro.agents import ApexAgent
from repro.baselines import RLlibLikeApexExecutor
from repro.environments import GridWorld
from repro.execution.ray import ApexExecutor
from repro.spaces import IntBox

DURATION_SEGMENTS = 6
SEGMENT_SECONDS = 2.0


def _env_factory(seed):
    return GridWorld("4x4", max_steps=30, seed=seed)


NUM_WORKERS = 2


def _agent_factory(worker_index=None):
    # Workers get Ape-X constant per-worker epsilons; the learner
    # (worker_index None) acts greedily apart from a small epsilon.
    from repro.execution.ray.actors import apex_worker_epsilon
    if worker_index is None:
        eps = 0.01
    else:
        eps = apex_worker_epsilon(worker_index, NUM_WORKERS, base=0.4,
                                  alpha=3.0)
    return ApexAgent(
        state_space=(16,), action_space=IntBox(4),
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"}],
        dueling=True, n_step=3, discount=0.95,
        optimizer_spec={"type": "adam", "learning_rate": 1e-3},
        epsilon_spec={"type": "constant", "value": eps},
        sync_interval=25, backend="xgraph",
        seed=3 + 101 * (worker_index if worker_index is not None else 0))


def _train(executor_cls):
    executor = executor_cls(
        learner_agent=_agent_factory(), agent_factory=_agent_factory,
        env_factory=_env_factory, num_workers=NUM_WORKERS, envs_per_worker=2,
        num_replay_shards=2, task_size=80, batch_size=64,
        replay_capacity=20_000, learning_starts=300, weight_sync_steps=5)
    timeline = []
    total_updates = 0
    total_frames = 0
    for seg in range(DURATION_SEGMENTS):
        result = executor.execute_workload(duration=SEGMENT_SECONDS)
        total_updates += result.learner_updates
        total_frames += result.env_frames
        reward = executor.reward_snapshot()
        timeline.append(((seg + 1) * SEGMENT_SECONDS,
                         reward if reward is not None else float("nan")))
    from repro import raylite
    raylite.shutdown()
    return timeline, total_updates, total_frames


def test_learning_curves(benchmark, table):
    outcome = {}

    def run_both():
        outcome["rlgraph"] = _train(ApexExecutor)
        outcome["rllib_like"] = _train(RLlibLikeApexExecutor)
        return outcome

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    rg_tl, rg_updates, rg_frames = outcome["rlgraph"]
    rl_tl, rl_updates, rl_frames = outcome["rllib_like"]
    rows = []
    for (t, rg_reward), (_, rl_reward) in zip(rg_tl, rl_tl):
        rows.append([f"{t:.0f}s", f"{rg_reward:+.2f}", f"{rl_reward:+.2f}"])
    table("Fig. 7b — mean worker reward vs wall time (GridWorld proxy)",
          ["time", "RLgraph", "RLlib-like"], rows)
    print(f"  RLgraph:    {rg_frames} frames, {rg_updates} updates")
    print(f"  RLlib-like: {rl_frames} frames, {rl_updates} updates")
    benchmark.extra_info.update({
        "rlgraph_final_reward": rg_tl[-1][1],
        "rllib_like_final_reward": rl_tl[-1][1],
        "rlgraph_updates": rg_updates, "rllib_like_updates": rl_updates,
    })

    # Paper shape 1: same wall clock, more data + updates through RLgraph.
    assert rg_frames > rl_frames * 1.2
    # Paper shape 2: RLgraph crosses a reward threshold earlier in wall
    # time ("learns to solve substantially faster") — time-to-threshold
    # is the figure's shape and is far more stable than comparing single
    # end-of-run snapshots.
    threshold = 0.3

    def time_to(timeline):
        for t, reward in timeline:
            if reward == reward and reward >= threshold:  # skip NaN
                return t
        return float("inf")

    t_rg, t_rl = time_to(rg_tl), time_to(rl_tl)
    print(f"  time to mean reward {threshold}: RLgraph {t_rg}s, "
          f"RLlib-like {t_rl}s")
    assert t_rg < t_rl, (t_rg, t_rl)
    # Paper shape 3: RLgraph actually learns (peak >> start).
    assert max(r for _, r in rg_tl if r == r) > rg_tl[0][1] + 0.3 \
        or max(r for _, r in rg_tl if r == r) > 0.5
