"""E9 — Fig. 7a follow-up: acting-cost scaling across vector-env engines.

The paper's workers step their environment vector sequentially, so acting
cost grows linearly with the vector size (Fig. 7a's throughput knee).
This bench reproduces that scaling curve on ``random_env`` with a fixed
per-step environment cost, then swaps in the pluggable engines:

* ``sequential`` — the paper baseline (cost ~ num_envs * step_cost);
* ``threaded``   — thread-pool stepping (cost ~ step_cost + dispatch);
* ``async``      — double-buffered stepping, additionally overlapping a
  simulated batched-inference stage with environment stepping.

``step_cost`` is a ``time.sleep`` inside the env step, standing in for
envs that release the GIL (ALE, DeepMind Lab, simulators, remote envs).
Acceptance: threaded/async >= 1.3x sequential at num_envs >= 8.
"""

import time

import numpy as np
import pytest

from repro.environments import RandomEnv, vector_env_from_spec
from repro.utils.seeding import SeedStream

ENGINES = ["sequential", "threaded", "async"]
VECTOR_SIZES = [1, 2, 4, 8, 16]
STEPS = 25
STEP_COST = 0.002      # 2 ms env step, releases the GIL
ACT_COST = 0.002       # simulated batched-inference latency per step


def _make_vec(engine, num_envs):
    stream = SeedStream(41)
    envs = [RandomEnv(state_space=(8,), action_space=4, terminal_prob=0.02,
                      step_cost=STEP_COST, seed=stream.spawn(engine, i))
            for i in range(num_envs)]
    return vector_env_from_spec(engine, envs=envs)


def _step_throughput(engine, num_envs, act_cost=0.0, steps=STEPS):
    """Env frames/s of an act->step loop; ``act_cost`` simulates the
    learner's batched inference, issued while the step is in flight."""
    vec = _make_vec(engine, num_envs)
    rng = np.random.default_rng(0)
    vec.reset_all()
    vec.step(rng.integers(0, 4, num_envs))  # warm-up (buffers, pool)
    t0 = time.perf_counter()
    for _ in range(steps):
        actions = rng.integers(0, 4, num_envs)
        vec.step_async(actions)
        if act_cost:
            time.sleep(act_cost)  # overlapped on threaded/async engines
        vec.step_wait()
    elapsed = time.perf_counter() - t0
    vec.close()
    return steps * num_envs / elapsed


def test_vector_env_engine_scaling(benchmark, table):
    results = {name: [] for name in ENGINES}

    def sweep():
        for num_envs in VECTOR_SIZES:
            for name in ENGINES:
                results[name].append(_step_throughput(name, num_envs))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for i, num_envs in enumerate(VECTOR_SIZES):
        speedups = [results[name][i] / results["sequential"][i]
                    for name in ENGINES[1:]]
        rows.append([num_envs] +
                    [f"{results[name][i]:.0f}" for name in ENGINES] +
                    [f"{s:.2f}x" for s in speedups])
    table("Fig. 7a follow-up — stepping throughput by engine (frames/s)",
          ["envs"] + ENGINES + ["thr/seq", "async/seq"], rows)
    for name in ENGINES:
        benchmark.extra_info[name] = [round(v) for v in results[name]]

    # Paper shape: sequential acting cost grows with the vector, so
    # throughput saturates; parallel engines keep scaling.
    for i, num_envs in enumerate(VECTOR_SIZES):
        if num_envs >= 8:
            assert results["threaded"][i] >= 1.3 * results["sequential"][i]
            assert results["async"][i] >= 1.3 * results["sequential"][i]


def test_vector_env_act_overlap(benchmark, table):
    """Step/act overlap: with a simulated inference stage in the loop,
    the async engine hides environment stepping behind it."""
    num_envs = 8
    results = {}

    def sweep():
        for name in ENGINES:
            results[name] = _step_throughput(name, num_envs,
                                             act_cost=ACT_COST)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    table("step/act overlap at 8 envs (frames/s, 2 ms inference)",
          ENGINES, [[f"{results[name]:.0f}" for name in ENGINES]])
    benchmark.extra_info.update(
        {name: round(v) for name, v in results.items()})

    # Sequential pays act + num_envs * step serially; the parallel
    # engines pay ~max(act, step) and must clear the same 1.3x bar.
    assert results["threaded"] >= 1.3 * results["sequential"]
    assert results["async"] >= 1.3 * results["sequential"]
