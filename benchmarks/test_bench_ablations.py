"""E-ablations — the design choices DESIGN.md §5 calls out:

1. op-registry execution-plan caching in the Session (static backend);
2. batched vs incremental worker post-processing (the Fig. 6 root cause,
   measured in isolation on one worker);
3. worker-side prioritization cost (Ape-X heuristic overhead).
"""

import time

import numpy as np
import pytest

from repro.agents import ApexAgent, DQNAgent
from repro.backend import Session
from repro.environments import GridWorld, SequentialVectorEnv, SimPong
from repro.execution import SingleThreadedWorker
from repro.spaces import IntBox


def _dqn(seed=0, **kw):
    return DQNAgent(state_space=(16,), action_space=IntBox(4),
                    network_spec=[{"type": "dense", "units": 64}],
                    memory_capacity=1024, batch_size=32, backend="xgraph",
                    seed=seed, **kw)


def test_session_plan_cache(benchmark, table):
    """Disabling plan caching re-plans the fetch set on every call.

    Both variants run at ``optimize="none"`` so the ablation isolates
    *plan building* (the paper's per-call planning cost), not the graph
    compiler — whose one-off compile cost is reported separately in the
    E1 compile-vs-run breakdown."""
    agent = _dqn()
    agent.graph.session = Session(agent.graph.graph, optimize="none")
    states = np.zeros((8, 16), np.float32)
    ts = np.asarray(0)

    def act_n(n=300):
        for _ in range(n):
            agent.call_api("get_actions", states, ts)

    act_n(20)  # warm
    t0 = time.perf_counter()
    act_n()
    cached = time.perf_counter() - t0

    agent.graph.session = Session(agent.graph.graph, cache_plans=False,
                                  optimize="none")
    act_n(20)
    t0 = time.perf_counter()
    act_n()
    uncached = time.perf_counter() - t0

    benchmark.pedantic(act_n, args=(50,), rounds=1, iterations=1)
    table("Ablation — Session execution-plan cache (300 act calls)",
          ["variant", "seconds", "per call (us)"],
          [["cached plans", f"{cached:.3f}", f"{cached / 300 * 1e6:.0f}"],
           ["re-planned every call", f"{uncached:.3f}",
            f"{uncached / 300 * 1e6:.0f}"]])
    benchmark.extra_info.update({"cached_s": cached, "uncached_s": uncached})
    assert uncached > cached, "plan caching must help"


def _worker(batched, prioritized, num_envs=4):
    agent = ApexAgent(state_space=(16,), action_space=IntBox(4),
                      network_spec=[{"type": "dense", "units": 64}],
                      backend="xgraph", seed=1)
    vec = SequentialVectorEnv(
        envs=[GridWorld(seed=i) for i in range(num_envs)])
    return SingleThreadedWorker(agent, vec, n_step=3, discount=0.99,
                                worker_side_prioritization=prioritized,
                                batched_postprocessing=batched)


def test_postprocessing_ablation(benchmark, table):
    """Batched vs incremental post-processing on one worker, and the cost
    of worker-side prioritization in each mode."""
    configs = {
        "batched, prioritized": (True, True),
        "batched, no priorities": (True, False),
        "incremental, prioritized": (False, True),
        "incremental, no priorities": (False, False),
    }
    rates = {}

    def sweep():
        for label, (batched, prio) in configs.items():
            worker = _worker(batched, prio)
            worker.collect_samples(100)  # warm
            t0 = time.perf_counter()
            worker.collect_samples(1200)
            rates[label] = 1200 / (time.perf_counter() - t0)
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table("Ablation — worker post-processing mode (samples/s)",
          ["variant", "samples/s"],
          [[label, f"{rate:.0f}"] for label, rate in rates.items()])
    benchmark.extra_info.update({k: round(v) for k, v in rates.items()})

    # Batched post-processing is the dominant effect (the paper's stated
    # root cause for the Ape-X margin).
    assert rates["batched, prioritized"] > rates["incremental, prioritized"]
    assert (rates["batched, no priorities"]
            > rates["incremental, no priorities"])
    # Per-sample priority calls hurt the incremental mode far more than
    # the single batched call hurts the batched mode.
    batched_cost = (rates["batched, no priorities"]
                    / rates["batched, prioritized"])
    incremental_cost = (rates["incremental, no priorities"]
                        / rates["incremental, prioritized"])
    assert incremental_cost > batched_cost
