"""E14 — sharded multi-learner training (learner-group follow-up).

Two measurements around the data-parallel learner group:

* **group update throughput** — updates/sec for one learner vs
  K ∈ {2, 4} replica groups on the same total batch (each replica
  computes gradients on B/K rows; the flat slabs all-reduce over pooled
  shared-memory blocks and rank 0 applies ONE fused step);
* **time-to-sync** — wall time of one bare all-reduce round (write +
  barriered schedule) over a 1M-element float32 slab, ring vs tree.

Core-count gating follows E11/E12: on a single-core host every replica
shares one CPU, so the K-replica group pays K sequential gradient
passes plus coordination — the numbers are recorded for trend tracking
but no scaling ratio is asserted.  On >= 2K cores the group must not
be slower than ~40% of the single learner's update rate (replicas run
concurrently; the all-reduce adds bounded overhead).
"""

import os
import time

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.execution.learner_group import LearnerGroup
from repro.raylite import collectives
from repro.raylite.shm import get_pool
from repro.spaces import FloatBox, IntBox

CORES = os.cpu_count() or 1
STATE_DIM = 16
BATCH = 256
SLAB_ELEMENTS = 1_000_000


def _agent_factory(worker_index=0):
    return DQNAgent(
        state_space=FloatBox(shape=(STATE_DIM,)), action_space=IntBox(4),
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"},
                      {"type": "dense", "units": 64, "activation": "relu"}],
        double_q=True, dueling=True, sync_interval=50, batch_size=32,
        memory_capacity=512, seed=3)


def _batch(rng, n=BATCH):
    return {
        "states": rng.standard_normal((n, STATE_DIM)).astype(np.float32),
        "actions": rng.integers(0, 4, n),
        "rewards": rng.standard_normal(n).astype(np.float32),
        "terminals": rng.random(n) < 0.1,
        "next_states": rng.standard_normal((n, STATE_DIM)).astype(np.float32),
    }


def _rate(fn, window=0.5):
    fn()  # warm
    n, t0 = 0, time.perf_counter()
    while time.perf_counter() - t0 < window:
        fn()
        n += 1
    return n / (time.perf_counter() - t0)


def test_group_update_throughput(benchmark, table):
    rng = np.random.default_rng(0)
    batch = _batch(rng)
    rates = {}
    pool_deltas = {}

    def sweep():
        single = _agent_factory()
        rates["single"] = _rate(lambda: single.update(batch))
        for k in (2, 4):
            group = LearnerGroup(_agent_factory(), _agent_factory, spec=k,
                                 parallel_spec="thread")
            try:
                group.update(batch)  # attach ring members
                before = get_pool().stats()["misses"]
                rates[f"K={k}"] = _rate(lambda: group.update(batch))
                pool_deltas[f"K={k}"] = \
                    get_pool().stats()["misses"] - before
            finally:
                group.shutdown()

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [["single", f"{rates['single']:.1f}", "-", "-"]]
    for k in (2, 4):
        rows.append([f"group K={k}", f"{rates[f'K={k}']:.1f}",
                     f"{rates[f'K={k}'] / rates['single']:.2f}x",
                     pool_deltas[f"K={k}"]])
    table("E14 — learner-group update throughput "
          f"(B={BATCH}, {CORES} cores)",
          ["learner", "updates/s", "vs single", "pool misses during run"],
          rows)
    benchmark.extra_info.update(
        {k.replace("=", ""): round(v, 2) for k, v in rates.items()})

    # Steady-state rounds reuse the pooled blocks: zero new allocations.
    assert all(d == 0 for d in pool_deltas.values())
    if CORES < 4:
        pytest.skip(f"{CORES}-core host — recorded only: "
                    f"{ {k: round(v, 1) for k, v in rates.items()} }")
    # With real cores behind the replicas the group must stay within a
    # constant factor of the single learner on the SAME total batch.
    assert rates["K=2"] >= 0.4 * rates["single"]


def test_allreduce_time_to_sync(benchmark, table):
    rows = []
    timings = {}

    def sweep():
        for algorithm, world in (("ring", 4), ("tree", 4), ("tree", 2)):
            ring = collectives.SlabRing(world, SLAB_ELEMENTS)
            if not ring.available:
                pytest.skip("shared memory unavailable")
            members = [
                collectives.RingMember(r, world, ring.names(),
                                       SLAB_ELEMENTS, SLAB_ELEMENTS)
                for r in range(world)]
            vec = np.ones(SLAB_ELEMENTS, np.float32)
            steps = collectives.allreduce_steps(algorithm, world)

            def round_trip():
                for m in members:
                    m.write(vec)
                for method, step in steps:
                    for m in members:
                        getattr(m, method)(step)

            t = 1.0 / _rate(round_trip, window=0.4)
            timings[(algorithm, world)] = t
            mb = SLAB_ELEMENTS * 4 / 1e6
            rows.append([algorithm, world, f"{t * 1e3:.2f}",
                         f"{mb * world / t / 1e3:.2f}"])
            for m in members:
                m.close()
            ring.release()

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(f"E14 — all-reduce time-to-sync ({SLAB_ELEMENTS / 1e6:.0f}M "
          f"float32 slab, driver-barrier schedule, {CORES} cores)",
          ["algorithm", "world", "round ms", "GB/s aggregate"], rows)
    benchmark.extra_info.update(
        {f"{a}_K{w}_ms": round(t * 1e3, 3) for (a, w), t in timings.items()})
    # Sanity, not a perf bar: a 4 MB-per-rank in-memory all-reduce
    # finishing slower than 2s would mean the schedule regressed.
    assert all(t < 2.0 for t in timings.values())
