"""E15 — HTTP gateway under oversubscription: admission control keeps
admitted latency flat while load shedding absorbs the excess.

The overload claim: with a bounded request queue (reject policy), p99 of
*admitted* requests stays within a small factor of lightly-loaded p99
no matter how far offered load exceeds capacity — the excess turns into
fast typed 503s (the shed rate), not queueing delay.  Without admission
the same oversubscription turns into unbounded queue growth and p99
measured in queue residence time.

This bench drives closed-loop keep-alive HTTP clients against a
gateway + micro-batching PolicyServer at 1x/4x/16x client multiples of
a baseline and reports req/s, success p50/p99, and shed rate per level,
plus the unbounded ablation at 16x.

Acceptance (core-count-gated per the 1-CPU container rule):

* every request at every level resolves — zero stragglers;
* at 16x the bounded queue actually sheds (shed rate > 0);
* on >= 2 cores: admitted p99 at 16x <= 5x the 1x p99 (recorded-only on
  1 core, where 32 client threads fight the server for the GIL and
  client-side latency measures scheduling, not queueing).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.serving import HttpGateway, PolicyServer, drive_http_load
from repro.spaces import FloatBox, IntBox

pytestmark = pytest.mark.mp_timeout(300)

CORES = os.cpu_count() or 1
STATE_DIM = 8
BASE_CLIENTS = 2
LEVELS = {"1x": BASE_CLIENTS, "4x": 4 * BASE_CLIENTS,
          "16x": 16 * BASE_CLIENTS}
DURATION = 1.0
DEADLINE_MS = 250.0
MAX_QUEUE = 16


def _agent():
    return DQNAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                    action_space=IntBox(4),
                    network_spec=[{"type": "dense", "units": 64,
                                   "activation": "relu"}], seed=3)


def _observations(n):
    rng = np.random.default_rng(0)
    return rng.standard_normal((n, STATE_DIM)).astype(np.float32)


def test_gateway_oversubscription(benchmark, table):
    results = {}

    def sweep():
        server = PolicyServer(
            _agent(), max_batch_size=16, batch_window=0.0,
            admission_spec={"max_queue": MAX_QUEUE, "policy": "reject",
                            "retry_after": 0.002})
        with HttpGateway(server, default_deadline=DEADLINE_MS / 1e3) \
                as gateway:
            for level, clients in LEVELS.items():
                results[level] = drive_http_load(
                    gateway, clients, DURATION, deadline_ms=DEADLINE_MS,
                    observations=_observations(clients))
        server.stop()
        # Ablation: same 16x oversubscription, unbounded queue.
        server = PolicyServer(_agent(), max_batch_size=16, batch_window=0.0)
        with HttpGateway(server, default_deadline=DEADLINE_MS / 1e3) \
                as gateway:
            results["16x-unbounded"] = drive_http_load(
                gateway, LEVELS["16x"], DURATION, deadline_ms=DEADLINE_MS,
                observations=_observations(LEVELS["16x"]))
        server.stop()
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for level in ("1x", "4x", "16x", "16x-unbounded"):
        r = results[level]
        rows.append([level, r["attempts"], f"{r['req_per_s']:.0f}",
                     f"{r['p50_ms']:.2f}", f"{r['p99_ms']:.2f}",
                     f"{r['shed_rate']:.3f}", f"{r['deadline_rate']:.3f}"])
    table(f"E15 — gateway oversubscription, queue={MAX_QUEUE}, "
          f"deadline={DEADLINE_MS:.0f}ms ({CORES} cores)",
          ["load", "attempts", "ok/s", "p50 ms", "p99 ms", "shed rate",
           "expired rate"], rows)
    benchmark.extra_info.update(
        cores=CORES, max_queue=MAX_QUEUE, deadline_ms=DEADLINE_MS,
        results={k: {kk: (round(vv, 3) if isinstance(vv, float) else vv)
                     for kk, vv in r.items()}
                 for k, r in results.items()})

    for level, r in results.items():
        assert r["stragglers"] == 0, f"{level}: clients hung"
        assert r["requests"] > 0, f"{level}: nothing succeeded"
    # 16 clients per admitted slot: the bounded queue must be shedding.
    overloaded = results["16x"]
    assert overloaded["shed_rate"] > 0 or overloaded["deadline_rate"] > 0, (
        "16x oversubscription never tripped admission control")
    if CORES >= 2:
        ratio = overloaded["p99_ms"] / max(results["1x"]["p99_ms"], 1e-6)
        assert ratio <= 5.0, (
            f"admitted p99 grew {ratio:.1f}x under 16x oversubscription "
            f"despite the bounded queue")
