"""E11 — process-parallel execution: thread vs. process backends on
CPU-bound pure-Python envs.

The paper's Ape-X/IMPALA experiments assume truly parallel actors (Ray
processes).  Our seed raylite ran actors on Python *threads*: NumPy-
interpreted agents and pure-Python envs hold the GIL, so adding workers
adds almost no actor-side sample throughput.  This bench measures the
fix — ``parallel_spec="process"`` (raylite process actors + shared-
memory transport) and the ``subproc`` vector-env engine — against the
threaded baseline on a deliberately CPU-bound env
(``RandomEnv(cpu_work=...)``: a GIL-holding busy loop per step).

Acceptance (hardware-conditional, like every wall-clock bench here):

* >= 4 cores: process backend >= 3x thread backend actor throughput at
  4 workers (the ISSUE-3 bar);
* 2-3 cores: >= 1.2x (some parallel headroom must appear);
* 1 core: numbers are recorded for the trajectory but no ratio is
  asserted — no backend can beat the GIL without a second core.
"""

import os
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import ApexAgent, IMPALAAgent
from repro.environments import RandomEnv, vector_env_from_spec
from repro.execution.impala_runner import IMPALARunner
from repro.execution.ray import ApexExecutor
from repro.spaces import IntBox
from repro.utils.seeding import SeedStream

# A wedged worker process must fail the bench, not wedge CI.
pytestmark = pytest.mark.mp_timeout(300)

CPU_WORK = 2000          # pure-Python busy-loop iterations per env step
NUM_WORKERS = 4
ENVS_PER_WORKER = 2
CORES = os.cpu_count() or 1


def _assert_speedup(process_rate, thread_rate, label,
                    multi_core_bar=3.0, dual_core_bar=1.2):
    if CORES >= 4:
        bar = multi_core_bar
    elif CORES >= 2:
        bar = dual_core_bar
    else:
        pytest.skip(
            f"{label}: single-core host — recorded "
            f"{process_rate:.0f} vs {thread_rate:.0f} frames/s, "
            f"ratio assertion needs >= 2 cores")
    assert process_rate >= bar * thread_rate, (
        f"{label}: process backend {process_rate:.0f} frames/s < "
        f"{bar}x thread backend {thread_rate:.0f} frames/s "
        f"({CORES} cores)")


def _env_factory(seed):
    return RandomEnv(state_space=(8,), action_space=4, terminal_prob=0.02,
                     cpu_work=CPU_WORK, seed=seed)


def _agent_factory(worker_index=0):
    return ApexAgent(state_space=(8,), action_space=IntBox(4),
                     network_spec=[{"type": "dense", "units": 16}],
                     seed=worker_index + 1)


def _impala_agent_factory():
    return IMPALAAgent(state_space=(8,), action_space=IntBox(4),
                       network_spec=[{"type": "dense", "units": 16,
                                      "activation": "tanh"}], seed=2)


# ---------------------------------------------------------------------------
# E11a — SubprocVectorEnv stepping throughput
# ---------------------------------------------------------------------------
def test_subproc_vector_env_cpu_bound(benchmark, table):
    """Engine-level: stepping a CPU-bound vector in worker processes vs
    threads vs the sequential loop."""
    num_envs = max(NUM_WORKERS, 4)
    steps = 60
    # Heavier per-step spin than the executor benches: at the engine
    # level there is no agent inference to amortize the per-step pipe
    # round-trip against, so the env itself must dominate it.
    cpu_work = 10 * CPU_WORK
    results = {}

    def measure(spec):
        stream = SeedStream(17)
        envs = [RandomEnv(state_space=(8,), action_space=4,
                          terminal_prob=0.02, cpu_work=cpu_work,
                          seed=stream.spawn("env", i))
                for i in range(num_envs)]
        vec = vector_env_from_spec(spec, envs=envs)
        rng = np.random.default_rng(0)
        vec.reset_all()
        vec.step(rng.integers(0, 4, num_envs))  # warm-up (buffers, pool)
        t0 = time.perf_counter()
        for _ in range(steps):
            vec.step(rng.integers(0, 4, num_envs))
        elapsed = time.perf_counter() - t0
        vec.close()
        return steps * num_envs / elapsed

    def sweep():
        results["sequential"] = measure("sequential")
        results["threaded"] = measure("threaded")
        results["subproc"] = measure(
            {"type": "subproc", "num_workers": num_envs})
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(f"E11a — CPU-bound stepping, {num_envs} envs (frames/s)",
          ["sequential", "threaded", "subproc", "sub/thr"],
          [[f"{results['sequential']:.0f}", f"{results['threaded']:.0f}",
            f"{results['subproc']:.0f}",
            f"{results['subproc'] / results['threaded']:.2f}x"]])
    benchmark.extra_info.update(
        {k: round(v) for k, v in results.items()})
    benchmark.extra_info["cores"] = CORES
    _assert_speedup(results["subproc"], results["threaded"],
                    "subproc vector env", multi_core_bar=2.0,
                    dual_core_bar=1.1)


# ---------------------------------------------------------------------------
# E11b — Ape-X actor-side sample throughput
# ---------------------------------------------------------------------------
def test_apex_actor_throughput_thread_vs_process(benchmark, table):
    """Executor-level: Ape-X sample collection (updates disabled) with
    4 workers on a CPU-bound env, thread vs process actors."""
    results = {}

    def measure(parallel_spec):
        learner = _agent_factory()
        executor = ApexExecutor(
            learner_agent=learner, agent_factory=_agent_factory,
            env_factory=_env_factory, num_workers=NUM_WORKERS,
            envs_per_worker=ENVS_PER_WORKER, num_replay_shards=2,
            task_size=50, batch_size=16, replay_capacity=4096,
            learning_starts=10 ** 9, parallel_spec=parallel_spec)
        try:
            result = executor.execute_workload(duration=2.5,
                                               updates_enabled=False)
            return result.env_frames_per_second
        finally:
            raylite.shutdown()

    def sweep():
        results["thread"] = measure("thread")
        results["process"] = measure(
            {"backend": "process", "env_backend": "subproc",
             "env_workers": ENVS_PER_WORKER})
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(f"E11b — Ape-X actor throughput, {NUM_WORKERS} workers (frames/s)",
          ["thread", "process", "proc/thr"],
          [[f"{results['thread']:.0f}", f"{results['process']:.0f}",
            f"{results['process'] / results['thread']:.2f}x"]])
    benchmark.extra_info.update(
        {k: round(v) for k, v in results.items()})
    benchmark.extra_info["cores"] = CORES
    assert results["thread"] > 0 and results["process"] > 0
    _assert_speedup(results["process"], results["thread"], "Ape-X actors")


# ---------------------------------------------------------------------------
# E11c — IMPALA actor rollout throughput
# ---------------------------------------------------------------------------
def test_impala_actor_throughput_thread_vs_process(benchmark, table):
    """Executor-level: IMPALA rollout production (updates disabled) with
    4 actors on a CPU-bound env, thread vs process actors."""
    results = {}

    def measure(parallel_spec):
        runner = IMPALARunner(
            learner_agent=_impala_agent_factory(),
            agent_factory=_impala_agent_factory,
            env_factory=_env_factory, num_actors=NUM_WORKERS,
            envs_per_actor=ENVS_PER_WORKER, rollout_length=10,
            batch_size=2, parallel_spec=parallel_spec)
        try:
            result = runner.run(duration=2.5, updates_enabled=False)
            return result["env_frames_per_second"]
        finally:
            raylite.shutdown()

    def sweep():
        results["thread"] = measure("thread")
        results["process"] = measure("process")
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table(f"E11c — IMPALA actor throughput, {NUM_WORKERS} actors (frames/s)",
          ["thread", "process", "proc/thr"],
          [[f"{results['thread']:.0f}", f"{results['process']:.0f}",
            f"{results['process'] / results['thread']:.2f}x"]])
    benchmark.extra_info.update(
        {k: round(v) for k, v in results.items()})
    benchmark.extra_info["cores"] = CORES
    assert results["thread"] > 0 and results["process"] > 0
    _assert_speedup(results["process"], results["thread"], "IMPALA actors")
