"""SAC agent tests: squashed-Gaussian property tests against numerical
change-of-variables references, the continuous-action plumbing
(bounded sampling, replay round trip, config validation), a seeded
pendulum learning smoke test, and serving coverage for vector actions
(PolicyServer micro-batching + HTTP gateway JSON round trip).
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro import raylite
from repro.agents import SACAgent
from repro.backend import XGRAPH, XTAPE, eager_mode
from repro.components.policies import Gaussian, SquashedGaussian
from repro.environments import Pendulum
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

STATE_DIM = 3
ACTION_DIM = 2
NET = [{"type": "dense", "units": 32, "activation": "relu"}]
LOW = np.asarray([-2.0, -1.0], np.float32)
HIGH = np.asarray([2.0, 3.0], np.float32)


def _make_agent(backend=XTAPE, optimize="fused", seed=11, **kwargs):
    kwargs.setdefault("network_spec", NET)
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("memory_capacity", 256)
    return SACAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                    action_space=FloatBox(low=LOW, high=HIGH),
                    backend=backend, optimize=optimize, seed=seed, **kwargs)


def _params(rng, n, dim=ACTION_DIM, spread=3.0, log_std_range=(-12.0, 4.0)):
    """Random [mean, log_std] parameter rows; the default log_std range
    crosses the documented clamp on both sides."""
    mean = (spread * rng.standard_normal((n, dim))).astype(np.float32)
    log_std = rng.uniform(*log_std_range, (n, dim)).astype(np.float32)
    return np.concatenate([mean, log_std], axis=-1)


# ---------------------------------------------------------------------------
# Squashed-Gaussian properties
# ---------------------------------------------------------------------------
class TestSquashedGaussian:
    def _dist(self):
        return SquashedGaussian(ACTION_DIM, low=LOW, high=HIGH)

    def test_log_prob_matches_numerical_change_of_variables(self):
        """The closed-form log-prob equals base-Normal log-density minus
        a numerically differentiated log|da/du| (central differences on
        the squash map), to finite-difference accuracy. The reference
        applies the documented log_std clamp — part of the
        distribution's contract."""
        rng = np.random.default_rng(0)
        dist = self._dist()
        # log_std crosses the lower clamp; means kept moderate so the
        # finite-difference Jacobian below stays representable.
        params = _params(rng, 64, spread=1.0, log_std_range=(-12.0, 1.0))
        noise = rng.standard_normal((64, ACTION_DIM)).astype(np.float32)
        with eager_mode():
            actions, log_prob = dist.sample_with_log_prob(params, noise)
        actions, log_prob = np.asarray(actions), np.asarray(log_prob)

        mean = params[:, :ACTION_DIM].astype(np.float64)
        log_std = np.clip(params[:, ACTION_DIM:], Gaussian.LOG_STD_MIN,
                          Gaussian.LOG_STD_MAX).astype(np.float64)
        std = np.exp(log_std)
        u = mean + std * noise.astype(np.float64)
        base = np.sum(-0.5 * noise.astype(np.float64) ** 2 - log_std
                      - 0.5 * np.log(2 * np.pi), axis=-1)

        def squash(x):
            scale = (HIGH - LOW) / 2.0
            mid = (HIGH + LOW) / 2.0
            return np.tanh(x) * scale + mid

        eps = 1e-5
        jac = (squash(u + eps) - squash(u - eps)) / (2 * eps)
        reference = base - np.sum(np.log(np.maximum(jac, 1e-300)), axis=-1)

        # tanh is flat to double epsilon past |u| ~ 8, where the central
        # difference loses every significant digit; the closed form stays
        # exact there (tested separately), so the numerical comparison
        # only covers the well-conditioned rows.
        ok = np.all(np.abs(u) < 4.0, axis=-1)
        assert ok.sum() > 32
        np.testing.assert_allclose(log_prob[ok], reference[ok],
                                   rtol=1e-3, atol=1e-3)

    def test_log_prob_of_actions_matches_numerical_reference(self):
        """The atanh-based ``log_prob(params, actions)`` path (used for
        external actions, e.g. importance weighting) agrees with the
        same numerical reference."""
        rng = np.random.default_rng(1)
        dist = self._dist()
        params = _params(rng, 48, spread=1.0)
        # Actions strictly inside the box, away from the atanh clip.
        z = rng.uniform(-0.95, 0.95, (48, ACTION_DIM))
        actions = (dist.mid + dist.scale * z).astype(np.float32)
        with eager_mode():
            log_prob = np.asarray(dist.log_prob(params, actions))

        mean = params[:, :ACTION_DIM].astype(np.float64)
        log_std = np.clip(params[:, ACTION_DIM:], Gaussian.LOG_STD_MIN,
                          Gaussian.LOG_STD_MAX).astype(np.float64)
        u = np.arctanh((actions.astype(np.float64) - dist.mid) / dist.scale)
        base = np.sum(
            -0.5 * ((u - mean) / np.exp(log_std)) ** 2 - log_std
            - 0.5 * np.log(2 * np.pi), axis=-1)
        correction = np.sum(
            np.log(dist.scale) + np.log1p(-np.tanh(u) ** 2), axis=-1)
        np.testing.assert_allclose(log_prob, base - correction,
                                   rtol=1e-3, atol=1e-3)

    def test_log_prob_finite_at_saturated_actions(self):
        """|action| -> bound: the naive correction log(1 - tanh^2(u))
        underflows to log(0); the softplus identity keeps every value
        finite. Drive u to +-40 where tanh is exactly +-1 in float."""
        dist = self._dist()
        rng = np.random.default_rng(2)
        params = _params(rng, 8, spread=0.5)
        huge_noise = np.full((8, ACTION_DIM), 40.0, np.float32)
        with eager_mode():
            actions, log_prob = dist.sample_with_log_prob(
                params, huge_noise)
            actions_neg, log_prob_neg = dist.sample_with_log_prob(
                params, -huge_noise)
            # The atanh path clips into the box and must stay finite
            # even for actions ON the bound.
            on_bounds = np.broadcast_to(HIGH, (8, ACTION_DIM)).copy()
            log_prob_bound = dist.log_prob(params, on_bounds)
        for values in (log_prob, log_prob_neg, log_prob_bound):
            assert np.all(np.isfinite(np.asarray(values)))
        # Saturated samples sit essentially on the box faces yet inside.
        assert np.all(np.asarray(actions) <= HIGH + 1e-6)
        assert np.all(np.asarray(actions_neg) >= LOW - 1e-6)

    def test_samples_always_inside_box(self):
        dist = self._dist()
        rng = np.random.default_rng(3)
        params = _params(rng, 512, spread=10.0)
        with eager_mode():
            sampled = np.asarray(dist.sample(params))
            greedy = np.asarray(dist.sample(params, deterministic=True))
        for actions in (sampled, greedy):
            assert actions.shape == (512, ACTION_DIM)
            assert np.all(actions >= LOW) and np.all(actions <= HIGH)

    def test_sample_with_log_prob_self_consistent(self):
        """log_prob(a) recomputed from the returned action agrees with
        the log-prob returned alongside it (float32 tolerance)."""
        dist = self._dist()
        rng = np.random.default_rng(4)
        # Moderate stds: recovering u = atanh((a-mid)/scale) from a
        # float32 action amplifies rounding by 1/std, so tiny-std rows
        # can't round-trip and are not part of this property.
        params = _params(rng, 32, spread=1.0, log_std_range=(-3.0, 1.0))
        noise = rng.standard_normal((32, ACTION_DIM)).astype(np.float32)
        with eager_mode():
            actions, log_prob = dist.sample_with_log_prob(params, noise)
            recomputed = dist.log_prob(params, np.asarray(actions))
        np.testing.assert_allclose(np.asarray(recomputed),
                                   np.asarray(log_prob),
                                   rtol=1e-4, atol=1e-4)

    def test_bounds_validation(self):
        with pytest.raises(RLGraphError):
            SquashedGaussian(2, low=0.0, high=0.0)
        with pytest.raises(RLGraphError):
            SquashedGaussian(2, low=-np.inf, high=1.0)
        with pytest.raises(RLGraphError):
            SquashedGaussian(0)


# ---------------------------------------------------------------------------
# Agent-level continuous-action plumbing
# ---------------------------------------------------------------------------
class TestSACAgentBasics:
    def test_requires_bounded_rank1_floatbox(self):
        with pytest.raises(RLGraphError, match="FloatBox"):
            SACAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                     action_space=IntBox(3), auto_build=False)
        with pytest.raises(RLGraphError, match="bounded"):
            SACAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                     action_space=FloatBox(shape=(2,)), auto_build=False)
        with pytest.raises(RLGraphError, match="Unknown SAC config"):
            _make_agent(bogus_key=1)

    @pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
    def test_actions_are_bounded_vectors(self, backend):
        agent = _make_agent(backend=backend)
        rng = np.random.default_rng(0)
        single, _ = agent.get_actions(
            rng.standard_normal(STATE_DIM).astype(np.float32))
        assert single.shape == (ACTION_DIM,)
        batch, _ = agent.get_actions(
            rng.standard_normal((6, STATE_DIM)).astype(np.float32))
        assert batch.shape == (6, ACTION_DIM)
        for actions in (single[None], batch):
            assert actions.dtype == np.float32
            assert np.all(actions >= LOW) and np.all(actions <= HIGH)

    def test_observe_replay_update_roundtrip(self):
        """Float action vectors survive the observe buffer -> in-graph
        replay -> sampled update path."""
        agent = _make_agent(observe_flush_size=4)
        rng = np.random.default_rng(1)
        state = rng.standard_normal(STATE_DIM).astype(np.float32)
        for _ in range(16):
            action, _ = agent.get_actions(state)
            next_state = rng.standard_normal(STATE_DIM).astype(np.float32)
            agent.observe(state, action, float(rng.standard_normal()),
                          False, next_state)
            state = next_state
        loss, td = agent.update()
        assert np.isfinite(loss)
        assert np.asarray(td).shape == (8,)
        assert agent.updates == 1

    def test_entropy_temperature_adapts(self):
        """log_alpha is trainable: it moves over updates, and the
        optimizer slab covers it (flat grads include every group)."""
        agent = _make_agent()
        registry = agent.root.variable_registry()
        [alpha_name] = [n for n in registry if "log-alpha" in n]
        before = float(registry[alpha_name].value[0])
        rng = np.random.default_rng(2)
        for _ in range(5):
            n = 8
            agent.update({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.uniform(-1, 1, (n, ACTION_DIM))
                .astype(np.float32),
                "rewards": rng.standard_normal(n).astype(np.float32),
                "terminals": np.zeros(n, bool),
                "next_states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
            })
        after = float(registry[alpha_name].value[0])
        assert after != before
        # target_entropy defaults to -dim(A)
        assert agent.target_entropy == -float(ACTION_DIM)


# ---------------------------------------------------------------------------
# Pendulum learning smoke test (seeded, single CPU)
# ---------------------------------------------------------------------------
def test_pendulum_learning_trend():
    """A short seeded SAC run on pendulum swing-up: mean episode return
    over the last 5 episodes must beat the first 5 by a wide margin
    (pendulum returns start near -1400 and climb toward 0)."""
    env = Pendulum(max_steps=200, seed=3)
    agent = SACAgent(
        env.state_space, env.action_space, backend=XTAPE, seed=5,
        network_spec=[{"type": "dense", "units": 64, "activation": "relu"},
                      {"type": "dense", "units": 64, "activation": "relu"}],
        batch_size=64, memory_capacity=20_000, optimize="fused",
        observe_flush_size=1,
        optimizer_spec={"type": "adam", "learning_rate": 1e-3})
    rng = np.random.default_rng(0)
    returns, steps = [], 0
    for _ in range(22):
        state = env.reset()
        episode_return = 0.0
        for _ in range(200):
            if steps < 300:  # uniform warmup before the policy acts
                action = rng.uniform(-2, 2, (1,)).astype(np.float32)
            else:
                action, _ = agent.get_actions(state)
            next_state, reward, terminal, _ = env.step(action)
            episode_return += reward
            agent.observe(state, action, reward, terminal, next_state)
            state = next_state
            steps += 1
            if steps >= 300:
                agent.update()
        returns.append(episode_return)
    first, last = np.mean(returns[:5]), np.mean(returns[-5:])
    assert last > first + 250.0, (
        f"no learning trend: first5={first:.1f} last5={last:.1f} "
        f"returns={np.round(returns, 1).tolist()}")


# ---------------------------------------------------------------------------
# Serving: continuous actions through PolicyServer and the HTTP gateway
# ---------------------------------------------------------------------------
@pytest.fixture()
def _raylite_cleanup():
    yield
    raylite.shutdown()


@pytest.mark.mp_timeout(180)
class TestContinuousServing:
    # Batch-1 and batch-N inference hit different BLAS/fusion code
    # paths, so float vector parity is one-ulp allclose, not bitwise
    # (ints were immune; see test_parity_matrix TOL note).
    TOL = dict(rtol=1e-5, atol=1e-6)

    def test_policy_server_batched_equals_unbatched(self, _raylite_cleanup):
        from repro.serving import PolicyServer

        agent = _make_agent()
        reference_fn = agent.serving_act_fn()
        obs = np.random.default_rng(7).standard_normal(
            (16, STATE_DIM)).astype(np.float32)
        unbatched = np.stack([reference_fn(o[None])[0] for o in obs])

        server = PolicyServer(_make_agent(), max_batch_size=8,
                              batch_window=0.02)
        try:
            refs = [server.submit(o) for o in obs]
            served = np.stack([np.asarray(r.result(timeout=10))
                               for r in refs])
        finally:
            server.stop()
        assert served.shape == (16, ACTION_DIM)
        assert np.all(served >= LOW) and np.all(served <= HIGH)
        np.testing.assert_allclose(served, unbatched, **self.TOL)
        # The burst actually exercised micro-batching (batched != N
        # one-row calls), otherwise this parity test proves nothing.
        assert server.stats.as_dict()["max_batch_size"] > 1

    def test_http_gateway_round_trips_json_vectors(self, _raylite_cleanup):
        from repro.serving import HttpGateway, HttpPolicyClient, PolicyServer

        agent = _make_agent()
        reference_fn = agent.serving_act_fn()
        obs = np.random.default_rng(9).standard_normal(
            (6, STATE_DIM)).astype(np.float32)

        server = PolicyServer(_make_agent(), max_batch_size=8,
                              batch_window=0.001)
        gateway = HttpGateway(server, default_deadline=5.0).start()
        try:
            # One raw request to pin the wire format: the action is a
            # plain JSON list of dim(A) floats, not a scalar.
            conn = http.client.HTTPConnection(*gateway.address, timeout=10)
            try:
                conn.request("POST", "/act",
                             body=json.dumps({"obs": obs[0].tolist()}),
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                assert response.status == 200
                doc = json.loads(response.read().decode())
            finally:
                conn.close()
            assert isinstance(doc["action"], list)
            assert len(doc["action"]) == ACTION_DIM
            assert all(isinstance(v, float) for v in doc["action"])

            with HttpPolicyClient.for_gateway(gateway) as client:
                served = [client.act(o) for o in obs]
        finally:
            gateway.stop()
            server.stop()
        for action in served:
            assert action.shape == (ACTION_DIM,)
        served = np.asarray(served, np.float32)
        assert np.all(served >= LOW) and np.all(served <= HIGH)
        expected = np.stack([reference_fn(o[None])[0] for o in obs])
        np.testing.assert_allclose(served, expected, **self.TOL)
