"""Tests for common plumbing components: splitters, mergers,
synchronizer, FIFO queue, staging area, batch splitter."""

import threading

import numpy as np
import pytest

from repro.backend import XGRAPH, XTAPE, functional as F
from repro.components.common import (
    BatchSplitter,
    ContainerMerger,
    ContainerSplitter,
    FIFOQueue,
    StagingArea,
    Synchronizer,
)
from repro.core import Component, build_graph, graph_fn, rlgraph_api
from repro.spaces import BoolBox, Dict as DictSpace, FloatBox, IntBox, Tuple
from repro.testing import ComponentTest
from repro.utils import RLGraphError
from repro.utils.errors import RLGraphQueueError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


RECORD_SPACE = DictSpace(
    states=FloatBox(shape=(3,)), actions=IntBox(4), rewards=FloatBox(),
    add_batch_rank=True)


class TestContainerSplitter:
    def test_split_dict(self, backend):
        splitter = ContainerSplitter("states", "actions", "rewards")
        test = ComponentTest(splitter, {"inputs": RECORD_SPACE},
                             backend=backend)
        value = RECORD_SPACE.sample(size=4, rng=np.random.default_rng(0))
        s, a, r = test.test("split", value)
        np.testing.assert_array_equal(s, value["states"])
        np.testing.assert_array_equal(a, value["actions"])
        np.testing.assert_array_equal(r, value["rewards"])

    def test_split_subset_and_order(self, backend):
        splitter = ContainerSplitter("rewards", "states")
        test = ComponentTest(splitter, {"inputs": RECORD_SPACE},
                             backend=backend)
        value = RECORD_SPACE.sample(size=2, rng=np.random.default_rng(1))
        r, s = test.test("split", value)
        np.testing.assert_array_equal(r, value["rewards"])
        np.testing.assert_array_equal(s, value["states"])

    def test_split_tuple_space(self, backend):
        space = Tuple(FloatBox(shape=(2,)), IntBox(3), add_batch_rank=True)
        splitter = ContainerSplitter(0, 1)
        test = ComponentTest(splitter, {"inputs": space}, backend=backend)
        value = space.sample(size=2, rng=np.random.default_rng(2))
        a, b = test.test("split", value)
        np.testing.assert_array_equal(a, value[0])
        np.testing.assert_array_equal(b, value[1])

    def test_requires_output_order(self):
        with pytest.raises(RLGraphError):
            ContainerSplitter()

    def test_unknown_key_fails_at_build(self, backend):
        splitter = ContainerSplitter("nope")
        with pytest.raises(RLGraphError):
            ComponentTest(splitter, {"inputs": RECORD_SPACE}, backend=backend)


class TestContainerMerger:
    def test_merge_roundtrip(self, backend):
        merger = ContainerMerger("a", "b")
        spaces = {"x": FloatBox(shape=(2,), add_batch_rank=True),
                  "y": IntBox(5, add_batch_rank=True)}

        class Root(Component):
            def __init__(self):
                super().__init__(scope="root")
                self.merger = merger
                self.add_components(merger)

            @rlgraph_api
            def pack(self, x, y):
                return self.merger.merge(x, y)

        built = build_graph(Root(), spaces, backend=backend)
        out = built.execute("pack", np.ones((2, 2), np.float32),
                            np.asarray([1, 2]))
        assert set(out) == {"a", "b"}
        np.testing.assert_array_equal(out["a"], np.ones((2, 2)))
        np.testing.assert_array_equal(out["b"], [1, 2])

    def test_needs_keys(self):
        with pytest.raises(RLGraphError):
            ContainerMerger()


class _TwoNets(Component):
    """Root holding two structurally identical variable owners + sync."""

    def __init__(self, tau=None):
        super().__init__(scope="two-nets")
        from repro.components.neural_networks import DenseLayer
        self.a = DenseLayer(units=4, scope="net-a")
        self.b = DenseLayer(units=4, scope="net-b")
        self.sync = Synchronizer(self.a, self.b, tau=tau)
        self.add_components(self.a, self.b, self.sync)

    @rlgraph_api
    def forward_a(self, inputs):
        return self.a.apply(inputs)

    @rlgraph_api
    def forward_b(self, inputs):
        return self.b.apply(inputs)

    @rlgraph_api
    def do_sync(self):
        return self.sync.sync()


class TestSynchronizer:
    def test_hard_sync(self, backend):
        root = _TwoNets()
        built = build_graph(root, {"inputs": FloatBox(shape=(3,),
                                                      add_batch_rank=True)},
                            backend=backend)
        x = np.ones((2, 3), np.float32)
        out_a = built.execute("forward_a", x)
        assert not np.allclose(out_a, built.execute("forward_b", x))
        built.execute("do_sync")
        np.testing.assert_allclose(built.execute("forward_b", x), out_a,
                                   atol=1e-6)

    def test_soft_sync_tau(self, backend):
        root = _TwoNets(tau=0.5)
        built = build_graph(root, {"inputs": FloatBox(shape=(3,),
                                                      add_batch_rank=True)},
                            backend=backend)
        a_k = root.a.kernel.value.copy()
        b_k = root.b.kernel.value.copy()
        built.execute("do_sync")
        np.testing.assert_allclose(root.b.kernel.value,
                                   0.5 * a_k + 0.5 * b_k, atol=1e-6)

    def test_structure_mismatch_detected(self, backend):
        from repro.components.neural_networks import DenseLayer

        class Bad(Component):
            def __init__(self):
                super().__init__(scope="bad")
                self.a = DenseLayer(units=4, scope="net-a")
                self.b = DenseLayer(units=8, scope="net-b")  # wrong shape
                self.sync = Synchronizer(self.a, self.b)
                self.add_components(self.a, self.b, self.sync)

            @rlgraph_api
            def forward_a(self, inputs):
                return self.a.apply(inputs)

            @rlgraph_api
            def forward_b(self, inputs):
                return self.b.apply(inputs)

            @rlgraph_api
            def do_sync(self):
                return self.sync.sync()

        with pytest.raises(RLGraphError):
            build_graph(Bad(), {"inputs": FloatBox(shape=(3,),
                                                   add_batch_rank=True)},
                        backend=backend)


class TestFIFOQueueHostSide:
    def test_put_get_order(self):
        q = FIFOQueue(capacity=4, timeout=0.5)
        q.put({"x": 1})
        q.put({"x": 2})
        assert q.get()["x"] == 1
        assert q.get()["x"] == 2

    def test_timeout_on_empty(self):
        q = FIFOQueue(capacity=2, timeout=0.1)
        with pytest.raises(RLGraphQueueError):
            q.get()

    def test_full_queue_times_out(self):
        q = FIFOQueue(capacity=1, timeout=0.1)
        q.put(1)
        with pytest.raises(RLGraphQueueError):
            q.put(2)

    def test_closed_queue(self):
        q = FIFOQueue(capacity=2, timeout=0.1)
        q.close()
        with pytest.raises(RLGraphQueueError):
            q.put(1)

    def test_blocking_get_across_threads(self):
        q = FIFOQueue(capacity=2, timeout=2.0)
        result = []

        def consumer():
            result.append(q.get())

        t = threading.Thread(target=consumer)
        t.start()
        q.put({"payload": 42})
        t.join(timeout=3.0)
        assert result and result[0]["payload"] == 42

    def test_enqueue_dequeue_through_graph(self, backend):
        queue_comp = FIFOQueue(capacity=8, timeout=1.0)

        class Root(Component):
            def __init__(self):
                super().__init__(scope="queue-root")
                self.q = queue_comp
                self.add_components(queue_comp)

            @rlgraph_api
            def put_records(self, records):
                return self.q.enqueue(records)

            @rlgraph_api
            def take(self, token):
                return self.q.dequeue(token)

        built = build_graph(Root(),
                            {"records": RECORD_SPACE,
                             "token": FloatBox()},
                            backend=backend)
        value = RECORD_SPACE.sample(size=2, rng=np.random.default_rng(3))
        # The build pushed one example through enqueue; drain anything
        # stale first.
        while queue_comp.size():
            queue_comp.get()
        built.execute("put_records", value)
        built.execute("take", np.asarray(0.0, np.float32))
        out = queue_comp.last_dequeued()
        np.testing.assert_array_equal(out["states"], value["states"])


class TestStagingArea:
    def test_one_slot_delay(self, backend):
        stage = StagingArea()

        class Root(Component):
            def __init__(self):
                super().__init__(scope="stage-root")
                self.stage = stage
                self.add_components(stage)

            @rlgraph_api
            def push(self, records):
                return self.stage.stage(records)

        built = build_graph(Root(), {"records": FloatBox(shape=(2,),
                                                         add_batch_rank=True)},
                            backend=backend)
        first = np.asarray([[1.0, 1.0]], np.float32)
        second = np.asarray([[2.0, 2.0]], np.float32)
        out1 = built.execute("push", first)
        out2 = built.execute("push", second)
        # First call returns its own batch; second returns the staged one.
        np.testing.assert_array_equal(np.asarray(out2), first)


class TestBatchSplitter:
    def test_even_split_container(self, backend):
        splitter = BatchSplitter(2)
        test = ComponentTest(splitter, {"records": RECORD_SPACE},
                             backend=backend)
        value = RECORD_SPACE.sample(size=6, rng=np.random.default_rng(4))
        shard0, shard1 = test.test("split", value)
        assert shard0["states"].shape == (3, 3)
        np.testing.assert_array_equal(shard0["states"], value["states"][:3])
        np.testing.assert_array_equal(shard1["actions"], value["actions"][3:])

    def test_single_shard_identity(self, backend):
        splitter = BatchSplitter(1)
        test = ComponentTest(splitter,
                             {"records": FloatBox(shape=(2,),
                                                  add_batch_rank=True)},
                             backend=backend)
        value = np.arange(8, dtype=np.float32).reshape(4, 2)
        out = test.test("split", value)
        np.testing.assert_array_equal(out, value)

    def test_invalid_shards(self):
        with pytest.raises(RLGraphError):
            BatchSplitter(0)
