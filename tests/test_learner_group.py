"""Data-parallel learner groups: gradient extraction parity, K-learner
vs single-learner equivalence, shm collectives, sharding policy, chaos.

Parity contracts (the repo-wide convention from test_parity_matrix):
extract-then-apply must be **bitwise** identical to the in-graph update
on the symbolic backend at ``optimize="basic"`` (same nodes, same
order); fused/native cells reassociate reductions and are held to tight
allclose.  Likewise K=1 groups are bitwise (identical arithmetic,
shared-memory round trip included), while K>1 shard-sums reassociate
the batch reduction and are allclose.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.agents import (
    ActorCriticAgent,
    DQNAgent,
    IMPALAAgent,
    PPOAgent,
    SACAgent,
)
from repro.backend import native
from repro.components.common.batch_splitter import shard_sizes, split_batch
from repro.execution.learner_group import (
    LearnerGroup,
    LearnerSpec,
    resolve_learner_spec,
)
from repro.raylite import collectives
from repro.raylite.shm import get_pool
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

STATE_DIM = 4
NUM_ACTIONS = 3
ACTION_DIM = 2  # SAC: continuous actions in [-1, 1]^2
NET = [{"type": "dense", "units": 16, "activation": "tanh"}]
NUM_UPDATES = 5
TOL = dict(rtol=1e-5, atol=1e-6)


# Module-level factories: process learner replicas ship their recipe to
# a fresh worker process on every (re)start.
def make_agent(kind: str, optimize: str = "basic", backend: str = "xgraph",
               worker_index: int = 0):
    common = dict(state_space=FloatBox(shape=(STATE_DIM,)),
                  action_space=IntBox(NUM_ACTIONS), network_spec=NET,
                  backend=backend, optimize=optimize, seed=7)
    if kind == "dqn":
        return DQNAgent(double_q=True, dueling=True, sync_interval=2,
                        memory_capacity=64, batch_size=8, **common)
    if kind == "a2c":
        return ActorCriticAgent(**common)
    if kind == "impala":
        return IMPALAAgent(**common)
    if kind == "ppo":
        return PPOAgent(epochs=2, minibatch_size=8, **common)
    if kind == "sac":
        common["action_space"] = FloatBox(
            low=-np.ones(ACTION_DIM, np.float32),
            high=np.ones(ACTION_DIM, np.float32))
        return SACAgent(memory_capacity=64, batch_size=8, **common)
    raise ValueError(kind)


def _dqn_factory(worker_index=0):
    return make_agent("dqn")


def batches(kind: str, n_updates: int = NUM_UPDATES, rows: int = 12):
    """Deterministic batch stream, identical across compared runs."""
    rng = np.random.default_rng(42)
    out = []
    for _ in range(n_updates):
        if kind == "dqn":
            out.append({
                "states": rng.standard_normal(
                    (rows, STATE_DIM)).astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, rows),
                "rewards": rng.standard_normal(rows).astype(np.float32),
                "terminals": rng.random(rows) < 0.2,
                "next_states": rng.standard_normal(
                    (rows, STATE_DIM)).astype(np.float32),
            })
        elif kind == "a2c":
            out.append({
                "states": rng.standard_normal(
                    (rows, STATE_DIM)).astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, rows),
                "returns": rng.standard_normal(rows).astype(np.float32),
            })
        elif kind == "ppo":
            out.append({
                "states": rng.standard_normal(
                    (rows, STATE_DIM)).astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, rows),
                "old_log_probs": -np.abs(
                    rng.standard_normal(rows)).astype(np.float32),
                "returns": rng.standard_normal(rows).astype(np.float32),
                "advantages": rng.standard_normal(rows).astype(np.float32),
            })
        elif kind == "sac":
            out.append({
                "states": rng.standard_normal(
                    (rows, STATE_DIM)).astype(np.float32),
                "actions": rng.uniform(-1, 1, (rows, ACTION_DIM))
                .astype(np.float32),
                "rewards": rng.standard_normal(rows).astype(np.float32),
                "terminals": rng.random(rows) < 0.2,
                "next_states": rng.standard_normal(
                    (rows, STATE_DIM)).astype(np.float32),
                # Explicit reparameterization noise rides along with the
                # rows (shard_spec axis 0), so sharded extraction sees
                # the same per-row noise as the single learner.
                "noise": rng.standard_normal(
                    (rows, ACTION_DIM)).astype(np.float32),
                "next_noise": rng.standard_normal(
                    (rows, ACTION_DIM)).astype(np.float32),
            })
        elif kind == "impala":
            t, b = 4, rows
            out.append({
                "states": rng.standard_normal(
                    (t, b, STATE_DIM)).astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, (t, b)),
                "behaviour_log_probs": -np.abs(
                    rng.standard_normal((t, b))).astype(np.float32),
                "rewards": rng.standard_normal((t, b)).astype(np.float32),
                "terminals": rng.random((t, b)) < 0.1,
                "bootstrap_states": rng.standard_normal(
                    (b, STATE_DIM)).astype(np.float32),
            })
        else:
            raise ValueError(kind)
    return out

KINDS = ["dqn", "a2c", "impala", "ppo", "sac"]


def _run_updates(agent, kind):
    for batch in batches(kind):
        agent.update(batch)
    return agent.get_weights(flat=True)


def _run_extract_apply(agent, kind):
    for batch in batches(kind):
        flat, _stats = agent.get_gradients(batch, flat=True)
        agent.apply_gradients(flat)
    return agent.get_weights(flat=True)


def _run_single_steps(agent, kind):
    """In-graph single-step reference for the extraction round trip.

    For DQN/A2C/IMPALA this is just ``update()``.  PPO's ``update()``
    loops epochs × minibatches, so its extraction reference is ONE
    in-graph ``update_from_batch`` step on the same prepared full batch
    (advantages normalized exactly as ``_compute_gradients`` does)."""
    if kind != "ppo":
        return _run_updates(agent, kind)
    for batch in batches(kind):
        adv = np.asarray(batch["advantages"], np.float32)
        adv = (adv - adv.mean()) / (adv.std() + 1e-8)
        agent.call_api("update_from_batch", batch["states"],
                       batch["actions"],
                       np.asarray(batch["old_log_probs"], np.float32),
                       adv, np.asarray(batch["returns"], np.float32))
    return agent.get_weights(flat=True)


class TestGradientExtractionParity:
    """Extract-then-apply vs the in-graph fused step, all four agents."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_bitwise_on_symbolic_basic(self, kind):
        w_update = _run_single_steps(make_agent(kind, "basic"), kind)
        w_extract = _run_extract_apply(make_agent(kind, "basic"), kind)
        assert np.array_equal(w_update, w_extract)

    @pytest.mark.parametrize("kind", KINDS)
    def test_allclose_on_fused(self, kind):
        w_update = _run_single_steps(make_agent(kind, "fused"), kind)
        w_extract = _run_extract_apply(make_agent(kind, "fused"), kind)
        np.testing.assert_allclose(w_extract, w_update, **TOL)

    @pytest.mark.native
    @pytest.mark.parametrize("kind", KINDS)
    def test_allclose_on_native(self, kind):
        if not native.toolchain_available():
            pytest.skip("no C toolchain")
        w_update = _run_single_steps(make_agent(kind, "native"), kind)
        w_extract = _run_extract_apply(make_agent(kind, "native"), kind)
        np.testing.assert_allclose(w_extract, w_update, **TOL)

    def test_gradients_unclipped_and_slab_sized(self):
        agent = make_agent("dqn")
        flat, stats = agent.get_gradients(batches("dqn")[0], flat=True)
        assert flat.shape == (agent.flat_grad_size(),)
        assert flat.dtype == np.float32
        assert "losses" in stats and "td" in stats
        # Weight vector covers target nets too; gradients never do.
        assert agent.flat_layout().total > agent.flat_grad_size()

    def test_apply_gated_off_at_optimize_none(self):
        """Extraction still works in the per-variable ablation (flat
        vector concatenated in the same sorted-by-name order), but the
        apply half needs the fused slab and is not built."""
        agent = make_agent("dqn", "none")
        flat, _stats = agent.get_gradients(batches("dqn")[0], flat=True)
        assert flat.shape == (agent.flat_grad_size(),)
        with pytest.raises(RLGraphError):
            agent.apply_gradients(flat)


class TestShardingPolicy:
    def test_shard_sizes_policies(self):
        assert shard_sizes(10, 4) == [2, 2, 2, 4]
        assert shard_sizes(10, 4, remainder="drop") == [2, 2, 2, 2]
        assert shard_sizes(8, 4, remainder="strict") == [2, 2, 2, 2]
        with pytest.raises(RLGraphError):
            shard_sizes(10, 4, remainder="strict")
        with pytest.raises(RLGraphError):
            shard_sizes(3, 4)  # would leave an empty shard
        with pytest.raises(RLGraphError):
            shard_sizes(10, 4, remainder="bogus")

    def test_split_batch_keeps_every_row(self):
        batch = {"x": np.arange(10), "y": np.arange(10) * 2.0}
        shards = split_batch(batch, 3)
        assert [len(s["x"]) for s in shards] == [3, 3, 4]
        merged = np.concatenate([s["x"] for s in shards])
        assert np.array_equal(merged, batch["x"])  # order preserved

    def test_split_batch_axes_override_and_replication(self):
        t, b = 4, 7
        batch = {"states": np.zeros((t, b, 3)),
                 "bootstrap_states": np.arange(b),
                 "config": np.array([1.0, 2.0])}
        shards = split_batch(batch, 2, axis=1,
                             axes={"bootstrap_states": 0, "config": None})
        assert shards[0]["states"].shape == (t, 3, 3)
        assert shards[1]["states"].shape == (t, 4, 3)
        assert np.array_equal(shards[1]["bootstrap_states"],
                              np.arange(b)[3:])
        # None-axis keys are replicated whole into every shard.
        assert np.array_equal(shards[0]["config"], batch["config"])
        assert np.array_equal(shards[1]["config"], batch["config"])

    def test_split_batch_rejects_row_mismatch(self):
        with pytest.raises(RLGraphError):
            split_batch({"x": np.zeros(8), "y": np.zeros(7)}, 2)


class TestCollectiveSchedules:
    @pytest.mark.parametrize("world", [1, 2, 3, 4, 5, 8])
    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    def test_allreduce_sums_over_pooled_blocks(self, world, algorithm):
        rng = np.random.default_rng(world)
        n = 103  # deliberately not divisible by any world size
        vecs = [rng.standard_normal(n).astype(np.float32)
                for _ in range(world)]
        expected = np.sum(vecs, axis=0)
        ring = collectives.SlabRing(world, n)
        if not ring.available:
            pytest.skip("shared memory unavailable")
        members = [collectives.RingMember(r, world, ring.names(), n, n)
                   for r in range(world)]
        for r, v in enumerate(vecs):
            members[r].write(v)
        for method, step in collectives.allreduce_steps(algorithm, world):
            for m in members:
                getattr(m, method)(step)
        # Ring: every rank holds the sum; tree: rank 0's block does.
        result = np.array(members[0].read(0), copy=True)
        np.testing.assert_allclose(result, expected, rtol=1e-6, atol=1e-6)
        for m in members:
            m.close()
        ring.release()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            collectives.allreduce_steps("butterfly", 4)

    def test_chunk_bounds_cover_everything(self):
        bounds = collectives.chunk_bounds(10, 4)
        assert bounds == [0, 3, 6, 8, 10]


class TestLearnerSpec:
    def test_resolution(self):
        assert resolve_learner_spec(None) is None
        assert resolve_learner_spec(False) is None
        spec = resolve_learner_spec(4)
        assert spec.num_learners == 4 and spec.resolve_algorithm() == "ring"
        assert resolve_learner_spec(2).resolve_algorithm() == "tree"
        spec = resolve_learner_spec({"num_learners": 3,
                                     "algorithm": "tree"})
        assert spec.resolve_algorithm() == "tree"
        passthrough = LearnerSpec(2)
        assert resolve_learner_spec(passthrough) is passthrough
        with pytest.raises(RLGraphError):
            resolve_learner_spec(True)
        with pytest.raises(RLGraphError):
            resolve_learner_spec({"num_learners": 2, "algorithm": "x"})


class TestLearnerGroupParity:
    """K-replica groups vs one learner on identical update streams."""

    def _single_weights(self, kind):
        agent = make_agent(kind)
        for batch in batches(kind):
            agent.update(batch)
        return agent.get_weights(flat=True)

    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("kind", ["dqn", "a2c"])
    def test_group_matches_single_learner(self, kind, k):
        reference = self._single_weights(kind)
        group = LearnerGroup(make_agent(kind),
                             lambda worker_index=0: make_agent(kind),
                             spec=k, parallel_spec="thread")
        try:
            for batch in batches(kind):
                group.update(batch)
            weights = group.get_weights(flat=True)
            if k == 1:
                # One replica runs the identical arithmetic (shm round
                # trip included): bitwise, per the repo parity contract.
                assert np.array_equal(weights, reference)
            else:
                # Shard sums reassociate the batch reduction: allclose.
                np.testing.assert_allclose(weights, reference, **TOL)
            assert group.updates == NUM_UPDATES
        finally:
            group.shutdown()

    @pytest.mark.parametrize("kind", ["impala", "ppo"])
    def test_group_k1_bitwise_remaining_agents(self, kind):
        # The single-learner semantic a group implements is ONE step per
        # batch — for PPO that is the extract-apply loop, not the
        # epochs × minibatches `update()` (group semantics by design).
        reference = _run_extract_apply(make_agent(kind), kind)
        group = LearnerGroup(make_agent(kind),
                             lambda worker_index=0: make_agent(kind),
                             spec=1, parallel_spec="thread")
        try:
            for batch in batches(kind):
                group.update(batch)
            assert np.array_equal(group.get_weights(flat=True), reference)
        finally:
            group.shutdown()

    def test_impala_group_k2_allclose(self):
        reference = _run_extract_apply(make_agent("impala"), "impala")
        group = LearnerGroup(make_agent("impala"),
                             lambda worker_index=0: make_agent("impala"),
                             spec=2, parallel_spec="thread")
        try:
            for batch in batches("impala"):
                out = group.update(batch)
            assert all(np.isfinite(v) for v in out)
            np.testing.assert_allclose(group.get_weights(flat=True),
                                       reference, rtol=1e-4, atol=1e-5)
        finally:
            group.shutdown()

    @pytest.mark.parametrize("k", [1, 2])
    def test_sac_group_continuous_batch(self, k):
        """Continuous-action batches through the group machinery: the
        FloatBox action columns and the noise columns shard row-major
        alongside the states (base shard_spec), so K=1 is bitwise and
        K=2's shard-mean reassociation stays inside the allclose
        contract."""
        reference = self._single_weights("sac")
        group = LearnerGroup(make_agent("sac"),
                             lambda worker_index=0: make_agent("sac"),
                             spec=k, parallel_spec="thread")
        try:
            for batch in batches("sac"):
                loss, td = group.update(batch)
            assert np.isfinite(loss) and np.all(np.isfinite(td))
            weights = group.get_weights(flat=True)
            if k == 1:
                assert np.array_equal(weights, reference)
            else:
                np.testing.assert_allclose(weights, reference, **TOL)
            assert group.updates == NUM_UPDATES
        finally:
            group.shutdown()

    def test_ppo_group_k2_runs(self):
        # PPO normalizes advantages per shard (a batch statistic —
        # documented group semantics), so K>1 is not comparable to the
        # single learner; assert the group trains and stays finite.
        group = LearnerGroup(make_agent("ppo"),
                             lambda worker_index=0: make_agent("ppo"),
                             spec=2, parallel_spec="thread")
        try:
            for batch in batches("ppo"):
                out = group.update(batch)
            assert all(np.isfinite(v) for v in out)
            assert group.updates == NUM_UPDATES
            assert np.all(np.isfinite(group.get_weights(flat=True)))
        finally:
            group.shutdown()

    def test_steady_state_rounds_allocate_no_blocks(self):
        """Each all-reduce round moves slabs through the SAME pooled
        blocks: after group setup the pool's miss counter freezes."""
        group = LearnerGroup(make_agent("dqn"), _dqn_factory, spec=4,
                             parallel_spec="thread")
        if not group.ring.available:
            group.shutdown()
            pytest.skip("shared memory unavailable")
        try:
            stream = batches("dqn")
            group.update(stream[0])  # warm: ring members attach lazily
            before = get_pool().stats()
            for batch in stream[1:]:
                group.update(batch)
            after = get_pool().stats()
            assert after["misses"] == before["misses"]
            assert after["active"] == before["active"]
        finally:
            group.shutdown()
        # Shutdown returned every block to the pool's free list.
        assert get_pool().stats()["active"] <= before["active"] - 4

    def test_group_checkpoint_resume_bitwise(self):
        stream = batches("dqn", n_updates=4)
        group = LearnerGroup(make_agent("dqn"), _dqn_factory, spec=2,
                             parallel_spec="thread")
        try:
            group.update(stream[0])
            group.update(stream[1])
            state = group.full_state()
            for batch in stream[2:]:
                group.update(batch)
            final = group.get_weights(flat=True)
        finally:
            group.shutdown()
        resumed = LearnerGroup(make_agent("dqn"), _dqn_factory, spec=2,
                               parallel_spec="thread")
        try:
            resumed.restore_full_state(state)
            assert resumed.updates == 2
            for batch in stream[2:]:
                resumed.update(batch)
            assert np.array_equal(resumed.get_weights(flat=True), final)
        finally:
            resumed.shutdown()

    def test_group_rejects_optimize_none(self):
        with pytest.raises(RLGraphError):
            LearnerGroup(make_agent("dqn", "none"), _dqn_factory, spec=2,
                         parallel_spec="thread")
