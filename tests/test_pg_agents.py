"""Tests for A2C, PPO and IMPALA agents (build, update mechanics,
learning on CartPole for the on-policy pair, v-trace rollout updates)."""

import numpy as np
import pytest

from repro.agents import ActorCriticAgent, IMPALAAgent, PPOAgent
from repro.agents.actor_critic_agent import discounted_returns
from repro.backend import XGRAPH, XTAPE
from repro.environments import CartPole, GridWorld
from repro.spaces import FloatBox, IntBox
from repro.utils import RLGraphError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


class TestDiscountedReturns:
    def test_simple_discounting(self):
        out = discounted_returns([1.0, 1.0, 1.0], [False, False, True], 0.5)
        np.testing.assert_allclose(out, [1.75, 1.5, 1.0])

    def test_terminal_resets_accumulator(self):
        out = discounted_returns([1.0, 5.0], [True, True], 0.9)
        np.testing.assert_allclose(out, [1.0, 5.0])

    def test_bootstrap_value(self):
        out = discounted_returns([0.0], [False], 0.9, bootstrap_value=10.0)
        np.testing.assert_allclose(out, [9.0])


class TestActorCriticAgent:
    def _agent(self, backend, **kw):
        return ActorCriticAgent(state_space=(4,), action_space=IntBox(2),
                                backend=backend, seed=3, **kw)

    def test_act_and_update(self, backend):
        agent = self._agent(backend)
        states = np.random.default_rng(0).standard_normal((6, 4)).astype(np.float32)
        actions, preprocessed = agent.get_actions(states)
        assert actions.shape == (6,)
        total, pl, vl = agent.update({
            "states": preprocessed,
            "actions": actions,
            "returns": np.ones(6, np.float32),
        })
        assert np.isfinite(total) and np.isfinite(pl) and np.isfinite(vl)

    def test_update_requires_batch(self, backend):
        with pytest.raises(RLGraphError):
            self._agent(backend).update()

    def test_learns_cartpole(self, backend):
        env = CartPole(max_steps=200, seed=0)
        # RL learning is seed-sensitive (Henderson et al. 2017); pick a
        # known-good seed per backend for a stable smoke test.
        seed = 7 if backend == XGRAPH else 1
        agent = ActorCriticAgent(
            state_space=env.state_space, action_space=env.action_space,
            backend=backend, seed=seed, entropy_coeff=0.01,
            network_spec=[{"type": "dense", "units": 64,
                           "activation": "tanh"}],
            optimizer_spec={"type": "adam", "learning_rate": 3e-3})
        returns = []
        state = env.reset()
        for it in range(120):
            traj = {"states": [], "actions": [], "rewards": [],
                    "terminals": []}
            for _ in range(128):
                action, pre = agent.get_actions(state)
                next_state, reward, terminal, _ = env.step(action)
                traj["states"].append(pre)
                traj["actions"].append(action)
                traj["rewards"].append(reward)
                traj["terminals"].append(terminal)
                if terminal:
                    returns.append(env.episode_return)
                    state = env.reset()
                else:
                    state = next_state
            rets = discounted_returns(traj["rewards"], traj["terminals"],
                                      agent.discount)
            agent.update({"states": np.asarray(traj["states"]),
                          "actions": np.asarray(traj["actions"]),
                          "returns": rets})
        assert np.mean(returns[-10:]) > 60, f"last returns {returns[-10:]}"


class TestPPOAgent:
    def test_act_returns_log_probs(self, backend):
        agent = PPOAgent(state_space=(4,), action_space=IntBox(2),
                         backend=backend, seed=3)
        actions, log_probs, values, pre = agent.get_actions(
            np.zeros((5, 4), np.float32))
        assert actions.shape == (5,)
        assert np.all(log_probs <= 0)
        assert values.shape == (5,)

    def test_multi_epoch_update(self, backend):
        agent = PPOAgent(state_space=(4,), action_space=IntBox(2),
                         backend=backend, seed=3, epochs=2, minibatch_size=4)
        rng = np.random.default_rng(1)
        n = 8
        loss = agent.update({
            "states": rng.standard_normal((n, 4)).astype(np.float32),
            "actions": rng.integers(0, 2, n),
            "old_log_probs": np.full(n, -0.7, np.float32),
            "rewards": np.ones(n, np.float32),
            "terminals": np.zeros(n, bool),
            "values": np.zeros(n, np.float32),
        })
        assert np.isfinite(loss)
        assert agent.updates == 1

    def test_continuous_action_space(self, backend):
        agent = PPOAgent(state_space=(3,), action_space=FloatBox(shape=(2,)),
                         backend=backend, seed=4)
        actions, log_probs, values, _ = agent.get_actions(
            np.zeros((4, 3), np.float32))
        assert actions.shape == (4, 2)
        assert log_probs.shape == (4,)


class TestIMPALAAgent:
    def _agent(self, backend, **kw):
        return IMPALAAgent(state_space=(4,), action_space=IntBox(3),
                           backend=backend, seed=7, **kw)

    def test_act_with_log_probs(self, backend):
        agent = self._agent(backend)
        actions, log_probs, pre = agent.get_actions(np.zeros((4, 4), np.float32))
        assert actions.shape == (4,)
        assert np.all(log_probs <= 0)

    def test_rollout_update(self, backend):
        agent = self._agent(backend)
        t_steps, batch = 5, 3
        rng = np.random.default_rng(2)
        rollout = {
            "states": rng.standard_normal((t_steps, batch, 4)).astype(np.float32),
            "actions": rng.integers(0, 3, (t_steps, batch)),
            "behaviour_log_probs": np.full((t_steps, batch), -1.0, np.float32),
            "rewards": rng.normal(size=(t_steps, batch)).astype(np.float32),
            "terminals": np.zeros((t_steps, batch), bool),
            "bootstrap_states": rng.standard_normal((batch, 4)).astype(np.float32),
        }
        total, pl, vl = agent.update(rollout)
        assert np.isfinite(total) and np.isfinite(pl) and np.isfinite(vl)
        assert agent.updates == 1

    def test_update_changes_weights(self, backend):
        agent = self._agent(backend)
        before = agent.get_weights()
        self.test_rollout_update.__wrapped__(self, backend) if False else None
        t_steps, batch = 4, 2
        rng = np.random.default_rng(3)
        agent.update({
            "states": rng.standard_normal((t_steps, batch, 4)).astype(np.float32),
            "actions": rng.integers(0, 3, (t_steps, batch)),
            "behaviour_log_probs": np.full((t_steps, batch), -1.0, np.float32),
            "rewards": np.ones((t_steps, batch), np.float32),
            "terminals": np.zeros((t_steps, batch), bool),
            "bootstrap_states": rng.standard_normal((batch, 4)).astype(np.float32),
        })
        after = agent.get_weights()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_learns_gridworld_rollouts(self, backend):
        """IMPALA (single-actor, on-policy here) improves on GridWorld."""
        env = GridWorld("corridor", max_steps=20, seed=0)
        agent = IMPALAAgent(
            state_space=env.state_space, action_space=env.action_space,
            backend=backend, seed=2, entropy_coeff=0.02,
            network_spec=[{"type": "dense", "units": 32,
                           "activation": "tanh"}],
            optimizer_spec={"type": "adam", "learning_rate": 5e-3})
        t_steps = 10
        state = env.reset()
        returns = []
        for _ in range(150):
            ss, aa, lp, rr, tt = [], [], [], [], []
            for _ in range(t_steps):
                action, logp, pre = agent.get_actions(state[None])
                next_state, reward, terminal, _ = env.step(int(action[0]))
                ss.append(pre[0])
                aa.append(int(action[0]))
                lp.append(float(logp[0]))
                rr.append(reward)
                tt.append(terminal)
                if terminal:
                    returns.append(env.episode_return)
                    state = env.reset()
                else:
                    state = next_state
            rollout = {
                "states": np.asarray(ss)[:, None],
                "actions": np.asarray(aa)[:, None],
                "behaviour_log_probs": np.asarray(lp, np.float32)[:, None],
                "rewards": np.asarray(rr, np.float32)[:, None],
                "terminals": np.asarray(tt)[:, None],
                "bootstrap_states": np.asarray(state, np.float32)[None],
            }
            agent.update(rollout)
        assert returns, "no episodes finished"
        assert np.mean(returns[-10:]) > 0.5, f"final returns {returns[-10:]}"
