"""Native C codegen backend tests (``optimize="native"``).

The native backend lowers compiled plans to C segments executed with
zero Python dispatch (:mod:`repro.backend.native`). These tests pin:

- value parity with the interpreter across the lowering vocabulary
  (elementwise chains, matmul, reductions, argmax, one_hot, gather,
  concat, transpose/reshape, fused optimizer kernels);
- graceful degradation — no C toolchain means a one-time warning and
  "fused"-equivalent execution, never an error;
- per-run guard fallback when value-dependent shapes drift inside a
  built segment, and the feed-signature build cap;
- the shared-library disk cache (second build of the same source is a
  cache hit, not a recompile);
- fetch snapshot semantics (persistent C out-buffers are reused across
  runs, so fetched values must be copies);
- the SessionStats accounting split between graph-compiler time and
  native build time.

Everything here needs a C compiler except the degradation test, which
must work precisely when there isn't one.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.backend import (
    Graph,
    Session,
    Variable,
    functional as F,
    native,
    symbolic_mode,
)

pytestmark = pytest.mark.native

needs_cc = pytest.mark.skipif(not native.toolchain_available(),
                              reason="no C toolchain in environment")


def _graph():
    return Graph(name="native-test", seed=31)


def _sessions(g):
    return Session(g, optimize="none"), Session(g, optimize="native")


@needs_cc
class TestVocabularyParity:
    def test_elementwise_and_reductions(self):
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 8), np.float32)
            h = F.tanh(F.add(F.mul(x, 0.5), 1.0))
            fetches = [F.reduce_sum(h), F.reduce_mean(h, axis=0),
                       F.reduce_max(h, axis=1), F.exp(F.neg(h))]
        rng = np.random.default_rng(0)
        feed = rng.standard_normal((5, 8)).astype(np.float32)
        ref_s, nat_s = _sessions(g)
        ref = ref_s.run(fetches, {x: feed})
        out = nat_s.run(fetches, {x: feed})
        for r, o in zip(ref, out):
            np.testing.assert_allclose(o, r, rtol=1e-6, atol=1e-7)
        assert nat_s.stats.native_segments >= 1
        assert nat_s.stats.native_steps > 0

    def test_matmul_gather_onehot_argmax_concat(self):
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 4), np.float32)
            w = g.constant(np.arange(12, dtype=np.float32).reshape(4, 3) * 0.1)
            idx = g.placeholder((None,), np.int64)
            logits = F.matmul(x, w)
            fetches = [
                F.argmax(logits, axis=1),
                F.one_hot(idx, 3),
                F.gather(logits, idx),
                F.concat([logits, logits], axis=1),
                F.transpose(logits, (1, 0)),
                F.reshape(logits, (-1,)),
            ]
        rng = np.random.default_rng(1)
        feed = {x: rng.standard_normal((6, 4)).astype(np.float32),
                idx: rng.integers(0, 3, 6)}
        ref_s, nat_s = _sessions(g)
        for r, o in zip(ref_s.run(fetches, feed), nat_s.run(fetches, feed)):
            np.testing.assert_allclose(o, r, rtol=1e-6, atol=1e-7)

    def test_generated_source_is_exposed(self):
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            y = F.relu(F.add(F.mul(x, 2.0), 1.0))
        sess = Session(g, optimize="native")
        sess.run(y, {x: np.ones(4, np.float32)})
        plan = sess.compiled_plan(y)
        assert isinstance(plan, native.NativePlan)
        src = plan.c_source
        assert src and "seg0" in src and "char **B" in src


@needs_cc
class TestGuardsAndFallback:
    def test_value_dependent_shape_falls_back_per_run(self):
        # dyn_arange's length depends on the *value* of n, which the
        # feed signature (id, shape, dtype) cannot see: the first run
        # bakes a segment for len 3, later runs with other lengths must
        # fail the dyn-entry guard and replay that segment in Python —
        # with identical results.
        g = _graph()
        with g.as_default(), symbolic_mode():
            n = g.placeholder((), np.int64)
            y = F.reduce_sum(F.mul(F.cast(F.dyn_arange(n), np.float32), 2.0))
        ref_s, nat_s = _sessions(g)
        for k in (3, 5, 1, 3):
            feed = {n: np.asarray(k, np.int64)}
            np.testing.assert_allclose(nat_s.run(y, feed),
                                       ref_s.run(y, feed), err_msg=str(k))

    def test_feed_signature_build_cap(self):
        # Each distinct feed shape is a fresh specialization; past the
        # cap the plan stops compiling and runs the fused interpreter —
        # results must stay identical throughout.
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            y = F.reduce_sum(F.exp(F.mul(x, 0.25)))
        ref_s, nat_s = _sessions(g)
        for k in range(2, 2 + native._MAX_BUILDS + 3):
            feed = {x: np.linspace(0.0, 1.0, k).astype(np.float32)}
            np.testing.assert_allclose(nat_s.run(y, feed),
                                       ref_s.run(y, feed), rtol=1e-6)

    def test_fetch_is_snapshot_across_runs(self):
        # Native segments write into persistent out-buffers reused on
        # every run; a fetched array must be a copy, not a view that the
        # next run rewrites.
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            y = F.add(F.mul(x, 3.0), 1.0)
        sess = Session(g, optimize="native")
        first = sess.run(y, {x: np.asarray([1.0, 2.0], np.float32)})
        second = sess.run(y, {x: np.asarray([10.0, 20.0], np.float32)})
        np.testing.assert_allclose(first, [4.0, 7.0])
        np.testing.assert_allclose(second, [31.0, 61.0])

    def test_variable_updates_visible_to_segments(self):
        # Var-entry pointers are re-resolved when variable storage is
        # reallocated; in-place updates flow through with no rebuild.
        g = _graph()
        with g.as_default(), symbolic_mode():
            v = Variable("v", np.asarray([1.0, 2.0], np.float32),
                         trainable=False, graph=g)
            y = F.mul(F.add(v.read(), 1.0), 2.0)
            bump = v.assign_add(g.constant(np.asarray([1.0, 1.0], np.float32)))
        sess = Session(g, optimize="native")
        np.testing.assert_allclose(sess.run(y), [4.0, 6.0])
        sess.run(bump)
        np.testing.assert_allclose(sess.run(y), [6.0, 8.0])
        v.set(np.asarray([5.0, 5.0], np.float32))  # may reallocate storage
        np.testing.assert_allclose(sess.run(y), [12.0, 12.0])

    def test_mutation_epoch_ordering_under_in_place_writes(self):
        # The ring-buffer scenario from the compiler suite, at native:
        # scatter/assign side effects split the plan into segments, and
        # the read-write-read ordering across those segments must match
        # the interpreter exactly even though variable buffers mutate in
        # place between C calls.
        g = _graph()
        with g.as_default(), symbolic_mode():
            buf = Variable("buf", np.zeros(4, np.float32),
                           trainable=False, graph=g)
            ptr = Variable("ptr", np.asarray(0, np.int64),
                           trainable=False, graph=g)
            vals = g.placeholder((None,), np.float32)
            n = F.size_of(vals)
            idx = F.mod(F.add(F.dyn_arange(n), ptr.read()), 4)
            write = buf.scatter_update(idx, vals)
            advance = ptr.assign(F.mod(F.add(ptr.read(), n), 4)) \
                .with_deps(write)
            done = F.group(write, advance)
        sess = Session(g, optimize="native")
        sess.run(done, {vals: np.asarray([1.0, 2.0, 3.0], np.float32)})
        np.testing.assert_allclose(buf.value, [1, 2, 3, 0])
        assert ptr.value == 3
        sess.run(done, {vals: np.asarray([9.0, 8.0], np.float32)})
        np.testing.assert_allclose(buf.value, [8, 2, 3, 9])
        assert ptr.value == 1


@needs_cc
class TestStatsAndCache:
    def test_stats_accounting(self):
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 4), np.float32)
            y = F.reduce_mean(F.relu(F.add(F.mul(x, 2.0), 1.0)))
        sess = Session(g, optimize="native")
        sess.run(y, {x: np.ones((3, 4), np.float32)})
        st = sess.stats
        assert st.plans_native == 1
        assert st.native_segments >= 1
        assert st.native_steps >= 1
        # The C build is timed separately from the graph-compiler passes.
        assert st.native_compile_time > 0.0
        assert st.compile_time > 0.0
        d = st.as_dict()
        for key in ("native_compile_time", "native_cache_hits",
                    "plans_native", "native_segments", "native_steps",
                    "native_py_steps"):
            assert key in d

    def test_disk_cache_hit_on_identical_source(self):
        # Two sessions over the same graph emit byte-identical C, so the
        # second build must come out of the on-disk shared-lib cache.
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            y = F.exp(F.mul(F.add(x, 3.0), 0.5))
        feed = {x: np.linspace(0.0, 1.0, 8).astype(np.float32)}
        first = Session(g, optimize="native")
        ref = first.run(y, feed)
        second = Session(g, optimize="native")
        out = second.run(y, feed)
        np.testing.assert_allclose(out, ref)
        assert second.stats.native_cache_hits >= 1


class TestGracefulDegradation:
    def test_missing_toolchain_warns_once_and_matches_fused(self, monkeypatch):
        g = _graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            y = F.relu(F.add(F.mul(x, -1.0), 0.5))
        feed = {x: np.linspace(-1.0, 1.0, 9).astype(np.float32)}
        ref = Session(g, optimize="fused").run(y, feed)

        monkeypatch.setattr(native, "toolchain_available", lambda: False)
        monkeypatch.setitem(native._WARNED, "toolchain", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = Session(g, optimize="native").run(y, feed)
            again = Session(g, optimize="native").run(y, feed)
        np.testing.assert_array_equal(out, ref)
        np.testing.assert_array_equal(again, ref)
        hits = [w for w in caught if issubclass(w.category, RuntimeWarning)
                and "toolchain" in str(w.message).lower()]
        assert len(hits) == 1  # one-time warning, not one per session
