"""Environment tests: determinism, dynamics, spaces, vectorization."""

import numpy as np
import pytest

from repro.environments import (
    CartPole,
    GridWorld,
    RandomEnv,
    SeekAvoid,
    SequentialVectorEnv,
    SimPong,
)
from repro.utils import RLGraphError


class TestGridWorld:
    def test_one_hot_observation(self):
        env = GridWorld("4x4")
        obs = env.reset()
        assert obs.shape == (16,)
        assert obs.sum() == 1.0 and obs[0] == 1.0

    def test_walls_block(self):
        env = GridWorld("4x4")
        env.reset()
        obs, _, _, _ = env.step(0)  # up from top row: stays
        assert obs[0] == 1.0

    def test_goal_reached(self):
        env = GridWorld("corridor")
        env.reset()
        total = 0.0
        for _ in range(7):
            obs, reward, terminal, _ = env.step(1)
            total += reward
        assert terminal and reward == 1.0

    def test_hole_ends_episode(self):
        env = GridWorld("4x4")
        env.reset()
        env.step(2)          # down to (1,0)
        _, reward, terminal, _ = env.step(1)  # right into H at (1,1)
        assert terminal and reward == -1.0

    def test_step_cap(self):
        env = GridWorld("4x4", max_steps=5)
        env.reset()
        for i in range(5):
            _, _, terminal, _ = env.step(3)  # bump left wall forever
        assert terminal

    def test_bad_action_raises(self):
        env = GridWorld()
        env.reset()
        with pytest.raises(RLGraphError):
            env.step(9)

    def test_unknown_map(self):
        with pytest.raises(RLGraphError):
            GridWorld("nope")


class TestCartPole:
    def test_seed_determinism(self):
        a = CartPole(seed=3).reset()
        b = CartPole(seed=3).reset()
        np.testing.assert_array_equal(a, b)

    def test_episode_terminates(self):
        env = CartPole(seed=0, max_steps=500)
        env.reset()
        steps = 0
        terminal = False
        while not terminal and steps < 501:
            _, _, terminal, _ = env.step(0)  # constant push -> falls
            steps += 1
        assert terminal and steps < 200

    def test_state_in_space(self):
        env = CartPole(seed=1)
        state = env.reset()
        assert env.state_space.contains(state)


class TestSimPong:
    def test_frame_properties(self):
        env = SimPong(size=32, seed=0)
        frame = env.reset()
        assert frame.shape == (32, 32, 1)
        assert frame.max() == 255.0 and frame.min() == 0.0

    def test_scoring_ends_at_21(self):
        env = SimPong(size=16, seed=1, opponent_skill=1.0, points_to_win=2,
                      max_steps=100000)
        env.reset()
        terminal = False
        total = 0.0
        steps = 0
        while not terminal:
            _, r, terminal, info = env.step(0)  # agent never moves
            total += r
            steps += 1
        assert max(info["score"]) == 2
        assert total <= 0  # motionless agent cannot outscore a perfect opponent

    def test_frame_skip_accumulates_reward(self):
        env1 = SimPong(size=16, frame_skip=1, seed=2)
        env4 = SimPong(size=16, frame_skip=4, seed=2)
        env1.reset()
        env4.reset()
        # Not asserting equality of rollouts (rng use differs) — just that
        # both run and frame counters move 4x faster with skip.
        for _ in range(10):
            env1.step(1)
            env4.step(1)

    def test_paddle_bounds(self):
        env = SimPong(size=16, seed=3)
        env.reset()
        for _ in range(100):
            env.step(1)  # hold up
        half = env.paddle_height / 2
        assert env.right_paddle >= half


class TestSeekAvoid:
    def test_observation_shape(self):
        env = SeekAvoid(width=32, height=24, seed=0)
        obs = env.reset()
        assert obs.shape == (24, 32, 3)
        assert obs.dtype == np.float32

    def test_collecting_all_apples_terminates(self):
        env = SeekAvoid(width=16, height=12, num_good=1, num_bad=0,
                        max_steps=10_000, seed=4)
        env.reset()
        # Teleport the agent onto the apple by brute stepping toward it.
        terminal = False
        steps = 0
        while not terminal and steps < 10_000:
            rel = env.items[0] - env.pos
            desired = np.arctan2(rel[1], rel[0])
            diff = (desired - env.angle + np.pi) % (2 * np.pi) - np.pi
            action = 0 if abs(diff) < 0.3 else (1 if diff > 0 else 2)
            _, reward, terminal, _ = env.step(action)
            steps += 1
        assert terminal
        assert env.episode_return >= 1.0 - 1e-6 or steps == 10_000

    def test_render_cost_slows_frames(self):
        import time
        fast = SeekAvoid(width=16, height=12, seed=0, render_cost=0.0)
        slow = SeekAvoid(width=16, height=12, seed=0, render_cost=0.002)
        fast.reset()
        slow.reset()
        t0 = time.perf_counter()
        for _ in range(5):
            fast.step(3)
        fast_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            slow.step(3)
        slow_t = time.perf_counter() - t0
        assert slow_t > fast_t


class TestVectorEnv:
    def test_batched_step(self):
        vec = SequentialVectorEnv(
            env_fns=[lambda i=i: GridWorld(seed=i) for i in range(3)])
        states = vec.reset_all()
        assert states.shape == (3, 16)
        states, rewards, terminals = vec.step([1, 1, 1])
        assert states.shape == (3, 16)
        assert rewards.shape == (3,) and terminals.shape == (3,)

    def test_auto_reset_and_accounting(self):
        vec = SequentialVectorEnv(
            env_fns=[lambda: GridWorld("corridor", max_steps=50)])
        vec.reset_all()
        for _ in range(7):
            states, _, terminals = vec.step([1])
        assert terminals[0]
        assert len(vec.finished_episode_returns) == 1
        # Auto-reset: back at start cell.
        assert states[0][0] == 1.0
        assert vec.mean_finished_return() is not None

    def test_action_count_mismatch(self):
        vec = SequentialVectorEnv(env_fns=[lambda: GridWorld()])
        vec.reset_all()
        with pytest.raises(RLGraphError):
            vec.step([0, 1])

    def test_random_env(self):
        env = RandomEnv(state_space=(3,), action_space=2, seed=0,
                        terminal_prob=1.0)
        env.reset()
        _, _, terminal, _ = env.step(0)
        assert terminal
