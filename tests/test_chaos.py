"""Chaos suite: SIGKILL process actors mid-run and assert the runs
complete with learning intact.

Each test kills a real worker process (``os.kill(handle.pid, SIGKILL)``
— no cooperation from the victim) while the coordination loop is live,
then asserts (a) the workload finishes, (b) the supervisor restarted the
slot, (c) updates kept flowing and no weight version was lost.  The
timer fires well inside a duration-bounded workload so the kill always
lands mid-run.  Everything sits under the ``mp_timeout`` SIGALRM guard:
a recovery deadlock fails fast instead of wedging CI.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import ApexAgent, IMPALAAgent
from repro.environments import GridWorld
from repro.execution.impala_runner import IMPALARunner
from repro.execution.ray import ApexExecutor
from repro.spaces import IntBox

pytestmark = [pytest.mark.chaos, pytest.mark.mp_timeout(240)]

# Fast, bounded backoff so a restart completes well inside the workload.
SUPERVISION = {"base_delay": 0.05, "factor": 2.0, "max_delay": 0.5,
               "max_restarts": 5}


# Module-level factories: process actors must be able to ship their
# construction recipe to a fresh worker process on every (re)start.
def _env_factory(seed):
    return GridWorld(seed=seed)


def _apex_agent_factory():
    return ApexAgent(state_space=(16,), action_space=IntBox(4),
                     network_spec=[{"type": "dense", "units": 16}], seed=1)


def _impala_agent_factory():
    return IMPALAAgent(state_space=(16,), action_space=IntBox(4),
                       network_spec=[{"type": "dense", "units": 16,
                                      "activation": "tanh"}], seed=2)


def _sigkill_later(pid_fn, delay):
    """Arm a SIGKILL against ``pid_fn()`` after ``delay`` seconds."""
    def _fire():
        try:
            os.kill(pid_fn(), signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass
    timer = threading.Timer(delay, _fire)
    timer.daemon = True
    timer.start()
    return timer


class TestApexChaos:
    def test_sigkill_worker_mid_run_recovers(self):
        executor = ApexExecutor(
            learner_agent=_apex_agent_factory(),
            agent_factory=_apex_agent_factory, env_factory=_env_factory,
            num_workers=2, envs_per_worker=2, num_replay_shards=2,
            task_size=40, batch_size=16, replay_capacity=4096,
            learning_starts=80, weight_sync_steps=5,
            parallel_spec="process", supervision_spec=SUPERVISION)
        timer = _sigkill_later(lambda: executor.workers[0].pid, 1.5)
        try:
            result = executor.execute_workload(duration=6.0)
            timer.join()
            # The run completed and kept learning through the kill.
            assert result.env_frames > 0
            assert result.learner_updates > 0
            assert all(np.isfinite(loss)
                       for _, loss in result.loss_timeline)
            # Reward trend intact: workers still reported episodes.
            assert result.mean_worker_return is not None
            # The supervisor actually restarted the murdered slot, and
            # every slot ends the run alive.
            assert executor.supervisor.total_restarts >= 1
            names = [e.name for e in executor.supervisor.restart_history]
            assert any(n.startswith("apex-worker") for n in names)
            assert all(h.is_alive() for h in executor.supervisor.handles())
        finally:
            raylite.shutdown()


class TestImpalaChaos:
    def test_sigkill_actor_mid_run_recovers(self):
        runner = IMPALARunner(
            learner_agent=_impala_agent_factory(),
            agent_factory=_impala_agent_factory, env_factory=_env_factory,
            num_actors=2, envs_per_actor=1, rollout_length=10,
            batch_size=2, parallel_spec="process",
            supervision_spec=SUPERVISION)
        timer = _sigkill_later(lambda: runner.actor_handles[0].pid, 1.5)
        try:
            result = runner.run(duration=6.0)
            timer.join()
            assert result["env_frames"] > 0
            assert result["learner_updates"] > 0
            assert all(np.isfinite(loss) for loss in result["losses"])
            # The kill was absorbed by a restart, not a budget blow-up.
            assert result["restarts"] >= 1
            assert result["supervision_failures"] == []
            # No lost weight versions: every update published exactly
            # one version, kill or no kill.
            assert runner._weights_version == result["learner_updates"]
        finally:
            raylite.shutdown()


def _dqn_learner_factory(worker_index=0):
    return ApexAgent(state_space=(16,), action_space=IntBox(4),
                     network_spec=[{"type": "dense", "units": 16}], seed=5)


class TestLearnerGroupChaos:
    def test_sigkill_learner_replica_mid_run_recovers(self):
        """Kill one learner replica mid-round: the group restarts it,
        re-pushes flat weights out of block 0, retries the round, and
        the update stream continues uninterrupted."""
        from repro.execution.learner_group import LearnerGroup

        group = LearnerGroup(_dqn_learner_factory(), _dqn_learner_factory,
                             spec=2, parallel_spec="process",
                             supervision_spec=SUPERVISION)
        rng = np.random.default_rng(11)

        def batch(n=24):
            return {
                "states": rng.standard_normal((n, 16)).astype(np.float32),
                "actions": rng.integers(0, 4, n),
                "rewards": rng.standard_normal(n).astype(np.float32),
                "terminals": rng.random(n) < 0.2,
                "next_states": rng.standard_normal(
                    (n, 16)).astype(np.float32),
            }

        timer = _sigkill_later(lambda: group.replicas[1].pid, 0.5)
        try:
            losses = []
            deadline = time.perf_counter() + 8.0
            while time.perf_counter() < deadline and len(losses) < 60:
                loss, td = group.update(batch())
                losses.append(loss)
            timer.join()
            # One more round AFTER the kill definitely landed.
            loss, td = group.update(batch())
            losses.append(loss)
            assert group.restarts >= 1
            assert all(np.isfinite(loss) for loss in losses)
            # No update was lost to the kill: the driver counter matches
            # rank 0's applied-step count exactly.
            assert group.updates == len(losses)
            assert np.all(np.isfinite(group.get_weights(flat=True)))
            names = [e.name for e in group.supervisor.restart_history]
            assert any(n.startswith("learner-") for n in names)
        finally:
            group.shutdown()
            raylite.shutdown()


# ---------------------------------------------------------------------------
# Serving gateway under overload + replica death
# ---------------------------------------------------------------------------
class TestGatewayChaos:
    def test_sigkill_replica_while_gateway_sheds(self):
        """SIGKILL one process replica while the HTTP gateway is
        rejecting excess load behind a tiny bounded queue.

        The contract under simultaneous overload + failure: zero hung
        requests — every single request resolves, within its deadline,
        to a success (200), a typed overload rejection (503), or a
        deadline expiry (504); nothing else, and nothing blocks past
        the budget.  After the supervisor heals the slot, the pool
        serves the exact reference policy again over HTTP.
        """
        from repro.agents import DQNAgent
        from repro.serving import (
            DeadlineExceededError,
            HttpGateway,
            HttpPolicyClient,
            InferenceWorkerPool,
            OverloadError,
        )
        from repro.spaces import FloatBox

        def dqn_factory():
            return DQNAgent(state_space=FloatBox(shape=(8,)),
                            action_space=IntBox(4),
                            network_spec=[{"type": "dense", "units": 16,
                                           "activation": "relu"}],
                            seed=5)

        pool = InferenceWorkerPool(
            dqn_factory, FloatBox(shape=(8,)), num_replicas=2,
            max_batch_size=8, batch_window=0.002, parallel_spec="process",
            supervision_spec=SUPERVISION,
            admission_spec={"max_queue": 4, "retry_after": 0.01})
        gateway = HttpGateway(pool, default_deadline=2.0)
        try:
            gateway.start()
            obs = np.random.default_rng(9).standard_normal(
                (8, 8)).astype(np.float32)
            timer = _sigkill_later(lambda: pool.replicas[0].pid, 1.0)
            stop_at = time.perf_counter() + 3.0
            counts = {"ok": 0, "overload": 0, "deadline": 0}
            unexpected = []
            over_deadline = []
            lock = threading.Lock()

            def client_loop(index):
                client = HttpPolicyClient.for_gateway(
                    gateway, deadline_ms=2000)
                try:
                    while time.perf_counter() < stop_at:
                        t0 = time.perf_counter()
                        try:
                            client.act(obs[index])
                            key = "ok"
                        except OverloadError:
                            key = "overload"
                        except DeadlineExceededError:
                            key = "deadline"
                        except BaseException as exc:  # noqa: BLE001
                            with lock:
                                unexpected.append(exc)
                            return
                        elapsed = time.perf_counter() - t0
                        with lock:
                            counts[key] += 1
                            # 2s budget + generous loaded-CI slack; a
                            # hang would blow far past this.
                            if elapsed > 3.5:
                                over_deadline.append(elapsed)
                finally:
                    client.close()

            threads = [threading.Thread(target=client_loop, args=(i,),
                                        daemon=True)
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            timer.join()
            stragglers = sum(1 for t in threads if t.is_alive())
            assert stragglers == 0, f"{stragglers} clients hung"
            assert not unexpected, f"untyped failures: {unexpected[:3]}"
            assert not over_deadline, (
                f"requests blocked past deadline: {over_deadline[:5]}")
            assert counts["ok"] > 0
            # The tiny queue under 8 concurrent clients guarantees the
            # gateway was actively load-shedding during the run.
            assert counts["overload"] > 0, counts
            assert pool.supervisor.total_restarts >= 1
            assert all(h.is_alive() for h in pool.replicas)
            # Post-restart parity over the HTTP path.
            reference = dqn_factory()
            expected = [int(reference.get_actions(o, explore=False)[0])
                        for o in obs]
            with HttpPolicyClient.for_gateway(gateway,
                                              timeout=30.0) as client:
                served = [int(client.act(o, deadline_ms=30000))
                          for o in obs]
            assert served == expected
        finally:
            gateway.stop()
            pool.stop()
            raylite.shutdown()
