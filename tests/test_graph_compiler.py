"""Graph-compiler tests: pass correctness, executor parity, and
bitwise-identical agent fetch results across ``optimize`` levels."""

import numpy as np
import pytest

from repro.agents import DQNAgent, IMPALAAgent, PPOAgent
from repro.backend import (
    Graph,
    Session,
    Variable,
    functional as F,
    symbolic_mode,
)
from repro.spaces import FloatBox, IntBox
from repro.utils import RLGraphError

LEVELS = ("none", "basic", "fused")


def make_graph():
    return Graph(name="compiler-test", seed=123)


def run_all_levels(graph, fetches, feed=None):
    """Session.run the same fetch-set at every optimize level."""
    return {opt: Session(graph, optimize=opt).run(fetches, feed)
            for opt in LEVELS}


class TestPasses:
    def test_constant_folding(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            c = F.add(F.mul(g.constant(2.0), g.constant(3.0)), g.constant(1.0))
            y = F.mul(x, c)
        sess = Session(g, optimize="basic")
        out = sess.run(y, {x: np.ones(2, np.float32)})
        np.testing.assert_allclose(out, [7.0, 7.0])
        assert sess.stats.nodes_folded == 2  # mul and add collapse

    def test_cse(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            a = F.add(F.mul(x, 2.0), 1.0)
            b = F.add(F.mul(x, 2.0), 1.0)
            out = F.sub(a, b)
        sess = Session(g, optimize="basic")
        res = sess.run(out, {x: np.arange(3, dtype=np.float32)})
        np.testing.assert_allclose(res, [0, 0, 0])
        assert sess.stats.nodes_cse == 2  # duplicate mul and add merge

    def test_dead_node_elimination(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            # The exp feeds only a folded const chain -> dead at runtime.
            dead_feed = F.exp(g.constant(0.0))
            y = F.add(x, F.mul(dead_feed, 0.0))
        sess = Session(g, optimize="basic")
        out = sess.run(y, {x: np.ones(2, np.float32)})
        np.testing.assert_allclose(out, [1, 1])
        assert sess.stats.nodes_folded >= 1

    def test_fusion_produces_kernels_and_identical_values(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            y = F.relu(F.add(F.mul(F.neg(x), 0.5), 1.0))
        ref = Session(g, optimize="none").run(y, {x: np.arange(5, dtype=np.float32)})
        sess = Session(g, optimize="fused")
        out = sess.run(y, {x: np.arange(5, dtype=np.float32)})
        assert np.array_equal(ref, out) and ref.dtype == out.dtype
        assert sess.stats.fused_kernels == 1
        assert sess.stats.nodes_fused == 4

    def test_fetch_const_placeholder_and_folded_node(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            c = g.constant(np.asarray([5.0, 6.0], np.float32))
            folded = F.mul(c, 2.0)
        for opt in LEVELS:
            outs = Session(g, optimize=opt).run(
                [x, c, folded], {x: np.asarray([1.0, 2.0], np.float32)})
            np.testing.assert_allclose(outs[0], [1, 2])
            np.testing.assert_allclose(outs[1], [5, 6])
            np.testing.assert_allclose(outs[2], [10, 12])

    def test_unfed_placeholder_raises_at_all_levels(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            y = F.mul(x, 2.0)
        for opt in LEVELS:
            with pytest.raises(RLGraphError):
                Session(g, optimize=opt).run(y)

    def test_unknown_optimize_level_rejected(self):
        with pytest.raises(RLGraphError):
            Session(make_graph(), optimize="aggressive")


class TestStatefulParity:
    def test_cse_does_not_cross_mutation_barrier(self):
        # The two F.mul(read, 2.0) nodes are textually identical, but the
        # first fetch branch runs an assign_add between them (exactly how
        # a loss fetch interleaves with a td-error fetch around an
        # optimizer step). Plan order: mul#1, assign, mul#2 — merging the
        # duplicates would make mul#2 observe the pre-assign buffer.
        g = make_graph()
        with g.as_default(), symbolic_mode():
            v = Variable("v", np.asarray([1.0, 2.0], np.float32),
                         trainable=False, graph=g)
            read = v.read()
            y_pre = F.mul(read, 2.0)
            bump = v.assign_add(g.constant(np.asarray([1.0, 1.0], np.float32)))
            loss = F.with_deps(y_pre, bump)  # forces: y_pre, then assign
            y_post = F.mul(read, 2.0)        # second fetch branch, post-assign
        for opt in LEVELS:
            v.set(np.asarray([1.0, 2.0], np.float32))
            out_loss, out_post = Session(g, optimize=opt).run([loss, y_post])
            np.testing.assert_allclose(out_loss, [2.0, 4.0], err_msg=opt)
            np.testing.assert_allclose(out_post, [4.0, 6.0], err_msg=opt)

    def test_scatter_assign_ordering_under_control_deps(self):
        # Ring-buffer pointer semantics from the symbolic backend tests,
        # re-checked at every optimize level.
        for opt in LEVELS:
            g = make_graph()
            with g.as_default(), symbolic_mode():
                buf = Variable("buf", np.zeros(4, np.float32),
                               trainable=False, graph=g)
                ptr = Variable("ptr", np.asarray(0, np.int64),
                               trainable=False, graph=g)
                vals = g.placeholder((None,), np.float32)
                n = F.size_of(vals)
                idx = F.mod(F.add(F.dyn_arange(n), ptr.read()), 4)
                write = buf.scatter_update(idx, vals)
                advance = ptr.assign(F.mod(F.add(ptr.read(), n), 4)).with_deps(write)
                done = F.group(write, advance)
            sess = Session(g, optimize=opt)
            sess.run(done, {vals: np.asarray([1.0, 2.0, 3.0])})
            np.testing.assert_allclose(buf.value, [1, 2, 3, 0], err_msg=opt)
            assert ptr.value == 3
            sess.run(done, {vals: np.asarray([9.0, 8.0])})
            np.testing.assert_allclose(buf.value, [8, 2, 3, 9], err_msg=opt)
            assert ptr.value == 1

    def test_random_stream_parity(self):
        # Same graph seed -> identical stateful random draws per level.
        draws = {}
        for opt in LEVELS:
            g = Graph(name="rng", seed=99)
            with g.as_default(), symbolic_mode():
                r = F.random_uniform(shape=(4,), seed=g.next_op_seed())
            sess = Session(g, optimize=opt)
            draws[opt] = [sess.run(r) for _ in range(3)]
        for opt in ("basic", "fused"):
            for a, b in zip(draws["none"], draws[opt]):
                assert np.array_equal(a, b)


class TestConstantDtype:
    def test_float64_downcast_by_default(self):
        g = make_graph()
        assert g.constant(1.5).attrs["value"].dtype == np.float32

    def test_explicit_float64_preserved(self):
        g = make_graph()
        c = g.constant(1.5, dtype=np.float64)
        assert c.attrs["value"].dtype == np.float64
        assert c.dtype == np.float64


def _variable_state(agent):
    state = {name: var.value.copy()
             for name, var in agent.graph.graph.variables.items()}
    # The fused learner path stores optimizer slots as one flat slab per
    # kind ("m-slab") where the per-variable ablation keeps "m-0..K".
    # Canonicalize slabs to the per-variable naming so slot VALUES still
    # compare bitwise across optimize levels.
    from repro.components.optimizers.optimizer import Optimizer
    for comp in agent.root.get_all_components():
        if not isinstance(comp, Optimizer) or comp._param_slab is None:
            continue
        slab = comp._param_slab
        index_of = {id(v): i for i, v in enumerate(comp._variables)}
        prefix = comp.global_scope + "/"
        for name in [n for n in state
                     if n.startswith(prefix) and n.endswith("-slab")]:
            kind = name[len(prefix):-len("-slab")]
            flat = state.pop(name)
            for member, (_, off, shape) in zip(slab.members, slab.layout):
                size = int(np.prod(shape)) if shape else 1
                state[f"{prefix}{kind}-{index_of[id(member)]}"] = \
                    flat[off:off + size].reshape(shape)
    return state


def _assert_state_equal(ref, other, context):
    assert set(ref) == set(other)
    for name in ref:
        assert ref[name].dtype == other[name].dtype, (context, name)
        assert np.array_equal(ref[name], other[name]), (context, name)


@pytest.mark.parametrize("optimize", ["basic", "fused"])
class TestAgentParity:
    """Tier-1 agent smoke graphs produce bitwise-identical fetches and
    variable states at every optimize level."""

    def test_dqn_act_and_update(self, optimize):
        rng = np.random.default_rng(0)
        batch = {
            "states": rng.standard_normal((64, 4)).astype(np.float32),
            "actions": rng.integers(0, 2, 64),
            "rewards": rng.standard_normal(64).astype(np.float32),
            "terminals": rng.random(64) < 0.1,
            "next_states": rng.standard_normal((64, 4)).astype(np.float32),
        }

        def drive(opt):
            agent = DQNAgent(
                state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
                prioritized_replay=True, dueling=True, double_q=True,
                seed=11, batch_size=8, memory_capacity=256, sync_interval=3,
                network_spec=[{"type": "dense", "units": 16,
                               "activation": "relu"}],
                optimize=opt)
            agent.observe_batch(**batch)
            outs = []
            for _ in range(6):
                actions, _ = agent.get_actions(batch["states"][:8])
                loss, td = agent.update()
                outs.append((np.asarray(actions), loss, td))
            return outs, _variable_state(agent)

        ref_outs, ref_state = drive("none")
        outs, state = drive(optimize)
        for (a0, l0, t0), (a1, l1, t1) in zip(ref_outs, outs):
            assert np.array_equal(a0, a1)
            assert l0 == l1
            assert np.array_equal(t0, t1) and t0.dtype == t1.dtype
        _assert_state_equal(ref_state, state, optimize)

    def test_impala_update(self, optimize):
        rng = np.random.default_rng(2)
        t_steps, batch = 5, 3
        rollout = {
            "states": rng.standard_normal((t_steps, batch, 4)).astype(np.float32),
            "actions": rng.integers(0, 3, (t_steps, batch)),
            "behaviour_log_probs": np.full((t_steps, batch), -1.0, np.float32),
            "rewards": rng.normal(size=(t_steps, batch)).astype(np.float32),
            "terminals": np.zeros((t_steps, batch), bool),
            "bootstrap_states": rng.standard_normal((batch, 4)).astype(np.float32),
        }

        def drive(opt):
            agent = IMPALAAgent(state_space=(4,), action_space=IntBox(3),
                                seed=7, optimize=opt)
            losses = [agent.update(rollout) for _ in range(4)]
            acts = agent.get_actions(rollout["states"][0])
            return losses, acts, _variable_state(agent)

        ref_losses, ref_acts, ref_state = drive("none")
        losses, acts, state = drive(optimize)
        assert losses == ref_losses
        for a, b in zip(ref_acts, acts):
            assert np.array_equal(np.asarray(a), np.asarray(b))
        _assert_state_equal(ref_state, state, optimize)

    def test_ppo_update(self, optimize):
        rng = np.random.default_rng(1)
        n = 8
        batch = {
            "states": rng.standard_normal((n, 4)).astype(np.float32),
            "actions": rng.integers(0, 2, n),
            "old_log_probs": np.full(n, -0.7, np.float32),
            "rewards": np.ones(n, np.float32),
            "terminals": np.zeros(n, bool),
            "values": np.zeros(n, np.float32),
        }

        def drive(opt):
            agent = PPOAgent(state_space=(4,), action_space=IntBox(2),
                             seed=3, epochs=2, minibatch_size=4, optimize=opt)
            losses = [agent.update(batch) for _ in range(3)]
            return losses, _variable_state(agent)

        ref_losses, ref_state = drive("none")
        losses, state = drive(optimize)
        assert losses == ref_losses
        _assert_state_equal(ref_state, state, optimize)
