"""Vector-env engine tests: spec resolution, auto-reset, parity with the
sequential baseline, determinism under utils.seeding, and the
step_async/step_wait contract."""

import functools
import os

import numpy as np
import pytest

from repro.environments import (
    VECTOR_ENVS,
    AsyncVectorEnv,
    GridWorld,
    RandomEnv,
    SequentialVectorEnv,
    SubprocVectorEnv,
    ThreadedVectorEnv,
    VectorEnv,
    vector_env_from_spec,
)
from repro.execution import SingleThreadedWorker
from repro.utils import RLGraphError
from repro.utils.seeding import SeedStream

# The subproc engine talks to worker processes; fail fast on deadlock.
pytestmark = pytest.mark.mp_timeout(120)

ENGINES = ["sequential", "threaded", "async", "subproc"]


def _random_envs(n, stream_seed=7, terminal_prob=0.15):
    stream = SeedStream(stream_seed)
    return [RandomEnv(state_space=(4,), action_space=2,
                      terminal_prob=terminal_prob,
                      seed=stream.spawn("env", i)) for i in range(n)]


def _rollout(vec, num_steps, action_seed=3):
    """Step a fixed deterministic action stream; return copied trajectory."""
    rng = np.random.default_rng(action_seed)
    states = [vec.reset_all().copy()]
    rewards, terminals = [], []
    for _ in range(num_steps):
        actions = rng.integers(0, 2, size=vec.num_envs)
        s, r, t = vec.step(actions)
        states.append(s.copy())
        rewards.append(r.copy())
        terminals.append(t.copy())
    return np.asarray(states), np.asarray(rewards), np.asarray(terminals)


class TestSpecResolution:
    def test_default_is_sequential(self):
        vec = vector_env_from_spec(None, envs=_random_envs(2))
        assert type(vec) is SequentialVectorEnv

    def test_string_and_dict_specs(self):
        assert type(vector_env_from_spec(
            "threaded", envs=_random_envs(2))) is ThreadedVectorEnv
        vec = vector_env_from_spec({"type": "async", "num_threads": 1},
                                   envs=_random_envs(2))
        assert type(vec) is AsyncVectorEnv

    def test_instance_passthrough(self):
        vec = SequentialVectorEnv(envs=_random_envs(2))
        assert vector_env_from_spec(vec) is vec

    def test_unknown_engine_raises(self):
        with pytest.raises(RLGraphError):
            vector_env_from_spec("warp_drive", envs=_random_envs(1))

    def test_registry_lists_engines(self):
        for name in ENGINES:
            assert name in VECTOR_ENVS


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineSemantics:
    def test_batched_step_shapes(self, engine):
        vec = vector_env_from_spec(engine, envs=_random_envs(3))
        states = vec.reset_all()
        assert states.shape == (3, 4)
        states, rewards, terminals = vec.step([0, 1, 0])
        assert states.shape == (3, 4)
        assert rewards.shape == (3,) and rewards.dtype == np.float32
        assert terminals.shape == (3,) and terminals.dtype == bool
        vec.close()

    def test_auto_reset_and_accounting(self, engine):
        vec = vector_env_from_spec(
            engine, env_fns=[lambda: GridWorld("corridor", max_steps=50)])
        vec.reset_all()
        for _ in range(7):
            states, _, terminals = vec.step([1])
        assert terminals[0]
        assert len(vec.finished_episode_returns) == 1
        assert vec.finished_episode_steps == [7]
        # Auto-reset: back at the start cell, counters rewound.
        assert states[0][0] == 1.0
        assert vec.episode_steps[0] == 0 and vec.episode_returns[0] == 0.0
        assert vec.mean_finished_return() is not None
        vec.close()

    def test_action_count_mismatch(self, engine):
        vec = vector_env_from_spec(engine, envs=_random_envs(1))
        vec.reset_all()
        with pytest.raises(RLGraphError):
            vec.step([0, 1])
        vec.close()

    def test_step_before_reset_raises(self, engine):
        vec = vector_env_from_spec(engine, envs=_random_envs(2))
        with pytest.raises(RLGraphError):
            vec.step([0, 0])
        vec.close()

    def test_finished_returns_since(self, engine):
        vec = vector_env_from_spec(
            engine, env_fns=[lambda: GridWorld("corridor", max_steps=50)])
        vec.reset_all()
        offset = 0
        shipped = []
        for _ in range(16):
            vec.step([1])
            new, offset = vec.finished_returns_since(offset)
            shipped.extend(new)
        assert shipped == vec.finished_episode_returns  # no dupes, no loss
        vec.close()

    def test_deterministic_across_runs(self, engine):
        """Identically seeded engines replay identical trajectories,
        regardless of thread scheduling."""
        runs = []
        for _ in range(2):
            vec = vector_env_from_spec(engine, envs=_random_envs(4))
            runs.append(_rollout(vec, 30))
            vec.close()
        for a, b in zip(runs[0], runs[1]):
            np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("engine", [
    "threaded",
    "async",
    "subproc",
    {"type": "subproc", "num_workers": 2},  # shard-boundary coverage
])
class TestParityWithSequential:
    def test_trajectory_and_episode_parity(self, engine):
        ref = SequentialVectorEnv(envs=_random_envs(4))
        ref_traj = _rollout(ref, 40)
        vec = vector_env_from_spec(engine, envs=_random_envs(4))
        traj = _rollout(vec, 40)
        for a, b in zip(ref_traj, traj):
            np.testing.assert_array_equal(a, b)
        assert vec.finished_episode_returns == ref.finished_episode_returns
        assert vec.finished_episode_steps == ref.finished_episode_steps
        np.testing.assert_array_equal(vec.episode_returns,
                                      ref.episode_returns)
        np.testing.assert_array_equal(vec.episode_steps, ref.episode_steps)
        vec.close()
        ref.close()


class TestOutputAliasing:
    def test_default_returns_snapshot_copies(self):
        """Accumulating returned states across steps must not alias the
        engine's live buffer (identity-preprocessing agents hand the
        input array straight back into rollout buffers)."""
        for engine in ("threaded", "async", "subproc"):
            vec = vector_env_from_spec(engine, envs=_random_envs(3))
            rows = [vec.reset_all()]
            for _ in range(5):
                s, _, _ = vec.step([0, 0, 0])
                rows.append(s)
            # RandomEnv states are fresh draws: rows must all differ.
            stacked = np.asarray(rows)
            for a in range(len(rows)):
                for b in range(a + 1, len(rows)):
                    assert not np.array_equal(stacked[a], stacked[b]), engine
            vec.close()

    def test_zero_copy_opt_in_reuses_buffers(self):
        for engine in ("threaded", "subproc"):
            vec = vector_env_from_spec(
                {"type": engine, "copy_output": False}, envs=_random_envs(2))
            vec.reset_all()
            s1, _, _ = vec.step([0, 0])
            s2, _, _ = vec.step([1, 1])
            assert s1 is s2, engine  # the documented in-place contract
            del s1, s2  # release the shared views before close()
            vec.close()


class TestAsyncContract:
    def test_step_wait_without_async_raises(self):
        for engine in ENGINES:
            vec = vector_env_from_spec(engine, envs=_random_envs(2))
            vec.reset_all()
            with pytest.raises(RLGraphError):
                vec.step_wait()
            vec.close()

    def test_double_step_async_raises(self):
        vec = vector_env_from_spec("sequential", envs=_random_envs(2))
        vec.reset_all()
        vec.step_async([0, 0])
        with pytest.raises(RLGraphError):
            vec.step_async([0, 0])
        vec.step_wait()
        vec.close()

    def test_previous_states_survive_inflight_step(self):
        """The double buffer keeps the last returned states valid while
        the next step runs — the step/act overlap guarantee."""
        vec = AsyncVectorEnv(envs=_random_envs(4))
        s0 = vec.reset_all()
        snapshot0 = s0.copy()
        vec.step_async([0, 0, 0, 0])
        np.testing.assert_array_equal(s0, snapshot0)
        s1, _, _ = vec.step_wait()
        snapshot1 = s1.copy()
        vec.step_async([1, 1, 1, 1])
        np.testing.assert_array_equal(s1, snapshot1)
        vec.step_wait()
        vec.close()


class _ScriptedAgent:
    """DQN-signature stub: deterministic actions from the state content.

    Deliberately returns the *input array itself* as "preprocessed" —
    real agents with an identity preprocessing stack do exactly this,
    so the parity test exercises the engines' output-aliasing behavior,
    not a sanitized copy.
    """

    def get_actions(self, states, explore=True):
        states = np.asarray(states)
        actions = (np.abs(states).sum(axis=-1) * 1000).astype(np.int64) % 2
        return actions, states


@pytest.mark.parametrize("engine", [
    "threaded",
    "async",
    "subproc",
    {"type": "threaded", "copy_output": False},
    {"type": "async", "copy_output": False},
    {"type": "subproc", "copy_output": False, "num_workers": 2},
])
def test_worker_batch_parity_across_engines(engine):
    """SingleThreadedWorker collects identical batches on every engine —
    including zero-copy mode, where the worker must snapshot the aliased
    preprocessed arrays itself."""
    def collect(engine_spec):
        vec = vector_env_from_spec(engine_spec, envs=_random_envs(4))
        worker = SingleThreadedWorker(_ScriptedAgent(), vec, n_step=2,
                                      discount=0.9)
        batch = worker.collect_samples(64)
        vec.close()
        return batch
    ref = collect("sequential")
    got = collect(engine)
    assert set(ref) == set(got)
    for key in ref:
        np.testing.assert_array_equal(ref[key], got[key])


class _RaisingEnv(RandomEnv):
    """Steps normally, then raises inside the worker process."""

    def __init__(self, fuse: int = 3, **kwargs):
        super().__init__(**kwargs)
        self.fuse = fuse

    def step(self, action):
        self.fuse -= 1
        if self.fuse < 0:
            raise ValueError("env exploded")
        return super().step(action)


class _CrashingEnv(RandomEnv):
    """Kills its worker process outright (no exception to ship)."""

    def __init__(self, fuse: int = 3, **kwargs):
        super().__init__(**kwargs)
        self.fuse = fuse

    def step(self, action):
        self.fuse -= 1
        if self.fuse < 0:
            os._exit(13)
        return super().step(action)


class TestSubprocFailures:
    def test_env_exception_surfaces_descriptively(self):
        vec = SubprocVectorEnv(envs=[_RaisingEnv(fuse=2, seed=0),
                                     RandomEnv(seed=1)], num_workers=2)
        vec.reset_all()
        vec.step([0, 0])
        vec.step([0, 0])
        with pytest.raises(RLGraphError, match="worker 0") as excinfo:
            vec.step([0, 0])
        assert "env exploded" in str(excinfo.value)
        vec.close()

    def test_crashed_worker_reports_dead_worker(self):
        vec = SubprocVectorEnv(envs=[_CrashingEnv(fuse=1, seed=0)])
        vec.reset_all()
        vec.step([0])
        with pytest.raises(RLGraphError, match="worker 0.*died"):
            vec.step([0])
        vec.close()  # reaping a dead worker must not raise or hang

    def test_worker_count_clamped_to_envs(self):
        vec = SubprocVectorEnv(envs=_random_envs(2), num_workers=8)
        assert len(vec._procs) == 2
        vec.close()


class TestSubprocSeeding:
    def test_env_fns_seeding_determinism(self):
        """Envs constructed *inside* the workers from seeded factories
        replay the sequential baseline bitwise."""
        def factory(seed):
            return RandomEnv(state_space=(4,), action_space=2,
                             terminal_prob=0.15, seed=seed)

        stream = SeedStream(11)
        seeds = [stream.spawn("env", i) for i in range(4)]
        ref = SequentialVectorEnv(
            env_fns=[functools.partial(factory, s) for s in seeds])
        vec = SubprocVectorEnv(
            env_fns=[functools.partial(factory, s) for s in seeds],
            num_workers=2)
        for a, b in zip(_rollout(ref, 30), _rollout(vec, 30)):
            np.testing.assert_array_equal(a, b)
        vec.close()
        ref.close()

    @pytest.mark.parametrize("engine_spec", [
        "sequential",
        "threaded",
        "async",
        "subproc",
        {"type": "subproc", "num_workers": 2},  # cross-shard boundary
        {"type": "subproc", "num_workers": 4},  # one env per worker
    ])
    def test_seed_determinism_from_factories(self, engine_spec):
        """Seeded factories replay identical trajectories on every
        engine — including subproc, where the envs are constructed
        *inside* freshly started worker processes each run, so any
        hidden per-process RNG state would break the replay."""
        def factory(seed):
            return RandomEnv(state_space=(4,), action_space=2,
                             terminal_prob=0.15, seed=seed)

        runs, episode_logs = [], []
        for _ in range(2):
            stream = SeedStream(23)
            seeds = [stream.spawn("env", i) for i in range(4)]
            vec = vector_env_from_spec(
                engine_spec,
                env_fns=[functools.partial(factory, s) for s in seeds])
            runs.append(_rollout(vec, 25))
            episode_logs.append(list(vec.finished_episode_returns))
            vec.close()
        for a, b in zip(runs[0], runs[1]):
            np.testing.assert_array_equal(a, b)
        # Episode accounting is part of the determinism contract too.
        assert episode_logs[0] == episode_logs[1]
        # ... and the whole stream matches the sequential baseline.
        stream = SeedStream(23)
        seeds = [stream.spawn("env", i) for i in range(4)]
        ref = SequentialVectorEnv(
            env_fns=[functools.partial(factory, s) for s in seeds])
        for a, b in zip(runs[0], _rollout(ref, 25)):
            np.testing.assert_array_equal(a, b)
        ref.close()

    def test_spawn_start_method_parity(self):
        """Spawn-safety: picklable env_fns reproduce the same rollout."""
        fns = [functools.partial(RandomEnv, state_space=(4,), action_space=2,
                                 terminal_prob=0.15, seed=100 + i)
               for i in range(2)]
        ref = SequentialVectorEnv(env_fns=fns)
        vec = SubprocVectorEnv(env_fns=fns, start_method="spawn")
        for a, b in zip(_rollout(ref, 10), _rollout(vec, 10)):
            np.testing.assert_array_equal(a, b)
        vec.close()
        ref.close()


@pytest.mark.parametrize("engine", ENGINES)
def test_agent_act_batched_path(engine):
    """Agent.act drives any engine and reports acting throughput."""
    from repro.agents import DQNAgent
    from repro.spaces import FloatBox, IntBox

    agent = DQNAgent(state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
                     network_spec=[{"type": "dense", "units": 8}],
                     memory_capacity=64, batch_size=8, seed=11)
    vec = vector_env_from_spec(engine, envs=_random_envs(4))
    stats = agent.act(vec, num_steps=10)
    assert stats["env_frames"] == 40
    assert stats["env_frames_per_second"] > 0
    vec.close()
