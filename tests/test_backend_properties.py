"""Property-based backend tests (hypothesis): symbolic shape inference
must agree with actual eager results, symbolic and eager execution must
agree numerically, and v-trace must match a reference implementation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import (
    Graph,
    Session,
    functional as F,
    symbolic_mode,
)
from repro.backend.ops import broadcast_shapes_unknown
from repro.utils import RLGraphError

_shapes = st.lists(st.integers(1, 5), min_size=0, max_size=3).map(tuple)


class TestBroadcastShapes:
    @settings(max_examples=60, deadline=None)
    @given(a=_shapes, b=_shapes)
    def test_matches_numpy_when_known(self, a, b):
        try:
            expected = np.broadcast_shapes(a, b)
            numpy_ok = True
        except ValueError:
            numpy_ok = False
        if numpy_ok:
            assert broadcast_shapes_unknown([a, b]) == expected
        else:
            with pytest.raises(RLGraphError):
                broadcast_shapes_unknown([a, b])

    @settings(max_examples=40, deadline=None)
    @given(a=_shapes)
    def test_unknown_batch_dim_preserved(self, a):
        shape = (None,) + a
        out = broadcast_shapes_unknown([shape, ()])
        assert out == shape

    def test_unknown_vs_one(self):
        assert broadcast_shapes_unknown([(None, 4), (1, 4)]) == (None, 4)
        assert broadcast_shapes_unknown([(None, 1), (1, 7)]) == (None, 7)


_UNARY_OPS = {
    "exp": F.exp, "tanh": F.tanh, "sigmoid": F.sigmoid, "relu": F.relu,
    "square": F.square, "neg": F.neg, "abs": F.abs, "softplus": F.softplus,
}

_BINARY_OPS = {"add": F.add, "sub": F.sub, "mul": F.mul,
               "maximum": F.maximum, "minimum": F.minimum}


class TestSymbolicEagerAgreement:
    """The same functional expression must produce identical values and
    (where inferred) shapes on both execution paths."""

    def _both(self, build_expr, feed_arrays):
        # Eager.
        eager_out = build_expr(*feed_arrays)
        # Symbolic.
        g = Graph(seed=0)
        with g.as_default(), symbolic_mode():
            phs = [g.placeholder(a.shape, a.dtype) for a in feed_arrays]
            node = build_expr(*phs)
        sym_out = Session(g).run(node, dict(zip(phs, feed_arrays)))
        return np.asarray(eager_out), np.asarray(sym_out), node

    @settings(max_examples=30, deadline=None)
    @given(shape=st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple),
           op_name=st.sampled_from(sorted(_UNARY_OPS)),
           seed=st.integers(0, 10_000))
    def test_unary_ops(self, shape, op_name, seed):
        x = np.random.default_rng(seed).uniform(-2, 2, shape).astype(np.float32)
        eager, sym, node = self._both(_UNARY_OPS[op_name], [x])
        np.testing.assert_allclose(eager, sym, atol=1e-6)
        if node.shape is not None:
            assert tuple(node.shape) == sym.shape

    @settings(max_examples=30, deadline=None)
    @given(shape=st.lists(st.integers(1, 4), min_size=1, max_size=2).map(tuple),
           op_name=st.sampled_from(sorted(_BINARY_OPS)),
           seed=st.integers(0, 10_000))
    def test_binary_ops(self, shape, op_name, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-2, 2, shape).astype(np.float32)
        y = rng.uniform(-2, 2, shape).astype(np.float32)
        eager, sym, node = self._both(_BINARY_OPS[op_name], [x, y])
        np.testing.assert_allclose(eager, sym, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(rows=st.integers(1, 5), cols=st.integers(1, 5),
           axis=st.sampled_from([None, 0, 1]),
           keepdims=st.booleans(), seed=st.integers(0, 10_000))
    def test_reductions(self, rows, cols, axis, keepdims, seed):
        x = np.random.default_rng(seed).uniform(
            -1, 1, (rows, cols)).astype(np.float32)

        def expr(v):
            return F.reduce_sum(v, axis=axis, keepdims=keepdims)

        eager, sym, node = self._both(expr, [x])
        np.testing.assert_allclose(eager, sym, atol=1e-5)
        assert tuple(node.shape) == sym.shape

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 6), m=st.integers(1, 6), k=st.integers(1, 6),
           seed=st.integers(0, 10_000))
    def test_matmul(self, n, m, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, m)).astype(np.float32)
        b = rng.standard_normal((m, k)).astype(np.float32)
        eager, sym, node = self._both(F.matmul, [a, b])
        np.testing.assert_allclose(eager, sym, atol=1e-5)
        assert node.shape == (n, k)

    @settings(max_examples=20, deadline=None)
    @given(batch=st.integers(1, 4), depth=st.integers(2, 6),
           seed=st.integers(0, 10_000))
    def test_softmax_one_hot_composite(self, batch, depth, seed):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((batch, depth)).astype(np.float32)
        actions = rng.integers(0, depth, batch)

        def expr(l):
            onehot = F.one_hot(actions, depth)
            return F.reduce_sum(F.mul(F.log_softmax(l), onehot), axis=-1)

        eager, sym, _ = self._both(expr, [logits])
        np.testing.assert_allclose(eager, sym, atol=1e-5)


def vtrace_reference(log_rhos, discounts, rewards, values, bootstrap,
                     clip_rho=1.0, clip_pg=1.0):
    """Literal transcription of the IMPALA paper's recursion."""
    rhos = np.exp(log_rhos)
    clipped = np.minimum(clip_rho, rhos)
    cs = np.minimum(1.0, rhos)
    T = len(rewards)
    vs = np.zeros_like(values)
    for t in range(T):
        acc = 0.0
        for s in range(t, T):
            prod_c = np.prod(cs[t:s], axis=0) if s > t else np.ones_like(cs[0])
            v_next = values[s + 1] if s + 1 < T else bootstrap
            delta = clipped[s] * (rewards[s] + discounts[s] * v_next
                                  - values[s])
            disc = np.prod(discounts[t:s], axis=0) if s > t \
                else np.ones_like(discounts[0])
            acc += disc * prod_c * delta
        vs[t] = values[t] + acc
    vs_next = np.concatenate([vs[1:], bootstrap[None]], axis=0)
    pg_rhos = np.minimum(clip_pg, rhos)
    pg_adv = pg_rhos * (rewards + discounts * vs_next - values)
    return vs, pg_adv


class TestVTrace:
    @settings(max_examples=20, deadline=None)
    @given(t_steps=st.integers(1, 6), batch=st.integers(1, 3),
           seed=st.integers(0, 10_000))
    def test_matches_reference(self, t_steps, batch, seed):
        rng = np.random.default_rng(seed)
        log_rhos = rng.uniform(-1, 1, (t_steps, batch)).astype(np.float32)
        discounts = np.full((t_steps, batch), 0.9, np.float32)
        rewards = rng.normal(size=(t_steps, batch)).astype(np.float32)
        values = rng.normal(size=(t_steps, batch)).astype(np.float32)
        bootstrap = rng.normal(size=batch).astype(np.float32)

        vs, pg = F.vtrace(log_rhos, discounts, rewards, values, bootstrap)
        ref_vs, ref_pg = vtrace_reference(log_rhos, discounts, rewards,
                                          values, bootstrap)
        np.testing.assert_allclose(vs, ref_vs, atol=1e-4, rtol=1e-4)
        np.testing.assert_allclose(pg, ref_pg, atol=1e-4, rtol=1e-4)

    def test_on_policy_reduces_to_nstep_returns(self):
        # rho == 1 and no terminals: vs_t = n-step discounted return.
        t_steps, batch = 4, 1
        rewards = np.ones((t_steps, batch), np.float32)
        values = np.zeros((t_steps, batch), np.float32)
        discounts = np.full((t_steps, batch), 0.5, np.float32)
        log_rhos = np.zeros((t_steps, batch), np.float32)
        bootstrap = np.zeros(batch, np.float32)
        vs, _ = F.vtrace(log_rhos, discounts, rewards, values, bootstrap)
        np.testing.assert_allclose(vs[:, 0], [1.875, 1.75, 1.5, 1.0],
                                   atol=1e-5)


class TestDistributionsStatistics:
    def test_categorical_sampling_frequencies(self):
        from repro.components.policies.distributions import Categorical
        dist = Categorical(3)
        logits = np.log(np.asarray([[0.6, 0.3, 0.1]], np.float32))
        logits = np.tile(logits, (4000, 1))
        samples = np.asarray(dist.sample(logits))
        freqs = np.bincount(samples, minlength=3) / len(samples)
        np.testing.assert_allclose(freqs, [0.6, 0.3, 0.1], atol=0.05)

    def test_gaussian_log_prob_matches_scipy(self):
        from scipy.stats import norm
        from repro.components.policies.distributions import Gaussian
        dist = Gaussian(2)
        mean = np.asarray([[0.5, -0.5]], np.float32)
        log_std = np.asarray([[0.1, -0.3]], np.float32)
        params = np.concatenate([mean, log_std], axis=1)
        actions = np.asarray([[1.0, 0.0]], np.float32)
        lp = np.asarray(dist.log_prob(params, actions))
        expected = (norm.logpdf(1.0, 0.5, np.exp(0.1))
                    + norm.logpdf(0.0, -0.5, np.exp(-0.3)))
        np.testing.assert_allclose(lp[0], expected, atol=1e-4)

    def test_gaussian_entropy_analytic(self):
        from repro.components.policies.distributions import Gaussian
        dist = Gaussian(1)
        params = np.asarray([[0.0, 0.0]], np.float32)  # std = 1
        ent = float(np.asarray(dist.entropy(params))[0])
        expected = 0.5 * np.log(2 * np.pi * np.e)
        np.testing.assert_allclose(ent, expected, atol=1e-5)

    def test_bernoulli_sampling_frequency(self):
        from repro.components.policies.distributions import Bernoulli
        dist = Bernoulli(1)
        logits = np.full((4000, 1), 1.0, np.float32)  # p = sigmoid(1) ~ .73
        samples = np.asarray(dist.sample(logits))
        np.testing.assert_allclose(samples.mean(), 0.731, atol=0.05)
