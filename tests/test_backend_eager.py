"""Eager (define-by-run) backend tests: forward semantics + numeric grad
checks over every differentiable primitive."""

import numpy as np
import pytest

from repro.backend import ETensor, backward, collect_leaf_grads, functional as F
from repro.backend import no_grad


def numeric_grad(fn, x, eps=1e-4):
    """Central-difference gradient of scalar fn wrt array x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x.astype(np.float32))
        flat[i] = orig - eps
        down = fn(x.astype(np.float32))
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, x, scalar_reduce=True, atol=1e-2, **kwargs):
    def scalar_fn(val):
        out = op(val, **kwargs)
        return float(np.sum(out))

    t = ETensor(np.asarray(x, dtype=np.float32), requires_grad=True)
    out = op(t, **kwargs)
    loss = F.reduce_sum(out)
    (g,) = collect_leaf_grads(loss, [t])
    expected = numeric_grad(scalar_fn, x)
    np.testing.assert_allclose(g, expected, atol=atol, rtol=1e-2)


class TestForwardSemantics:
    def test_raw_arrays_flow_without_tape(self):
        out = F.add(np.ones(3), np.ones(3))
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, 2 * np.ones(3))

    def test_etensor_output_when_grad_needed(self):
        t = ETensor(np.ones(3), requires_grad=True)
        out = F.mul(t, 2.0)
        assert isinstance(out, ETensor)

    def test_no_grad_suppresses_tape(self):
        t = ETensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = F.mul(t, 2.0)
        assert isinstance(out, np.ndarray)

    def test_operator_sugar(self):
        t = ETensor(np.asarray([2.0]), requires_grad=True)
        out = (-t + 3.0) * 2.0 / 4.0 - 1.0
        np.testing.assert_allclose(out.data, [-0.5])

    def test_comparison_dtypes(self):
        out = F.greater(np.asarray([1.0, 3.0]), 2.0)
        assert out.dtype == np.bool_

    def test_cast(self):
        out = F.cast(np.asarray([1.7]), np.int64)
        assert out.dtype == np.int64 and out[0] == 1

    def test_int_div_promotes_to_float(self):
        out = F.div(np.asarray([3], dtype=np.int64), np.asarray([2], dtype=np.int64))
        assert np.issubdtype(out.dtype, np.floating)

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32)
        s = F.softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)),
                                   atol=1e-5)

    def test_one_hot(self):
        out = F.one_hot(np.asarray([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_where(self):
        out = F.where(np.asarray([True, False]), np.asarray([1.0, 1.0]),
                      np.asarray([2.0, 2.0]))
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_gather(self):
        params = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = F.gather(params, np.asarray([2, 0]))
        np.testing.assert_array_equal(out, params[[2, 0]])

    def test_searchsorted(self):
        out = F.searchsorted(np.asarray([0.1, 0.5, 0.9]), np.asarray([0.4, 0.95]))
        np.testing.assert_array_equal(out, [1, 3])

    def test_dyn_arange(self):
        np.testing.assert_array_equal(F.dyn_arange(np.asarray(4)), [0, 1, 2, 3])

    def test_huber_regions(self):
        x = np.asarray([-3.0, 0.5, 3.0], dtype=np.float32)
        out = F.huber_loss(x, delta=1.0)
        np.testing.assert_allclose(out, [2.5, 0.125, 2.5])


class TestUnaryGradients:
    rng = np.random.default_rng(42)

    def test_exp(self):
        check_unary(F.exp, self.rng.uniform(-1, 1, (3, 2)))

    def test_log(self):
        check_unary(F.log, self.rng.uniform(0.5, 2.0, (4,)))

    def test_sqrt(self):
        check_unary(F.sqrt, self.rng.uniform(0.5, 2.0, (4,)))

    def test_square(self):
        check_unary(F.square, self.rng.uniform(-2, 2, (3, 3)))

    def test_abs(self):
        check_unary(F.abs, self.rng.uniform(0.5, 2.0, (4,)) * np.asarray([1, -1, 1, -1]))

    def test_neg(self):
        check_unary(F.neg, self.rng.uniform(-1, 1, (5,)))

    def test_tanh(self):
        check_unary(F.tanh, self.rng.uniform(-2, 2, (4,)))

    def test_sigmoid(self):
        check_unary(F.sigmoid, self.rng.uniform(-2, 2, (4,)))

    def test_relu(self):
        check_unary(F.relu, self.rng.uniform(0.2, 2.0, (4,)) * np.asarray([1, -1, 1, -1]))

    def test_softplus(self):
        check_unary(F.softplus, self.rng.uniform(-2, 2, (4,)))

    def test_power(self):
        check_unary(lambda x: F.power(x, 3.0), self.rng.uniform(0.5, 1.5, (3,)))

    def test_clip(self):
        check_unary(lambda x: F.clip(x, -0.5, 0.5),
                    self.rng.uniform(-1.2, 1.2, (6,)))

    def test_reduce_mean(self):
        check_unary(lambda x: F.reduce_mean(x, axis=0), self.rng.uniform(-1, 1, (3, 4)))

    def test_reduce_sum_axis_keepdims(self):
        check_unary(lambda x: F.reduce_sum(x, axis=1, keepdims=True),
                    self.rng.uniform(-1, 1, (3, 4)))

    def test_reduce_max(self):
        # distinct entries so the max is isolated
        x = np.arange(12, dtype=np.float32).reshape(3, 4) / 7.0
        check_unary(lambda v: F.reduce_max(v, axis=1), x)

    def test_cumsum(self):
        check_unary(lambda x: F.cumsum(x, axis=0), self.rng.uniform(-1, 1, (5,)))

    def test_reshape_transpose(self):
        check_unary(lambda x: F.transpose(F.reshape(x, (4, 3)), (1, 0)),
                    self.rng.uniform(-1, 1, (3, 4)))

    def test_expand_squeeze(self):
        check_unary(lambda x: F.squeeze(F.expand_dims(x, 1), axis=1),
                    self.rng.uniform(-1, 1, (3, 2)))

    def test_getitem(self):
        check_unary(lambda x: F.getitem(x, (slice(0, 2), 1)),
                    self.rng.uniform(-1, 1, (3, 4)))

    def test_softmax_grad(self):
        check_unary(lambda x: F.reduce_sum(F.mul(F.softmax(x),
                                                 np.asarray([1.0, 2.0, 3.0]))),
                    self.rng.uniform(-1, 1, (2, 3)))

    def test_log_softmax_grad(self):
        check_unary(lambda x: F.reduce_sum(F.mul(F.log_softmax(x),
                                                 np.asarray([1.0, 0.0, -1.0]))),
                    self.rng.uniform(-1, 1, (2, 3)))

    def test_huber_grad(self):
        check_unary(lambda x: F.huber_loss(x, delta=1.0),
                    np.asarray([-2.0, -0.4, 0.3, 1.8], dtype=np.float32))

    def test_flatten_batch(self):
        check_unary(F.flatten_batch, self.rng.uniform(-1, 1, (2, 3, 4)))


class TestBinaryGradients:
    rng = np.random.default_rng(7)

    def _check_binary(self, op, x, y):
        tx = ETensor(np.asarray(x, np.float32), requires_grad=True)
        ty = ETensor(np.asarray(y, np.float32), requires_grad=True)
        loss = F.reduce_sum(op(tx, ty))
        gx, gy = collect_leaf_grads(loss, [tx, ty])
        ex = numeric_grad(lambda v: float(np.sum(op(v, np.asarray(y, np.float32)))), x)
        ey = numeric_grad(lambda v: float(np.sum(op(np.asarray(x, np.float32), v))), y)
        np.testing.assert_allclose(gx, ex, atol=1e-2, rtol=1e-2)
        np.testing.assert_allclose(gy, ey, atol=1e-2, rtol=1e-2)

    def test_add_broadcast(self):
        self._check_binary(F.add, self.rng.uniform(-1, 1, (3, 4)),
                           self.rng.uniform(-1, 1, (4,)))

    def test_sub_broadcast(self):
        self._check_binary(F.sub, self.rng.uniform(-1, 1, (2, 3)),
                           self.rng.uniform(-1, 1, (1, 3)))

    def test_mul(self):
        self._check_binary(F.mul, self.rng.uniform(-1, 1, (3, 3)),
                           self.rng.uniform(-1, 1, (3, 3)))

    def test_div(self):
        self._check_binary(F.div, self.rng.uniform(-1, 1, (4,)),
                           self.rng.uniform(0.5, 2.0, (4,)))

    def test_matmul(self):
        self._check_binary(F.matmul, self.rng.uniform(-1, 1, (3, 4)),
                           self.rng.uniform(-1, 1, (4, 2)))

    def test_maximum(self):
        self._check_binary(F.maximum, self.rng.uniform(-1, 1, (5,)) + 2.0,
                           self.rng.uniform(-1, 1, (5,)) - 2.0)

    def test_where_grads(self):
        cond = np.asarray([True, False, True])
        tx = ETensor(np.ones(3, np.float32), requires_grad=True)
        ty = ETensor(np.ones(3, np.float32), requires_grad=True)
        loss = F.reduce_sum(F.where(cond, tx, ty))
        gx, gy = collect_leaf_grads(loss, [tx, ty])
        np.testing.assert_array_equal(gx, [1, 0, 1])
        np.testing.assert_array_equal(gy, [0, 1, 0])

    def test_concat_grads(self):
        tx = ETensor(np.ones((2, 2), np.float32), requires_grad=True)
        ty = ETensor(np.ones((3, 2), np.float32), requires_grad=True)
        out = F.concat([tx, ty], axis=0)
        loss = F.reduce_sum(F.mul(out, np.arange(10).reshape(5, 2).astype(np.float32)))
        gx, gy = collect_leaf_grads(loss, [tx, ty])
        np.testing.assert_array_equal(gx, [[0, 1], [2, 3]])
        np.testing.assert_array_equal(gy, [[4, 5], [6, 7], [8, 9]])

    def test_stack_grads(self):
        tx = ETensor(np.ones(3, np.float32), requires_grad=True)
        ty = ETensor(np.ones(3, np.float32), requires_grad=True)
        out = F.stack([tx, ty], axis=0)
        loss = F.reduce_sum(F.mul(out, np.asarray([[1.0, 2, 3], [4, 5, 6]])))
        gx, gy = collect_leaf_grads(loss, [tx, ty])
        np.testing.assert_array_equal(gx, [1, 2, 3])
        np.testing.assert_array_equal(gy, [4, 5, 6])

    def test_gather_grad_accumulates_duplicates(self):
        params = ETensor(np.zeros((3, 2), np.float32), requires_grad=True)
        out = F.gather(params, np.asarray([1, 1, 0]))
        loss = F.reduce_sum(out)
        (g,) = collect_leaf_grads(loss, [params])
        np.testing.assert_array_equal(g, [[1, 1], [2, 2], [0, 0]])


class TestBackwardMechanics:
    def test_grad_accumulation_over_reuse(self):
        t = ETensor(np.asarray([2.0], np.float32), requires_grad=True)
        out = F.add(F.mul(t, 3.0), F.mul(t, 4.0))
        (g,) = collect_leaf_grads(out, [t])
        np.testing.assert_allclose(g, [7.0])

    def test_stop_gradient_blocks(self):
        t = ETensor(np.asarray([2.0], np.float32), requires_grad=True)
        out = F.mul(F.stop_gradient(t), t)  # d/dt = stop(t) = 2
        (g,) = collect_leaf_grads(out, [t])
        np.testing.assert_allclose(g, [2.0])

    def test_untouched_leaf_gets_zeros(self):
        a = ETensor(np.ones(2, np.float32), requires_grad=True)
        b = ETensor(np.ones(2, np.float32), requires_grad=True)
        loss = F.reduce_sum(F.mul(a, 2.0))
        ga, gb = collect_leaf_grads(loss, [a, b])
        np.testing.assert_array_equal(gb, [0, 0])

    def test_backward_default_grad(self):
        t = ETensor(np.asarray(3.0, np.float32), requires_grad=True)
        out = F.square(t)
        backward(out)
        np.testing.assert_allclose(t.grad, 6.0)

    def test_detach(self):
        t = ETensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
