"""Serving subsystem tests: micro-batching semantics, batched-vs-
unbatched action parity, mid-traffic flat weight hot-swap, pooled
replicas over both raylite backends, the eval-during-training hook, and
the concurrent-load throughput acceptance (core-count-gated)."""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import ActorCriticAgent, DQNAgent
from repro.serving import (
    InferenceWorkerPool,
    PolicyClient,
    PolicyServer,
    PolicyServerActor,
    bucket_size,
    drive_concurrent_load,
)
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

# Pool tests cross process boundaries; fail fast instead of wedging CI.
pytestmark = pytest.mark.mp_timeout(180)

CORES = os.cpu_count() or 1
STATE_DIM = 4
NUM_ACTIONS = 3


def _dqn(seed=3, units=16, **kwargs):
    return DQNAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                    action_space=IntBox(NUM_ACTIONS),
                    network_spec=[{"type": "dense", "units": units,
                                   "activation": "relu"}],
                    seed=seed, **kwargs)


def _dqn_factory():
    """Zero-arg replica factory (module-level so process actors can
    pickle it)."""
    return _dqn()


def _obs_stream(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, STATE_DIM)).astype(np.float32)


def _greedy_reference(agent, obs):
    return [int(agent.get_actions(o, explore=False)[0]) for o in obs]


@pytest.fixture(autouse=True)
def _raylite_cleanup():
    yield
    raylite.shutdown()


# ---------------------------------------------------------------------------
# Micro-batching mechanics
# ---------------------------------------------------------------------------
class TestMicroBatching:
    def test_pipelined_burst_coalesces(self):
        """A burst of concurrent requests coalesces into few compiled
        calls (the amortization the server exists for)."""
        server = PolicyServer(_dqn(), max_batch_size=16, batch_window=0.05)
        obs = _obs_stream(8)
        refs = [server.submit(o) for o in obs]
        _ = [r.result(timeout=10) for r in refs]
        stats = server.stats.as_dict()
        assert stats["requests"] == 8
        # The pipelined burst must not degrade to one-call-per-request.
        assert stats["batches"] < 8
        assert stats["max_batch_size"] > 1
        server.stop()

    def test_bucket_size(self):
        assert bucket_size(1, 32) == 1
        assert bucket_size(3, 32) == 4
        assert bucket_size(5, 32) == 8
        assert bucket_size(33, 32) == 32

    def test_max_batch_size_respected(self):
        server = PolicyServer(_dqn(), max_batch_size=4, batch_window=0.05)
        obs = _obs_stream(12)
        refs = [server.submit(o) for o in obs]
        _ = [r.result(timeout=10) for r in refs]
        assert server.stats.max_batch <= 4
        server.stop()

    def test_submit_shape_validation(self):
        """Rank mismatches fail at submit with the shapes spelled out
        (regression: they used to surface as broadcasting errors deep
        in the graph)."""
        server = PolicyServer(_dqn(), max_batch_size=4)
        with pytest.raises(RLGraphError, match=r"\(2, 4\).*\(4,\)"):
            server.submit(np.zeros((2, STATE_DIM), np.float32))
        with pytest.raises(RLGraphError, match="state space"):
            server.act(np.zeros(3, np.float32))
        server.stop()

    def test_submit_after_stop_raises(self):
        server = PolicyServer(_dqn(), max_batch_size=4)
        server.stop()
        with pytest.raises(RLGraphError, match="not running"):
            server.submit(np.zeros(STATE_DIM, np.float32))

    def test_stop_drains_queued_requests(self):
        server = PolicyServer(_dqn(), max_batch_size=4, batch_window=0.01)
        refs = [server.submit(o) for o in _obs_stream(6)]
        server.stop()
        for ref in refs:
            assert 0 <= int(ref.result(timeout=5)) < NUM_ACTIONS


class TestAgentSingleObservation:
    """The serving-shape fix on ``Agent.get_actions`` itself."""

    def test_single_obs_auto_expands_and_squeezes(self):
        agent = _dqn()
        obs = _obs_stream(1)[0]
        action, pre = agent.get_actions(obs, explore=False)
        assert isinstance(action, int)
        assert pre.shape == (STATE_DIM,)

    def test_rank_mismatch_error_message(self):
        agent = _dqn()
        with pytest.raises(RLGraphError,
                           match=r"neither one observation.*\(4,\)"):
            agent.get_actions(np.zeros(3, np.float32))
        with pytest.raises(RLGraphError, match="get_actions"):
            agent.get_actions(np.zeros((2, 2, STATE_DIM), np.float32))

    def test_batch_still_accepted(self):
        agent = _dqn()
        actions, _ = agent.get_actions(_obs_stream(5), explore=False)
        assert len(actions) == 5


# ---------------------------------------------------------------------------
# Determinism: batched == unbatched (explore=False)
# ---------------------------------------------------------------------------
class TestBatchedUnbatchedParity:
    def test_dqn_action_parity(self):
        obs = _obs_stream(40)
        reference = _greedy_reference(_dqn(), obs)
        # Batched: a pipelined burst through the micro-batching server.
        server = PolicyServer(_dqn(), max_batch_size=16, batch_window=0.002)
        batched = [int(a) for a in PolicyClient(server).act_many(obs)]
        assert server.stats.max_batch > 1  # batching actually happened
        server.stop()
        # Unbatched single-call serving: same machinery, batch cap 1.
        server = PolicyServer(_dqn(), max_batch_size=1, batch_window=0.0)
        unbatched = [int(a) for a in PolicyClient(server).act_many(obs)]
        assert server.stats.max_batch == 1
        server.stop()
        assert batched == reference
        assert unbatched == reference

    def test_a2c_greedy_action_parity(self):
        def make():
            return ActorCriticAgent(
                state_space=FloatBox(shape=(STATE_DIM,)),
                action_space=IntBox(NUM_ACTIONS),
                network_spec=[{"type": "dense", "units": 16,
                               "activation": "tanh"}], seed=5)
        obs = _obs_stream(20)
        ref_agent = make()
        reference = [int(ref_agent.get_actions(o, explore=False)[0])
                     for o in obs]
        server = PolicyServer(make(), max_batch_size=8, batch_window=0.002)
        batched = [int(a) for a in PolicyClient(server).act_many(obs)]
        server.stop()
        assert batched == reference

    def test_padding_does_not_change_actions(self):
        obs = _obs_stream(30)
        reference = _greedy_reference(_dqn(), obs)
        server = PolicyServer(_dqn(), max_batch_size=16, batch_window=0.002,
                              pad_batches=False)
        unpadded = [int(a) for a in PolicyClient(server).act_many(obs)]
        server.stop()
        assert unpadded == reference


# ---------------------------------------------------------------------------
# Mid-traffic weight hot-swap
# ---------------------------------------------------------------------------
class TestHotSwap:
    def _hammer(self, server, num_clients, stop, failures, counter):
        obs = _obs_stream(num_clients, seed=9)

        def loop(i):
            client = PolicyClient(server)
            while not stop.is_set():
                try:
                    action = int(client.act(obs[i]))
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)
                    return
                if not 0 <= action < NUM_ACTIONS:
                    failures.append(AssertionError(f"bad action {action}"))
                    return
                counter[i] += 1

        threads = [threading.Thread(target=loop, args=(i,), daemon=True)
                   for i in range(num_clients)]
        for t in threads:
            t.start()
        return threads

    def test_swap_under_traffic_drops_nothing(self):
        server = PolicyServer(_dqn(seed=3), max_batch_size=8,
                              batch_window=0.001)
        donor = _dqn(seed=99)
        stop = threading.Event()
        failures: list = []
        counter = [0] * 4
        threads = self._hammer(server, 4, stop, failures, counter)
        time.sleep(0.25)
        before = sum(counter)
        server.set_weights(donor.get_weights(flat=True), wait=True)
        time.sleep(0.25)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        after = sum(counter)
        assert not failures
        assert server.stats.errors == 0
        assert server.stats.as_dict()["weight_swaps"] == 1
        assert before > 0 and after > before  # served through the swap
        # The server now answers exactly like the donor policy.
        probe = _obs_stream(6, seed=31)
        served = [int(server.act(o)) for o in probe]
        assert served == _greedy_reference(donor, probe)
        server.stop()

    def test_failed_swap_is_counted_and_server_keeps_serving(self):
        """A bad weight push (wrong layout) must fail loudly — counted
        in stats, ref failed — while the server keeps serving the
        previous weights (fire-and-forget pushers would otherwise never
        notice)."""
        server = PolicyServer(_dqn(seed=3), max_batch_size=4)
        probe = _obs_stream(3, seed=2)
        before = [int(server.act(o)) for o in probe]
        ref = server.set_weights(np.zeros(7, np.float32))  # wrong size
        with pytest.raises(Exception):
            ref.result(timeout=10)
        assert server.stats.as_dict()["weight_swap_failures"] == 1
        assert server.stats.as_dict()["weight_swaps"] == 0
        assert [int(server.act(o)) for o in probe] == before
        server.stop()

    def test_swap_accepts_dict_weights(self):
        server = PolicyServer(_dqn(seed=3), max_batch_size=4)
        donor = _dqn(seed=42)
        server.set_weights(donor.get_weights(), wait=True)
        probe = _obs_stream(4, seed=8)
        assert [int(server.act(o)) for o in probe] == \
            _greedy_reference(donor, probe)
        server.stop()


# ---------------------------------------------------------------------------
# InferenceWorkerPool (sharded serving)
# ---------------------------------------------------------------------------
class TestWorkerPool:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_pool_parity_and_swap(self, backend):
        obs = _obs_stream(24)
        reference = _greedy_reference(_dqn(), obs)
        pool = InferenceWorkerPool(
            _dqn_factory, FloatBox(shape=(STATE_DIM,)), num_replicas=2,
            max_batch_size=8, batch_window=0.002, parallel_spec=backend)
        served = [int(a) for a in PolicyClient(pool).act_many(obs)]
        assert served == reference
        donor = _dqn(seed=77)
        pool.set_weights(donor.get_weights(flat=True), wait=True)
        probe = _obs_stream(5, seed=17)
        assert [int(pool.act(o)) for o in probe] == \
            _greedy_reference(donor, probe)
        stats = pool.replica_stats()
        assert sum(s["requests_served"] for s in stats) >= len(obs)
        pool.stop()

    def test_least_loaded_routing_signal(self):
        handle = raylite.remote(PolicyServerActor).remote(_dqn_factory)
        assert handle.num_pending() == 0
        ref = handle.act_batch.remote(_obs_stream(4))
        raylite.get(ref)
        assert handle.num_pending() == 0

    def test_remote_client_over_actor_boundary(self):
        obs = _obs_stream(6)
        reference = _greedy_reference(_dqn(), obs)
        handle = raylite.remote(PolicyServerActor).remote(_dqn_factory)
        client = PolicyClient(handle)
        assert [int(client.act(o)) for o in obs] == reference
        assert client.latency_stats()["requests"] == len(obs)

    def test_client_rejects_non_target(self):
        with pytest.raises(RLGraphError, match="neither"):
            PolicyClient(object())


# ---------------------------------------------------------------------------
# Serving chaos: replica SIGKILL under live load
# ---------------------------------------------------------------------------
@pytest.mark.chaos
class TestServingChaos:
    def test_replica_sigkill_zero_dropped_requests_and_parity(self):
        """SIGKILL one process replica under concurrent load: no request
        errors (the supervised pool re-queues the dead replica's batch
        onto live replicas and restarts the slot), and the healed pool
        still serves the exact reference policy."""
        import signal

        pool = InferenceWorkerPool(
            _dqn_factory, FloatBox(shape=(STATE_DIM,)), num_replicas=2,
            max_batch_size=8, batch_window=0.002, parallel_spec="process",
            supervision_spec={"base_delay": 0.05, "max_delay": 0.5,
                              "max_restarts": 5})
        try:
            victim_pid = pool.replicas[0].pid
            timer = threading.Timer(
                1.0, lambda: os.kill(victim_pid, signal.SIGKILL))
            timer.daemon = True
            timer.start()
            # Raises if ANY client saw an error — the zero-dropped-
            # requests assertion is the driver's own contract.
            load = drive_concurrent_load(pool, num_clients=4, duration=3.0)
            timer.join()
            assert load["requests"] > 0
            assert pool.stats.errors == 0
            assert pool.supervisor.total_restarts >= 1
            assert all(h.is_alive() for h in pool.replicas)
            # Post-restart action parity with an unkilled reference.
            obs = _obs_stream(20, seed=77)
            served = [int(pool.act(o, timeout=30.0)) for o in obs]
            assert served == _greedy_reference(_dqn(), obs)
        finally:
            pool.stop()


# ---------------------------------------------------------------------------
# Eval-during-training hook
# ---------------------------------------------------------------------------
class TestEvalDuringTraining:
    def test_sync_batch_executor_pushes_to_server(self):
        from repro.environments import GridWorld
        from repro.execution import SyncBatchExecutor

        def agent_factory(worker_index=0):
            return ActorCriticAgent(
                state_space=FloatBox(shape=(16,)), action_space=IntBox(4),
                network_spec=[{"type": "dense", "units": 8,
                               "activation": "tanh"}], seed=2)

        def env_factory(seed):
            return GridWorld("4x4", max_steps=20, seed=seed)

        learner = agent_factory()
        server = PolicyServer(agent_factory(), max_batch_size=4,
                              batch_window=0.001)
        # The plain `weight_listeners=[server]` push is fire-and-forget;
        # block on each swap here so the post-run assertions are not
        # racing the server's mailbox.
        executor = SyncBatchExecutor(
            learner, agent_factory, env_factory, num_workers=1,
            envs_per_worker=1, rollout_length=8,
            weight_listeners=[lambda w: server.set_weights(w, wait=True)])
        executor.execute_workload(num_iterations=2)
        # The serving agent tracks the learner exactly (flat push path).
        np.testing.assert_array_equal(server.agent.get_weights(flat=True),
                                      learner.get_weights(flat=True))
        assert server.stats.as_dict()["weight_swaps"] == 2
        # ... and is still serving.
        assert 0 <= int(server.act(np.zeros(16, np.float32))) < 4
        server.stop()

    def test_impala_runner_publish_notifies_listeners(self):
        from repro.agents import IMPALAAgent
        from repro.environments import GridWorld
        from repro.execution.impala_runner import IMPALARunner

        def agent_factory():
            return IMPALAAgent(
                state_space=FloatBox(shape=(16,)), action_space=IntBox(4),
                network_spec=[{"type": "dense", "units": 8,
                               "activation": "tanh"}], seed=4)

        pushed = []
        runner = IMPALARunner(
            learner_agent=agent_factory(), agent_factory=agent_factory,
            env_factory=lambda seed: GridWorld("4x4", max_steps=20,
                                               seed=seed),
            num_actors=1, weight_listeners=[pushed.append])
        runner._publish_weights()
        assert len(pushed) == 1
        np.testing.assert_array_equal(
            pushed[0], runner.learner.get_weights(flat=True))


# ---------------------------------------------------------------------------
# Throughput acceptance (core-count-gated; recorded-only on 1 core)
# ---------------------------------------------------------------------------
class TestThroughput:
    def _measure(self, server, num_clients, duration=0.6):
        load = drive_concurrent_load(server, num_clients, duration,
                                     observations=_obs_stream(num_clients,
                                                              seed=1))
        return load["req_per_s"]

    def test_batched_vs_unbatched_throughput(self):
        """With >= 4 concurrent clients, micro-batching must sustain
        >= 2x the req/s of unbatched single-call serving — asserted on
        >= 4 cores, recorded-only on fewer (per the repo's core-count
        gating; even 1 core usually shows the win, since the gain is
        per-call overhead amortization, not parallelism)."""
        num_clients = 6
        # A wider net makes the per-call overhead vs batch-compute
        # contrast realistic rather than degenerate.
        unbatched_server = PolicyServer(_dqn(units=64), max_batch_size=1,
                                        batch_window=0.0)
        unbatched = self._measure(unbatched_server, num_clients)
        unbatched_server.stop()
        batched_server = PolicyServer(_dqn(units=64), max_batch_size=16,
                                      batch_window=0.0)
        batched = self._measure(batched_server, num_clients)
        mean_batch = batched_server.stats.mean_batch_size
        batched_server.stop()
        ratio = batched / unbatched if unbatched else float("inf")
        print(f"\nserving throughput ({num_clients} clients, {CORES} cores): "
              f"unbatched {unbatched:.0f} req/s, batched {batched:.0f} req/s "
              f"({ratio:.2f}x, mean batch {mean_batch:.1f})")
        assert mean_batch > 1.5  # batching engaged under concurrency
        if CORES >= 4:
            assert ratio >= 2.0, (
                f"batched serving only {ratio:.2f}x unbatched on "
                f"{CORES} cores")


# ---------------------------------------------------------------------------
# Overload integration on real agents (mechanics live in test_overload.py)
# ---------------------------------------------------------------------------
class TestServingOverloadIntegration:
    def test_pool_with_bounded_queue_rejects_then_recovers(self):
        from repro.serving import OverloadError

        pool = InferenceWorkerPool(
            _dqn_factory, FloatBox(shape=(STATE_DIM,)), num_replicas=2,
            max_batch_size=8, batch_window=0.002, parallel_spec="thread",
            admission_spec={"max_queue": 16, "retry_after": 0.01})
        try:
            obs = _obs_stream(64, seed=5)
            admitted, rejected = [], 0
            for o in obs:
                for _ in range(8):   # 8x the queue bound, instantly
                    try:
                        admitted.append(pool.submit(o))
                    except OverloadError as exc:
                        assert exc.reason == "queue_full"
                        rejected += 1
            for ref in admitted:
                ref.result(30.0)
            assert rejected > 0
            assert pool.stats.as_dict()["rejected"] == rejected
            # Back under load: normal requests flow with exact parity.
            probe = _obs_stream(10, seed=23)
            assert [int(pool.act(o, timeout=30.0)) for o in probe] == \
                _greedy_reference(_dqn(), probe)
        finally:
            pool.stop()

    def test_metrics_snapshot_contract(self):
        server = PolicyServer(_dqn(), max_batch_size=8, batch_window=0.001,
                              admission_spec={"max_queue": 32})
        try:
            client = PolicyClient(server)
            for o in _obs_stream(12, seed=3):
                client.act(o)
            snap = server.metrics_snapshot()
            assert snap["requests"] == 12
            assert snap["queue_depth"] == 0
            assert snap["max_queue"] == 32
            assert snap["admission_policy"] == "reject"
            assert snap["running"] is True
            hist = snap["batch_size_histogram"]
            assert sum(k * v for k, v in hist.items()) == 12
            for key in ("rejected", "shed", "expired", "retries"):
                assert snap[key] == 0
        finally:
            server.stop()
        assert server.metrics_snapshot()["running"] is False

    def test_client_deadline_reaches_inprocess_server(self):
        from repro.serving import DeadlineExceededError

        server = PolicyServer(_dqn(), max_batch_size=4, batch_window=0.0)
        try:
            client = PolicyClient(server, timeout=5.0)
            # A pre-expired budget fails typed BEFORE any batch slot is
            # spent — proving the deadline rode submit() end to end.
            ref = client.submit(_obs_stream(1)[0], deadline=0.0)
            with pytest.raises(DeadlineExceededError):
                ref.result(5.0)
            assert server.stats.as_dict()["expired"] == 1
        finally:
            server.stop()
