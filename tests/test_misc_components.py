"""Coverage for remaining surfaces: LSTM stepping API, Gaussian action
noise, agent registry/config resolution, BuiltGraph edge cases, Session
profiling counters, and device maps."""

import json

import numpy as np
import pytest

from repro.agents import AGENTS, DQNAgent, PPOAgent
from repro.backend import XGRAPH, XTAPE
from repro.components.explorations import GaussianNoise
from repro.components.neural_networks import LSTMLayer
from repro.core import build_graph
from repro.spaces import FloatBox, IntBox
from repro.testing import ComponentTest
from repro.utils import RLGraphError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


class TestLSTMStepping:
    def test_step_matches_sequence(self, backend):
        """Stepping one frame at a time with carried state must equal the
        fused sequence run — the act-vs-train consistency IMPALA needs."""
        layer = LSTMLayer(units=4, scope="lstm-step")
        tm = dict(add_batch_rank=True, add_time_rank=True, time_major=True)
        spaces = {
            "inputs": FloatBox(shape=(3,), **tm),
            "step_inputs": FloatBox(shape=(3,), add_batch_rank=True),
            "h_in": FloatBox(shape=(4,), add_batch_rank=True),
            "c_in": FloatBox(shape=(4,), add_batch_rank=True),
        }
        test = ComponentTest(layer, spaces, backend=backend)
        rng = np.random.default_rng(0)
        seq = rng.standard_normal((5, 2, 3)).astype(np.float32)
        full = np.asarray(test.test("apply", seq))

        h = np.zeros((2, 4), np.float32)
        c = np.zeros((2, 4), np.float32)
        stepped = []
        for t in range(5):
            out, h, c = test.test("apply_step", seq[t], h, c)
            stepped.append(np.asarray(out))
        np.testing.assert_allclose(np.stack(stepped), full, atol=1e-5)


class TestGaussianNoise:
    def test_noise_clips_and_perturbs(self, backend):
        comp = GaussianNoise(sigma_spec=0.5, low=-1.0, high=1.0)
        spaces = {"actions": FloatBox(shape=(2,), add_batch_rank=True),
                  "time_step": IntBox(low=0, high=2**31 - 1)}
        test = ComponentTest(comp, spaces, backend=backend)
        actions = np.zeros((200, 2), np.float32)
        out = np.asarray(test.test("get_action", actions, np.asarray(0)))
        assert out.std() > 0.2
        assert np.all(out >= -1.0) and np.all(out <= 1.0)

    def test_decaying_sigma(self, backend):
        comp = GaussianNoise(sigma_spec={"type": "linear", "from_": 1.0,
                                         "to_": 0.0, "num_timesteps": 100})
        spaces = {"actions": FloatBox(shape=(2,), add_batch_rank=True),
                  "time_step": IntBox(low=0, high=2**31 - 1)}
        test = ComponentTest(comp, spaces, backend=backend)
        actions = np.zeros((200, 2), np.float32)
        early = np.asarray(test.test("get_action", actions, np.asarray(0)))
        late = np.asarray(test.test("get_action", actions,
                                    np.asarray(10_000)))
        assert early.std() > late.std()
        np.testing.assert_allclose(late, 0.0, atol=1e-6)


class TestAgentRegistry:
    def test_registry_contains_all_agents(self):
        for name in ("dqn", "apex", "a2c", "ppo", "impala"):
            assert name in AGENTS

    def test_build_agent_from_spec(self):
        agent = AGENTS.from_spec(
            {"type": "dqn", "state_space": (4,), "action_space": 2,
             "network_spec": [{"type": "dense", "units": 8}],
             "backend": XTAPE, "seed": 0})
        assert isinstance(agent, DQNAgent)
        actions, _ = agent.get_actions(np.zeros((2, 4), np.float32))
        assert actions.shape == (2,)

    def test_network_spec_from_json_file(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text(json.dumps({"layers": [
            {"type": "dense", "units": 8, "activation": "tanh"}]}))
        agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                         network_spec=str(path), backend=XTAPE, seed=0)
        actions, _ = agent.get_actions(np.zeros((1, 4), np.float32))
        assert actions.shape == (1,)


class TestBuiltGraphEdgeCases:
    def test_wrong_arity_rejected(self, backend):
        agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                         network_spec=[{"type": "dense", "units": 8}],
                         backend=backend, seed=0)
        with pytest.raises(RLGraphError):
            agent.call_api("get_actions", np.zeros((1, 4), np.float32))
        if backend == XGRAPH:
            pass  # arity check is symbolic-path specific

    def test_double_build_rejected(self):
        agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                         network_spec=[{"type": "dense", "units": 8}],
                         backend=XTAPE, seed=0)
        with pytest.raises(RLGraphError):
            agent.build()

    def test_unbuilt_agent_api_rejected(self):
        agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                         network_spec=[{"type": "dense", "units": 8}],
                         backend=XTAPE, seed=0, auto_build=False)
        with pytest.raises(RLGraphError):
            agent.call_api("get_actions", np.zeros((1, 4)))

    def test_session_stats_track_api_calls(self):
        agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                         network_spec=[{"type": "dense", "units": 8}],
                         backend=XGRAPH, seed=0)
        before = agent.graph.session.stats.run_calls
        agent.get_actions(np.zeros((3, 4), np.float32))
        after = agent.graph.session.stats.run_calls
        # One executor call per agent API request (paper §4.1).
        assert after == before + 1

    def test_device_map_applied(self):
        agent = DQNAgent(state_space=(4,), action_space=IntBox(2),
                         network_spec=[{"type": "dense", "units": 8}],
                         backend=XGRAPH, seed=0,
                         device_map={"policy": "/sim:gpu:0"})
        assert agent.root.policy.resolved_device() == "/sim:gpu:0"
        # Sub-components inherit the device.
        dense = agent.root.policy.network.layers[0]
        assert dense.resolved_device() == "/sim:gpu:0"
        # Variables were created under that device.
        var = next(iter(agent.root.policy.variable_registry().values()))
        assert var.device == "/sim:gpu:0"


class TestPPOContinuousEndToEnd:
    def test_continuous_update_cycle(self, backend):
        agent = PPOAgent(state_space=(3,), action_space=FloatBox(shape=(2,)),
                         backend=backend, seed=0, epochs=1,
                         minibatch_size=8)
        actions, log_probs, values, pre = agent.get_actions(
            np.random.default_rng(0).standard_normal((8, 3)).astype(np.float32))
        loss = agent.update({
            "states": pre, "actions": actions, "old_log_probs": log_probs,
            "rewards": np.ones(8, np.float32),
            "terminals": np.zeros(8, bool), "values": values})
        assert np.isfinite(loss)
