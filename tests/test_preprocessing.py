"""Preprocessor component tests: every preprocessor individually built
from spaces (they are first-class citizens, paper §1 point 4), stacks,
space bookkeeping, and statefulness of the frame stack."""

import numpy as np
import pytest

from repro.backend import XGRAPH, XTAPE
from repro.components.preprocessing import (
    Clip,
    Divide,
    Flatten,
    GrayScale,
    ImageResize,
    Normalize,
    PreprocessorStack,
    Sequence,
)
from repro.spaces import FloatBox
from repro.testing import ComponentTest
from repro.utils import RLGraphError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


IMG = FloatBox(shape=(8, 8, 3), add_batch_rank=True)


class TestGrayScale:
    def test_weighted_sum_keepdims(self, backend):
        test = ComponentTest(GrayScale(weights=[0.5, 0.25, 0.25]),
                             {"inputs": IMG}, backend=backend)
        x = np.ones((2, 8, 8, 3), np.float32)
        out = test.test("preprocess", x)
        assert out.shape == (2, 8, 8, 1)
        np.testing.assert_allclose(out, 1.0, atol=1e-6)

    def test_drop_channel_dim(self, backend):
        test = ComponentTest(GrayScale(keepdims=False), {"inputs": IMG},
                             backend=backend)
        out = test.test("preprocess", np.ones((2, 8, 8, 3), np.float32))
        assert out.shape == (2, 8, 8)

    def test_transformed_space(self):
        assert GrayScale().transformed_space(IMG.strip_ranks()).shape \
            == (8, 8, 1)
        assert GrayScale(keepdims=False).transformed_space(
            IMG.strip_ranks()).shape == (8, 8)

    def test_weight_count_mismatch(self, backend):
        with pytest.raises(RLGraphError):
            ComponentTest(GrayScale(weights=[1.0, 1.0]), {"inputs": IMG},
                          backend=backend)


class TestImageResize:
    def test_downsample(self, backend):
        test = ComponentTest(ImageResize(width=4, height=4), {"inputs": IMG},
                             backend=backend)
        x = np.arange(2 * 8 * 8 * 3, dtype=np.float32).reshape(2, 8, 8, 3)
        out = test.test("preprocess", x)
        assert out.shape == (2, 4, 4, 3)
        # Nearest-neighbour: output pixel (0,0) equals input pixel (0,0).
        np.testing.assert_array_equal(out[:, 0, 0], x[:, 0, 0])

    def test_upsample(self, backend):
        test = ComponentTest(ImageResize(width=16, height=16),
                             {"inputs": IMG}, backend=backend)
        out = test.test("preprocess", np.ones((1, 8, 8, 3), np.float32))
        assert out.shape == (1, 16, 16, 3)

    def test_transformed_space(self):
        space = ImageResize(width=4, height=6).transformed_space(
            IMG.strip_ranks())
        assert space.shape == (6, 4, 3)


class TestScalers:
    def test_divide(self, backend):
        test = ComponentTest(Divide(divisor=255.0), {"inputs": IMG},
                             backend=backend)
        out = test.test("preprocess", 255 * np.ones((1, 8, 8, 3), np.float32))
        np.testing.assert_allclose(out, 1.0)

    def test_divide_by_zero_rejected(self):
        with pytest.raises(RLGraphError):
            Divide(divisor=0)

    def test_clip(self, backend):
        test = ComponentTest(Clip(low=-1, high=1),
                             {"inputs": FloatBox(shape=(3,),
                                                 add_batch_rank=True)},
                             backend=backend)
        out = test.test("preprocess", np.asarray([[-5.0, 0.5, 5.0]],
                                                 np.float32))
        np.testing.assert_allclose(out, [[-1.0, 0.5, 1.0]])

    def test_clip_bounds_validated(self):
        with pytest.raises(RLGraphError):
            Clip(low=2, high=1)

    def test_normalize(self, backend):
        test = ComponentTest(Normalize(mean=10.0, std=2.0),
                             {"inputs": FloatBox(shape=(2,),
                                                 add_batch_rank=True)},
                             backend=backend)
        out = test.test("preprocess", np.asarray([[12.0, 8.0]], np.float32))
        np.testing.assert_allclose(out, [[1.0, -1.0]])

    def test_flatten(self, backend):
        test = ComponentTest(Flatten(), {"inputs": IMG}, backend=backend)
        out = test.test("preprocess", np.ones((2, 8, 8, 3), np.float32))
        assert out.shape == (2, 192)


class TestSequence:
    def test_frame_stack_shifts(self, backend):
        seq = Sequence(sequence_length=3, num_slots=2)
        space = FloatBox(shape=(2, 2), add_batch_rank=True)
        test = ComponentTest(seq, {"inputs": space}, backend=backend)
        seq.reset()
        frame1 = np.ones((2, 2, 2), np.float32)
        out1 = test.test("preprocess", frame1)
        assert out1.shape == (2, 2, 2, 3)
        np.testing.assert_allclose(out1[..., -1], frame1)
        np.testing.assert_allclose(out1[..., 0], 0.0)
        frame2 = 2 * np.ones((2, 2, 2), np.float32)
        out2 = test.test("preprocess", frame2)
        np.testing.assert_allclose(out2[..., -1], frame2)
        np.testing.assert_allclose(out2[..., -2], frame1)

    def test_reset_slot(self, backend):
        seq = Sequence(sequence_length=2, num_slots=2)
        space = FloatBox(shape=(1,), add_batch_rank=True)
        test = ComponentTest(seq, {"inputs": space}, backend=backend)
        seq.reset()
        test.test("preprocess", np.ones((2, 1), np.float32))
        seq.reset_slot(0)
        out = test.test("preprocess", 3 * np.ones((2, 1), np.float32))
        # Slot 0 history was cleared, slot 1 kept its frame.
        np.testing.assert_allclose(out[0, :, 0], [0.0])
        np.testing.assert_allclose(out[1, :, 0], [1.0])

    def test_invalid_length(self):
        with pytest.raises(RLGraphError):
            Sequence(sequence_length=0)

    def test_transformed_space(self):
        seq = Sequence(sequence_length=4, num_slots=1)
        assert seq.transformed_space(FloatBox(shape=(8, 8))).shape == (8, 8, 4)


class TestPreprocessorStack:
    def test_chained_pipeline(self, backend):
        stack = PreprocessorStack([
            {"type": "grayscale", "keepdims": True},
            {"type": "image_resize", "width": 4, "height": 4},
            {"type": "divide", "divisor": 255.0},
        ])
        test = ComponentTest(stack, {"inputs": IMG}, backend=backend)
        out = test.test("preprocess", 255 * np.ones((2, 8, 8, 3), np.float32))
        assert out.shape == (2, 4, 4, 1)
        np.testing.assert_allclose(out, 1.0, atol=1e-6)

    def test_transformed_space_chains(self):
        stack = PreprocessorStack([
            {"type": "grayscale", "keepdims": True},
            {"type": "image_resize", "width": 4, "height": 4},
            {"type": "flatten"},
        ])
        space = stack.transformed_space(IMG.strip_ranks())
        assert space.shape == (16,)

    def test_empty_stack_is_identity(self, backend):
        test = ComponentTest(PreprocessorStack([]),
                             {"inputs": FloatBox(shape=(2,),
                                                 add_batch_rank=True)},
                             backend=backend)
        x = np.asarray([[1.0, 2.0]], np.float32)
        np.testing.assert_array_equal(test.test("preprocess", x), x)

    def test_bad_spec_rejected(self):
        with pytest.raises(RLGraphError):
            PreprocessorStack([{"type": "bogus"}])

    def test_duplicate_scopes_renamed(self):
        stack = PreprocessorStack([
            {"type": "divide", "divisor": 2.0},
            {"type": "divide", "divisor": 3.0},
        ])
        scopes = [p.scope for p in stack.preprocessors]
        assert len(set(scopes)) == 2
