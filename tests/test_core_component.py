"""Core component-graph tests: assembly, build fixpoint, both backends."""

import numpy as np
import pytest

from repro.backend import XGRAPH, XTAPE, functional as F
from repro.core import Component, build_graph, graph_fn, rlgraph_api
from repro.spaces import Dict as DictSpace, FloatBox, IntBox
from repro.testing import ComponentTest
from repro.utils import RLGraphBuildError, RLGraphError
from repro.utils.errors import RLGraphAPIError


class Scaler(Component):
    """Multiplies input by a factor (no variables)."""

    def __init__(self, factor=2.0, scope="scaler", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.factor = factor

    @rlgraph_api
    def scale(self, inputs):
        return self._graph_fn_scale(inputs)

    @graph_fn(requires_variables=False)
    def _graph_fn_scale(self, inputs):
        return F.mul(inputs, self.factor)


class BiasAdder(Component):
    """Adds a learned bias (variable shaped from input space)."""

    def __init__(self, scope="bias", **kwargs):
        super().__init__(scope=scope, **kwargs)

    def create_variables(self, input_spaces):
        space = input_spaces["inputs"]
        self.bias = self.get_variable("b", shape=space.shape,
                                      initializer="ones")

    @rlgraph_api
    def apply(self, inputs):
        return self._graph_fn_apply(inputs)

    @graph_fn
    def _graph_fn_apply(self, inputs):
        return F.add(inputs, self.bias.read())


class Pipeline(Component):
    """Root with nested sub-components and two API methods."""

    def __init__(self, scope="pipeline", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.scaler = Scaler(factor=3.0)
        self.bias = BiasAdder()
        self.add_components(self.scaler, self.bias)

    @rlgraph_api
    def forward(self, inputs):
        scaled = self.scaler.scale(inputs)
        return self.bias.apply(scaled)

    @rlgraph_api
    def double_forward(self, inputs):
        once = self.scaler.scale(inputs)
        return self.scaler.scale(once)


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


class TestComposition:
    def test_scope_tree(self):
        pipe = Pipeline()
        assert pipe.scaler.global_scope == "pipeline/scaler"
        assert pipe.get_sub_component("scaler") is pipe.scaler
        assert len(pipe.get_all_components()) == 3

    def test_duplicate_scope_rejected(self):
        root = Component(scope="root")
        root.add_components(Scaler(scope="a"))
        with pytest.raises(RLGraphError):
            root.add_components(Scaler(scope="a"))

    def test_reparenting_rejected(self):
        child = Scaler()
        Component(scope="p1").add_components(child)
        with pytest.raises(RLGraphError):
            Component(scope="p2").add_components(child)

    def test_unknown_subcomponent_lookup(self):
        with pytest.raises(RLGraphError):
            Pipeline().get_sub_component("nope")


class TestBuildAndExecute:
    def test_forward_both_backends(self, backend):
        built = build_graph(Pipeline(), {"inputs": FloatBox(shape=(3,),
                                                            add_batch_rank=True)},
                            backend=backend)
        out = built.execute("forward", np.ones((2, 3), np.float32))
        np.testing.assert_allclose(out, 4 * np.ones((2, 3)))

    def test_multiple_api_methods(self, backend):
        built = build_graph(Pipeline(), {"inputs": FloatBox(shape=(3,),
                                                            add_batch_rank=True)},
                            backend=backend)
        out = built.execute("double_forward", np.ones((2, 3), np.float32))
        np.testing.assert_allclose(out, 9 * np.ones((2, 3)))

    def test_variable_shapes_from_space(self, backend):
        pipe = Pipeline()
        build_graph(pipe, {"inputs": FloatBox(shape=(5,), add_batch_rank=True)},
                    backend=backend)
        registry = pipe.variable_registry()
        assert list(registry) == ["pipeline/bias/b"]
        assert registry["pipeline/bias/b"].shape == (5,)

    def test_build_stats_populated(self, backend):
        built = build_graph(Pipeline(), {"inputs": FloatBox(shape=(3,),
                                                            add_batch_rank=True)},
                            backend=backend)
        stats = built.stats
        assert stats.trace_time > 0
        assert stats.build_time > 0
        assert stats.num_components == 3
        assert stats.num_graph_fn_nodes == 4  # forward: 2, double_forward: 2

    def test_missing_input_space_raises(self):
        with pytest.raises(RLGraphBuildError):
            build_graph(Pipeline(), {})

    def test_unknown_api_raises(self, backend):
        built = build_graph(Pipeline(), {"inputs": FloatBox(shape=(3,),
                                                            add_batch_rank=True)},
                            backend=backend)
        with pytest.raises(RLGraphError):
            built.execute("nope", np.ones((1, 3)))

    def test_api_call_outside_build_raises(self):
        pipe = Pipeline()
        with pytest.raises(RLGraphAPIError):
            pipe.forward(np.ones((1, 3)))

    def test_weights_roundtrip(self, backend):
        pipe = Pipeline()
        built = build_graph(pipe, {"inputs": FloatBox(shape=(3,),
                                                      add_batch_rank=True)},
                            backend=backend)
        weights = pipe.get_weights()
        weights["pipeline/bias/b"] = np.full(3, 7.0, np.float32)
        pipe.set_weights(weights)
        out = built.execute("forward", np.zeros((1, 3), np.float32))
        np.testing.assert_allclose(out, [[7.0, 7.0, 7.0]])


class StatefulCounter(Component):
    """Exercises stateful variables + control deps through the build."""

    def __init__(self, scope="counter", **kwargs):
        super().__init__(scope=scope, **kwargs)

    def create_variables(self, input_spaces):
        self.count = self.get_variable("count", shape=(), dtype=np.int64,
                                       trainable=False)

    @rlgraph_api
    def bump(self, amount):
        return self._graph_fn_bump(amount)

    @rlgraph_api
    def read(self, amount):
        # `amount` unused; demonstrates read-only API sharing the space.
        return self._graph_fn_read(amount)

    @graph_fn
    def _graph_fn_bump(self, amount):
        new_val = F.add(self.count.read(), F.cast(F.reduce_sum(amount), np.int64))
        assign = self.count.assign(new_val)
        return F.with_deps(new_val, assign)

    @graph_fn
    def _graph_fn_read(self, amount):
        return F.add(self.count.read(), F.cast(F.reduce_sum(F.mul(amount, 0.0)),
                                               np.int64))


class TestStatefulComponents:
    def test_state_persists_across_calls(self, backend):
        built = build_graph(StatefulCounter(),
                            {"amount": FloatBox(shape=(), add_batch_rank=True)},
                            backend=backend)
        built.execute("bump", np.asarray([1.0, 2.0], np.float32))
        out = built.execute("bump", np.asarray([4.0], np.float32))
        assert int(np.asarray(out)) == 7

    def test_eager_build_restores_state(self):
        # Pushing example data through `bump` during the define-by-run build
        # must not leave the counter bumped.
        comp = StatefulCounter()
        built = build_graph(comp, {"amount": FloatBox(shape=(),
                                                      add_batch_rank=True)},
                            backend=XTAPE)
        out = built.execute("read", np.asarray([5.0], np.float32))
        assert int(np.asarray(out)) == 0


class SplitConsumer(Component):
    """flatten_ops graph_fn applied across a Dict container space."""

    def __init__(self, scope="split", **kwargs):
        super().__init__(scope=scope, **kwargs)

    @rlgraph_api
    def negate_all(self, records):
        return self._graph_fn_negate(records)

    @graph_fn(flatten_ops=True, requires_variables=False)
    def _graph_fn_negate(self, leaf):
        return F.neg(leaf)


class TestContainerHandling:
    def test_flatten_ops_per_leaf(self, backend):
        space = DictSpace(a=FloatBox(shape=(2,)), b=FloatBox(shape=(3,)),
                          add_batch_rank=True)
        built = build_graph(SplitConsumer(), {"records": space}, backend=backend)
        value = {"a": np.ones((2, 2), np.float32),
                 "b": 2 * np.ones((2, 3), np.float32)}
        out = built.execute("negate_all", value)
        np.testing.assert_allclose(out["a"], -value["a"])
        np.testing.assert_allclose(out["b"], -value["b"])


class TwoOutputs(Component):
    @rlgraph_api
    def stats(self, x):
        return self._graph_fn_stats(x)

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_stats(self, x):
        return F.reduce_mean(x), F.reduce_max(x)


class TestMultiOutput:
    def test_two_outputs(self, backend):
        built = build_graph(TwoOutputs(scope="two"),
                            {"x": FloatBox(shape=(4,), add_batch_rank=True)},
                            backend=backend)
        mean, mx = built.execute("stats", np.asarray([[1.0, 2, 3, 10]],
                                                     np.float32))
        assert float(mean) == pytest.approx(4.0)
        assert float(mx) == pytest.approx(10.0)


class TestComponentTestHarness:
    def test_listing1_style(self, backend):
        scaler = Scaler(factor=5.0)
        test = ComponentTest(scaler,
                             input_spaces={"inputs": FloatBox(shape=(2,),
                                                              add_batch_rank=True)},
                             backend=backend)
        test.test("scale", np.ones((3, 2), np.float32),
                  expected=5 * np.ones((3, 2), np.float32))

    def test_variable_inspection(self):
        bias = BiasAdder()
        test = ComponentTest(bias, input_spaces={"inputs": FloatBox(shape=(4,),
                                                 add_batch_rank=True)})
        values = test.get_variable_values()
        np.testing.assert_allclose(values["bias/b"], np.ones(4))

    def test_assert_equal_nested(self):
        ComponentTest.assert_equal({"a": np.ones(2)}, {"a": np.ones(2)})
        with pytest.raises(AssertionError):
            ComponentTest.assert_equal({"a": np.ones(2)}, {"a": np.zeros(2)})


class TestEagerFastPath:
    """Define-by-run fast path ("edge contractions", paper §5.1)."""

    def test_fastpath_matches_dispatch(self):
        built = build_graph(Pipeline(), {"inputs": FloatBox(shape=(3,),
                                                            add_batch_rank=True)},
                            backend=XTAPE)
        x = np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32)
        slow = built.execute("forward", x)
        built.eager_fastpath = True
        fast = built.execute("forward", x)
        np.testing.assert_allclose(slow, fast)

    def test_fastpath_stateful_component(self):
        built = build_graph(StatefulCounter(),
                            {"amount": FloatBox(shape=(), add_batch_rank=True)},
                            backend=XTAPE)
        built.eager_fastpath = True
        built.execute("bump", np.asarray([2.0], np.float32))
        out = built.execute("bump", np.asarray([3.0], np.float32))
        assert int(np.asarray(out)) == 5

    def test_fastpath_multi_output(self):
        built = build_graph(TwoOutputs(scope="two"),
                            {"x": FloatBox(shape=(4,), add_batch_rank=True)},
                            backend=XTAPE)
        built.eager_fastpath = True
        mean, mx = built.execute("stats", np.asarray([[2.0, 4, 6, 8]],
                                                     np.float32))
        assert float(mean) == pytest.approx(5.0)
        assert float(mx) == pytest.approx(8.0)
