"""raylite actor-framework tests: futures, ordering, errors, parallelism."""

import threading
import time

import numpy as np
import pytest

from repro import raylite
from repro.raylite import RayliteError


class Counter:
    def __init__(self, start=0):
        self.value = start

    def increment(self, by=1):
        self.value += by
        return self.value

    def get_value(self):
        return self.value

    def boom(self):
        raise ValueError("intentional")

    def slow_add(self, x):
        time.sleep(0.05)
        return x + 1

    def thread_name(self):
        return threading.current_thread().name

    def matmul(self, n):
        a = np.ones((n, n), dtype=np.float64)
        return float((a @ a).sum())


def setup_module(module):
    raylite.init(serialize=False)


def teardown_module(module):
    raylite.shutdown()


class TestActors:
    def test_create_and_call(self):
        counter = raylite.remote(Counter).remote(10)
        ref = counter.increment.remote(5)
        assert raylite.get(ref) == 15

    def test_fifo_ordering(self):
        counter = raylite.remote(Counter).remote()
        refs = [counter.increment.remote() for _ in range(20)]
        values = raylite.get(refs)
        assert values == list(range(1, 21))

    def test_actor_runs_in_own_thread(self):
        counter = raylite.remote(Counter).remote()
        name = raylite.get(counter.thread_name.remote())
        assert name != threading.current_thread().name
        assert name.startswith("raylite-")

    def test_exception_surfaces_at_get(self):
        counter = raylite.remote(Counter).remote()
        ref = counter.boom.remote()
        with pytest.raises(ValueError, match="intentional"):
            raylite.get(ref)

    def test_init_exception_propagates(self):
        class Bad:
            def __init__(self):
                raise RuntimeError("ctor fail")

        with pytest.raises(RuntimeError, match="ctor fail"):
            raylite.remote(Bad).remote()

    def test_unknown_method(self):
        counter = raylite.remote(Counter).remote()
        with pytest.raises(RayliteError):
            counter.nope.remote()

    def test_direct_call_rejected(self):
        counter = raylite.remote(Counter).remote()
        with pytest.raises(RayliteError):
            counter.increment()

    def test_remote_requires_class(self):
        with pytest.raises(RayliteError):
            raylite.remote(lambda: None)


class TestFutures:
    def test_put_get(self):
        ref = raylite.put({"a": np.ones(3)})
        out = raylite.get(ref)
        np.testing.assert_array_equal(out["a"], np.ones(3))

    def test_wait_splits_ready_pending(self):
        counter = raylite.remote(Counter).remote()
        fast = counter.increment.remote()
        slow = counter.slow_add.remote(1)  # FIFO: runs after fast
        ready, pending = raylite.wait([fast, slow], num_returns=1)
        assert fast in ready

    def test_wait_timeout(self):
        counter = raylite.remote(Counter).remote()
        slow = counter.slow_add.remote(1)
        ready, pending = raylite.wait([slow], num_returns=1, timeout=0.001)
        assert slow in ready or slow in pending

    def test_wait_num_returns_validation(self):
        with pytest.raises(RayliteError):
            raylite.wait([], num_returns=1)

    def test_get_timeout(self):
        counter = raylite.remote(Counter).remote()
        ref = counter.slow_add.remote(0)
        with pytest.raises(RayliteError):
            ref.result(timeout=0.001)


class TestParallelism:
    def test_numpy_work_parallelizes(self):
        """Two actors on big GIL-releasing matmuls beat one actor 2x-ish
        (weak assertion: parallel must not be slower than 1.8x serial)."""
        actors = [raylite.remote(Counter).remote() for _ in range(2)]
        n = 700
        # Warm up.
        raylite.get([a.matmul.remote(50) for a in actors])
        t0 = time.perf_counter()
        raylite.get(actors[0].matmul.remote(n))
        raylite.get(actors[0].matmul.remote(n))
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        raylite.get([a.matmul.remote(n) for a in actors])
        parallel = time.perf_counter() - t0
        assert parallel < serial * 1.8

    def test_serialize_mode_isolates_mutations(self):
        raylite.init(serialize=True)
        try:
            payload = {"arr": np.zeros(3)}
            ref = raylite.put(payload)
            out = raylite.get(ref)
            out["arr"][0] = 99
            again = raylite.get(ref)
            assert again["arr"][0] == 0
        finally:
            raylite.init(serialize=False)
