"""Unit + property tests for repro.spaces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spaces import (
    BoolBox,
    Dict,
    FloatBox,
    IntBox,
    Tuple,
    flatten_space,
    flatten_value,
    sanity_check_space,
    space_from_spec,
    space_from_value,
    unflatten_from_space,
    unflatten_value,
)
from repro.utils import RLGraphSpaceError


class TestBoxSpaces:
    def test_float_box_shape_and_dtype(self):
        space = FloatBox(shape=(3, 4))
        assert space.shape == (3, 4)
        assert space.dtype == np.float32
        assert space.flat_dim == 12
        assert space.rank == 2

    def test_scalar_float_box(self):
        space = FloatBox()
        assert space.shape == ()
        assert space.flat_dim == 1

    def test_bounds_define_shape(self):
        space = FloatBox(low=[0.0, -1.0], high=[1.0, 1.0])
        assert space.shape == (2,)

    def test_bound_shape_mismatch_raises(self):
        with pytest.raises(RLGraphSpaceError):
            FloatBox(low=[0.0, 0.0], high=[1.0], shape=None)

    def test_bounded_sampling_within_bounds(self):
        space = FloatBox(low=0.0, high=1.0, shape=(5,))
        rng = np.random.default_rng(0)
        sample = space.sample(size=100, rng=rng)
        assert sample.shape == (100, 5)
        assert np.all(sample >= 0.0) and np.all(sample <= 1.0)

    def test_contains(self):
        space = FloatBox(low=0.0, high=1.0, shape=(2,))
        assert space.contains(np.array([0.5, 0.5], dtype=np.float32))
        assert not space.contains(np.array([1.5, 0.5]))
        assert not space.contains(np.zeros(3))

    def test_int_box_single_arg_discrete(self):
        space = IntBox(4)
        assert space.num_categories == 4
        assert space.shape == ()
        sample = space.sample(size=50, rng=np.random.default_rng(1))
        assert sample.min() >= 0 and sample.max() < 4

    def test_int_box_contains_excludes_high(self):
        space = IntBox(4)
        assert space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)

    def test_int_box_shaped(self):
        space = IntBox(low=0, high=10, shape=(2, 2))
        assert space.sample(rng=np.random.default_rng(2)).shape == (2, 2)

    def test_bool_box(self):
        space = BoolBox(shape=(3,))
        sample = space.sample(size=4, rng=np.random.default_rng(3))
        assert sample.shape == (4, 3)
        assert sample.dtype == np.bool_
        assert space.contains(np.zeros(3, dtype=bool))

    def test_zeros(self):
        assert FloatBox(shape=(2,)).zeros(size=3).shape == (3, 2)
        assert IntBox(5).zeros().shape == ()

    def test_batch_time_ranks(self):
        space = FloatBox(shape=(4,), add_batch_rank=True, add_time_rank=True)
        assert space.get_shape(with_batch_rank=True, with_time_rank=True,
                               batch_size=2, time_steps=5) == (2, 5, 4)
        tm = space.with_time_rank(True, time_major=True)
        assert tm.get_shape(with_batch_rank=True, with_time_rank=True,
                            batch_size=2, time_steps=5) == (5, 2, 4)

    def test_strip_and_with_ranks(self):
        space = FloatBox(shape=(4,), add_batch_rank=True)
        stripped = space.strip_ranks()
        assert not stripped.has_batch_rank
        assert space.has_batch_rank  # original untouched

    def test_equality_and_hash(self):
        a = FloatBox(shape=(2,), add_batch_rank=True)
        b = FloatBox(shape=(2,), add_batch_rank=True)
        c = FloatBox(shape=(3,), add_batch_rank=True)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != IntBox(2)


class TestContainerSpaces:
    def test_dict_sorted_keys(self):
        space = Dict(b=FloatBox(), a=IntBox(3))
        assert space.keys() == ["a", "b"]

    def test_dict_rank_propagation(self):
        space = Dict(x=FloatBox(shape=(2,)), add_batch_rank=True)
        assert space["x"].has_batch_rank

    def test_dict_sample_and_contains(self):
        space = Dict(x=FloatBox(low=0, high=1, shape=(2,)), n=IntBox(5))
        sample = space.sample(rng=np.random.default_rng(0))
        assert set(sample) == {"n", "x"}
        assert space.contains(sample)
        assert not space.contains({"x": sample["x"]})

    def test_tuple_space(self):
        space = Tuple(FloatBox(shape=(2,)), IntBox(3), add_batch_rank=True)
        assert len(space) == 2
        assert space[0].has_batch_rank
        sample = space.sample(size=4, rng=np.random.default_rng(0))
        assert sample[0].shape == (4, 2)
        assert space.contains(space.sample(rng=np.random.default_rng(1)))

    def test_nested_flat_dim(self):
        space = Dict(a=FloatBox(shape=(3,)), b=Tuple(IntBox(2), FloatBox(shape=(2, 2))))
        assert space.flat_dim == 3 + 1 + 4

    def test_empty_dict_raises(self):
        with pytest.raises(RLGraphSpaceError):
            Dict({})


class TestSpecResolution:
    def test_int_spec(self):
        space = space_from_spec(6)
        assert isinstance(space, IntBox) and space.num_categories == 6

    def test_tuple_of_ints_is_float_shape(self):
        space = space_from_spec((84, 84, 3))
        assert isinstance(space, FloatBox) and space.shape == (84, 84, 3)

    def test_string_specs(self):
        assert isinstance(space_from_spec("float"), FloatBox)
        assert isinstance(space_from_spec("int"), IntBox)
        assert isinstance(space_from_spec("bool"), BoolBox)

    def test_typed_dict_spec(self):
        space = space_from_spec({"type": "float", "shape": [4]})
        assert isinstance(space, FloatBox) and space.shape == (4,)

    def test_plain_dict_becomes_container(self):
        space = space_from_spec({"obs": (4,), "task": 3})
        assert isinstance(space, Dict)
        assert isinstance(space["task"], IntBox)

    def test_add_ranks_via_spec(self):
        space = space_from_spec((4,), add_batch_rank=True)
        assert space.has_batch_rank

    def test_space_from_value(self):
        space = space_from_value(np.zeros((8, 4), dtype=np.float32), add_batch_rank=True)
        assert space.shape == (4,) and space.has_batch_rank
        space2 = space_from_value({"a": np.zeros(3), "b": np.array(1)})
        assert isinstance(space2, Dict)


class TestFlattening:
    def setup_method(self):
        self.space = Dict(
            states=Dict(img=FloatBox(shape=(4, 4)), txt=IntBox(10)),
            actions=Tuple(IntBox(3), FloatBox(shape=(2,))),
            add_batch_rank=True,
        )

    def test_flatten_space_keys(self):
        flat = flatten_space(self.space)
        assert list(flat.keys()) == [
            "actions/[0]", "actions/[1]", "states/img", "states/txt",
        ]

    def test_flatten_leaf_space(self):
        flat = flatten_space(FloatBox(shape=(2,)))
        assert list(flat.keys()) == [""]

    def test_value_roundtrip_with_space(self):
        value = self.space.sample(size=2, rng=np.random.default_rng(0))
        flat = flatten_value(value, self.space)
        rebuilt = unflatten_from_space(flat, self.space)
        assert set(rebuilt) == {"states", "actions"}
        np.testing.assert_array_equal(rebuilt["states"]["img"],
                                      value["states"]["img"])
        np.testing.assert_array_equal(rebuilt["actions"][1], value["actions"][1])

    def test_value_roundtrip_structural(self):
        value = {"a": (np.ones(2), np.zeros(1)), "b": np.array(3)}
        flat = flatten_value(value)
        rebuilt = unflatten_value(flat)
        assert isinstance(rebuilt["a"], tuple)
        np.testing.assert_array_equal(rebuilt["a"][0], np.ones(2))


class TestSanityCheck:
    def test_type_check(self):
        sanity_check_space(FloatBox(shape=(2,)), allowed_types=[FloatBox])
        with pytest.raises(RLGraphSpaceError):
            sanity_check_space(IntBox(2), allowed_types=[FloatBox])

    def test_rank_check(self):
        sanity_check_space(FloatBox(shape=(2, 2)), rank=2)
        sanity_check_space(FloatBox(shape=(2,)), rank=(1, 2))
        with pytest.raises(RLGraphSpaceError):
            sanity_check_space(FloatBox(shape=(2,)), rank=3)

    def test_batch_rank_check(self):
        with pytest.raises(RLGraphSpaceError):
            sanity_check_space(FloatBox(shape=(2,)), must_have_batch_rank=True)

    def test_categories_check(self):
        sanity_check_space(IntBox(4), num_categories=4)
        with pytest.raises(RLGraphSpaceError):
            sanity_check_space(IntBox(4), num_categories=5)
        with pytest.raises(RLGraphSpaceError):
            sanity_check_space(FloatBox(), must_have_categories=True)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
_leaf_spaces = st.one_of(
    st.builds(FloatBox, shape=st.tuples(st.integers(1, 4), st.integers(1, 4))),
    st.builds(lambda n: IntBox(n), st.integers(2, 10)),
    st.builds(BoolBox, shape=st.tuples(st.integers(1, 3))),
)


def _container_spaces(children):
    return st.one_of(
        st.builds(
            lambda subs: Dict({f"k{i}": s for i, s in enumerate(subs)}),
            st.lists(children, min_size=1, max_size=3),
        ),
        st.builds(lambda subs: Tuple(*subs),
                  st.lists(children, min_size=1, max_size=3)),
    )


_spaces = st.recursive(_leaf_spaces, _container_spaces, max_leaves=6)


@settings(max_examples=40, deadline=None)
@given(space=_spaces, seed=st.integers(0, 2**31 - 1))
def test_sample_is_contained(space, seed):
    sample = space.sample(rng=np.random.default_rng(seed))
    assert space.contains(sample)


@settings(max_examples=40, deadline=None)
@given(space=_spaces, seed=st.integers(0, 2**31 - 1))
def test_flatten_roundtrip_property(space, seed):
    value = space.sample(rng=np.random.default_rng(seed))
    flat = flatten_value(value, space)
    rebuilt = unflatten_from_space(flat, space)
    rebuilt_flat = flatten_value(rebuilt, space)
    assert list(flat.keys()) == list(rebuilt_flat.keys())
    for key in flat:
        np.testing.assert_array_equal(flat[key], rebuilt_flat[key])


@settings(max_examples=40, deadline=None)
@given(space=_spaces)
def test_flat_dim_consistency(space):
    flat = flatten_space(space)
    assert space.flat_dim == sum(s.flat_dim for s in flat.values())


@settings(max_examples=30, deadline=None)
@given(space=_spaces)
def test_copy_independent_and_equal(space):
    clone = space.copy()
    assert clone == space
    batched = space.with_batch_rank(True)
    assert batched.has_batch_rank
