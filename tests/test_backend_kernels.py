"""Kernel tests: conv2d and LSTM against slow reference implementations,
plus gradient checks through the fused primitives."""

import numpy as np
import pytest

from repro.backend import ETensor, collect_leaf_grads, functional as F
from repro.backend import kernels


def conv2d_reference(x, filters, stride, padding):
    """Naive loop conv (NHWC), the gold standard for im2col."""
    n, h, w, cin = x.shape
    kh, kw, _, cout = filters.shape
    if padding == "SAME":
        ph0, ph1 = kernels._same_pad_amounts(h, kh, stride)
        pw0, pw1 = kernels._same_pad_amounts(w, kw, stride)
        x = np.pad(x, ((0, 0), (ph0, ph1), (pw0, pw1), (0, 0)))
        h, w = x.shape[1], x.shape[2]
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros((n, oh, ow, cout), dtype=np.float32)
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = x[b, i * stride:i * stride + kh, j * stride:j * stride + kw]
                for co in range(cout):
                    out[b, i, j, co] = np.sum(patch * filters[..., co])
    return out


class TestConv2D:
    @pytest.mark.parametrize("stride,padding", [(1, "VALID"), (2, "VALID"),
                                                (1, "SAME"), (2, "SAME")])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 7, 7, 3)).astype(np.float32)
        f = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
        fast = kernels.conv2d_forward(x, f, stride, padding)
        slow = conv2d_reference(x, f, stride, padding)
        np.testing.assert_allclose(fast, slow, atol=1e-4)

    def test_output_size_formula(self):
        assert kernels.conv2d_output_size(84, 8, 4, "VALID") == 20
        assert kernels.conv2d_output_size(84, 8, 4, "SAME") == 21

    @pytest.mark.parametrize("stride,padding", [(1, "VALID"), (2, "SAME")])
    def test_gradients_numeric(self, stride, padding):
        rng = np.random.default_rng(1)
        x_val = rng.standard_normal((1, 5, 5, 2)).astype(np.float32)
        f_val = rng.standard_normal((3, 3, 2, 2)).astype(np.float32)

        tx = ETensor(x_val, requires_grad=True)
        tf = ETensor(f_val, requires_grad=True)
        loss = F.reduce_sum(F.conv2d(tx, tf, stride=stride, padding=padding))
        gx, gf = collect_leaf_grads(loss, [tx, tf])

        eps = 1e-3

        def loss_at(x, f):
            return float(np.sum(kernels.conv2d_forward(x, f, stride, padding)))

        # Spot-check a handful of coordinates (full numeric check is slow).
        for idx in [(0, 0, 0, 0), (0, 2, 3, 1), (0, 4, 4, 0)]:
            xp, xm = x_val.copy(), x_val.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = (loss_at(xp, f_val) - loss_at(xm, f_val)) / (2 * eps)
            np.testing.assert_allclose(gx[idx], num, atol=1e-2)
        for idx in [(0, 0, 0, 0), (1, 2, 1, 1), (2, 2, 0, 1)]:
            fp, fm = f_val.copy(), f_val.copy()
            fp[idx] += eps
            fm[idx] -= eps
            num = (loss_at(x_val, fp) - loss_at(x_val, fm)) / (2 * eps)
            np.testing.assert_allclose(gf[idx], num, atol=1e-2)


def lstm_reference(x, w, b, h0, c0):
    """Step-by-step reference identical in math to the fused kernel."""
    t_steps, batch, _ = x.shape
    hidden = h0.shape[-1]
    h, c = h0.copy(), c0.copy()
    outs = []
    for t in range(t_steps):
        xh = np.concatenate([x[t], h], axis=1)
        gates = xh @ w + b
        i = 1 / (1 + np.exp(-gates[:, :hidden]))
        f = 1 / (1 + np.exp(-(gates[:, hidden:2 * hidden] + 1.0)))
        g = np.tanh(gates[:, 2 * hidden:3 * hidden])
        o = 1 / (1 + np.exp(-gates[:, 3 * hidden:]))
        c = f * c + i * g
        h = o * np.tanh(c)
        outs.append(h)
    return np.stack(outs), h, c


class TestLSTM:
    def _make(self, t=4, b=2, d=3, h=5, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((t, b, d)).astype(np.float32)
        w = (rng.standard_normal((d + h, 4 * h)) * 0.2).astype(np.float32)
        bias = np.zeros(4 * h, np.float32)
        h0 = np.zeros((b, h), np.float32)
        c0 = np.zeros((b, h), np.float32)
        return x, w, bias, h0, c0

    def test_forward_matches_reference(self):
        x, w, b, h0, c0 = self._make()
        outs, hf, cf, _ = kernels.lstm_forward(x, w, b, h0, c0)
        ref_outs, ref_h, ref_c = lstm_reference(x, w, b, h0, c0)
        np.testing.assert_allclose(outs, ref_outs, atol=1e-5)
        np.testing.assert_allclose(hf, ref_h, atol=1e-5)
        np.testing.assert_allclose(cf, ref_c, atol=1e-5)

    def test_final_c_op(self):
        x, w, b, h0, c0 = self._make()
        c = F.lstm_final_c(x, w, b, h0, c0)
        _, _, ref_c = lstm_reference(x, w, b, h0, c0)
        np.testing.assert_allclose(c, ref_c, atol=1e-5)

    def test_bptt_numeric(self):
        x, w, b, h0, c0 = self._make(t=3, b=2, d=2, h=3, seed=5)
        tw = ETensor(w, requires_grad=True)
        tx = ETensor(x, requires_grad=True)
        outs = F.lstm_seq(tx, tw, b, h0, c0)
        loss = F.reduce_sum(F.square(outs))
        gx, gw = collect_leaf_grads(loss, [tx, tw])

        eps = 1e-3

        def loss_at(x_, w_):
            o, _, _, _ = kernels.lstm_forward(x_, w_, b, h0, c0)
            return float(np.sum(o ** 2))

        for idx in [(0, 0, 0), (2, 1, 1), (1, 0, 1)]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = (loss_at(xp, w) - loss_at(xm, w)) / (2 * eps)
            np.testing.assert_allclose(gx[idx], num, atol=5e-2, rtol=5e-2)
        for idx in [(0, 0), (3, 5), (4, 2)]:
            wp, wm = w.copy(), w.copy()
            wp[idx] += eps
            wm[idx] -= eps
            num = (loss_at(x, wp) - loss_at(x, wm)) / (2 * eps)
            np.testing.assert_allclose(gw[idx], num, atol=5e-2, rtol=5e-2)


class TestMiscKernels:
    def test_one_hot_out_of_range_rows_zero(self):
        out = kernels.one_hot(np.asarray([0, 5, -1]), 3)
        np.testing.assert_array_equal(out[1], [0, 0, 0])
        np.testing.assert_array_equal(out[2], [0, 0, 0])

    def test_unbroadcast_shapes(self):
        g = np.ones((4, 3))
        np.testing.assert_array_equal(kernels.unbroadcast(g, (3,)),
                                      4 * np.ones(3))
        np.testing.assert_array_equal(kernels.unbroadcast(g, (1, 3)),
                                      4 * np.ones((1, 3)))
        np.testing.assert_array_equal(kernels.unbroadcast(g, (4, 3)), g)

    def test_im2col_col2im_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> -- the defining adjoint property.
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 6, 6, 2)).astype(np.float32)
        cols = kernels.im2col(x, 3, 3, 2, "VALID")
        y = rng.standard_normal(cols.shape).astype(np.float32)
        lhs = float(np.sum(cols * y))
        back = kernels.col2im(y, x.shape, 3, 3, 2, "VALID")
        rhs = float(np.sum(x * back))
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4)
