"""Execution-layer tests: n-step accumulation, workers, the Ape-X
executor on raylite, the IMPALA runner, and the baselines."""

import numpy as np
import pytest

from repro import raylite
from repro.agents import ApexAgent, DQNAgent, IMPALAAgent
from repro.backend import XGRAPH, XTAPE
from repro.baselines import (
    DMReferenceIMPALARunner,
    HandTunedActor,
    RLlibLikeApexExecutor,
)
from repro.environments import GridWorld, RandomEnv, SequentialVectorEnv, SimPong
from repro.execution import NStepAccumulator, SingleThreadedWorker
from repro.execution.impala_runner import IMPALARunner, _merge_rollouts
from repro.execution.ray import ApexExecutor
from repro.execution.worker import batched_n_step
from repro.spaces import FloatBox, IntBox
from repro.utils import RLGraphError


def teardown_module(module):
    raylite.shutdown()


# ---------------------------------------------------------------------------
# n-step post-processing
# ---------------------------------------------------------------------------
class TestNStepAccumulator:
    def test_one_step_passthrough(self):
        acc = NStepAccumulator(1, 0.9)
        out = acc.push("s0", 1, 1.0, False, "s1")
        assert out == [("s0", 1, 1.0, False, "s1")]

    def test_three_step_window(self):
        acc = NStepAccumulator(3, 0.5)
        assert acc.push("s0", 0, 1.0, False, "s1") == []
        assert acc.push("s1", 0, 1.0, False, "s2") == []
        out = acc.push("s2", 0, 1.0, False, "s3")
        assert len(out) == 1
        s, a, r, t, ns = out[0]
        assert s == "s0" and ns == "s3"
        assert r == pytest.approx(1 + 0.5 + 0.25)
        assert not t

    def test_terminal_flushes_short_windows(self):
        acc = NStepAccumulator(3, 0.5)
        acc.push("s0", 0, 1.0, False, "s1")
        out = acc.push("s1", 0, 2.0, True, "s2")
        assert len(out) == 2
        # First sample spans both steps: 1 + 0.5*2 = 2, terminal.
        assert out[0][2] == pytest.approx(2.0) and out[0][3]
        assert out[0][4] == "s2"
        # Second sample is the final step alone.
        assert out[1][0] == "s1" and out[1][2] == pytest.approx(2.0)

    def test_invalid_n_step(self):
        with pytest.raises(RLGraphError):
            NStepAccumulator(0, 0.9)

    def test_batched_matches_streaming(self):
        """Vectorized n-step must agree with the streaming accumulator on
        windows that fit inside the block."""
        rng = np.random.default_rng(0)
        t_steps, n_envs, n_step, gamma = 12, 3, 3, 0.9
        states = rng.standard_normal((t_steps, n_envs, 2)).astype(np.float32)
        next_states = rng.standard_normal((t_steps, n_envs, 2)).astype(np.float32)
        actions = rng.integers(0, 4, (t_steps, n_envs))
        rewards = rng.normal(size=(t_steps, n_envs)).astype(np.float32)
        terminals = rng.random((t_steps, n_envs)) < 0.15

        s, a, r, t, ns = batched_n_step(states, actions, rewards, terminals,
                                        next_states, n_step, gamma)
        r_grid = r.reshape(t_steps, n_envs)
        t_grid = t.reshape(t_steps, n_envs)
        ns_grid = ns.reshape(t_steps, n_envs, 2)

        for e in range(n_envs):
            acc = NStepAccumulator(n_step, gamma)
            emitted = {}
            order = []
            for step in range(t_steps):
                ready = acc.push(step, actions[step, e], rewards[step, e],
                                 terminals[step, e], next_states[step, e])
                for (start, _, rr, tt, nn) in ready:
                    emitted[start] = (rr, tt, nn)
            for start, (rr, tt, nn) in emitted.items():
                np.testing.assert_allclose(r_grid[start, e], rr, atol=1e-5)
                assert t_grid[start, e] == tt
                np.testing.assert_allclose(ns_grid[start, e], nn, atol=1e-6)


# ---------------------------------------------------------------------------
# SingleThreadedWorker
# ---------------------------------------------------------------------------
def _make_worker(backend=XGRAPH, num_envs=2, **worker_kwargs):
    env_fns = [lambda i=i: GridWorld(seed=i) for i in range(num_envs)]
    vec = SequentialVectorEnv(env_fns=env_fns)
    agent = DQNAgent(state_space=vec.state_space,
                     action_space=vec.action_space,
                     network_spec=[{"type": "dense", "units": 16}],
                     memory_capacity=512, batch_size=8, backend=backend,
                     seed=0)
    return SingleThreadedWorker(agent, vec, **worker_kwargs)


class TestSingleThreadedWorker:
    @pytest.mark.parametrize("batched", [True, False])
    def test_collect_samples_shapes(self, batched):
        worker = _make_worker(batched_postprocessing=batched, n_step=3,
                              discount=0.9)
        batch = worker.collect_samples(40)
        n = len(batch["rewards"])
        assert n > 0
        assert batch["states"].shape == (n, 16)
        assert batch["next_states"].shape == (n, 16)
        assert batch["terminals"].dtype == bool
        assert worker.stats.env_frames == 40

    def test_worker_side_prioritization_adds_priorities(self):
        worker = _make_worker(worker_side_prioritization=True, n_step=1)
        batch = worker.collect_samples(20)
        assert "priorities" in batch
        assert np.all(batch["priorities"] > 0)

    def test_batched_mode_fewer_api_calls(self):
        """The batched worker issues O(T) executor calls; the incremental
        one O(T * E) plus per-sample priority calls."""
        fast = _make_worker(worker_side_prioritization=True,
                            batched_postprocessing=True)
        slow = _make_worker(worker_side_prioritization=True,
                            batched_postprocessing=False)
        fast.collect_samples(40)
        slow.collect_samples(40)
        # xgraph backend counts session runs directly.
        fast_runs = fast.agent.graph.session.stats.run_calls
        slow_runs = slow.agent.graph.session.stats.run_calls
        assert slow_runs > fast_runs * 1.5

    def test_execute_timesteps_trains(self):
        worker = _make_worker()
        stats = worker.execute_timesteps(600, update_interval=8,
                                         update_after=100)
        assert stats.env_frames == 600
        assert worker.agent.updates > 0
        assert stats.frames_per_second > 0


# ---------------------------------------------------------------------------
# Ape-X executor on raylite
# ---------------------------------------------------------------------------
def _apex_setup(num_workers=2, executor_cls=ApexExecutor, backend=XGRAPH,
                **kwargs):
    def env_factory(seed):
        return GridWorld(seed=seed)

    def agent_factory():
        return ApexAgent(state_space=(16,), action_space=IntBox(4),
                         network_spec=[{"type": "dense", "units": 16}],
                         backend=backend, seed=1)

    learner = agent_factory()
    executor = executor_cls(
        learner_agent=learner, agent_factory=agent_factory,
        env_factory=env_factory, num_workers=num_workers, envs_per_worker=2,
        num_replay_shards=2, task_size=40, batch_size=16,
        replay_capacity=4096, learning_starts=80, weight_sync_steps=5,
        **kwargs)
    return executor


class TestApexExecutor:
    def test_collects_and_updates(self):
        executor = _apex_setup()
        result = executor.execute_workload(num_samples=400)
        assert result.env_frames > 0
        assert result.learner_updates > 0
        assert result.env_frames_per_second > 0
        d = result.as_dict()
        assert set(d) >= {"env_frames", "learner_updates", "wall_time"}

    def test_throughput_only_mode(self):
        executor = _apex_setup()
        result = executor.execute_workload(num_samples=300,
                                           updates_enabled=False)
        assert result.learner_updates == 0
        assert result.env_frames > 0

    def test_rllib_like_baseline_runs(self):
        executor = _apex_setup(executor_cls=RLlibLikeApexExecutor)
        result = executor.execute_workload(num_samples=200)
        assert result.env_frames > 0

    def test_invalid_worker_mode(self):
        with pytest.raises(RLGraphError):
            ApexExecutor(learner_agent=None, agent_factory=None,
                         env_factory=None, worker_mode="bogus")


@pytest.mark.mp_timeout(180)
class TestProcessBackendExecutors:
    """parallel_spec="process": the same coordination loops on raylite
    process actors with shared-memory sample/weight transport."""

    def test_apex_process_backend_collects_and_updates(self):
        executor = _apex_setup(parallel_spec={"backend": "process",
                                              "env_backend": "subproc"})
        try:
            result = executor.execute_workload(num_samples=300)
            assert result.env_frames > 0
            assert result.learner_updates > 0
        finally:
            raylite.shutdown()

    def test_impala_process_backend_runs_and_updates(self):
        runner = _impala_setup(parallel_spec="process")
        try:
            result = runner.run(duration=2.0)
            assert result["env_frames"] > 0
            assert result["learner_updates"] > 0
            assert all(np.isfinite(l) for l in result["losses"])
        finally:
            raylite.shutdown()

    def test_sync_batch_process_backend(self):
        from repro.agents import ActorCriticAgent
        from repro.execution import SyncBatchExecutor

        def env_factory(seed):
            return GridWorld(seed=seed)

        def agent_factory(worker_index=0):
            return ActorCriticAgent(
                state_space=(16,), action_space=IntBox(4),
                network_spec=[{"type": "dense", "units": 16,
                               "activation": "tanh"}], seed=5)

        executor = SyncBatchExecutor(
            learner_agent=agent_factory(), agent_factory=agent_factory,
            env_factory=env_factory, num_workers=2, envs_per_worker=2,
            rollout_length=8, parallel_spec="process")
        try:
            result = executor.execute_workload(num_iterations=3)
            assert result["env_frames"] == 3 * 2 * 2 * 8
            assert result["updates"] == 3
        finally:
            raylite.shutdown()


# ---------------------------------------------------------------------------
# IMPALA runner
# ---------------------------------------------------------------------------
def _impala_setup(runner_cls=IMPALARunner, num_actors=2, backend=XGRAPH,
                  **kwargs):
    def env_factory(seed):
        return GridWorld(seed=seed)

    def agent_factory():
        return IMPALAAgent(state_space=(16,), action_space=IntBox(4),
                           network_spec=[{"type": "dense", "units": 16,
                                          "activation": "tanh"}],
                           backend=backend, seed=2)

    learner = agent_factory()
    return runner_cls(learner_agent=learner, agent_factory=agent_factory,
                      env_factory=env_factory, num_actors=num_actors,
                      rollout_length=8, batch_size=2, **kwargs)


class TestIMPALARunner:
    def test_runs_and_updates(self):
        runner = _impala_setup()
        result = runner.run(duration=2.0)
        assert result["env_frames"] > 0
        assert result["learner_updates"] > 0
        assert all(np.isfinite(l) for l in result["losses"])

    def test_merge_rollouts_shapes(self):
        t, e = 4, 2
        item = {
            "states": np.zeros((t, e, 3)), "actions": np.zeros((t, e), int),
            "behaviour_log_probs": np.zeros((t, e), np.float32),
            "rewards": np.zeros((t, e), np.float32),
            "terminals": np.zeros((t, e), bool),
            "bootstrap_states": np.zeros((e, 3)),
        }
        merged = _merge_rollouts([item, item])
        assert merged["states"].shape == (t, 2 * e, 3)
        assert merged["bootstrap_states"].shape == (2 * e, 3)
        with pytest.raises(RLGraphError):
            _merge_rollouts([])

    def test_dm_reference_baseline_slower_acting(self):
        # Wall-clock comparisons flake under load; retry once and use a
        # lenient bound here (the strict 20% claim is asserted in
        # benchmarks/test_bench_impala_assignments.py).
        for attempt in range(2):
            fast = _impala_setup(num_actors=1)
            slow = _impala_setup(runner_cls=DMReferenceIMPALARunner,
                                 num_actors=1)
            r_fast = fast.run(duration=2.0, updates_enabled=False)
            r_slow = slow.run(duration=2.0, updates_enabled=False)
            if r_fast["env_frames"] > r_slow["env_frames"] * 0.9:
                break
        assert r_fast["env_frames"] > r_slow["env_frames"] * 0.9


# ---------------------------------------------------------------------------
# Hand-tuned actor
# ---------------------------------------------------------------------------
class TestHandTunedActor:
    def test_matches_agent_greedy_actions(self):
        env = SimPong(size=16, seed=0)
        agent = DQNAgent(
            state_space=env.state_space, action_space=env.action_space,
            preprocessing_spec=[{"type": "divide", "divisor": 255.0}],
            network_spec=[
                {"type": "conv2d", "filters": 4, "kernel_size": 4,
                 "stride": 2},
                {"type": "dense", "units": 16},
            ],
            dueling=True, backend=XGRAPH, seed=4)
        actor = HandTunedActor.from_agent(agent)
        frames = np.stack([env.reset() for _ in range(3)])
        fast_actions = actor.act(frames)
        agent_actions, _ = agent.get_actions(frames, explore=False)
        np.testing.assert_array_equal(fast_actions, agent_actions)
