"""Supervision-layer tests: backoff properties (bounded, jitterless,
deterministic under a seeded clock), Supervisor restart semantics with
fake handles, spec resolution, factory picklability, and the raylite
liveness signal the supervisor is built on (SIGKILLed process actors
flip ``is_alive()`` and fire death callbacks; deliberate kills do not).
"""

import os
import pickle
import signal
import threading
import time

import pytest

from repro import raylite
from repro.execution.parallel import resolve_parallel_spec
from repro.execution.supervision import (
    BackoffPolicy,
    ReplicaFactory,
    RestartEvent,
    SupervisionError,
    SupervisionSpec,
    Supervisor,
    resolve_supervision_spec,
)
from repro.utils.errors import RLGraphError


# ---------------------------------------------------------------------------
# Fakes: deterministic clock + in-memory actor handles
# ---------------------------------------------------------------------------
class FakeClock:
    """Manual time source; ``sleep`` advances it and records the call."""

    def __init__(self, start=0.0):
        self.now = float(start)
        self.slept = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds

    def advance(self, seconds):
        self.now += float(seconds)


class FakeHandle:
    """Minimal stand-in for a raylite actor handle."""

    def __init__(self, alive=True):
        self.alive = alive
        self.killed = False

    def is_alive(self):
        return self.alive

    def kill(self):
        self.alive = False
        self.killed = True


class FakeFactory:
    """Builds FakeHandles; scriptable to fail or produce dead ones."""

    def __init__(self, fail_first=0, dead_first=0):
        self.built = []
        self.fail_first = fail_first
        self.dead_first = dead_first
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError("factory down")
        handle = FakeHandle(alive=self.calls > self.fail_first
                            + self.dead_first)
        self.built.append(handle)
        return handle


def _supervisor(clock=None, **backoff_kwargs):
    clock = clock or FakeClock()
    spec = SupervisionSpec(backoff=BackoffPolicy(**backoff_kwargs))
    return Supervisor(spec, clock=clock, sleep=clock.sleep), clock


# ---------------------------------------------------------------------------
# BackoffPolicy properties
# ---------------------------------------------------------------------------
class TestBackoffPolicy:
    def test_schedule_is_exponential_and_capped(self):
        policy = BackoffPolicy(base_delay=0.1, factor=2.0, max_delay=0.5,
                               max_restarts=6)
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_schedule_is_deterministic(self):
        # Jitterless by design: two policies with the same knobs produce
        # byte-identical schedules (the seeded-clock reproducibility
        # contract the chaos tests rely on).
        a = BackoffPolicy(base_delay=0.05, factor=3.0, max_delay=2.0)
        b = BackoffPolicy(base_delay=0.05, factor=3.0, max_delay=2.0)
        assert a.delays() == b.delays()

    def test_bounded_by_max_restarts(self):
        assert len(BackoffPolicy(max_restarts=3).delays()) == 3
        assert BackoffPolicy(max_restarts=0).delays() == []

    def test_validation(self):
        with pytest.raises(RLGraphError):
            BackoffPolicy(base_delay=-0.1)
        with pytest.raises(RLGraphError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(RLGraphError):
            BackoffPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(RLGraphError):
            BackoffPolicy(max_restarts=-1)
        with pytest.raises(RLGraphError):
            BackoffPolicy().delay(-1)


# ---------------------------------------------------------------------------
# Spec resolution
# ---------------------------------------------------------------------------
class TestSpecResolution:
    def test_none_and_false_disable(self):
        assert resolve_supervision_spec(None).enabled is False
        assert resolve_supervision_spec(False).enabled is False

    def test_true_and_on_enable_defaults(self):
        for value in (True, "on"):
            spec = resolve_supervision_spec(value)
            assert spec.enabled is True
            assert spec.backoff.max_restarts == 5

    def test_dict_sets_backoff_knobs(self):
        spec = resolve_supervision_spec(
            {"base_delay": 0.01, "factor": 4.0, "max_delay": 1.0,
             "max_restarts": 2, "probe_interval": 0.1, "reset_after": 9.0})
        assert spec.enabled is True
        assert spec.backoff.delays() == [0.01, 0.04]
        assert spec.probe_interval == 0.1
        assert spec.reset_after == 9.0

    def test_unknown_dict_key_rejected(self):
        with pytest.raises(RLGraphError, match="jitter"):
            resolve_supervision_spec({"jitter": 0.5})

    def test_instance_passthrough(self):
        spec = SupervisionSpec(enabled=False)
        assert resolve_supervision_spec(spec) is spec

    def test_bad_type_rejected(self):
        with pytest.raises(RLGraphError):
            resolve_supervision_spec(42)

    def test_spec_validation(self):
        with pytest.raises(RLGraphError):
            SupervisionSpec(probe_interval=0)
        with pytest.raises(RLGraphError):
            SupervisionSpec(reset_after=-1)


# ---------------------------------------------------------------------------
# Supervisor restart semantics (fake handles, seeded clock)
# ---------------------------------------------------------------------------
class TestSupervisor:
    def test_alive_handle_passes_through(self):
        sup, clock = _supervisor()
        handle = FakeHandle()
        sup.register("a", handle, FakeFactory())
        assert sup.ensure_alive(handle) is handle
        assert sup.total_restarts == 0
        assert clock.slept == []

    def test_dead_handle_restarts_with_weight_resync(self):
        sup, _ = _supervisor()
        factory = FakeFactory()
        handle = FakeHandle(alive=False)
        synced = []
        sup.register("a", handle, factory, on_restart=synced.append)
        replacement = sup.ensure_alive(handle)
        assert replacement is factory.built[0]
        assert replacement.is_alive()
        assert synced == [replacement]  # hook saw the NEW handle
        assert sup.total_restarts == 1
        assert sup.handle("a") is replacement

    def test_restart_timeline_is_deterministic(self):
        # Two supervisors with the same seeded clock replay the exact
        # same sleep sequence — the jitterless-backoff property.
        timelines = []
        for _ in range(2):
            sup, clock = _supervisor(base_delay=0.1, factor=2.0,
                                     max_delay=5.0, max_restarts=5)
            factory = FakeFactory(fail_first=3)
            handle = FakeHandle(alive=False)
            sup.register("a", handle, factory)
            sup.ensure_alive(handle)
            timelines.append(list(clock.slept))
        assert timelines[0] == timelines[1] == [0.1, 0.2, 0.4, 0.8]

    def test_budget_exhaustion_raises_with_history(self):
        sup, _ = _supervisor(max_restarts=3)
        factory = FakeFactory(fail_first=99)  # never recovers
        handle = FakeHandle(alive=False)
        sup.register("flaky", handle, factory)
        with pytest.raises(SupervisionError) as excinfo:
            sup.ensure_alive(handle)
        err = excinfo.value
        assert err.actor_name == "flaky"
        assert len(err.history) == 3
        assert all(isinstance(e, RestartEvent) for e in err.history)
        assert [e.attempt for e in err.history] == [0, 1, 2]
        assert "factory down" in str(err)
        # The budget stays spent: the next attempt fails immediately.
        with pytest.raises(SupervisionError):
            sup.ensure_alive(handle)

    def test_dead_on_arrival_replacement_burns_attempt(self):
        sup, _ = _supervisor(max_restarts=2)
        factory = FakeFactory(dead_first=1)
        handle = FakeHandle(alive=False)
        sup.register("a", handle, factory)
        replacement = sup.ensure_alive(handle)
        assert replacement.is_alive()
        history = sup.restart_history
        assert len(history) == 2
        assert history[0].reason == "replacement dead on arrival"

    def test_failing_restart_hook_burns_attempt_then_recovers(self):
        sup, _ = _supervisor(max_restarts=3)
        factory = FakeFactory()
        handle = FakeHandle(alive=False)
        calls = []

        def hook(new_handle):
            calls.append(new_handle)
            if len(calls) == 1:
                raise RuntimeError("died during weight push")

        sup.register("a", handle, factory, on_restart=hook)
        replacement = sup.ensure_alive(handle)
        assert replacement is factory.built[1]
        assert len(calls) == 2
        assert "on_restart failed" in sup.restart_history[0].reason

    def test_stale_handle_maps_to_current_slot(self):
        # Recovery from an old incarnation's failed ref must find the
        # slot's CURRENT handle, not restart a second time.
        sup, _ = _supervisor()
        factory = FakeFactory()
        stale = FakeHandle(alive=False)
        sup.register("a", stale, factory)
        replacement = sup.ensure_alive(stale)
        assert sup.ensure_alive(stale) is replacement  # no double restart
        assert sup.total_restarts == 1

    def test_unsupervised_handle_raises_keyerror(self):
        sup, _ = _supervisor()
        with pytest.raises(KeyError):
            sup.ensure_alive(FakeHandle())

    def test_duplicate_slot_name_rejected(self):
        sup, _ = _supervisor()
        sup.register("a", FakeHandle(), FakeFactory())
        with pytest.raises(RLGraphError):
            sup.register("a", FakeHandle(), FakeFactory())

    def test_probe_restarts_only_dead_slots(self):
        sup, _ = _supervisor()
        live = FakeHandle()
        dead = FakeHandle(alive=False)
        sup.register("live", live, FakeFactory())
        sup.register("dead", dead, FakeFactory())
        assert sup.probe() == ["dead"]
        assert sup.handle("live") is live
        assert sup.handle("dead").is_alive()
        assert sup.probe() == []  # everyone healthy now

    def test_healthy_time_earns_budget_back(self):
        clock = FakeClock()
        spec = SupervisionSpec(backoff=BackoffPolicy(max_restarts=1),
                               reset_after=10.0)
        sup = Supervisor(spec, clock=clock, sleep=clock.sleep)
        factory = FakeFactory()
        handle = FakeHandle(alive=False)
        sup.register("a", handle, factory)
        first = sup.ensure_alive(handle)        # spends the whole budget
        clock.advance(11.0)                     # healthy past reset_after
        assert sup.ensure_alive(first) is first  # probe resets attempts
        first.alive = False
        second = sup.ensure_alive(first)        # budget earned back
        assert second.is_alive()
        assert sup.total_restarts == 2

    def test_restart_history_ordered_across_slots(self):
        sup, clock = _supervisor()
        a, b = FakeHandle(alive=False), FakeHandle(alive=False)
        sup.register("a", a, FakeFactory())
        sup.register("b", b, FakeFactory())
        sup.ensure_alive(a)
        clock.advance(1.0)
        sup.ensure_alive(b)
        assert [e.name for e in sup.restart_history] == ["a", "b"]


# ---------------------------------------------------------------------------
# ReplicaFactory
# ---------------------------------------------------------------------------
class _PickleProbe:
    def __init__(self, x, y=2):
        self.x, self.y = x, y


class TestReplicaFactory:
    def test_is_picklable(self):
        # Process restarts ship the recipe to a fresh worker process;
        # the factory (spec + class + args) must survive pickling.
        factory = ReplicaFactory(resolve_parallel_spec("process"),
                                 _PickleProbe, 1, y=3)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.cls is _PickleProbe
        assert clone.args == (1,)
        assert clone.kwargs == {"y": 3}
        assert clone.parallel.is_process

    def test_builds_thread_actor(self):
        factory = ReplicaFactory(resolve_parallel_spec(None), _PickleProbe, 5)
        handle = factory()
        try:
            assert handle.is_alive()
        finally:
            raylite.kill(handle)


# ---------------------------------------------------------------------------
# The liveness signal on real raylite actors
# ---------------------------------------------------------------------------
class _Idler:
    """Spawn-safe actor fixture (module-level by design)."""

    def __init__(self, start=0):
        self.value = start

    def ping(self):
        return self.value


def _idler_factory():
    return raylite.remote(_Idler).options(backend="process").remote()


@pytest.mark.mp_timeout(120)
class TestProcessLiveness:
    def test_sigkill_flips_is_alive_and_fires_callback(self):
        handle = _idler_factory()
        try:
            assert handle.is_alive()
            died = threading.Event()
            handle.add_death_callback(lambda h: died.set())
            os.kill(handle.pid, signal.SIGKILL)
            assert died.wait(timeout=10.0)
            assert not handle.is_alive()
        finally:
            raylite.shutdown()

    def test_deliberate_kill_does_not_fire_callback(self):
        handle = _idler_factory()
        try:
            died = threading.Event()
            handle.add_death_callback(lambda h: died.set())
            raylite.kill(handle)
            assert not died.wait(timeout=0.5)
            assert not handle.is_alive()
        finally:
            raylite.shutdown()

    def test_supervisor_restarts_sigkilled_process_actor(self):
        spec = resolve_supervision_spec(
            {"base_delay": 0.01, "max_delay": 0.1, "max_restarts": 3})
        sup = Supervisor(spec)
        handle = _idler_factory()
        try:
            sup.register("idler", handle, _idler_factory)
            os.kill(handle.pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while handle.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            replacement = sup.ensure_alive(handle)
            assert replacement is not handle
            assert replacement.is_alive()
            assert raylite.get(replacement.ping.remote(), timeout=10.0) == 0
            assert sup.total_restarts == 1
        finally:
            raylite.shutdown()
