"""Tests for graph visualization (paper Appendix A) and the synchronous
batch executor (the paper's "other distributed semantics" claim)."""

import numpy as np
import pytest

from repro import raylite
from repro.agents import ActorCriticAgent, DQNAgent
from repro.backend import XGRAPH
from repro.environments import GridWorld
from repro.execution.sync_batch_executor import SyncBatchExecutor
from repro.spaces import IntBox
from repro.utils.visualize import component_tree, summarize, to_dot


def teardown_module(module):
    raylite.shutdown()


def _agent(**kw):
    return DQNAgent(state_space=(4,), action_space=IntBox(2),
                    network_spec=[{"type": "dense", "units": 8}],
                    backend=XGRAPH, seed=0,
                    device_map={"policy": "/sim:gpu:0"}, **kw)


class TestVisualization:
    def test_component_tree_structure(self):
        agent = _agent()
        tree = component_tree(agent.root)
        assert "dqn-agent" in tree
        assert "policy" in tree and "target-policy" in tree
        assert "var kernel" in tree
        assert "api get_q_values()" in tree
        assert "/sim:gpu:0" in tree  # device map surfaced

    def test_dot_output_well_formed(self):
        agent = _agent()
        dot = to_dot(agent.graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "cluster_" in dot
        assert "->" in dot
        # Every component cluster carries its device label.
        assert "/sim:gpu:0" in dot

    def test_dot_single_api_is_subset(self):
        agent = _agent()
        full = to_dot(agent.graph)
        act_only = to_dot(agent.graph, api_name="get_actions")
        assert len(act_only) < len(full)
        assert "epsilon-greedy" in act_only
        # The update path (loss/optimizer) is not in the act dataflow.
        assert "adam" not in act_only

    def test_summarize(self):
        agent = _agent()
        info = summarize(agent.graph)
        assert info["components"] > 10
        assert info["graph_fn_nodes"] > 10
        assert info["api_methods"] >= 5
        assert info["backend_nodes"] > 50
        assert info["devices"] >= 2  # cpu default + mapped gpu


class TestSyncBatchExecutor:
    def test_synchronous_a2c_learns_corridor(self):
        def env_factory(seed):
            return GridWorld("corridor", max_steps=20, seed=seed)

        def agent_factory(worker_index=None):
            return ActorCriticAgent(
                state_space=(8,), action_space=IntBox(4),
                network_spec=[{"type": "dense", "units": 32,
                               "activation": "tanh"}],
                entropy_coeff=0.02, discount=0.95,
                optimizer_spec={"type": "adam", "learning_rate": 5e-3},
                backend=XGRAPH,
                seed=4 + 31 * (worker_index if worker_index is not None
                               else 0))

        executor = SyncBatchExecutor(
            learner_agent=agent_factory(), agent_factory=agent_factory,
            env_factory=env_factory, num_workers=2, envs_per_worker=2,
            rollout_length=20, discount=0.95)
        result = executor.execute_workload(num_iterations=80)
        assert result["env_frames"] == 80 * 2 * 2 * 20
        assert result["updates"] == 80
        assert all(np.isfinite(l) for l in result["losses"])
        assert result["mean_return"] is not None
        assert result["mean_return"] > 0.3, result["mean_return"]
