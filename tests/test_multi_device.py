"""Multi-device (sync replica) strategy tests — the Fig. 8 mechanism.

Because the DQN loss is a batch mean, averaging two half-batch tower
gradients must equal the full-batch gradient exactly, so a 2-device
update from the same weights must land on the same weights as a
1-device update on the same batch.
"""

import numpy as np
import pytest

from repro.agents import DQNAgent
from repro.backend import XGRAPH, XTAPE
from repro.spaces import IntBox


def _agent(num_devices, backend, seed=7):
    return DQNAgent(
        state_space=(8,), action_space=IntBox(3),
        network_spec=[{"type": "dense", "units": 16}],
        double_q=False, huber_delta=None, num_devices=num_devices,
        sync_interval=0, memory_capacity=64,
        optimizer_spec={"type": "sgd", "learning_rate": 0.1},
        backend=backend, seed=seed)


def _batch(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "states": rng.standard_normal((n, 8)).astype(np.float32),
        "actions": rng.integers(0, 3, n),
        "rewards": rng.normal(size=n).astype(np.float32),
        "terminals": np.zeros(n, bool),
        "next_states": rng.standard_normal((n, 8)).astype(np.float32),
    }


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


class TestMultiDevice:
    def test_tower_averaging_matches_full_batch(self, backend):
        single = _agent(1, backend)
        double = _agent(2, backend)
        # Same seed -> identical initial weights.
        for key, value in single.get_weights().items():
            np.testing.assert_allclose(double.get_weights()[key], value)

        batch = _batch()
        single.update(batch)
        double.update(batch)
        w1, w2 = single.get_weights(), double.get_weights()
        for key in w1:
            np.testing.assert_allclose(w1[key], w2[key], atol=1e-5,
                                       err_msg=key)

    def test_two_device_update_returns_all_tds(self, backend):
        agent = _agent(2, backend)
        loss, td = agent.update(_batch(8))
        assert np.isfinite(loss)
        assert td.shape == (8,)

    def test_tower_components_on_distinct_devices(self):
        agent = _agent(2, XGRAPH)
        devices = {s.resolved_device() for s in agent.root.tower_splitters}
        assert devices == {"/sim:gpu:0", "/sim:gpu:1"}

    def test_multi_device_learns(self, backend):
        """End-to-end: training exclusively through the 2-tower external
        update path still solves the corridor GridWorld."""
        from repro.components.memories import ReplayBuffer
        from repro.environments import GridWorld

        env = GridWorld("corridor", max_steps=20, seed=0)
        agent = DQNAgent(
            state_space=env.state_space, action_space=env.action_space,
            network_spec=[{"type": "dense", "units": 32}],
            num_devices=2, batch_size=32, memory_capacity=64,
            discount=0.9, sync_interval=20,
            optimizer_spec={"type": "adam", "learning_rate": 3e-3},
            epsilon_spec={"type": "linear", "from_": 1.0, "to_": 0.05,
                          "num_timesteps": 600},
            backend=backend, seed=2)
        buf = ReplayBuffer(capacity=1000, seed=0)
        state = env.reset()
        for step in range(1500):
            action, pre = agent.get_actions(state)
            next_state, reward, terminal, _ = env.step(action)
            buf.insert({"states": pre[None], "actions": np.asarray([action]),
                        "rewards": np.asarray([reward], np.float32),
                        "terminals": np.asarray([terminal]),
                        "next_states": np.asarray(next_state,
                                                  np.float32)[None]})
            state = env.reset() if terminal else next_state
            if step > 100 and step % 2 == 0:
                agent.update(buf.sample(32))
        # Greedy rollout reaches the goal.
        state = env.reset()
        for _ in range(20):
            action, _ = agent.get_actions(state, explore=False)
            state, reward, terminal, _ = env.step(action)
            if terminal:
                break
        assert terminal and reward == 1.0
