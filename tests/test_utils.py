"""Tests for repro.utils: seeding, registries, schedules, config."""

import json

import pytest

from repro.utils import (
    Constant,
    ExponentialDecay,
    LinearDecay,
    PolynomialDecay,
    Registry,
    RLGraphError,
    SeedStream,
    deep_update,
    derive_seed,
    resolve_config,
    schedule_from_spec,
)


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)
        assert derive_seed("a", 1) != derive_seed("a", 2)

    def test_stream_child_independence(self):
        stream = SeedStream(42)
        a = stream.rng("w", 0).integers(0, 1 << 30, 10)
        b = stream.rng("w", 1).integers(0, 1 << 30, 10)
        assert not (a == b).all()

    def test_stream_reproducible(self):
        x = SeedStream(7).rng("x").standard_normal(5)
        y = SeedStream(7).rng("x").standard_normal(5)
        assert (x == y).all()

    def test_child_stream(self):
        s = SeedStream(1)
        assert s.child("a").seed == s.child("a").seed
        assert s.child("a").seed != s.child("b").seed


class TestRegistry:
    def test_register_and_lookup(self):
        reg = Registry("things")

        @reg.register("foo", aliases=["f"])
        class Foo:
            def __init__(self, x=1):
                self.x = x

        assert reg.lookup("foo") is Foo
        assert reg.lookup("F") is Foo
        assert "foo" in reg

    def test_from_spec_forms(self):
        reg = Registry("things")

        @reg.register("foo")
        class Foo:
            def __init__(self, x=1):
                self.x = x

        assert reg.from_spec("foo").x == 1
        assert reg.from_spec({"type": "foo", "x": 5}).x == 5
        assert reg.from_spec(Foo, x=3).x == 3
        obj = Foo(9)
        assert reg.from_spec(obj) is obj

    def test_duplicate_registration_raises(self):
        reg = Registry("things")
        reg.register("a", cls=int)
        with pytest.raises(RLGraphError):
            reg.register("a", cls=float)

    def test_unknown_lookup_raises(self):
        with pytest.raises(RLGraphError):
            Registry("empty").lookup("nope")

    def test_dict_spec_without_type_raises(self):
        with pytest.raises(RLGraphError):
            Registry("r").from_spec({"x": 1})


class TestSchedules:
    def test_constant(self):
        assert Constant(0.3).value(10**9) == 0.3

    def test_linear_endpoints(self):
        sched = LinearDecay(1.0, 0.1, num_timesteps=100)
        assert sched.value(0) == pytest.approx(1.0)
        assert sched.value(50) == pytest.approx(0.55)
        assert sched.value(100) == pytest.approx(0.1)
        assert sched.value(10_000) == pytest.approx(0.1)

    def test_linear_start_offset(self):
        sched = LinearDecay(1.0, 0.0, num_timesteps=10, start_timestep=100)
        assert sched.value(50) == pytest.approx(1.0)
        assert sched.value(110) == pytest.approx(0.0)

    def test_exponential_floor(self):
        sched = ExponentialDecay(1.0, to_=0.2, half_life=10)
        assert sched.value(0) == pytest.approx(1.0)
        assert sched.value(10) == pytest.approx(0.5)
        assert sched.value(10**6) == pytest.approx(0.2)

    def test_polynomial_monotone(self):
        sched = PolynomialDecay(1.0, 0.0, num_timesteps=100)
        values = [sched.value(t) for t in range(0, 101, 10)]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(0.0)

    def test_from_spec(self):
        assert isinstance(schedule_from_spec(0.5), Constant)
        sched = schedule_from_spec({"type": "linear", "from_": 1.0, "to_": 0.0,
                                    "num_timesteps": 10})
        assert isinstance(sched, LinearDecay)
        with pytest.raises(RLGraphError):
            schedule_from_spec({"type": "bogus"})
        with pytest.raises(RLGraphError):
            schedule_from_spec(object())

    def test_invalid_params(self):
        with pytest.raises(RLGraphError):
            LinearDecay(num_timesteps=0)
        with pytest.raises(RLGraphError):
            ExponentialDecay(half_life=-1)


class TestConfig:
    def test_resolve_none_uses_default(self):
        default = {"a": {"b": 1}}
        cfg = resolve_config(None, default)
        assert cfg == default and cfg is not default
        cfg["a"]["b"] = 2
        assert default["a"]["b"] == 1

    def test_resolve_json_string(self):
        assert resolve_config('{"x": 1}') == {"x": 1}

    def test_resolve_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"layers": [64, 64]}))
        assert resolve_config(str(path)) == {"layers": [64, 64]}

    def test_bad_string_raises(self):
        with pytest.raises(RLGraphError):
            resolve_config("not json and not a file")

    def test_deep_update(self):
        base = {"net": {"layers": [32], "act": "relu"}, "lr": 0.1}
        out = deep_update(base, {"net": {"layers": [64, 64]}, "extra": True})
        assert out["net"]["layers"] == [64, 64]
        assert out["net"]["act"] == "relu"
        assert out["extra"] is True
        assert base["net"]["layers"] == [32]

    def test_deep_update_none(self):
        base = {"a": 1}
        assert deep_update(base, None) == base
