"""Checkpoint round-trip: the per-variable dict path PR 4 kept for
checkpoints, tested end to end across every agent.

``get_weights()`` dict -> ``export_model`` (pickle) -> ``import_model``
into a *differently initialized* agent -> ``set_weights`` -> the flat
push vector must match the source bitwise.  This is the contract that
lets a training run checkpoint through the dict path and a serving /
actor fleet restore through the flat path without drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import (
    ActorCriticAgent,
    DQNAgent,
    IMPALAAgent,
    PPOAgent,
    SACAgent,
)
from repro.backend import XGRAPH, XTAPE
from repro.spaces import FloatBox, IntBox

STATE_DIM = 4
NUM_ACTIONS = 3
ACTION_DIM = 2
NET = [{"type": "dense", "units": 12, "activation": "tanh"}]


def _make(kind: str, seed: int, backend: str = XGRAPH):
    common = dict(state_space=FloatBox(shape=(STATE_DIM,)),
                  action_space=IntBox(NUM_ACTIONS), network_spec=NET,
                  seed=seed, backend=backend)
    if kind == "dqn":
        return DQNAgent(memory_capacity=32, batch_size=4, **common)
    if kind == "a2c":
        return ActorCriticAgent(**common)
    if kind == "impala":
        return IMPALAAgent(**common)
    if kind == "ppo":
        return PPOAgent(**common)
    if kind == "sac":
        common["action_space"] = FloatBox(
            low=-np.ones(ACTION_DIM, np.float32),
            high=np.ones(ACTION_DIM, np.float32))
        return SACAgent(memory_capacity=32, batch_size=4, **common)
    raise ValueError(kind)


@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo", "sac"])
def test_export_import_flat_parity(kind, tmp_path):
    source = _make(kind, seed=1)
    source.timesteps, source.updates = 123, 7
    path = str(tmp_path / f"{kind}.pkl")
    source.export_model(path)

    target = _make(kind, seed=999)
    # Perturb so the restore demonstrably wins over the local state.
    target.set_weights(target.get_weights(flat=True) + 1.0)
    assert not np.array_equal(target.get_weights(flat=True),
                              source.get_weights(flat=True))
    target.import_model(path)

    # The restored dict lands bitwise on the flat push vector.
    np.testing.assert_array_equal(target.get_weights(flat=True),
                                  source.get_weights(flat=True))
    assert target.timesteps == 123 and target.updates == 7


@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo", "sac"])
def test_dict_to_flat_push_roundtrip(kind, tmp_path):
    """dict -> save -> load -> set_weights -> flat push -> scatter into
    a third agent: every hop preserves the weights bitwise."""
    source = _make(kind, seed=3)
    path = str(tmp_path / f"{kind}.pkl")
    source.export_model(path)

    restored = _make(kind, seed=100)
    restored.import_model(path)
    flat = restored.get_weights(flat=True)
    assert flat.dtype == np.float32 and flat.ndim == 1

    actor = _make(kind, seed=200)
    actor.set_weights(flat)  # the executor push path
    np.testing.assert_array_equal(actor.get_weights(flat=True), flat)
    # ... and the dict views agree variable by variable.
    src_dict = source.get_weights()
    actor_dict = actor.get_weights()
    assert sorted(src_dict) == sorted(actor_dict)
    for name, value in src_dict.items():
        np.testing.assert_array_equal(actor_dict[name], value,
                                      err_msg=f"{kind}:{name}")


@pytest.mark.parametrize("kind", ["dqn", "a2c", "sac"])
def test_cross_backend_restore(kind, tmp_path):
    """A checkpoint written by the symbolic backend restores into the
    eager backend (and vice versa) — layouts are name-sorted, not
    backend-specific."""
    source = _make(kind, seed=5, backend=XGRAPH)
    path = str(tmp_path / f"{kind}.pkl")
    source.export_model(path)
    eager = _make(kind, seed=6, backend=XTAPE)
    eager.import_model(path)
    np.testing.assert_array_equal(eager.get_weights(flat=True),
                                  source.get_weights(flat=True))


# ---------------------------------------------------------------------------
# CheckpointManager: atomic saves, pruning, interval gating
# ---------------------------------------------------------------------------
def test_checkpoint_manager_save_load_latest(tmp_path):
    from repro.execution.checkpointing import CheckpointManager

    manager = CheckpointManager(str(tmp_path))
    manager.save({"value": 1}, step=10)
    manager.save({"value": 2}, step=20)
    payload, step = manager.load_latest()
    assert (payload, step) == ({"value": 2}, 20)
    assert manager.steps() == [10, 20]
    # No stray temp files survive an atomic save.
    assert not any(f.name.endswith(".tmp") for f in tmp_path.iterdir())


def test_checkpoint_manager_prunes_to_keep(tmp_path):
    from repro.execution.checkpointing import CheckpointManager

    manager = CheckpointManager({"directory": str(tmp_path), "keep": 2})
    for step in (1, 2, 3, 4):
        manager.save({"step": step}, step)
    assert manager.steps() == [3, 4]


def test_checkpoint_manager_interval_gates_lazy_payload(tmp_path):
    from repro.execution.checkpointing import CheckpointManager

    manager = CheckpointManager(
        {"directory": str(tmp_path), "interval": 10})
    captures = []

    def payload():
        captures.append(1)
        return {"n": len(captures)}

    assert manager.maybe_save(payload, step=3) is None
    assert manager.maybe_save(payload, step=10) is not None
    assert manager.maybe_save(payload, step=15) is None
    assert manager.maybe_save(payload, step=20) is not None
    # Capturing full state is not free: only actual saves paid for it.
    assert len(captures) == 2


def test_checkpoint_spec_resolution():
    from repro.execution.checkpointing import (
        CheckpointSpec,
        resolve_checkpoint_spec,
    )
    from repro.utils.errors import RLGraphError

    assert resolve_checkpoint_spec(None) is None
    assert resolve_checkpoint_spec(False) is None
    assert resolve_checkpoint_spec("/tmp/x").directory == "/tmp/x"
    spec = CheckpointSpec("/tmp/x", interval=5, keep=1)
    assert resolve_checkpoint_spec(spec) is spec
    with pytest.raises(RLGraphError):
        resolve_checkpoint_spec({"directory": "/tmp/x", "bogus": 1})
    with pytest.raises(RLGraphError):
        CheckpointSpec("/tmp/x", interval=0)
    with pytest.raises(RLGraphError):
        CheckpointSpec("")


# ---------------------------------------------------------------------------
# Resume equivalence: checkpoint -> resume == uninterrupted, bitwise
# ---------------------------------------------------------------------------
def _resume_trainer(checkpoint=None):
    """A fully deterministic trainer: seeded agent + env, and the eager
    seed counter reset so every construction starts from the same
    stream (exploration noise is the first divergence risk)."""
    from repro.backend import functional
    from repro.environments import CartPole
    from repro.execution.checkpointing import ResumableTrainer

    functional._eager_seed_counter[0] = 0
    env = CartPole(seed=5)
    agent = DQNAgent(state_space=env.state_space,
                     action_space=env.action_space, network_spec=NET,
                     seed=11, backend=XGRAPH, optimize="basic",
                     memory_capacity=128, batch_size=8,
                     observe_flush_size=8)
    return ResumableTrainer(agent, env, learning_starts=24,
                            update_interval=2, checkpoint=checkpoint)


def test_resume_is_bitwise_identical_to_uninterrupted(tmp_path):
    """Train N, checkpoint, resume in a FRESH trainer, train N more:
    weights, counters and the complete variable set (optimizer slots,
    target net, replay buffer + cursors) match an uninterrupted 2N run
    bitwise — every RNG in the stack restores exactly."""
    full = _resume_trainer()
    full.run(120)

    part = _resume_trainer(str(tmp_path / "ck"))
    part.run(60)
    part.checkpoint()

    resumed = _resume_trainer(str(tmp_path / "ck"))
    assert resumed.resume()
    assert resumed.step == 60
    resumed.run(60)

    np.testing.assert_array_equal(resumed.agent.get_weights(flat=True),
                                  full.agent.get_weights(flat=True))
    assert resumed.agent.timesteps == full.agent.timesteps == 120
    assert resumed.agent.updates == full.agent.updates > 0
    # Beyond the policy weights: EVERY variable agrees (the optimizer
    # slabs and in-graph replay state are where drift would hide).
    state_a = resumed.agent.full_state()
    state_b = full.agent.full_state()
    assert sorted(state_a["variables"]) == sorted(state_b["variables"])
    for name, value in state_b["variables"].items():
        np.testing.assert_array_equal(state_a["variables"][name], value,
                                      err_msg=name)


def test_resume_from_nothing_returns_false(tmp_path):
    trainer = _resume_trainer(str(tmp_path / "empty"))
    assert trainer.resume() is False


# ---------------------------------------------------------------------------
# SAC full-state resume: twin critics, targets, temperature, optimizer slabs
# ---------------------------------------------------------------------------
def _sac_batches(n_batches: int):
    rng = np.random.default_rng(42)
    out = []
    for _ in range(n_batches):
        n = 4
        out.append({
            "states": rng.standard_normal((n, STATE_DIM)).astype(np.float32),
            "actions": rng.uniform(-1, 1, (n, ACTION_DIM)).astype(np.float32),
            "rewards": rng.standard_normal(n).astype(np.float32),
            "terminals": rng.random(n) < 0.2,
            "next_states": rng.standard_normal((n, STATE_DIM))
            .astype(np.float32),
        })
    return out


@pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
def test_sac_full_state_resume_bitwise(backend):
    """full_state after K updates -> restore into a fresh same-config
    agent -> K more updates lands bitwise on an uninterrupted 2K run.
    The snapshot must carry the twin-critic and target-critic variables,
    the temperature, and the optimizer slot slabs — and the update
    counter it restores re-keys the host-side noise stream, so the
    resumed run draws the exact same reparameterization noise."""
    batches = _sac_batches(6)

    full = _make("sac", seed=11, backend=backend)
    for batch in batches:
        full.update(batch)

    part = _make("sac", seed=11, backend=backend)
    for batch in batches[:3]:
        part.update(batch)
    snapshot = part.full_state()

    # The snapshot reaches every layer of SAC state, not just the policy.
    names = set(snapshot["variables"])
    for fragment in ("q1/", "q2/", "target-q1/", "target-q2/",
                     "temperature/log-alpha"):
        assert any(fragment in name for name in names), fragment

    # Same config INCLUDING seed (the restore contract): the seed keys
    # the host-side noise stream. Perturb the fresh weights so the
    # restore demonstrably wins over local state.
    resumed = _make("sac", seed=11, backend=backend)
    resumed.set_weights(resumed.get_weights(flat=True) + 1.0)
    resumed.restore_full_state(snapshot)
    assert resumed.updates == 3
    for batch in batches[3:]:
        resumed.update(batch)

    np.testing.assert_array_equal(resumed.get_weights(flat=True),
                                  full.get_weights(flat=True))
    state_a, state_b = resumed.full_state(), full.full_state()
    assert sorted(state_a["variables"]) == sorted(state_b["variables"])
    for name, value in state_b["variables"].items():
        np.testing.assert_array_equal(state_a["variables"][name], value,
                                      err_msg=name)
