"""Checkpoint round-trip: the per-variable dict path PR 4 kept for
checkpoints, tested end to end across every agent.

``get_weights()`` dict -> ``export_model`` (pickle) -> ``import_model``
into a *differently initialized* agent -> ``set_weights`` -> the flat
push vector must match the source bitwise.  This is the contract that
lets a training run checkpoint through the dict path and a serving /
actor fleet restore through the flat path without drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import ActorCriticAgent, DQNAgent, IMPALAAgent, PPOAgent
from repro.backend import XGRAPH, XTAPE
from repro.spaces import FloatBox, IntBox

STATE_DIM = 4
NUM_ACTIONS = 3
NET = [{"type": "dense", "units": 12, "activation": "tanh"}]


def _make(kind: str, seed: int, backend: str = XGRAPH):
    common = dict(state_space=FloatBox(shape=(STATE_DIM,)),
                  action_space=IntBox(NUM_ACTIONS), network_spec=NET,
                  seed=seed, backend=backend)
    if kind == "dqn":
        return DQNAgent(memory_capacity=32, batch_size=4, **common)
    if kind == "a2c":
        return ActorCriticAgent(**common)
    if kind == "impala":
        return IMPALAAgent(**common)
    if kind == "ppo":
        return PPOAgent(**common)
    raise ValueError(kind)


@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo"])
def test_export_import_flat_parity(kind, tmp_path):
    source = _make(kind, seed=1)
    source.timesteps, source.updates = 123, 7
    path = str(tmp_path / f"{kind}.pkl")
    source.export_model(path)

    target = _make(kind, seed=999)
    # Perturb so the restore demonstrably wins over the local state.
    target.set_weights(target.get_weights(flat=True) + 1.0)
    assert not np.array_equal(target.get_weights(flat=True),
                              source.get_weights(flat=True))
    target.import_model(path)

    # The restored dict lands bitwise on the flat push vector.
    np.testing.assert_array_equal(target.get_weights(flat=True),
                                  source.get_weights(flat=True))
    assert target.timesteps == 123 and target.updates == 7


@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo"])
def test_dict_to_flat_push_roundtrip(kind, tmp_path):
    """dict -> save -> load -> set_weights -> flat push -> scatter into
    a third agent: every hop preserves the weights bitwise."""
    source = _make(kind, seed=3)
    path = str(tmp_path / f"{kind}.pkl")
    source.export_model(path)

    restored = _make(kind, seed=100)
    restored.import_model(path)
    flat = restored.get_weights(flat=True)
    assert flat.dtype == np.float32 and flat.ndim == 1

    actor = _make(kind, seed=200)
    actor.set_weights(flat)  # the executor push path
    np.testing.assert_array_equal(actor.get_weights(flat=True), flat)
    # ... and the dict views agree variable by variable.
    src_dict = source.get_weights()
    actor_dict = actor.get_weights()
    assert sorted(src_dict) == sorted(actor_dict)
    for name, value in src_dict.items():
        np.testing.assert_array_equal(actor_dict[name], value,
                                      err_msg=f"{kind}:{name}")


@pytest.mark.parametrize("kind", ["dqn", "a2c"])
def test_cross_backend_restore(kind, tmp_path):
    """A checkpoint written by the symbolic backend restores into the
    eager backend (and vice versa) — layouts are name-sorted, not
    backend-specific."""
    source = _make(kind, seed=5, backend=XGRAPH)
    path = str(tmp_path / f"{kind}.pkl")
    source.export_model(path)
    eager = _make(kind, seed=6, backend=XTAPE)
    eager.import_model(path)
    np.testing.assert_array_equal(eager.get_weights(flat=True),
                                  source.get_weights(flat=True))
