"""DQN agent tests: build, act, observe, update, sync, learning."""

import numpy as np
import pytest

from repro.agents import ApexAgent, DQNAgent
from repro.backend import XGRAPH, XTAPE
from repro.environments import GridWorld
from repro.spaces import FloatBox, IntBox
from repro.utils import RLGraphError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


def make_agent(backend, **kwargs):
    defaults = dict(
        state_space=FloatBox(shape=(16,)),
        action_space=IntBox(4),
        network_spec=[{"type": "dense", "units": 32}],
        memory_capacity=256,
        batch_size=16,
        backend=backend,
        seed=11,
        epsilon_spec={"type": "linear", "from_": 1.0, "to_": 0.0,
                      "num_timesteps": 500},
    )
    defaults.update(kwargs)
    return DQNAgent(**defaults)


class TestBuildAndAct:
    def test_act_shapes_and_range(self, backend):
        agent = make_agent(backend)
        states = np.random.default_rng(0).standard_normal((5, 16)).astype(np.float32)
        actions, preprocessed = agent.get_actions(states)
        assert actions.shape == (5,)
        assert np.all((actions >= 0) & (actions < 4))
        assert preprocessed.shape == (5, 16)
        assert agent.timesteps == 5

    def test_single_state_act(self, backend):
        agent = make_agent(backend)
        action, _ = agent.get_actions(np.zeros(16, np.float32))
        assert isinstance(action, int)

    def test_greedy_vs_explore(self, backend):
        agent = make_agent(backend)
        states = np.zeros((50, 16), np.float32)
        greedy, _ = agent.get_actions(states, explore=False)
        assert len(set(greedy.tolist())) == 1  # same state -> same argmax

    def test_build_stats(self, backend):
        agent = make_agent(backend)
        assert agent.build_stats.num_components > 10
        assert agent.build_stats.trace_time > 0

    def test_non_discrete_action_space_rejected(self, backend):
        with pytest.raises(RLGraphError):
            DQNAgent(state_space=(4,), action_space=FloatBox(shape=(2,)),
                     backend=backend, auto_build=False)

    def test_unknown_config_key_rejected(self):
        with pytest.raises(RLGraphError):
            make_agent(XGRAPH, bogus_flag=True)


class TestObserveUpdate:
    def _fill_memory(self, agent, n=64):
        rng = np.random.default_rng(1)
        for i in range(n):
            agent.observe(
                state=rng.standard_normal(16).astype(np.float32),
                action=int(rng.integers(0, 4)),
                reward=float(rng.normal()),
                terminal=bool(rng.random() < 0.1),
                next_state=rng.standard_normal(16).astype(np.float32))
        agent.flush_observations()

    def test_update_from_memory(self, backend):
        agent = make_agent(backend)
        self._fill_memory(agent)
        loss, td = agent.update()
        assert np.isfinite(loss)
        assert td.shape == (16,)
        assert agent.updates == 1

    def test_update_changes_weights(self, backend):
        agent = make_agent(backend)
        self._fill_memory(agent)
        before = agent.get_weights()
        agent.update()
        after = agent.get_weights()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed

    def test_update_from_external_batch(self, backend):
        agent = make_agent(backend)
        rng = np.random.default_rng(2)
        batch = {
            "states": rng.standard_normal((8, 16)).astype(np.float32),
            "actions": rng.integers(0, 4, 8),
            "rewards": rng.normal(size=8).astype(np.float32),
            "terminals": np.zeros(8, bool),
            "next_states": rng.standard_normal((8, 16)).astype(np.float32),
        }
        loss, td = agent.update(batch)
        assert np.isfinite(loss) and td.shape == (8,)

    def test_sync_copies_weights(self, backend):
        agent = make_agent(backend, sync_interval=0)  # manual sync only
        policy_w = agent.root.policy.get_weights()
        # Perturb online policy, then sync.
        perturbed = {k: v + 1.0 for k, v in policy_w.items()}
        agent.root.policy.set_weights(perturbed)
        agent.sync_target()
        target_w = agent.root.target_policy.get_weights()
        for key, value in perturbed.items():
            target_key = key.replace("/policy/", "/target-policy/")
            np.testing.assert_allclose(target_w[target_key], value)

    def test_prioritized_variant_updates(self, backend):
        agent = make_agent(backend, prioritized_replay=True)
        self._fill_memory(agent)
        loss, td = agent.update()
        assert np.isfinite(loss)

    def test_export_import_roundtrip(self, backend, tmp_path):
        agent = make_agent(backend)
        self._fill_memory(agent)
        agent.update()
        path = str(tmp_path / "model.pkl")
        agent.export_model(path)
        clone = make_agent(backend)
        clone.import_model(path)
        w1, w2 = agent.get_weights(), clone.get_weights()
        for key in w1:
            np.testing.assert_allclose(w1[key], w2[key])


class TestLearning:
    @pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
    def test_learns_gridworld(self, backend):
        """DQN must solve the 4x4 GridWorld (reach goal reliably)."""
        env = GridWorld("4x4", max_steps=30, seed=0)
        agent = DQNAgent(
            state_space=env.state_space, action_space=env.action_space,
            network_spec=[{"type": "dense", "units": 64}],
            memory_capacity=2000, batch_size=64, backend=backend, seed=5,
            double_q=True, sync_interval=25, discount=0.95,
            optimizer_spec={"type": "adam", "learning_rate": 3e-3},
            epsilon_spec={"type": "linear", "from_": 1.0, "to_": 0.05,
                          "num_timesteps": 2000},
            observe_flush_size=8)
        state = env.reset()
        for step in range(5000):
            action, _ = agent.get_actions(state)
            next_state, reward, terminal, _ = env.step(action)
            agent.observe(state, action, reward, terminal, next_state)
            state = env.reset() if terminal else next_state
            if step > 200 and step % 2 == 0:
                agent.update()
        # Greedy rollouts must reach the goal reliably.
        successes = 0
        for _ in range(5):
            state = env.reset()
            for _ in range(30):
                action, _ = agent.get_actions(state, explore=False)
                state, reward, terminal, _ = env.step(action)
                if terminal:
                    break
            successes += int(terminal and reward == 1.0)
        assert successes >= 4, f"greedy success rate too low: {successes}/5"


class TestApexAgent:
    def test_defaults(self):
        agent = ApexAgent(state_space=(8,), action_space=IntBox(3),
                          network_spec=[{"type": "dense", "units": 16}],
                          auto_build=False)
        assert agent.config["dueling"] is True
        assert agent.config["n_step"] == 3

    def test_external_update_path(self, backend):
        agent = ApexAgent(state_space=(8,), action_space=IntBox(3),
                          network_spec=[{"type": "dense", "units": 16}],
                          backend=backend, seed=3)
        rng = np.random.default_rng(0)
        batch = {
            "states": rng.standard_normal((4, 8)).astype(np.float32),
            "actions": rng.integers(0, 3, 4),
            "rewards": rng.normal(size=4).astype(np.float32),
            "terminals": np.zeros(4, bool),
            "next_states": rng.standard_normal((4, 8)).astype(np.float32),
            "importance_weights": np.ones(4, np.float32),
        }
        loss, td = agent.update(batch)
        assert np.isfinite(loss) and len(td) == 4
