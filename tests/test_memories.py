"""Memory tests: segment trees (property-based), python buffers, and the
in-graph memory components on both backends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import XGRAPH, XTAPE
from repro.components.memories import (
    MinSegmentTree,
    PrioritizedReplay,
    PrioritizedReplayBuffer,
    ReplayBuffer,
    ReplayMemory,
    SumSegmentTree,
)
from repro.spaces import BoolBox, Dict as DictSpace, FloatBox, IntBox
from repro.testing import ComponentTest
from repro.utils import RLGraphError


# ---------------------------------------------------------------------------
# Segment trees
# ---------------------------------------------------------------------------
class TestSegmentTree:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(RLGraphError):
            SumSegmentTree(3)

    def test_sum_and_prefix(self):
        tree = SumSegmentTree(8)
        for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            tree[i] = v
        assert tree.sum() == pytest.approx(10.0)
        assert tree.sum(1, 3) == pytest.approx(5.0)
        assert tree.index_of_prefixsum(0.5) == 0
        assert tree.index_of_prefixsum(1.5) == 1
        assert tree.index_of_prefixsum(9.99) == 3

    def test_min_tree(self):
        tree = MinSegmentTree(4)
        tree[0] = 5.0
        tree[1] = 2.0
        tree[2] = 9.0
        assert tree.min(0, 3) == pytest.approx(2.0)
        assert tree.min(0, 1) == pytest.approx(5.0)

    def test_overwrite_updates_aggregate(self):
        tree = SumSegmentTree(4)
        tree[0] = 1.0
        tree[0] = 3.0
        assert tree.sum() == pytest.approx(3.0)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=16),
           start=st.integers(0, 15), end=st.integers(1, 16))
    def test_sum_matches_numpy(self, values, start, end):
        tree = SumSegmentTree(16)
        for i, v in enumerate(values):
            tree[i] = v
        arr = np.zeros(16)
        arr[:len(values)] = values
        lo, hi = min(start, end), max(start, end)
        assert tree.sum(lo, hi) == pytest.approx(arr[lo:hi].sum(), abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(0.01, 10.0), min_size=2, max_size=16),
           frac=st.floats(0.0, 0.999))
    def test_prefixsum_index_invariant(self, values, frac):
        tree = SumSegmentTree(16)
        for i, v in enumerate(values):
            tree[i] = v
        prefix = frac * tree.sum()
        idx = tree.index_of_prefixsum(prefix)
        assert 0 <= idx < 16
        assert tree.sum(0, idx) <= prefix + 1e-6
        assert tree.sum(0, idx + 1) > prefix - 1e-6

    @pytest.mark.parametrize("capacity", [1, 2, 16, 256])
    def test_set_batch_matches_scalar_writes(self, capacity):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, capacity, size=3 * capacity)  # with duplicates
        vals = rng.random(idx.size) * 10
        for cls in (SumSegmentTree, MinSegmentTree):
            scalar, batch = cls(capacity), cls(capacity)
            for i, v in zip(idx, vals):
                scalar[int(i)] = float(v)
            batch.set_batch(idx, vals)
            np.testing.assert_array_equal(scalar.values, batch.values)
            np.testing.assert_array_equal(batch.get_batch(idx),
                                          [scalar[int(i)] for i in idx])

    def test_set_batch_out_of_range(self):
        tree = SumSegmentTree(8)
        with pytest.raises(IndexError):
            tree.set_batch([1, 8], [1.0, 2.0])

    def test_index_of_prefixsum_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        tree = SumSegmentTree(64)
        tree.set_batch(np.arange(40), rng.random(40) + 0.01)
        prefixes = rng.uniform(0.0, tree.sum(), size=500)
        batch = tree.index_of_prefixsum_batch(prefixes)
        scalar = np.asarray([tree.index_of_prefixsum(p) for p in prefixes])
        np.testing.assert_array_equal(batch, scalar)
        assert tree.index_of_prefixsum_batch([]).size == 0

    def test_index_of_prefixsum_batch_range_check(self):
        tree = SumSegmentTree(8)
        tree.set_batch([0, 1], [1.0, 2.0])
        with pytest.raises(RLGraphError):
            tree.index_of_prefixsum_batch([0.5, 100.0])


# ---------------------------------------------------------------------------
# Pure-python buffers
# ---------------------------------------------------------------------------
def _batch(n, offset=0):
    return {
        "states": np.arange(offset, offset + n, dtype=np.float32).reshape(n, 1),
        "rewards": np.ones(n, dtype=np.float32),
    }


class TestReplayBuffer:
    def test_insert_and_len(self):
        buf = ReplayBuffer(capacity=10, seed=0)
        buf.insert(_batch(4))
        assert len(buf) == 4
        buf.insert(_batch(8))
        assert len(buf) == 10  # capped

    def test_ring_wraparound(self):
        buf = ReplayBuffer(capacity=4, seed=0)
        buf.insert(_batch(3, offset=0))
        buf.insert(_batch(3, offset=100))
        # rows 0,1,2 then 3,0,1 overwritten -> storage rows are
        # [101, 102, 2, 100]
        np.testing.assert_allclose(
            buf._storage["states"].ravel(), [101, 102, 2, 100])

    def test_sample_from_empty_raises(self):
        with pytest.raises(RLGraphError):
            ReplayBuffer(capacity=4).sample(1)

    def test_sample_shapes(self):
        buf = ReplayBuffer(capacity=100, seed=1)
        buf.insert(_batch(50))
        out = buf.sample(16)
        assert out["states"].shape == (16, 1)
        assert out["rewards"].shape == (16,)


class TestPrioritizedReplayBuffer:
    def test_high_priority_sampled_more(self):
        buf = PrioritizedReplayBuffer(capacity=16, alpha=1.0, seed=3)
        buf.insert(_batch(8), priorities=np.asarray([10.0, 1, 1, 1, 1, 1, 1, 1]))
        counts = np.zeros(8)
        for _ in range(200):
            _, idx, _ = buf.sample(4)
            for i in idx:
                counts[i] += 1
        assert counts[0] > counts[1:].max()

    def test_weights_le_one_and_positive(self):
        buf = PrioritizedReplayBuffer(capacity=16, seed=4)
        buf.insert(_batch(10))
        _, _, w = buf.sample(8)
        assert np.all(w > 0) and np.all(w <= 1.0 + 1e-6)

    def test_update_priorities_changes_distribution(self):
        buf = PrioritizedReplayBuffer(capacity=8, alpha=1.0, seed=5)
        buf.insert(_batch(4), priorities=np.ones(4))
        buf.update_priorities([2], [100.0])
        counts = np.zeros(4)
        for _ in range(100):
            _, idx, _ = buf.sample(4)
            for i in idx:
                counts[i] += 1
        assert counts[2] == counts.max()

    def test_update_out_of_range_raises(self):
        buf = PrioritizedReplayBuffer(capacity=8)
        buf.insert(_batch(2))
        with pytest.raises(RLGraphError):
            buf.update_priorities([99], [1.0])

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 20), batch=st.integers(1, 8),
           seed=st.integers(0, 1000))
    def test_sampled_indices_always_valid(self, n, batch, seed):
        buf = PrioritizedReplayBuffer(capacity=16, seed=seed)
        buf.insert(_batch(n))
        _, idx, _ = buf.sample(batch)
        assert np.all(idx >= 0) and np.all(idx < min(n, 16))


# ---------------------------------------------------------------------------
# In-graph memory components
# ---------------------------------------------------------------------------
RECORD_SPACE = DictSpace(
    states=FloatBox(shape=(2,)),
    actions=IntBox(4),
    rewards=FloatBox(),
    terminals=BoolBox(),
    add_batch_rank=True,
)


def _records(n, rng):
    return RECORD_SPACE.sample(size=n, rng=rng)


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


def _spaces():
    return {
        "records": RECORD_SPACE,
        "batch_size": IntBox(low=0, high=2**31 - 1),
        "indices": IntBox(low=0, high=2**31 - 1, shape=(), add_batch_rank=True),
        "update": FloatBox(add_batch_rank=True),
    }


class TestReplayMemoryComponent:
    def test_insert_then_sample(self, backend):
        test = ComponentTest(ReplayMemory(capacity=16),
                             input_spaces={"records": RECORD_SPACE,
                                           "batch_size": IntBox(low=0, high=2**31 - 1)},
                             backend=backend)
        rng = np.random.default_rng(0)
        test.test("insert_records", _records(8, rng))
        records, idx, weights = test.test("get_records", np.asarray(5))
        assert records["states"].shape == (5, 2)
        assert records["actions"].shape == (5,)
        assert np.all(idx < 8)
        np.testing.assert_allclose(weights, np.ones(5))

    def test_wraparound_size_capped(self, backend):
        memory = ReplayMemory(capacity=4)
        test = ComponentTest(memory,
                             input_spaces={"records": RECORD_SPACE,
                                           "batch_size": IntBox(low=0, high=2**31 - 1)},
                             backend=backend)
        rng = np.random.default_rng(1)
        test.test("insert_records", _records(3, rng))
        test.test("insert_records", _records(3, rng))
        size = test.test("get_size", np.asarray(1))
        assert int(size) == 4

    def test_sampled_contents_come_from_inserted(self, backend):
        memory = ReplayMemory(capacity=32)
        test = ComponentTest(memory,
                             input_spaces={"records": RECORD_SPACE,
                                           "batch_size": IntBox(low=0, high=2**31 - 1)},
                             backend=backend)
        batch = {
            "states": np.tile(np.asarray([[7.0, 7.0]], np.float32), (4, 1)),
            "actions": np.full(4, 2, np.int64),
            "rewards": np.full(4, 1.5, np.float32),
            "terminals": np.zeros(4, bool),
        }
        test.test("insert_records", batch)
        records, _, _ = test.test("get_records", np.asarray(6))
        np.testing.assert_allclose(records["states"],
                                   np.tile([[7.0, 7.0]], (6, 1)))
        np.testing.assert_allclose(records["rewards"], np.full(6, 1.5))


class TestPrioritizedReplayComponent:
    def _make(self, backend, capacity=16, alpha=1.0):
        return ComponentTest(
            PrioritizedReplay(capacity=capacity, alpha=alpha, beta=0.5),
            input_spaces=_spaces(), backend=backend)

    def test_insert_sample_update_cycle(self, backend):
        test = self._make(backend)
        rng = np.random.default_rng(2)
        test.test("insert_records", _records(8, rng))
        records, idx, weights = test.test("get_records", np.asarray(4))
        assert records["states"].shape == (4, 2)
        assert np.all((idx >= 0) & (idx < 8))
        assert np.all(weights > 0) and np.all(weights <= 1.0 + 1e-5)
        test.test("update_records", idx.astype(np.int64),
                  np.asarray([5.0, 0.1, 0.1, 0.1], np.float32))

    def test_priorities_skew_sampling(self, backend):
        test = self._make(backend, capacity=16, alpha=1.0)
        rng = np.random.default_rng(3)
        test.test("insert_records", _records(8, rng))
        # Boost index 3 to dominate.
        test.test("update_records",
                  np.arange(8, dtype=np.int64),
                  np.asarray([0.01, 0.01, 0.01, 50.0, 0.01, 0.01, 0.01, 0.01],
                             np.float32))
        counts = np.zeros(8)
        for _ in range(30):
            _, idx, _ = test.test("get_records", np.asarray(8))
            for i in np.asarray(idx):
                counts[i] += 1
        assert counts[3] == counts.max()

    def test_matches_python_twin_distribution(self, backend):
        """Component and pure-python twin agree on sampling proportions."""
        test = self._make(backend, capacity=16, alpha=1.0)
        rng = np.random.default_rng(4)
        batch = _records(4, rng)
        test.test("insert_records", batch)
        test.test("update_records", np.arange(4, dtype=np.int64),
                  np.asarray([8.0, 4.0, 2.0, 1.0], np.float32))

        twin = PrioritizedReplayBuffer(capacity=16, alpha=1.0, seed=0)
        twin.insert(batch, priorities=np.asarray([8.0, 4.0, 2.0, 1.0]))

        comp_counts = np.zeros(4)
        twin_counts = np.zeros(4)
        for _ in range(60):
            _, idx, _ = test.test("get_records", np.asarray(8))
            for i in np.asarray(idx):
                comp_counts[i] += 1
            _, idx2, _ = twin.sample(8)
            for i in idx2:
                twin_counts[i] += 1
        comp_frac = comp_counts / comp_counts.sum()
        twin_frac = twin_counts / twin_counts.sum()
        np.testing.assert_allclose(comp_frac, twin_frac, atol=0.12)
