"""raylite process-backend tests: actors in worker processes, the
shared-memory payload codec, cross-process ref resolution, event-based
wait, and teardown that fails pending refs instead of hanging."""

import gc
import os
import threading
import time

import numpy as np
import pytest

from repro import raylite
from repro.raylite import RayliteError
from repro.raylite import shm as shm_codec
from repro.execution.parallel import ParallelSpec, resolve_parallel_spec
from repro.utils.errors import RLGraphError

# A wedged worker process must fail the test, not wedge CI.
pytestmark = pytest.mark.mp_timeout(120)


class Counter:
    """Spawn-safe actor fixture (module-level by design)."""

    def __init__(self, start=0):
        self.value = start

    def increment(self, by=1):
        self.value += by
        return self.value

    def get_pid(self):
        return os.getpid()

    def boom(self):
        raise ValueError("intentional")

    def slow_add(self, x):
        time.sleep(0.05)
        return x + 1

    def nap(self, seconds):
        time.sleep(seconds)
        return seconds

    def echo(self, x):
        return x

    def big(self, n):
        return {"weights": np.arange(n, dtype=np.float64),
                "meta": {"n": n}}

    def hard_crash(self):
        os._exit(3)

    def spin(self, n):
        acc = 0
        for i in range(n):
            acc += i
        return acc


class BadCtor:
    def __init__(self):
        raise RuntimeError("ctor fail")


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    raylite.shutdown()


def _process_actor(*args, **kwargs):
    return raylite.remote(Counter).options(backend="process").remote(
        *args, **kwargs)


class TestProcessActors:
    def test_create_and_call(self):
        counter = _process_actor(10)
        assert raylite.get(counter.increment.remote(5)) == 15

    def test_runs_in_another_process(self):
        counter = _process_actor()
        assert raylite.get(counter.get_pid.remote()) != os.getpid()

    def test_fifo_ordering(self):
        counter = _process_actor()
        refs = [counter.increment.remote() for _ in range(20)]
        assert raylite.get(refs) == list(range(1, 21))

    def test_exception_surfaces_at_get(self):
        counter = _process_actor()
        with pytest.raises(ValueError, match="intentional"):
            raylite.get(counter.boom.remote())

    def test_init_exception_propagates(self):
        with pytest.raises(RuntimeError, match="ctor fail"):
            raylite.remote(BadCtor).options(backend="process").remote()

    def test_unknown_method(self):
        counter = _process_actor()
        with pytest.raises(RayliteError):
            counter.nope.remote()

    def test_global_backend_default(self):
        raylite.init(backend="process")
        try:
            counter = raylite.remote(Counter).remote()
            assert isinstance(counter, raylite.ProcessActorHandle)
            assert raylite.get(counter.get_pid.remote()) != os.getpid()
        finally:
            raylite.init(backend="thread")

    def test_spawn_start_method(self):
        counter = raylite.remote(Counter).options(
            backend="process", start_method="spawn").remote(7)
        assert raylite.get(counter.increment.remote()) == 8

    def test_unknown_backend_rejected(self):
        with pytest.raises(RayliteError):
            raylite.remote(Counter).options(backend="fiber")
        with pytest.raises(RayliteError):
            raylite.init(backend="fiber")


class TestSharedMemoryTransport:
    def test_numpy_roundtrip_both_directions(self):
        counter = _process_actor()
        arr = np.random.default_rng(0).standard_normal((256, 32))
        out = raylite.get(counter.echo.remote(
            {"a": arr, "small": np.arange(3), "s": "tag", "n": 5}))
        np.testing.assert_array_equal(out["a"], arr)
        np.testing.assert_array_equal(out["small"], np.arange(3))
        assert out["s"] == "tag" and out["n"] == 5

    def test_large_result_decodes_zero_copy(self):
        counter = _process_actor()
        out = raylite.get(counter.big.remote(100_000))
        weights = out["weights"]
        assert weights[0] == 0.0 and weights[-1] == 99_999.0
        # Zero-copy: the array is a view over an attached shared block.
        assert weights.base is not None

    def test_object_ref_args_resolve_across_boundary(self):
        counter = _process_actor()
        ref = raylite.put(np.ones(5000))
        out = raylite.get(counter.echo.remote(ref))
        assert float(out.sum()) == 5000.0

    def test_codec_inline_below_threshold(self):
        payload = {"tiny": np.arange(4), "x": 1}
        tree, block = shm_codec.encode(payload)
        assert block is None
        assert shm_codec.decode(tree, block) is payload

    def test_codec_block_lifetime(self):
        from multiprocessing import shared_memory
        payload = {"big": np.arange(4096, dtype=np.float64),
                   "nested": [np.zeros((64, 64))]}
        tree, block = shm_codec.encode(payload)
        assert block is not None
        decoded = shm_codec.decode(tree, block)
        np.testing.assert_array_equal(decoded["big"], payload["big"])
        np.testing.assert_array_equal(decoded["nested"][0],
                                      payload["nested"][0])
        # Block lives while arrays live, is unlinked when they die.
        shared_memory.SharedMemory(name=block).close()
        del decoded
        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=block)


class TestWaitAndShutdown:
    def test_wait_splits_ready_pending(self):
        counter = _process_actor()
        fast = counter.increment.remote()
        slow = counter.slow_add.remote(1)  # FIFO: runs after fast
        ready, pending = raylite.wait([fast, slow], num_returns=1)
        assert fast in ready

    def test_wait_does_not_busy_poll(self):
        """wait() blocks on an event; a background resolve wakes it."""
        ref = raylite.ObjectRef()
        timer = threading.Timer(0.1, ref._resolve, args=(42,))
        timer.start()
        ready, pending = raylite.wait([ref], num_returns=1, timeout=5.0)
        assert ready == [ref] and not pending

    def test_wait_duplicate_refs_counted_per_listing(self):
        """A ref listed twice satisfies num_returns=2 as soon as it
        resolves — promptly, not by burning the whole timeout."""
        counter = _process_actor()
        ref = counter.slow_add.remote(1)
        t0 = time.perf_counter()
        ready, pending = raylite.wait([ref, ref], num_returns=2, timeout=30.0)
        assert len(ready) == 2  # same ref listed twice, both "ready"
        assert time.perf_counter() - t0 < 5.0

    def test_wait_detaches_callbacks_from_pending_refs(self):
        """Polling wait() loops must not accumulate dead closures on
        still-pending refs (executors re-wait every few ms)."""
        ref = raylite.ObjectRef()
        for _ in range(50):
            raylite.wait([ref], num_returns=1, timeout=0.001)
        assert len(ref._callbacks) == 0
        ref._resolve(1)

    def test_shutdown_fails_pending_refs(self):
        counter = _process_actor()
        refs = [counter.slow_add.remote(i) for i in range(40)]
        raylite.shutdown()
        with pytest.raises((RayliteError, RLGraphError)):
            # Late tasks were cancelled: a clear error, never a hang.
            raylite.get(refs[-1], timeout=10.0)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="needs a visible /dev/shm to audit blocks")
    def test_shutdown_discards_undelivered_shm_blocks(self):
        """Tasks cancelled before the worker consumes them must not
        leak their shared-memory args blocks (encode() disowned them
        from the resource tracker, so nothing else would unlink)."""
        baseline = set(os.listdir("/dev/shm"))
        counter = _process_actor()
        counter.nap.remote(30.0)  # wedges the worker past the stop grace
        big = np.zeros(200_000)
        refs = [counter.echo.remote(big) for _ in range(4)]
        raylite.shutdown()  # terminates the worker, cancels the queue
        # Cancellation may finish on the handle's reader thread (EOF
        # path): block on the refs before auditing — each ref fails
        # only after its args block was discarded.
        for ref in refs:
            with pytest.raises((RayliteError, RLGraphError)):
                ref.result(timeout=10.0)
        leaked = {name for name in os.listdir("/dev/shm")
                  if name.startswith("psm_")} - baseline
        assert not leaked, f"undelivered task blocks leaked: {leaked}"

    def test_stopped_actor_rejects_submissions(self):
        counter = _process_actor()
        raylite.kill(counter)
        with pytest.raises(RayliteError):
            counter.increment.remote()

    def test_worker_hard_crash_fails_pending(self):
        counter = _process_actor()
        ref = counter.hard_crash.remote()
        with pytest.raises(RayliteError, match="died"):
            raylite.get(ref, timeout=30.0)

    def test_thread_backend_shutdown_fails_queued_tasks(self):
        counter = raylite.remote(Counter).remote()
        refs = [counter.slow_add.remote(i) for i in range(40)]
        raylite.shutdown()
        failed = sum(1 for r in refs
                     if r.ready() and _ref_failed(r))
        assert failed > 0  # queued tasks cancelled with RayliteError


def _ref_failed(ref) -> bool:
    try:
        ref.result(timeout=0)
        return False
    except RayliteError:
        return True
    except Exception:
        return False


class TestParallelSpec:
    def test_resolution_forms(self):
        assert resolve_parallel_spec(None).backend == "thread"
        assert resolve_parallel_spec("process").is_process
        spec = resolve_parallel_spec(
            {"backend": "process", "env_backend": "subproc",
             "env_workers": 2})
        assert spec.is_process and spec.env_backend == "subproc"
        assert resolve_parallel_spec(spec) is spec

    def test_invalid_specs_rejected(self):
        with pytest.raises(RLGraphError):
            resolve_parallel_spec("warp")
        with pytest.raises(RLGraphError):
            resolve_parallel_spec({"backend": "thread", "bogus": 1})
        with pytest.raises(RLGraphError):
            resolve_parallel_spec(42)

    def test_env_backend_is_only_a_default(self):
        spec = resolve_parallel_spec(
            {"backend": "process", "env_backend": "subproc",
             "env_workers": 2})
        built = spec.vector_env_spec_default(None)
        assert built == {"type": "subproc", "num_workers": 2}
        assert spec.vector_env_spec_default("threaded") == "threaded"

    def test_thread_spec_has_no_env_default(self):
        assert resolve_parallel_spec("thread") \
            .vector_env_spec_default(None) is None
