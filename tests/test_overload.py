"""Overload-robustness tests: admission control (reject / drop-oldest),
CoDel shedding, deadline propagation, client retries + hedging, the
queue-depth autoscaler, and the 16x-oversubscription acceptance (bounded
admitted latency + no blocking past the deadline, with the unbounded
ablation for contrast).

Latency-sensitive tests run against a deterministic ``_SleepServer``
(fixed service time per batch) so capacity is arithmetic, not
core-count luck."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import DQNAgent
from repro.serving import (
    InferenceWorkerPool,
    PolicyClient,
    RetrySpec,
    drive_concurrent_load,
    resolve_retry_spec,
)
from repro.serving.overload import (
    AdmissionSpec,
    AutoscaleSpec,
    CoDelShedder,
    DeadlineExceededError,
    OverloadError,
    QueueDepthAutoscaler,
    RouteStats,
    ServerClosedError,
    deadline_from_budget,
    remaining,
    resolve_admission_spec,
    resolve_autoscale_spec,
)
from repro.serving.policy_server import _BatchingFrontEnd
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

pytestmark = pytest.mark.mp_timeout(180)

STATE_DIM = 2
OBS = np.zeros(STATE_DIM, dtype=np.float32)


class _SleepServer(_BatchingFrontEnd):
    """Front end with a fixed per-batch service time and zero actions —
    deterministic capacity (max_batch_size / service_time req/s) for
    latency math that must hold on any machine."""

    pad_batches = False

    def __init__(self, service_time: float = 0.005, **kwargs):
        self.service_time = service_time
        self.batches_executed = 0
        self.requests_executed = 0
        super().__init__(FloatBox(shape=(STATE_DIM,)), **kwargs)

    def _dispatch(self, requests):
        time.sleep(self.service_time)
        self.batches_executed += 1
        self.requests_executed += len(requests)
        self._scatter(requests, np.zeros(len(requests), dtype=np.int64))

    def _apply_weights(self, weights):
        pass


@pytest.fixture(autouse=True)
def _raylite_cleanup():
    yield
    raylite.shutdown()


# ---------------------------------------------------------------------------
# Spec resolution
# ---------------------------------------------------------------------------
class TestSpecResolution:
    def test_admission_default_is_disabled(self):
        spec = resolve_admission_spec(None)
        assert spec.max_queue is None and not spec.enabled

    def test_admission_int_is_max_queue(self):
        spec = resolve_admission_spec(64)
        assert spec.max_queue == 64 and spec.policy == "reject"
        assert spec.enabled

    def test_admission_dict(self):
        spec = resolve_admission_spec(
            {"max_queue": 8, "policy": "drop-oldest", "codel_target": 0.01})
        assert (spec.max_queue, spec.policy) == (8, "drop-oldest")
        assert spec.make_shedder() is not None

    def test_admission_rejects_unknown_keys_and_bool(self):
        with pytest.raises(RLGraphError, match="Unknown admission_spec"):
            resolve_admission_spec({"max_size": 8})
        with pytest.raises(RLGraphError, match="bool"):
            resolve_admission_spec(True)
        with pytest.raises(RLGraphError, match="policy"):
            AdmissionSpec(max_queue=8, policy="tail-drop")

    def test_codel_only_admission_is_enabled(self):
        spec = resolve_admission_spec({"codel_target": 0.005})
        assert spec.enabled and spec.max_queue is None

    def test_autoscale_resolution(self):
        assert resolve_autoscale_spec(None) is None
        assert resolve_autoscale_spec(False) is None
        spec = resolve_autoscale_spec({"max_replicas": 8})
        assert spec.max_replicas == 8
        with pytest.raises(RLGraphError, match="Unknown autoscale_spec"):
            resolve_autoscale_spec({"replicas": 8})
        with pytest.raises(RLGraphError, match="high_watermark"):
            AutoscaleSpec(high_watermark=2, low_watermark=5)

    def test_retry_resolution(self):
        assert resolve_retry_spec(None) is None
        assert resolve_retry_spec(3).max_retries == 3
        spec = resolve_retry_spec({"max_retries": 1, "hedge_after": 0.01})
        assert spec.hedge_after == 0.01
        with pytest.raises(RLGraphError, match="Unknown retry_spec"):
            resolve_retry_spec({"retries": 1})

    def test_deadline_helpers(self):
        assert deadline_from_budget(None) is None
        assert remaining(None) is None
        d = deadline_from_budget(1.0, now=10.0)
        assert d == 11.0 and remaining(d, now=10.4) == pytest.approx(0.6)
        with pytest.raises(RLGraphError, match=">= 0"):
            deadline_from_budget(-1.0)


# ---------------------------------------------------------------------------
# CoDel state machine (pure: explicit clocks, no sleeping)
# ---------------------------------------------------------------------------
class TestCoDel:
    def test_below_target_never_sheds(self):
        shedder = CoDelShedder(target=0.01, interval=0.1)
        for i in range(100):
            assert not shedder.on_dequeue(0.005, now=i * 0.01, queue_depth=5)
        assert not shedder.dropping

    def test_burst_above_target_tolerated_within_interval(self):
        shedder = CoDelShedder(target=0.01, interval=0.1)
        assert not shedder.on_dequeue(0.05, now=0.0, queue_depth=5)   # arms
        assert not shedder.on_dequeue(0.05, now=0.05, queue_depth=5)  # < interval
        assert not shedder.on_dequeue(0.002, now=0.08, queue_depth=5)  # disarms
        assert not shedder.on_dequeue(0.05, now=0.2, queue_depth=5)
        assert not shedder.dropping

    def test_standing_queue_triggers_accelerating_drops(self):
        shedder = CoDelShedder(target=0.01, interval=0.1)
        assert not shedder.on_dequeue(0.05, now=0.0, queue_depth=9)
        assert shedder.on_dequeue(0.05, now=0.1, queue_depth=9)
        assert shedder.dropping
        # Next drop fires one full interval later...
        assert not shedder.on_dequeue(0.05, now=0.15, queue_depth=9)
        assert shedder.on_dequeue(0.05, now=0.2, queue_depth=9)
        # ...then interval/sqrt(2) after that: the control law speeds up.
        assert shedder.on_dequeue(0.05, now=0.2 + 0.1 / np.sqrt(2) + 1e-6,
                                  queue_depth=9)

    def test_recovery_exits_dropping_state(self):
        shedder = CoDelShedder(target=0.01, interval=0.1)
        shedder.on_dequeue(0.05, now=0.0, queue_depth=9)
        assert shedder.on_dequeue(0.05, now=0.1, queue_depth=9)
        assert not shedder.on_dequeue(0.001, now=0.2, queue_depth=9)
        assert not shedder.dropping

    def test_empty_queue_resets_even_when_slow(self):
        shedder = CoDelShedder(target=0.01, interval=0.1)
        shedder.on_dequeue(0.05, now=0.0, queue_depth=9)
        assert not shedder.on_dequeue(0.05, now=0.1, queue_depth=0)
        assert not shedder.dropping


# ---------------------------------------------------------------------------
# Autoscaler decision function (pure: injected now)
# ---------------------------------------------------------------------------
class TestAutoscalerDecide:
    SPEC = AutoscaleSpec(min_replicas=1, max_replicas=4, high_watermark=8,
                         low_watermark=1, sustain=0.5, idle_after=2.0,
                         cooldown=1.0)

    def test_grow_requires_sustained_depth(self):
        scaler = QueueDepthAutoscaler(self.SPEC)
        assert scaler.decide(20, 1, now=0.0) == 0     # arming
        assert scaler.decide(20, 1, now=0.3) == 0     # not sustained yet
        assert scaler.decide(20, 1, now=0.6) == 1     # sustained: grow
        assert scaler.events[-1]["action"] == "grow"

    def test_burst_between_watermarks_resets_the_timer(self):
        scaler = QueueDepthAutoscaler(self.SPEC)
        scaler.decide(20, 1, now=0.0)
        scaler.decide(4, 1, now=0.3)                  # back in the band
        assert scaler.decide(20, 1, now=0.6) == 0     # re-arming, not grow
        assert scaler.decide(20, 1, now=1.2) == 1

    def test_cooldown_separates_actions(self):
        scaler = QueueDepthAutoscaler(self.SPEC)
        scaler.decide(20, 1, now=0.0)
        assert scaler.decide(20, 1, now=0.6) == 1
        # Sustained again immediately, but cooldown holds the line.
        scaler.decide(20, 2, now=0.7)
        assert scaler.decide(20, 2, now=1.3) == 0
        assert scaler.decide(20, 2, now=2.5) == 1

    def test_never_beyond_max_or_below_min(self):
        scaler = QueueDepthAutoscaler(self.SPEC)
        scaler.decide(20, 4, now=0.0)
        assert scaler.decide(20, 4, now=1.0) == 0     # at max: hold
        scaler2 = QueueDepthAutoscaler(self.SPEC)
        scaler2.decide(0, 1, now=0.0)
        assert scaler2.decide(0, 1, now=5.0) == 0     # at min: hold

    def test_shrink_requires_sustained_idleness(self):
        scaler = QueueDepthAutoscaler(self.SPEC)
        assert scaler.decide(0, 3, now=0.0) == 0
        assert scaler.decide(1, 3, now=1.0) == 0
        assert scaler.decide(0, 3, now=2.1) == -1
        assert scaler.events[-1]["action"] == "shrink"


# ---------------------------------------------------------------------------
# Admission control on a live front end
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_reject_policy_raises_typed_overload(self):
        with _SleepServer(service_time=0.01, max_batch_size=4,
                          batch_window=0.0,
                          admission_spec={"max_queue": 8}) as srv:
            refs, rejected = [], 0
            for _ in range(64):
                try:
                    refs.append(srv.submit(OBS))
                except OverloadError as exc:
                    assert exc.reason == "queue_full"
                    assert exc.queue_depth >= 8
                    assert exc.retry_after > 0
                    rejected += 1
            for ref in refs:
                ref.result(10.0)
            assert rejected > 0
            assert srv.stats.as_dict()["rejected"] == rejected
            # Every admitted request was served; depth returns to zero.
            assert srv.queue_depth() == 0

    def test_drop_oldest_fails_oldest_and_admits_newest(self):
        with _SleepServer(service_time=0.01, max_batch_size=4,
                          batch_window=0.001,
                          admission_spec={"max_queue": 4,
                                          "policy": "drop-oldest"}) as srv:
            refs = [srv.submit(OBS) for _ in range(32)]
            outcomes = {"ok": 0, "dropped": 0}
            for ref in refs:
                try:
                    ref.result(10.0)
                    outcomes["ok"] += 1
                except OverloadError as exc:
                    assert exc.reason == "dropped_oldest"
                    outcomes["dropped"] += 1
            assert outcomes["dropped"] > 0 and outcomes["ok"] > 0
            # The LAST submit always survives drop-oldest.
            refs[-1].result(0)
            assert srv.stats.as_dict()["shed"] == outcomes["dropped"]

    def test_codel_sheds_standing_queue(self):
        with _SleepServer(service_time=0.01, max_batch_size=2,
                          batch_window=0.0,
                          admission_spec={"max_queue": 256,
                                          "codel_target": 0.005,
                                          "codel_interval": 0.02}) as srv:
            refs = [srv.submit(OBS) for _ in range(64)]
            shed = 0
            for ref in refs:
                try:
                    ref.result(20.0)
                except OverloadError as exc:
                    assert exc.reason == "shed"
                    shed += 1
            assert shed > 0
            assert srv.stats.as_dict()["shed"] == shed

    def test_unbounded_default_never_rejects(self):
        with _SleepServer(service_time=0.001, max_batch_size=8,
                          batch_window=0.0) as srv:
            refs = [srv.submit(OBS) for _ in range(128)]
            for ref in refs:
                ref.result(10.0)
            stats = srv.stats.as_dict()
            assert stats["rejected"] == 0 and stats["shed"] == 0


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_is_never_executed(self):
        srv = _SleepServer(service_time=0.05, max_batch_size=1,
                           batch_window=0.0)
        try:
            blocker = srv.submit(OBS)              # holds the loop ~50ms
            doomed = srv.submit(OBS, deadline=0.01)
            with pytest.raises(DeadlineExceededError) as info:
                doomed.result(10.0)
            assert info.value.waited >= 0.01
            assert info.value.budget == pytest.approx(0.01, abs=1e-3)
            blocker.result(10.0)
            time.sleep(0.02)
            # The expired request consumed no batch slot.
            assert srv.requests_executed == 1
            assert srv.stats.as_dict()["expired"] == 1
        finally:
            srv.stop()

    def test_default_deadline_applies_to_every_request(self):
        srv = _SleepServer(service_time=0.05, max_batch_size=1,
                           batch_window=0.0, default_deadline=0.01)
        try:
            blocker = srv.submit(OBS)
            doomed = srv.submit(OBS)               # inherits the default
            with pytest.raises(DeadlineExceededError):
                doomed.result(10.0)
            blocker.result(10.0)
        finally:
            srv.stop()

    def test_act_many_shares_one_deadline(self):
        """Total wait is bounded by the budget, not N x budget."""
        srv = _SleepServer(service_time=0.05, max_batch_size=1,
                           batch_window=0.0)
        try:
            client = PolicyClient(srv)
            obs = np.zeros((6, STATE_DIM), dtype=np.float32)
            t0 = time.perf_counter()
            with pytest.raises((raylite.RayliteError,
                                DeadlineExceededError)):
                client.act_many(obs, timeout=0.12)
            elapsed = time.perf_counter() - t0
            # Six requests at 50ms each would stack to 0.72s under the
            # old per-ref timeout; the shared deadline caps the walk.
            assert elapsed < 0.4
        finally:
            srv.stop()


# ---------------------------------------------------------------------------
# Server-closed semantics
# ---------------------------------------------------------------------------
class TestServerClosed:
    def test_post_stop_submit_raises_typed_error_immediately(self):
        srv = _SleepServer(service_time=0.001)
        srv.stop()
        t0 = time.perf_counter()
        with pytest.raises(ServerClosedError, match="not running"):
            srv.submit(OBS)
        assert time.perf_counter() - t0 < 0.1   # synchronous, no hang

    def test_stop_drains_queued_requests_before_exiting(self):
        srv = _SleepServer(service_time=0.005, max_batch_size=4,
                           batch_window=0.0)
        refs = [srv.submit(OBS) for _ in range(16)]
        srv.stop()
        # Drain-and-stop: everything queued before stop() still serves.
        for ref in refs:
            ref.result(5.0)

    def test_racing_acts_resolve_fast_during_stop(self):
        srv = _SleepServer(service_time=0.002, max_batch_size=8,
                           batch_window=0.0)
        outcome = {"served": 0, "closed": 0, "other": None}

        def hammer():
            client = PolicyClient(srv, timeout=5.0)
            while True:
                try:
                    client.act(OBS)
                    outcome["served"] += 1
                except ServerClosedError:
                    outcome["closed"] += 1
                    return
                except BaseException as exc:  # noqa: BLE001
                    outcome["other"] = exc
                    return

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        time.sleep(0.1)
        srv.stop()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "client hung across stop()"
        assert outcome["other"] is None, outcome["other"]
        assert outcome["served"] > 0 and outcome["closed"] == 1


# ---------------------------------------------------------------------------
# Client retries + hedging
# ---------------------------------------------------------------------------
class TestRetriesAndHedging:
    def test_retries_recover_from_rejects(self):
        with _SleepServer(service_time=0.002, max_batch_size=1,
                          batch_window=0.0,
                          admission_spec={"max_queue": 1,
                                          "retry_after": 0.002}) as srv:
            done = []

            def worker():
                client = PolicyClient(
                    srv, timeout=10.0,
                    retry_spec={"max_retries": 100, "base_delay": 0.001})
                for _ in range(10):
                    client.act(OBS)
                done.append(client.retries)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            assert len(done) == 8, "a retrying client failed outright"
            assert srv.stats.as_dict()["rejected"] > 0
            assert sum(done) > 0, "nothing was ever retried"

    @staticmethod
    def _block_and_fill(srv):
        """Occupy the service loop, then fill the 1-slot queue."""
        blocker = srv.submit(OBS)
        deadline = time.perf_counter() + 5.0
        while srv.queue_depth() > 0 and time.perf_counter() < deadline:
            time.sleep(0.001)   # wait for the loop to take the blocker
        queued = srv.submit(OBS)
        return [blocker, queued]

    def test_no_retry_without_spec(self):
        with _SleepServer(service_time=0.05, max_batch_size=1,
                          batch_window=0.0,
                          admission_spec={"max_queue": 1}) as srv:
            client = PolicyClient(srv, timeout=5.0)
            refs = self._block_and_fill(srv)
            with pytest.raises(OverloadError):
                client.act(OBS)
            assert client.retries == 0
            for ref in refs:
                ref.result(5.0)

    def test_retry_never_violates_the_deadline(self):
        with _SleepServer(service_time=0.05, max_batch_size=1,
                          batch_window=0.0,
                          admission_spec={"max_queue": 1,
                                          "retry_after": 10.0}) as srv:
            # retry_after (10s) can never fit in a 50ms budget, so the
            # client must surface the overload error instead of sleeping.
            client = PolicyClient(srv, timeout=0.05, retry_spec=5)
            refs = self._block_and_fill(srv)
            t0 = time.perf_counter()
            with pytest.raises(OverloadError):
                client.act(OBS)
            assert time.perf_counter() - t0 < 1.0
            assert client.retries == 0
            for ref in refs:
                ref.result(5.0)

    def test_hedging_duplicates_slow_requests(self):
        with _SleepServer(service_time=0.002, max_batch_size=8,
                          batch_window=0.0) as srv:
            client = PolicyClient(
                srv, timeout=5.0,
                retry_spec=RetrySpec(max_retries=0, hedge_after=0.0005))
            for _ in range(20):
                assert int(client.act(OBS)) == 0
            assert client.hedges > 0
            assert client.latency_stats()["hedges"] == client.hedges

    def test_fast_server_never_hedges(self):
        with _SleepServer(service_time=0.0, max_batch_size=8,
                          batch_window=0.0) as srv:
            client = PolicyClient(
                srv, timeout=5.0,
                retry_spec=RetrySpec(max_retries=0, hedge_after=0.5))
            for _ in range(10):
                client.act(OBS)
            assert client.hedges == 0


# ---------------------------------------------------------------------------
# Load-driver accounting
# ---------------------------------------------------------------------------
class TestDriveConcurrentLoad:
    def test_summary_reports_zero_stragglers_normally(self):
        with _SleepServer(service_time=0.001, max_batch_size=8,
                          batch_window=0.0) as srv:
            summary = drive_concurrent_load(
                srv, num_clients=2, duration=0.2,
                observations=np.zeros((2, STATE_DIM), dtype=np.float32))
            assert summary["stragglers"] == 0
            assert summary["overload_errors"] == 0
            assert summary["requests"] > 0

    def test_stragglers_are_counted_not_silently_dropped(self):
        class _WedgingTarget:
            """First act per client resolves; the second parks until
            released — a worker that stops answering mid-measurement."""

            def __init__(self):
                self._seen = set()
                self._lock = threading.Lock()
                self.pending = []

            def submit(self, obs, deadline=None):
                from repro.raylite.core import ObjectRef
                ref = ObjectRef()
                ident = threading.get_ident()
                with self._lock:
                    first = ident not in self._seen
                    self._seen.add(ident)
                    if not first:
                        self.pending.append(ref)
                if first:
                    ref._resolve(np.int64(0))
                return ref

        target = _WedgingTarget()
        summary = drive_concurrent_load(
            target, num_clients=2, duration=0.2,
            observations=np.zeros((2, STATE_DIM), dtype=np.float32),
            join_timeout=0.2)
        assert summary["stragglers"] == 2
        assert summary["requests"] == 2
        for ref in target.pending:   # release the parked threads
            ref._resolve(np.int64(0))

    def test_tolerate_overload_counts_rejects(self):
        with _SleepServer(service_time=0.02, max_batch_size=1,
                          batch_window=0.0,
                          admission_spec={"max_queue": 1,
                                          "retry_after": 0.001}) as srv:
            summary = drive_concurrent_load(
                srv, num_clients=4, duration=0.4,
                observations=np.zeros((4, STATE_DIM), dtype=np.float32),
                tolerate_overload=True)
            assert summary["overload_errors"] > 0
            assert summary["stragglers"] == 0

    def test_overload_fails_the_run_by_default(self):
        with _SleepServer(service_time=0.02, max_batch_size=1,
                          batch_window=0.0,
                          admission_spec={"max_queue": 1}) as srv:
            with pytest.raises(RLGraphError, match="clients failed"):
                drive_concurrent_load(
                    srv, num_clients=8, duration=0.4,
                    observations=np.zeros((8, STATE_DIM),
                                          dtype=np.float32))


# ---------------------------------------------------------------------------
# Acceptance: 16x oversubscription keeps admitted latency bounded
# ---------------------------------------------------------------------------
class TestOversubscription:
    SERVICE = 0.004          # 4ms per batch of 8 => capacity 2000 req/s
    BATCH = 8
    MAX_QUEUE = 16
    DEADLINE = 0.25

    def _measure(self, admission_spec, num_requests=1024, submitters=4):
        """Blast requests far faster than capacity (>= 16x: submits are
        instant against a 4ms service clock) and timestamp every
        resolution via completion callbacks."""
        srv = _SleepServer(service_time=self.SERVICE,
                           max_batch_size=self.BATCH, batch_window=0.001,
                           admission_spec=admission_spec)
        lock = threading.Lock()
        resolved = []          # (latency, failed_with or None)
        rejected = [0]

        def on_done(t_submit, ref):
            latency = time.perf_counter() - t_submit
            try:
                ref.result(0)
                err = None
            except BaseException as exc:  # noqa: BLE001
                err = exc
            with lock:
                resolved.append((latency, err))

        import functools

        def submitter(n):
            for _ in range(n):
                t_submit = time.perf_counter()
                try:
                    ref = srv.submit(OBS, deadline=self.DEADLINE)
                except OverloadError:
                    with lock:
                        rejected[0] += 1
                    continue
                ref.add_done_callback(
                    functools.partial(on_done, t_submit))

        threads = [threading.Thread(
            target=submitter, args=(num_requests // submitters,))
            for _ in range(submitters)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        deadline = time.perf_counter() + 30.0
        while (len(resolved) + rejected[0] < num_requests
               and time.perf_counter() < deadline):
            time.sleep(0.01)
        peak_depth = srv.queue_depth()
        srv.stop()
        return resolved, rejected[0], peak_depth

    def test_sixteen_x_oversubscription_bounded_latency(self):
        # Unloaded reference: one request at a time.
        with _SleepServer(service_time=self.SERVICE,
                          max_batch_size=self.BATCH,
                          batch_window=0.001) as srv:
            lat = []
            for _ in range(30):
                t0 = time.perf_counter()
                srv.submit(OBS).result(5.0)
                lat.append(time.perf_counter() - t0)
            unloaded_p99 = float(np.percentile(lat, 99))

        resolved, rejected, _ = self._measure(
            {"max_queue": self.MAX_QUEUE, "policy": "reject"})
        assert rejected > 0, "16x load never tripped admission control"
        ok = [latency for latency, err in resolved if err is None]
        assert len(ok) + rejected > 0 and len(ok) > 0
        admitted_p99 = float(np.percentile(ok, 99))
        # The bounded queue caps queueing delay at ~max_queue/capacity
        # (8ms) on top of service time, so admitted p99 stays within 5x
        # of the unloaded p99 even at 16x offered load.
        assert admitted_p99 <= 5 * max(unloaded_p99, 0.01), (
            f"admitted p99 {admitted_p99 * 1e3:.1f}ms vs unloaded "
            f"{unloaded_p99 * 1e3:.1f}ms")
        # No request — admitted or failed — blocked past its deadline
        # (generous slack for a loaded 1-core CI runner).
        worst = max(latency for latency, _ in resolved)
        assert worst <= self.DEADLINE + 0.5, f"request took {worst:.3f}s"

    def test_unbounded_ablation_grows_the_queue(self):
        """Without admission the same burst piles up unboundedly —
        the behavior the tentpole exists to kill."""
        srv = _SleepServer(service_time=self.SERVICE,
                           max_batch_size=self.BATCH, batch_window=0.001)
        refs = [srv.submit(OBS) for _ in range(1024)]
        depth = srv.queue_depth()
        # Far beyond any bounded configuration: the whole burst queues.
        assert depth > 4 * self.MAX_QUEUE, f"queue depth only {depth}"
        stats = srv.stats.as_dict()
        assert stats["rejected"] == 0 and stats["shed"] == 0
        srv.stop()   # drain-and-stop serves them; don't wait on results


# ---------------------------------------------------------------------------
# Autoscaler on a live pool
# ---------------------------------------------------------------------------
def _tiny_dqn():
    return DQNAgent(state_space=FloatBox(shape=(4,)),
                    action_space=IntBox(3),
                    network_spec=[{"type": "dense", "units": 16,
                                   "activation": "relu"}],
                    seed=3)


class TestPoolAutoscaling:
    def test_grows_under_load_shrinks_idle_with_parity(self):
        pool = InferenceWorkerPool(
            _tiny_dqn, FloatBox(shape=(4,)), num_replicas=1,
            parallel_spec="thread", max_batch_size=8, batch_window=0.0,
            supervision_spec={"base_delay": 0.05},
            autoscale_spec={"min_replicas": 1, "max_replicas": 3,
                            "high_watermark": 64, "low_watermark": 2,
                            "sustain": 0.05, "idle_after": 0.3,
                            "cooldown": 0.1, "tick_interval": 0.02})
        try:
            obs = np.random.default_rng(0).standard_normal(
                (8, 4)).astype(np.float32)
            reference = _tiny_dqn()
            expected = [int(reference.get_actions(o, explore=False)[0])
                        for o in obs]
            # Sustained burst far beyond one replica's throughput.
            refs = [pool.submit(obs[i % len(obs)]) for i in range(4000)]
            actions = [int(r.result(120.0)) for r in refs]
            grew_to = len(pool.replicas)
            assert grew_to > 1, "sustained backlog never grew the pool"
            grow_events = [e for e in pool.autoscaler.events
                           if e["action"] == "grow"]
            assert len(grow_events) == grew_to - 1
            # Zero dropped or errored requests across the scale-up.
            assert len(actions) == 4000
            assert pool.stats.as_dict()["errors"] == 0
            # Bitwise action parity through the scale event: autoscaled
            # replicas joined warm and at the current weight version.
            assert actions[:len(obs)] == expected
            assert actions[-len(obs):] == expected
            # Silence shrinks back to min_replicas.
            wait_until = time.perf_counter() + 20.0
            while (len(pool.replicas) > 1
                   and time.perf_counter() < wait_until):
                time.sleep(0.02)
            assert len(pool.replicas) == 1, "idle pool never shrank"
            shrink_events = [e for e in pool.autoscaler.events
                             if e["action"] == "shrink"]
            assert len(shrink_events) == grew_to - 1
            # Still serving correctly at the shrunken size.
            post = [int(pool.act(o, timeout=10.0)) for o in obs]
            assert post == expected
            snap = pool.metrics_snapshot()
            assert snap["replicas"] == 1
            assert len(snap["autoscale"]["events"]) == len(
                pool.autoscaler.events)
        finally:
            pool.stop()

    def test_autoscaler_respects_max_replicas(self):
        pool = InferenceWorkerPool(
            _tiny_dqn, FloatBox(shape=(4,)), num_replicas=1,
            parallel_spec="thread", max_batch_size=8, batch_window=0.0,
            autoscale_spec={"min_replicas": 1, "max_replicas": 2,
                            "high_watermark": 32, "low_watermark": 1,
                            "sustain": 0.02, "idle_after": 5.0,
                            "cooldown": 0.05, "tick_interval": 0.02})
        try:
            refs = [pool.submit(np.zeros(4, dtype=np.float32))
                    for _ in range(3000)]
            for ref in refs:
                ref.result(120.0)
            assert len(pool.replicas) <= 2
        finally:
            pool.stop()


# ---------------------------------------------------------------------------
# RouteStats
# ---------------------------------------------------------------------------
class TestRouteStats:
    def test_counters_and_percentiles(self):
        stats = RouteStats()
        for i in range(100):
            stats.record(200, 0.01)
        stats.record(503, 0.001)
        snap = stats.snapshot()
        assert snap["requests"] == 101
        assert snap["by_status"] == {200: 100, 503: 1}
        assert snap["p50_ms"] == pytest.approx(10.0, rel=0.2)
