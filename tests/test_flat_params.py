"""Flat-parameter learner path: slab aliasing, fused-optimizer parity,
flat weight sync round trips, and the single-shm-block push invariant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import XGRAPH, XTAPE
from repro.backend import functional as F
from repro.backend.variables import FlatLayout, ParamSlab, Variable
from repro.components.optimizers import Adam, GradientDescent, RMSProp
from repro.core import Component, graph_fn, rlgraph_api
from repro.core.graph_builder import build_graph
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


# ---------------------------------------------------------------------------
# ParamSlab / FlatLayout mechanics
# ---------------------------------------------------------------------------
class _VarOwner(Component):
    def __init__(self, scope="owner"):
        super().__init__(scope=scope)

    def create_variables(self, input_spaces):
        self.kernel = self.get_variable("kernel", shape=(3, 2),
                                        initializer="normal")
        self.bias = self.get_variable("bias", shape=(2,), initializer="ones")


def _built_owner():
    comp = _VarOwner()
    comp.input_complete = True
    comp.ensure_variables()
    return comp


class TestParamSlab:
    def test_view_aliasing_both_directions(self):
        comp = _built_owner()
        before = {n: v.value.copy() for n, v in comp.variables.items()}
        slab = comp.coalesce_variables()
        # Coalescing preserves every value.
        for name, var in comp.variables.items():
            np.testing.assert_array_equal(var.value, before[name])
            assert np.shares_memory(var.value, slab.flat)
        # Write through the Variable view -> visible in the slab.
        comp.bias.set(np.array([5.0, 7.0], np.float32))
        offset = slab._offsets[comp.bias.name]
        np.testing.assert_array_equal(slab.flat[offset:offset + 2], [5.0, 7.0])
        # Write through the slab -> visible in the Variable view.
        slab.flat[:] = np.arange(slab.size, dtype=np.float32)
        np.testing.assert_array_equal(
            comp.bias.value, slab.flat[offset:offset + 2])
        assert float(comp.kernel.value.reshape(-1)[0]) == float(
            slab.flat[slab._offsets[comp.kernel.name]])

    def test_ensure_reuses_existing_slab(self):
        comp = _built_owner()
        slab = comp.coalesce_variables()
        again = ParamSlab.ensure(list(comp.variables.values()))
        assert again is slab

    def test_subset_of_slab_rejected(self):
        comp = _built_owner()
        comp.coalesce_variables()
        with pytest.raises(RLGraphError, match="larger slab"):
            ParamSlab.ensure([comp.bias])

    def test_non_float32_rejected(self):
        var = Variable("x/int", np.zeros(3, np.int64), trainable=True,
                       dtype=np.int64)
        with pytest.raises(RLGraphError, match="float32"):
            ParamSlab([var])


class TestFlatLayout:
    def test_gather_scatter_round_trip(self):
        comp = _built_owner()
        layout = comp.flat_layout()
        flat = layout.gather()
        assert flat.shape == (layout.total,) and flat.dtype == np.float32
        as_dict = layout.to_dict(flat)
        for name, var in comp.variables.items():
            np.testing.assert_array_equal(as_dict[name], var.value)
        layout.scatter(flat * 2.0)
        np.testing.assert_array_equal(layout.gather(), flat * 2.0)

    def test_single_memcpy_run_over_slab(self):
        comp = _built_owner()
        comp.coalesce_variables()
        layout = comp.flat_layout()
        # Every variable is slab-backed in sorted order -> exactly one run.
        assert len(layout._runs) == 1 and layout._runs[0][0] is not None

    def test_scatter_size_mismatch(self):
        comp = _built_owner()
        with pytest.raises(RLGraphError, match="vector"):
            comp.flat_layout().scatter(np.zeros(3, np.float32))

    def test_runs_rebuilt_after_late_coalescing(self):
        # A layout built BEFORE coalescing (e.g. an executor grabbing
        # flat weights before the first eager update creates the
        # optimizer slab) must pick up the memcpy fast path afterwards.
        comp = _built_owner()
        layout = comp.flat_layout()
        before = layout.gather()
        assert all(run[0] is None for run in layout._current_runs())
        comp.coalesce_variables()
        runs = layout._current_runs()
        assert len(runs) == 1 and runs[0][0] is not None
        np.testing.assert_array_equal(layout.gather(), before)


# ---------------------------------------------------------------------------
# Fused vs per-variable optimizer parity
# ---------------------------------------------------------------------------
class _MultiVarProblem(Component):
    """Quadratic over several differently-shaped variables, with single-
    and two-tower update APIs."""

    def __init__(self, optimizer, scope="problem", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.optimizer = optimizer
        self.add_components(optimizer)

    def create_variables(self, input_spaces):
        self.w1 = self.get_variable("w1", shape=(4,), initializer="ones")
        self.w2 = self.get_variable("w2", shape=(2, 3), initializer="normal")
        self.w3 = self.get_variable("w3", shape=(), initializer=0.5)
        self.optimizer.set_variables([self.w1, self.w2, self.w3])

    @rlgraph_api
    def update(self, target):
        loss = self._graph_fn_loss(target)
        return self._graph_fn_result(loss, self.optimizer.step(loss))

    @rlgraph_api
    def update_towers(self, target):
        loss_a = self._graph_fn_loss(target)
        loss_b = self._graph_fn_loss_b(target)
        return self._graph_fn_result(
            loss_a, self.optimizer.step_towers(loss_a, loss_b))

    @graph_fn
    def _graph_fn_loss(self, target):
        return F.add(
            F.reduce_sum(F.square(F.sub(self.w1.read(), target))),
            F.add(F.reduce_sum(F.square(self.w2.read())),
                  F.square(self.w3.read())))

    @graph_fn
    def _graph_fn_loss_b(self, target):
        return F.add(F.reduce_sum(F.square(self.w2.read())),
                     F.reduce_sum(F.mul(self.w1.read(), target)))

    @graph_fn(requires_variables=False)
    def _graph_fn_result(self, loss, step_op):
        if step_op is None:
            return loss
        return F.with_deps(loss, step_op)


OPTIMIZER_CASES = [
    ("sgd", lambda: GradientDescent(learning_rate=0.05)),
    ("sgd-momentum", lambda: GradientDescent(learning_rate=0.05,
                                             momentum=0.9)),
    ("adam", lambda: Adam(learning_rate=0.05)),
    ("rmsprop", lambda: RMSProp(learning_rate=0.05)),
    ("adam-clip", lambda: Adam(learning_rate=0.05, clip_grad_norm=0.5)),
    ("sgd-clip", lambda: GradientDescent(learning_rate=0.05,
                                         clip_grad_norm=0.1)),
]


def _drive(make_opt, optimize, backend, api="update", steps=60):
    problem = _MultiVarProblem(make_opt())
    built = build_graph(problem, {"target": FloatBox(shape=(4,))},
                        backend=backend, seed=5, optimize=optimize)
    target = np.asarray([0.5, -1.0, 2.0, 0.0], np.float32)
    losses = [float(np.asarray(built.execute(api, target)))
              for _ in range(steps)]
    state = np.concatenate([problem.w1.value.reshape(-1),
                            problem.w2.value.reshape(-1),
                            problem.w3.value.reshape(-1)])
    return losses, state, problem


class TestFusedOptimizerParity:
    @pytest.mark.parametrize("name,make_opt", OPTIMIZER_CASES,
                             ids=[c[0] for c in OPTIMIZER_CASES])
    def test_single_tower_parity(self, backend, name, make_opt):
        ref_losses, ref_state, _ = _drive(make_opt, "none", backend)
        losses, state, problem = _drive(make_opt, "fused", backend)
        assert problem.optimizer._use_fused
        np.testing.assert_allclose(losses, ref_losses, rtol=1e-5, atol=1e-6)
        if "clip" in name:
            # The flat squared-norm reduction reorders one summation.
            np.testing.assert_allclose(state, ref_state, rtol=1e-5,
                                       atol=1e-6)
        else:
            np.testing.assert_array_equal(state, ref_state)

    @pytest.mark.parametrize("name,make_opt", OPTIMIZER_CASES[:4],
                             ids=[c[0] for c in OPTIMIZER_CASES[:4]])
    def test_multi_tower_parity(self, backend, name, make_opt):
        _, ref_state, _ = _drive(make_opt, "none", backend,
                                 api="update_towers")
        _, state, problem = _drive(make_opt, "fused", backend,
                                   api="update_towers")
        assert problem.optimizer._use_fused
        np.testing.assert_array_equal(state, ref_state)

    def test_explicit_fused_false_keeps_per_variable(self, backend):
        _, _, problem = _drive(
            lambda: Adam(learning_rate=0.05, fused=False), "fused", backend,
            steps=2)
        assert problem.optimizer._use_fused is False
        assert not any(name.endswith("-slab")
                       for name in problem.optimizer.variables)

    def test_optimize_none_keeps_seed_construction(self, backend):
        _, _, problem = _drive(lambda: Adam(learning_rate=0.05), "none",
                               backend, steps=2)
        assert problem.optimizer._use_fused is False
        assert problem.optimizer._param_slab is None


class _ManyVarProblem(Component):
    """K variables — the O(10·K) vs O(1) update-graph-size fixture."""

    def __init__(self, optimizer, num_vars=100, scope="many", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.optimizer = optimizer
        self.num_vars = num_vars
        self.add_components(optimizer)

    def create_variables(self, input_spaces):
        self.ws = [self.get_variable(f"w-{i:03d}", shape=(3,),
                                     initializer="normal")
                   for i in range(self.num_vars)]
        self.optimizer.set_variables(self.ws)

    @rlgraph_api
    def update(self, target):
        loss = self._graph_fn_loss(target)
        return self._graph_fn_result(loss, self.optimizer.step(loss))

    @graph_fn
    def _graph_fn_loss(self, target):
        total = F.reduce_sum(F.square(F.sub(self.ws[0].read(), target)))
        for w in self.ws[1:]:
            total = F.add(total,
                          F.reduce_sum(F.square(F.sub(w.read(), target))))
        return total

    @graph_fn(requires_variables=False)
    def _graph_fn_result(self, loss, step_op):
        return F.with_deps(loss, step_op) if step_op is not None else loss


class TestUpdateGraphSize:
    def _build(self, optimize):
        problem = _ManyVarProblem(Adam(learning_rate=0.01), num_vars=100)
        build_graph(problem, {"target": FloatBox(shape=(3,))},
                    backend=XGRAPH, seed=1, optimize=optimize)
        return problem.optimizer.update_node_count

    def test_fused_update_is_constant_size(self):
        # The whole K=100 Adam update (flatcat + step bump + one fused
        # op + group and their constants) must stay O(1).
        assert self._build("fused") <= 20

    def test_per_variable_update_is_linear_size(self):
        assert self._build("none") >= 500


class TestAgentLevelParity:
    def test_dqn_50_updates_weights_allclose(self):
        from repro.agents import DQNAgent

        rng = np.random.default_rng(0)
        batch = {
            "states": rng.standard_normal((32, 4)).astype(np.float32),
            "actions": rng.integers(0, 2, 32),
            "rewards": rng.standard_normal(32).astype(np.float32),
            "terminals": rng.random(32) < 0.1,
            "next_states": rng.standard_normal((32, 4)).astype(np.float32),
        }

        def drive(optimize):
            agent = DQNAgent(
                state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
                network_spec=[{"type": "dense", "units": 8,
                               "activation": "relu"}],
                double_q=True, sync_interval=7, seed=3, optimize=optimize)
            for _ in range(50):
                agent.update(dict(batch))
            return agent.get_weights()

        ref = drive("none")
        fused = drive("fused")
        assert set(ref) == set(fused)
        for name in ref:
            np.testing.assert_allclose(fused[name], ref[name], rtol=1e-6,
                                       atol=1e-7, err_msg=name)


# ---------------------------------------------------------------------------
# Flat weight sync
# ---------------------------------------------------------------------------
def _dqn(seed=3, optimize="fused"):
    from repro.agents import DQNAgent
    return DQNAgent(state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
                    network_spec=[{"type": "dense", "units": 8,
                                   "activation": "relu"}],
                    seed=seed, optimize=optimize)


class TestFlatWeightSync:
    def test_flat_dict_round_trip(self):
        agent = _dqn(seed=3)
        flat = agent.get_weights(flat=True)
        as_dict = agent.get_weights()
        layout_dict = agent.flat_layout().to_dict(flat)
        assert set(as_dict) == set(layout_dict)
        for name in as_dict:
            np.testing.assert_array_equal(as_dict[name], layout_dict[name])

    def test_flat_transfer_between_agents(self):
        learner, actor = _dqn(seed=3), _dqn(seed=9)
        # Initializers are seeded by variable name+shape, so make the
        # learner actually diverge before shipping weights.
        rng = np.random.default_rng(0)
        learner.set_weights(
            rng.standard_normal(learner.flat_layout().total)
            .astype(np.float32))
        assert not np.array_equal(learner.get_weights(flat=True),
                                  actor.get_weights(flat=True))
        actor.set_weights(learner.get_weights(flat=True))
        ref = learner.get_weights()
        got = actor.get_weights()
        for name in ref:
            np.testing.assert_array_equal(got[name], ref[name], err_msg=name)

    def test_flat_transfer_across_optimize_levels(self):
        # Flat layout is storage-agnostic: a fused learner's vector
        # scatters into a per-variable ("none") actor and vice versa.
        learner, actor = _dqn(seed=3, optimize="fused"), \
            _dqn(seed=9, optimize="none")
        actor.set_weights(learner.get_weights(flat=True))
        np.testing.assert_array_equal(actor.get_weights(flat=True),
                                      learner.get_weights(flat=True))

    def test_flat_size_mismatch_raises(self):
        agent = _dqn()
        with pytest.raises(RLGraphError):
            agent.set_weights(np.zeros(7, np.float32))

    def test_flat_push_is_single_shm_block(self):
        from repro.agents import DQNAgent
        from repro.raylite import shm

        agent = DQNAgent(
            state_space=FloatBox(shape=(4,)), action_space=IntBox(2),
            network_spec=[{"type": "dense", "units": 64,
                           "activation": "relu"}], seed=3)
        flat = agent.get_weights(flat=True)
        assert flat.nbytes >= shm.SHM_THRESHOLD
        tree, block = shm.encode({"weights": flat})
        try:
            assert block is not None  # exactly one shared block...
            tokens = [v for v in tree.values()
                      if isinstance(v, shm.ShmArray)]
            assert len(tokens) == 1  # ...carrying exactly one array
        finally:
            shm.discard(tree, block)

    def test_dict_push_keeps_working(self):
        learner, actor = _dqn(seed=3), _dqn(seed=9)
        rng = np.random.default_rng(1)
        learner.set_weights(
            rng.standard_normal(learner.flat_layout().total)
            .astype(np.float32))
        actor.set_weights(learner.get_weights())
        np.testing.assert_array_equal(actor.get_weights(flat=True),
                                      learner.get_weights(flat=True))


# ---------------------------------------------------------------------------
# Synchronizer satellites
# ---------------------------------------------------------------------------
class TestSynchronizerPairing:
    def _two_nets(self, units_b=4, tau=None):
        from repro.components.common import Synchronizer
        from repro.components.neural_networks import DenseLayer

        class TwoNets(Component):
            def __init__(self):
                super().__init__(scope="two-nets")
                self.a = DenseLayer(units=4, scope="net-a")
                self.b = DenseLayer(units=units_b, scope="net-b")
                self.sync = Synchronizer(self.a, self.b, tau=tau)
                self.add_components(self.a, self.b, self.sync)

            @rlgraph_api
            def forward_a(self, inputs):
                return self.a.apply(inputs)

            @rlgraph_api
            def forward_b(self, inputs):
                return self.b.apply(inputs)

            @rlgraph_api
            def do_sync(self):
                return self.sync.sync()

        return TwoNets()

    def test_aggregated_mismatch_error_lists_all_keys(self, backend):
        with pytest.raises(RLGraphError) as exc:
            build_graph(self._two_nets(units_b=8),
                        {"inputs": FloatBox(shape=(3,), add_batch_rank=True)},
                        backend=backend)
        message = str(exc.value)
        # Both the kernel and the bias mismatch must be reported at once.
        assert "kernel" in message and "bias" in message

    def test_pairing_cached_and_flat(self, backend):
        root = self._two_nets()
        built = build_graph(root,
                            {"inputs": FloatBox(shape=(3,),
                                                add_batch_rank=True)},
                            backend=backend, optimize="fused")
        sync = root.sync
        assert sync._pairs is not None
        pairs_before = sync._pairs
        assert sync._use_flat and sync._slabs is not None
        x = np.ones((2, 3), np.float32)
        out_a = built.execute("forward_a", x)
        built.execute("do_sync")
        np.testing.assert_allclose(built.execute("forward_b", x), out_a,
                                   atol=1e-6)
        built.execute("do_sync")
        assert sync._pairs is pairs_before  # computed once, reused

    def test_optimize_none_keeps_per_variable_sync(self):
        root = self._two_nets()
        built = build_graph(root,
                            {"inputs": FloatBox(shape=(3,),
                                                add_batch_rank=True)},
                            backend=XGRAPH, optimize="none")
        assert root.sync._use_flat is False
        x = np.ones((2, 3), np.float32)
        out_a = built.execute("forward_a", x)
        built.execute("do_sync")
        np.testing.assert_allclose(built.execute("forward_b", x), out_a,
                                   atol=1e-6)


# ---------------------------------------------------------------------------
# Replay-memory satellite: proper ones/anchor ops
# ---------------------------------------------------------------------------
class TestReplayMemoryOps:
    def test_sample_weights_are_unit(self, backend):
        from repro.components.memories import ReplayMemory
        from repro.spaces import Dict as DictSpace, BoolBox

        memory = ReplayMemory(capacity=16)
        records = DictSpace(states=FloatBox(shape=(2,)), rewards=FloatBox(),
                            terminals=BoolBox(), add_batch_rank=True)
        built = build_graph(
            memory, {"records": records,
                     "batch_size": IntBox(low=0, high=1000)},
            backend=backend)
        built.execute("insert_records", {
            "states": np.ones((8, 2), np.float32),
            "rewards": np.zeros(8, np.float32),
            "terminals": np.zeros(8, bool)})
        _, idx, weights = built.execute("get_records", np.asarray(4))
        assert weights.dtype == np.float32
        np.testing.assert_array_equal(weights, np.ones(len(idx), np.float32))
        assert int(built.execute("get_size", np.asarray(4))) == 8

    def test_get_size_returns_snapshot_not_live_buffer(self, backend):
        # The fetched size must be a copy: a later insert mutating the
        # size variable in place must not change an already-fetched
        # result retroactively.
        from repro.components.memories import ReplayMemory
        from repro.spaces import Dict as DictSpace, BoolBox

        memory = ReplayMemory(capacity=16)
        records = DictSpace(states=FloatBox(shape=(2,)), rewards=FloatBox(),
                            terminals=BoolBox(), add_batch_rank=True)
        built = build_graph(
            memory, {"records": records,
                     "batch_size": IntBox(low=0, high=1000)},
            backend=backend)
        batch = {"states": np.ones((4, 2), np.float32),
                 "rewards": np.zeros(4, np.float32),
                 "terminals": np.zeros(4, bool)}
        built.execute("insert_records", batch)
        size_then = built.execute("get_size", np.asarray(1))
        built.execute("insert_records", batch)
        assert int(np.asarray(size_then)) == 4
        assert int(np.asarray(built.execute("get_size", np.asarray(1)))) == 8

    def test_anchor_elided_by_compiler(self):
        from repro.backend import Graph, Session, symbolic_mode

        g = Graph(name="anchor")
        with g.as_default(), symbolic_mode():
            ph = g.placeholder((), np.int64, name="n")
            x = g.constant(np.arange(4, dtype=np.float32))
            out = F.anchor(F.reduce_sum(x), ph)
        sess = Session(g, optimize="basic")
        assert float(sess.run(out, {ph: np.int64(3)})) == 6.0
        plan = sess.compiled_plan(out)
        assert all("anchor" not in step.name for step in plan.steps)
