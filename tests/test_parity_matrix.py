"""Cross-cutting parity matrix: agents x backends x optimize levels.

Until now weight parity was spot-checked per subsystem —
test_graph_compiler.py locks the compiler passes, test_flat_params.py
locks the fused optimizer lowering — each on its own toy problem.  This
matrix locks all three layers *together* on the real agents: for every
agent in {DQN, A2C, IMPALA, PPO}, every backend in {symbolic, eager} and
every optimize level in {"none", "basic", "fused", "native"}, N identical
update
steps from identical initial weights must land on the same final
weights as the paper-faithful reference (symbolic interpreter,
``optimize="none"``).

Initial weights are canonicalized by copying the reference agent's
weight dict into each variant (this also aligns the DQN target network,
since the dict covers every trainable variable), so the only thing the
matrix measures is the *update arithmetic* across the compiler / fused
learner path / backend dispatch stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import (
    ActorCriticAgent,
    DQNAgent,
    IMPALAAgent,
    PPOAgent,
    SACAgent,
)
from repro.backend import (
    XGRAPH,
    XTAPE,
    Graph,
    Session,
    Variable,
    functional as F,
    symbolic_mode,
)
from repro.spaces import FloatBox, IntBox

NUM_UPDATES = 5
STATE_DIM = 4
NUM_ACTIONS = 3
ACTION_DIM = 2  # SAC: continuous torque vector in [-2, 2]^2
NET = [{"type": "dense", "units": 16, "activation": "tanh"}]

# Bitwise parity holds for most of the matrix (the compiler and the
# fused lowering call the registered op forwards), but global-norm
# clipping and reduction reassociation can introduce one-ulp drift;
# allclose at tight tolerance is the contract the layers guarantee.
# "native" is held to the same allclose contract: its C loops accumulate
# reductions in double and contract nothing (-ffp-contract=off), but
# scalar-temp fusion reassociates relative to numpy's pairwise sums.
TOL = dict(rtol=1e-5, atol=1e-6)


def _make_agent(kind: str, backend: str, optimize: str):
    common = dict(state_space=FloatBox(shape=(STATE_DIM,)),
                  action_space=IntBox(NUM_ACTIONS), network_spec=NET,
                  backend=backend, optimize=optimize, seed=7)
    if kind == "dqn":
        return DQNAgent(double_q=True, dueling=True, sync_interval=2,
                        memory_capacity=64, batch_size=8, **common)
    if kind == "a2c":
        return ActorCriticAgent(**common)
    if kind == "impala":
        return IMPALAAgent(**common)
    if kind == "ppo":
        return PPOAgent(epochs=2, minibatch_size=8, **common)
    if kind == "sac":
        # Continuous actions: same seed in every cell keys the host-side
        # reparameterization noise stream, so updates are comparable.
        common["action_space"] = FloatBox(
            low=-2.0 * np.ones(ACTION_DIM, np.float32),
            high=2.0 * np.ones(ACTION_DIM, np.float32))
        return SACAgent(memory_capacity=64, batch_size=8, sync_interval=1,
                        **common)
    raise ValueError(kind)


def _batches(kind: str):
    """A deterministic update-batch stream, identical for every cell."""
    rng = np.random.default_rng(42)
    batches = []
    for _ in range(NUM_UPDATES):
        if kind == "dqn":
            n = 8
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, n),
                "rewards": rng.standard_normal(n).astype(np.float32),
                "terminals": rng.random(n) < 0.2,
                "next_states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
            })
        elif kind == "a2c":
            n = 12
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, n),
                "returns": rng.standard_normal(n).astype(np.float32),
            })
        elif kind == "ppo":
            n = 16
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, n),
                "old_log_probs": -np.abs(
                    rng.standard_normal(n)).astype(np.float32),
                "returns": rng.standard_normal(n).astype(np.float32),
                "advantages": rng.standard_normal(n).astype(np.float32),
            })
        elif kind == "sac":
            n = 8
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.uniform(-2.0, 2.0, (n, ACTION_DIM))
                .astype(np.float32),
                "rewards": rng.standard_normal(n).astype(np.float32),
                "terminals": rng.random(n) < 0.2,
                "next_states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
            })
        elif kind == "impala":
            t, b = 4, 3
            batches.append({
                "states": rng.standard_normal((t, b, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, (t, b)),
                "behaviour_log_probs": -np.abs(
                    rng.standard_normal((t, b))).astype(np.float32),
                "rewards": rng.standard_normal((t, b)).astype(np.float32),
                "terminals": rng.random((t, b)) < 0.1,
                "bootstrap_states": rng.standard_normal((b, STATE_DIM))
                .astype(np.float32),
            })
        else:
            raise ValueError(kind)
    return batches


def _run_updates(kind: str, agent, init_weights) -> np.ndarray:
    agent.set_weights(init_weights)
    for batch in _batches(kind):
        agent.update(batch)
    return agent.get_weights(flat=True)


@pytest.fixture(scope="module")
def references():
    """Final reference weights per agent kind (symbolic interpreter,
    ``optimize='none'`` — the paper-faithful executor) plus the
    canonical initial weight dict each matrix cell starts from."""
    cache = {}

    def get(kind: str):
        if kind not in cache:
            agent = _make_agent(kind, XGRAPH, "none")
            init = agent.get_weights()
            final = _run_updates(kind, agent, init)
            cache[kind] = (init, final)
        return cache[kind]

    return get


@pytest.mark.parametrize("optimize", ["none", "basic", "fused", "native"])
@pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo", "sac"])
def test_update_weight_parity(kind, backend, optimize, references):
    if backend == XGRAPH and optimize == "none":
        pytest.skip("reference cell")
    init, reference = references(kind)
    agent = _make_agent(kind, backend, optimize)
    final = _run_updates(kind, agent, init)
    assert final.shape == reference.shape
    np.testing.assert_allclose(final, reference, **TOL, err_msg=(
        f"{kind}: {backend}/{optimize} diverged from the symbolic "
        f"interpreter reference after {NUM_UPDATES} updates"))


@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo", "sac"])
def test_symbolic_levels_bitwise(kind, references):
    """Within the symbolic backend, "basic" replays the exact same op
    forwards as the interpreter — parity there is bitwise, not just
    allclose (the compiler's own correctness invariant). "fused" and
    "native" intentionally stay out of this test: fusion and C codegen
    reassociate float arithmetic, so their contract is the tight
    allclose of the matrix above, never bitwise."""
    init, reference = references(kind)
    agent = _make_agent(kind, XGRAPH, "basic")
    final = _run_updates(kind, agent, init)
    np.testing.assert_array_equal(final, reference)


# -- memory planning (buffer donation) ----------------------------------------
class TestMemoryPlanning:
    """The donation pass reuses dying intermediate buffers in place; these
    tests pin down the safety contract that makes that invisible."""

    def _chain_graph(self):
        g = Graph(name="donation-test", seed=0)
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            a = F.mul(x, 2.0)
            b = F.add(a, 1.0)
            c = F.exp(b)
            y = F.neg(c)
        return g, x, y

    def test_donation_fires_and_values_match_interpreter(self):
        # At "basic" (no fusion) each elementwise link is a separate
        # step, so the dying a/b/c intermediates are donation fodder.
        g, x, y = self._chain_graph()
        feed = np.arange(6, dtype=np.float32)
        ref = Session(g, optimize="none").run(y, {x: feed})
        sess = Session(g, optimize="basic")
        out = sess.run(y, {x: feed})
        np.testing.assert_array_equal(out, ref)
        assert sess.stats.buffers_donated > 0
        assert sess.stats.bytes_saved >= 0  # unknown shapes count as 0

    def test_donation_guard_adapts_to_shape_changes(self):
        # Dynamic-shape plans guard each donation per run: a feed whose
        # intermediate no longer matches the dying buffer must fall back
        # to a fresh allocation, not write through a stale buffer.
        g, x, y = self._chain_graph()
        sess = Session(g, optimize="basic")
        ref_sess = Session(g, optimize="none")
        for n in (4, 7, 1, 7):
            feed = np.linspace(-1.0, 1.0, n).astype(np.float32)
            np.testing.assert_array_equal(sess.run(y, {x: feed}),
                                          ref_sess.run(y, {x: feed}))

    @pytest.mark.parametrize("optimize", ["basic", "fused", "native"])
    def test_fetched_value_never_aliases_variable_state(self, optimize):
        # A fetch must hand back a buffer the caller may scribble on —
        # donation (and the native backend's persistent out-buffers) may
        # never alias live variable storage or a later run's result.
        g = Graph(name="alias-test", seed=0)
        with g.as_default(), symbolic_mode():
            v = Variable("v", np.asarray([1.0, 2.0, 3.0], np.float32),
                         trainable=False, graph=g)
            read = v.read()
            bump = v.assign_add(g.constant(
                np.asarray([10.0, 10.0, 10.0], np.float32)))
        sess = Session(g, optimize=optimize)
        first = sess.run(read)
        np.testing.assert_allclose(first, [1.0, 2.0, 3.0])
        sess.run(bump)  # mutates variable storage in place
        # The earlier fetch is a snapshot, not a window into v's storage.
        np.testing.assert_allclose(first, [1.0, 2.0, 3.0])
        first[:] = -99.0  # caller scribbles; variable must be unharmed
        np.testing.assert_allclose(v.value, [11.0, 12.0, 13.0])
        np.testing.assert_allclose(sess.run(read), [11.0, 12.0, 13.0])

    def test_fetched_intermediate_not_donated_away(self):
        # Fetching an intermediate keeps its buffer alive: the pass must
        # not donate it into a downstream step of the same run.
        g = Graph(name="fetch-intermediate", seed=0)
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            mid = F.add(F.mul(x, 3.0), 1.0)
            out = F.exp(F.neg(mid))
        feed = np.asarray([0.0, 1.0, 2.0], np.float32)
        for opt in ("basic", "fused", "native"):
            mid_v, out_v = Session(g, optimize=opt).run([mid, out], {x: feed})
            np.testing.assert_allclose(mid_v, [1.0, 4.0, 7.0], err_msg=opt)
            np.testing.assert_allclose(out_v, np.exp(-mid_v), rtol=1e-6,
                                       err_msg=opt)
