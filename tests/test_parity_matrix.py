"""Cross-cutting parity matrix: agents x backends x optimize levels.

Until now weight parity was spot-checked per subsystem —
test_graph_compiler.py locks the compiler passes, test_flat_params.py
locks the fused optimizer lowering — each on its own toy problem.  This
matrix locks all three layers *together* on the real agents: for every
agent in {DQN, A2C, IMPALA, PPO}, every backend in {symbolic, eager} and
every optimize level in {"none", "basic", "fused"}, N identical update
steps from identical initial weights must land on the same final
weights as the paper-faithful reference (symbolic interpreter,
``optimize="none"``).

Initial weights are canonicalized by copying the reference agent's
weight dict into each variant (this also aligns the DQN target network,
since the dict covers every trainable variable), so the only thing the
matrix measures is the *update arithmetic* across the compiler / fused
learner path / backend dispatch stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import (
    ActorCriticAgent,
    DQNAgent,
    IMPALAAgent,
    PPOAgent,
)
from repro.backend import XGRAPH, XTAPE
from repro.spaces import FloatBox, IntBox

NUM_UPDATES = 5
STATE_DIM = 4
NUM_ACTIONS = 3
NET = [{"type": "dense", "units": 16, "activation": "tanh"}]

# Bitwise parity holds for most of the matrix (the compiler and the
# fused lowering call the registered op forwards), but global-norm
# clipping and reduction reassociation can introduce one-ulp drift;
# allclose at tight tolerance is the contract the layers guarantee.
TOL = dict(rtol=1e-5, atol=1e-6)


def _make_agent(kind: str, backend: str, optimize: str):
    common = dict(state_space=FloatBox(shape=(STATE_DIM,)),
                  action_space=IntBox(NUM_ACTIONS), network_spec=NET,
                  backend=backend, optimize=optimize, seed=7)
    if kind == "dqn":
        return DQNAgent(double_q=True, dueling=True, sync_interval=2,
                        memory_capacity=64, batch_size=8, **common)
    if kind == "a2c":
        return ActorCriticAgent(**common)
    if kind == "impala":
        return IMPALAAgent(**common)
    if kind == "ppo":
        return PPOAgent(epochs=2, minibatch_size=8, **common)
    raise ValueError(kind)


def _batches(kind: str):
    """A deterministic update-batch stream, identical for every cell."""
    rng = np.random.default_rng(42)
    batches = []
    for _ in range(NUM_UPDATES):
        if kind == "dqn":
            n = 8
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, n),
                "rewards": rng.standard_normal(n).astype(np.float32),
                "terminals": rng.random(n) < 0.2,
                "next_states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
            })
        elif kind == "a2c":
            n = 12
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, n),
                "returns": rng.standard_normal(n).astype(np.float32),
            })
        elif kind == "ppo":
            n = 16
            batches.append({
                "states": rng.standard_normal((n, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, n),
                "old_log_probs": -np.abs(
                    rng.standard_normal(n)).astype(np.float32),
                "returns": rng.standard_normal(n).astype(np.float32),
                "advantages": rng.standard_normal(n).astype(np.float32),
            })
        elif kind == "impala":
            t, b = 4, 3
            batches.append({
                "states": rng.standard_normal((t, b, STATE_DIM))
                .astype(np.float32),
                "actions": rng.integers(0, NUM_ACTIONS, (t, b)),
                "behaviour_log_probs": -np.abs(
                    rng.standard_normal((t, b))).astype(np.float32),
                "rewards": rng.standard_normal((t, b)).astype(np.float32),
                "terminals": rng.random((t, b)) < 0.1,
                "bootstrap_states": rng.standard_normal((b, STATE_DIM))
                .astype(np.float32),
            })
        else:
            raise ValueError(kind)
    return batches


def _run_updates(kind: str, agent, init_weights) -> np.ndarray:
    agent.set_weights(init_weights)
    for batch in _batches(kind):
        agent.update(batch)
    return agent.get_weights(flat=True)


@pytest.fixture(scope="module")
def references():
    """Final reference weights per agent kind (symbolic interpreter,
    ``optimize='none'`` — the paper-faithful executor) plus the
    canonical initial weight dict each matrix cell starts from."""
    cache = {}

    def get(kind: str):
        if kind not in cache:
            agent = _make_agent(kind, XGRAPH, "none")
            init = agent.get_weights()
            final = _run_updates(kind, agent, init)
            cache[kind] = (init, final)
        return cache[kind]

    return get


@pytest.mark.parametrize("optimize", ["none", "basic", "fused"])
@pytest.mark.parametrize("backend", [XGRAPH, XTAPE])
@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo"])
def test_update_weight_parity(kind, backend, optimize, references):
    if backend == XGRAPH and optimize == "none":
        pytest.skip("reference cell")
    init, reference = references(kind)
    agent = _make_agent(kind, backend, optimize)
    final = _run_updates(kind, agent, init)
    assert final.shape == reference.shape
    np.testing.assert_allclose(final, reference, **TOL, err_msg=(
        f"{kind}: {backend}/{optimize} diverged from the symbolic "
        f"interpreter reference after {NUM_UPDATES} updates"))


@pytest.mark.parametrize("kind", ["dqn", "a2c", "impala", "ppo"])
def test_symbolic_levels_bitwise(kind, references):
    """Within the symbolic backend, "basic" replays the exact same op
    forwards as the interpreter — parity there is bitwise, not just
    allclose (the compiler's own correctness invariant)."""
    init, reference = references(kind)
    agent = _make_agent(kind, XGRAPH, "basic")
    final = _run_updates(kind, agent, init)
    np.testing.assert_array_equal(final, reference)
