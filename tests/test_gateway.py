"""HTTP gateway tests: action parity with the in-process path, deadline
propagation over the wire (X-Deadline-Ms -> 504 + expired counter, no
wasted batch slot), typed overload mapping (503 + Retry-After), error
codes, keep-alive connection reuse, and per-route /metrics."""

from __future__ import annotations

import http.client
import json
import time

import numpy as np
import pytest

from repro import raylite
from repro.agents import DQNAgent
from repro.serving import (
    HttpGateway,
    HttpPolicyClient,
    InferenceWorkerPool,
    PolicyServer,
)
from repro.serving.overload import (
    DeadlineExceededError,
    OverloadError,
)
from repro.serving.policy_server import _BatchingFrontEnd
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

pytestmark = pytest.mark.mp_timeout(180)

STATE_DIM = 4
NUM_ACTIONS = 3


def _dqn(seed=3):
    return DQNAgent(state_space=FloatBox(shape=(STATE_DIM,)),
                    action_space=IntBox(NUM_ACTIONS),
                    network_spec=[{"type": "dense", "units": 16,
                                   "activation": "relu"}],
                    seed=seed)


def _dqn_factory():
    return _dqn()


class _SleepServer(_BatchingFrontEnd):
    pad_batches = False

    def __init__(self, service_time=0.005, **kwargs):
        self.service_time = service_time
        super().__init__(FloatBox(shape=(STATE_DIM,)), **kwargs)

    def _dispatch(self, requests):
        time.sleep(self.service_time)
        self._scatter(requests, np.zeros(len(requests), dtype=np.int64))

    def _apply_weights(self, weights):
        pass


@pytest.fixture(autouse=True)
def _raylite_cleanup():
    yield
    raylite.shutdown()


@pytest.fixture()
def dqn_gateway():
    agent = _dqn()
    server = PolicyServer(agent, max_batch_size=8, batch_window=0.001)
    gateway = HttpGateway(server, default_deadline=5.0).start()
    yield agent, server, gateway
    gateway.stop()
    server.stop()


def _raw(gateway, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(*gateway.address, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            json.loads(response.read().decode() or "{}")
    finally:
        conn.close()


class TestGatewayBasics:
    def test_action_parity_with_in_process_path(self, dqn_gateway):
        agent, server, gateway = dqn_gateway
        obs = np.random.default_rng(7).standard_normal(
            (16, STATE_DIM)).astype(np.float32)
        expected = [int(agent.get_actions(o, explore=False)[0])
                    for o in obs]
        with HttpPolicyClient.for_gateway(gateway) as client:
            served = [int(client.act(o)) for o in obs]
        assert served == expected

    def test_keep_alive_reuses_one_connection(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        obs = np.zeros(STATE_DIM, dtype=np.float32)
        conn = http.client.HTTPConnection(*gateway.address, timeout=10)
        try:
            for _ in range(5):
                conn.request("POST", "/act",
                             body=json.dumps({"obs": obs.tolist()}))
                response = conn.getresponse()
                assert response.status == 200
                json.loads(response.read().decode())
                # getresponse() would raise on a dropped keep-alive.
        finally:
            conn.close()

    def test_healthz(self, dqn_gateway):
        _, server, gateway = dqn_gateway
        with HttpPolicyClient.for_gateway(gateway) as client:
            status, payload = client.healthz()
            assert (status, payload["status"]) == (200, "ok")
        server.stop()
        with HttpPolicyClient.for_gateway(gateway) as client:
            status, payload = client.healthz()
            assert status == 503

    def test_metrics_has_routes_and_target(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        with HttpPolicyClient.for_gateway(gateway) as client:
            client.act(np.zeros(STATE_DIM, dtype=np.float32))
            metrics = client.metrics()
        assert metrics["gateway"]["/act"]["requests"] == 1
        assert metrics["gateway"]["/act"]["by_status"] == {"200": 1} or \
            metrics["gateway"]["/act"]["by_status"] == {200: 1}
        assert "p99_ms" in metrics["gateway"]["/act"]
        target = metrics["target"]
        assert target["requests"] >= 1
        assert "queue_depth" in target and "batch_size_histogram" in target

    def test_ephemeral_port_and_context_manager(self):
        server = _SleepServer(service_time=0.0)
        with HttpGateway(server) as gateway:
            assert gateway.address[1] > 0
            status, _, _ = _raw(gateway, "GET", "/healthz")
            assert status == 200
        server.stop()


class TestGatewayErrors:
    def test_bad_json_is_400(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        status, _, payload = _raw(gateway, "POST", "/act", body="not json")
        assert status == 400 and payload["error"] == "bad_request"

    def test_missing_obs_key_is_400(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        status, _, payload = _raw(gateway, "POST", "/act",
                                  body=json.dumps({"state": [0.0]}))
        assert status == 400

    def test_wrong_shape_is_400(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        status, _, payload = _raw(
            gateway, "POST", "/act",
            body=json.dumps({"obs": [0.0] * (STATE_DIM + 1)}))
        assert status == 400
        assert "shape" in payload["detail"]

    def test_unknown_route_is_404_and_bad_method_405(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        assert _raw(gateway, "GET", "/nope")[0] == 404
        assert _raw(gateway, "GET", "/act")[0] == 405

    def test_bad_deadline_header_is_400(self, dqn_gateway):
        _, _, gateway = dqn_gateway
        body = json.dumps({"obs": [0.0] * STATE_DIM})
        status, _, _ = _raw(gateway, "POST", "/act", body=body,
                            headers={"X-Deadline-Ms": "soon"})
        assert status == 400
        status, _, _ = _raw(gateway, "POST", "/act", body=body,
                            headers={"X-Deadline-Ms": "-5"})
        assert status == 400

    def test_stopped_server_is_503(self):
        server = _SleepServer(service_time=0.0)
        with HttpGateway(server) as gateway:
            server.stop()
            status, _, payload = _raw(
                gateway, "POST", "/act",
                body=json.dumps({"obs": [0.0] * STATE_DIM}))
            assert status == 503 and payload["error"] == "server_closed"


class TestGatewayDeadlines:
    def test_header_deadline_propagates_to_batch_loop(self):
        """The HTTP-path deadline acceptance: an X-Deadline-Ms that
        expires while queued yields 504, bumps the server's expired
        counter, and never occupies a batch slot."""
        server = _SleepServer(service_time=0.08, max_batch_size=1,
                              batch_window=0.0)
        executed = []
        original = server._dispatch

        def counting(requests):
            executed.extend(requests)
            original(requests)

        server._dispatch = counting
        with HttpGateway(server, default_deadline=5.0) as gateway:
            blocker = server.submit(np.zeros(STATE_DIM, dtype=np.float32))
            with HttpPolicyClient.for_gateway(gateway) as client:
                with pytest.raises(DeadlineExceededError):
                    client.act(np.zeros(STATE_DIM, dtype=np.float32),
                               deadline_ms=20)
            blocker.result(10.0)
            time.sleep(0.05)
            assert server.stats.as_dict()["expired"] == 1
            assert len(executed) == 1   # only the blocker ran
            with HttpPolicyClient.for_gateway(gateway) as client:
                assert client.metrics()["gateway"]["/act"][
                    "by_status"].get("504", 0) == 1
        server.stop()

    def test_overload_maps_to_503_with_retry_after(self):
        server = _SleepServer(
            service_time=0.05, max_batch_size=1, batch_window=0.0,
            admission_spec={"max_queue": 1, "retry_after": 0.07})
        with HttpGateway(server, default_deadline=5.0) as gateway:
            obs = np.zeros(STATE_DIM, dtype=np.float32)
            blocker = server.submit(obs)
            wait_until = time.perf_counter() + 5.0
            while (server.queue_depth() > 0
                   and time.perf_counter() < wait_until):
                time.sleep(0.001)
            queued = server.submit(obs)      # fills the 1-slot queue
            status, headers, payload = _raw(
                gateway, "POST", "/act",
                body=json.dumps({"obs": obs.tolist()}))
            assert status == 503
            assert payload["reason"] == "queue_full"
            assert payload["queue_depth"] >= 1
            assert float(headers["Retry-After"]) == pytest.approx(0.07)
            # The typed client raises the same error the in-process
            # path raises, with the hint attached.
            with HttpPolicyClient.for_gateway(gateway) as client:
                with pytest.raises(OverloadError) as info:
                    client.act(obs)
                assert info.value.retry_after == pytest.approx(0.07)
            blocker.result(10.0)
            queued.result(10.0)
        server.stop()

    def test_server_side_rejects_show_in_metrics(self):
        server = _SleepServer(
            service_time=0.02, max_batch_size=1, batch_window=0.0,
            admission_spec={"max_queue": 1, "retry_after": 0.001})
        with HttpGateway(server, default_deadline=5.0) as gateway:
            obs = np.zeros(STATE_DIM, dtype=np.float32)
            with HttpPolicyClient.for_gateway(gateway) as client:
                outcomes = {"ok": 0, "overload": 0}
                for _ in range(30):
                    try:
                        client.act(obs)
                        outcomes["ok"] += 1
                    except OverloadError:
                        outcomes["overload"] += 1
                metrics = client.metrics()
            assert outcomes["ok"] > 0
            if outcomes["overload"]:
                assert metrics["target"]["rejected"] >= \
                    outcomes["overload"]
                by_status = metrics["gateway"]["/act"]["by_status"]
                n503 = by_status.get(503, by_status.get("503", 0))
                assert n503 == outcomes["overload"]
        server.stop()


class TestGatewayOverPool:
    def test_gateway_serves_a_worker_pool(self):
        pool = InferenceWorkerPool(
            _dqn_factory, FloatBox(shape=(STATE_DIM,)), num_replicas=2,
            parallel_spec="thread", max_batch_size=8, batch_window=0.001)
        try:
            obs = np.random.default_rng(11).standard_normal(
                (8, STATE_DIM)).astype(np.float32)
            reference = _dqn()
            expected = [int(reference.get_actions(o, explore=False)[0])
                        for o in obs]
            with HttpGateway(pool, default_deadline=10.0) as gateway:
                with HttpPolicyClient.for_gateway(gateway) as client:
                    served = [int(client.act(o)) for o in obs]
                    metrics = client.metrics()
            assert served == expected
            assert metrics["target"]["replicas"] == 2
        finally:
            pool.stop()
