"""Tests for NN layers, networks, dueling heads, policies, distributions,
explorations, losses and optimizers — built as sub-graphs on both backends."""

import numpy as np
import pytest

from repro.backend import XGRAPH, XTAPE
from repro.components.explorations import EpsilonGreedy
from repro.components.loss_functions import (
    ActorCriticLoss,
    DQNLoss,
    IMPALALoss,
    PPOLoss,
)
from repro.components.neural_networks import (
    Conv2DLayer,
    DenseLayer,
    DuelingHead,
    LSTMLayer,
    NeuralNetwork,
)
from repro.components.optimizers import Adam, GradientDescent, RMSProp
from repro.components.policies import Policy
from repro.core import Component, graph_fn, rlgraph_api
from repro.backend import functional as F
from repro.spaces import BoolBox, FloatBox, IntBox
from repro.testing import ComponentTest
from repro.utils import RLGraphError


@pytest.fixture(params=[XGRAPH, XTAPE])
def backend(request):
    return request.param


BATCHED = dict(add_batch_rank=True)


class TestLayers:
    def test_dense_shapes_and_determinism(self, backend):
        layer = DenseLayer(units=8, activation="relu")
        test = ComponentTest(layer, {"inputs": FloatBox(shape=(4,), **BATCHED)},
                             backend=backend)
        out = test.test("apply", np.ones((3, 4), np.float32))
        assert out.shape == (3, 8)
        assert np.all(out >= 0)  # relu
        out2 = test.test("apply", np.ones((3, 4), np.float32))
        np.testing.assert_allclose(out, out2)

    def test_dense_no_bias(self, backend):
        layer = DenseLayer(units=2, activation=None, use_bias=False)
        test = ComponentTest(layer, {"inputs": FloatBox(shape=(3,), **BATCHED)},
                             backend=backend)
        out = test.test("apply", np.zeros((2, 3), np.float32))
        np.testing.assert_allclose(out, np.zeros((2, 2)))

    def test_conv2d_output_shape(self, backend):
        layer = Conv2DLayer(filters=6, kernel_size=3, stride=2,
                            padding="VALID")
        test = ComponentTest(layer,
                             {"inputs": FloatBox(shape=(9, 9, 2), **BATCHED)},
                             backend=backend)
        out = test.test("apply", np.ones((2, 9, 9, 2), np.float32))
        assert out.shape == (2, 4, 4, 6)

    def test_lstm_sequence_shape(self, backend):
        layer = LSTMLayer(units=5)
        space = FloatBox(shape=(3,), add_batch_rank=True, add_time_rank=True,
                         time_major=True)
        test = ComponentTest(layer, {"inputs": space}, backend=backend)
        out = test.test("apply", np.ones((4, 2, 3), np.float32))
        assert out.shape == (4, 2, 5)

    def test_network_from_spec_list(self, backend):
        net = NeuralNetwork([
            {"type": "dense", "units": 16, "activation": "tanh"},
            {"type": "dense", "units": 4, "activation": None},
        ])
        test = ComponentTest(net, {"nn_input": FloatBox(shape=(8,), **BATCHED)},
                             backend=backend)
        out = test.test("call", np.ones((5, 8), np.float32))
        assert out.shape == (5, 4)

    def test_network_auto_flatten_after_conv(self, backend):
        net = NeuralNetwork([
            {"type": "conv2d", "filters": 4, "kernel_size": 3, "stride": 2},
            {"type": "dense", "units": 6},
        ])
        test = ComponentTest(net,
                             {"nn_input": FloatBox(shape=(9, 9, 1), **BATCHED)},
                             backend=backend)
        out = test.test("call", np.ones((2, 9, 9, 1), np.float32))
        assert out.shape == (2, 6)

    def test_network_json_file(self, backend, tmp_path):
        import json
        path = tmp_path / "net.json"
        path.write_text(json.dumps(
            {"layers": [{"type": "dense", "units": 3}]}))
        net = NeuralNetwork(str(path))
        test = ComponentTest(net, {"nn_input": FloatBox(shape=(2,), **BATCHED)},
                             backend=backend)
        assert test.test("call", np.ones((1, 2), np.float32)).shape == (1, 3)

    def test_empty_network_rejected(self):
        with pytest.raises(RLGraphError):
            NeuralNetwork([])


class TestDuelingHead:
    def test_q_decomposition_mean_zero_advantage(self, backend):
        head = DuelingHead(num_actions=4, units=16)
        test = ComponentTest(head,
                             {"features": FloatBox(shape=(8,), **BATCHED)},
                             backend=backend)
        x = np.random.default_rng(0).standard_normal((5, 8)).astype(np.float32)
        q = test.test("get_q_values", x)
        v = test.test("get_state_values", x)
        assert q.shape == (5, 4)
        # mean_a Q(s,a) == V(s) because advantages are mean-centred
        np.testing.assert_allclose(q.mean(axis=1), v.ravel(), atol=1e-4)


class TestPolicy:
    def _state_space(self):
        return FloatBox(shape=(6,), **BATCHED)

    def test_discrete_policy_actions_in_range(self, backend):
        policy = Policy([{"type": "dense", "units": 12}], action_space=IntBox(3))
        test = ComponentTest(policy, {"nn_input": self._state_space()},
                             backend=backend)
        actions = test.test("get_action",
                            np.random.default_rng(1).standard_normal(
                                (20, 6)).astype(np.float32))
        assert actions.shape == (20,)
        assert np.all((actions >= 0) & (actions < 3))

    def test_deterministic_action_is_argmax(self, backend):
        policy = Policy([{"type": "dense", "units": 12}], action_space=IntBox(5))
        test = ComponentTest(policy, {"nn_input": self._state_space()},
                             backend=backend)
        x = np.random.default_rng(2).standard_normal((4, 6)).astype(np.float32)
        logits = test.test("get_logits", x)
        actions = test.test("get_deterministic_action", x)
        np.testing.assert_array_equal(actions, logits.argmax(axis=1))

    def test_q_values_dueling(self, backend):
        policy = Policy([{"type": "dense", "units": 12}], action_space=IntBox(4),
                        dueling=True)
        test = ComponentTest(policy, {"nn_input": self._state_space()},
                             backend=backend)
        q = test.test("get_q_values", np.ones((2, 6), np.float32))
        assert q.shape == (2, 4)

    def test_log_probs_sum_to_prob_simplex(self, backend):
        policy = Policy([{"type": "dense", "units": 8}], action_space=IntBox(3))
        spaces = {"nn_input": self._state_space(),
                  "actions": IntBox(3, add_batch_rank=True)}
        test = ComponentTest(policy, spaces, backend=backend)
        x = np.random.default_rng(3).standard_normal((4, 6)).astype(np.float32)
        logits = test.test("get_logits", x)
        total = 0
        for a in range(3):
            lp = test.test("get_action_log_probs", x,
                           np.full(4, a, np.int64))
            total += np.exp(lp)
        np.testing.assert_allclose(total, np.ones(4), atol=1e-4)

    def test_continuous_policy(self, backend):
        policy = Policy([{"type": "dense", "units": 8}],
                        action_space=FloatBox(shape=(2,)))
        test = ComponentTest(policy, {"nn_input": self._state_space()},
                             backend=backend)
        actions = test.test("get_action", np.ones((7, 6), np.float32))
        assert actions.shape == (7, 2)

    def test_value_head(self, backend):
        policy = Policy([{"type": "dense", "units": 8}], action_space=IntBox(2),
                        value_head=True)
        test = ComponentTest(policy, {"nn_input": self._state_space()},
                             backend=backend)
        v = test.test("get_state_values", np.ones((3, 6), np.float32))
        assert v.shape == (3,)

    def test_missing_value_head_not_exposed(self, backend):
        policy = Policy([{"type": "dense", "units": 8}], action_space=IntBox(2))
        test = ComponentTest(policy, {"nn_input": self._state_space()},
                             backend=backend)
        with pytest.raises(RLGraphError):
            test.test("get_state_values", np.ones((1, 6), np.float32))


class TestEpsilonGreedy:
    def test_full_exploration_vs_none(self, backend):
        comp = EpsilonGreedy(num_actions=4,
                             epsilon_spec={"type": "linear", "from_": 1.0,
                                           "to_": 0.0, "num_timesteps": 100})
        spaces = {"greedy_actions": IntBox(4, add_batch_rank=True),
                  "time_step": IntBox(low=0, high=2**31 - 1)}
        test = ComponentTest(comp, spaces, backend=backend)
        greedy = np.full(200, 2, np.int64)
        # At step >= 100 epsilon is 0 -> always greedy.
        out = test.test("get_action", greedy, np.asarray(100_000))
        np.testing.assert_array_equal(out, greedy)
        # At step 0 epsilon is 1 -> (almost surely) not all greedy.
        out0 = test.test("get_action", greedy, np.asarray(0))
        assert not np.array_equal(out0, greedy)
        assert np.all((out0 >= 0) & (out0 < 4))

    def test_epsilon_at_host_side(self):
        comp = EpsilonGreedy(num_actions=2,
                             epsilon_spec={"type": "linear", "from_": 1.0,
                                           "to_": 0.0, "num_timesteps": 10})
        assert comp.epsilon_at(5) == pytest.approx(0.5)


class TestDQNLoss:
    def _spaces(self, num_actions=3):
        return {
            "q_values": FloatBox(shape=(num_actions,), **BATCHED),
            "actions": IntBox(num_actions, add_batch_rank=True),
            "rewards": FloatBox(**BATCHED),
            "terminals": BoolBox(**BATCHED),
            "q_next": FloatBox(shape=(num_actions,), **BATCHED),
            "q_next_target": FloatBox(shape=(num_actions,), **BATCHED),
            "importance_weights": FloatBox(**BATCHED),
        }

    def test_zero_td_gives_zero_loss(self, backend):
        loss = DQNLoss(num_actions=3, discount=0.9, double_q=False,
                       huber_delta=None)
        test = ComponentTest(loss, self._spaces(), backend=backend)
        q = np.asarray([[1.0, 0.0, 0.0]], np.float32)
        # target = r + 0.9 * max q_next = 0.1 + 0.9*1.0 = 1.0 == q_sa
        out, td = test.test("get_loss", q, np.asarray([0]),
                            np.asarray([0.1], np.float32),
                            np.asarray([False]),
                            np.asarray([[1.0, 0.0, 0.0]], np.float32),
                            np.asarray([[1.0, 0.0, 0.0]], np.float32),
                            np.asarray([1.0], np.float32))
        assert float(out) == pytest.approx(0.0, abs=1e-6)
        np.testing.assert_allclose(td, [0.0], atol=1e-6)

    def test_terminal_masks_bootstrap(self, backend):
        loss = DQNLoss(num_actions=2, discount=0.9, double_q=False,
                       huber_delta=None)
        test = ComponentTest(loss, self._spaces(2), backend=backend)
        out, td = test.test("get_loss",
                            np.asarray([[2.0, 0.0]], np.float32),
                            np.asarray([0]),
                            np.asarray([1.0], np.float32),
                            np.asarray([True]),
                            np.asarray([[9.0, 9.0]], np.float32),
                            np.asarray([[9.0, 9.0]], np.float32),
                            np.asarray([1.0], np.float32))
        # target = 1.0 (no bootstrap); td = 2 - 1 = 1; mse/2 = 0.5
        np.testing.assert_allclose(td, [1.0], atol=1e-6)
        assert float(out) == pytest.approx(0.5, abs=1e-6)

    def test_double_q_uses_online_argmax(self, backend):
        loss = DQNLoss(num_actions=2, discount=1.0, double_q=True,
                       huber_delta=None)
        test = ComponentTest(loss, self._spaces(2), backend=backend)
        # online prefers action 1; target net values action 1 at 5.
        out, td = test.test("get_loss",
                            np.asarray([[0.0, 0.0]], np.float32),
                            np.asarray([0]),
                            np.asarray([0.0], np.float32),
                            np.asarray([False]),
                            np.asarray([[0.0, 10.0]], np.float32),
                            np.asarray([[3.0, 5.0]], np.float32),
                            np.asarray([1.0], np.float32))
        np.testing.assert_allclose(td, [5.0], atol=1e-5)

    def test_importance_weights_scale_loss(self, backend):
        loss = DQNLoss(num_actions=2, discount=1.0, double_q=False,
                       huber_delta=None)
        test = ComponentTest(loss, self._spaces(2), backend=backend)
        args = [np.asarray([[2.0, 0.0]], np.float32), np.asarray([0]),
                np.asarray([0.0], np.float32), np.asarray([True]),
                np.zeros((1, 2), np.float32), np.zeros((1, 2), np.float32)]
        out1, _ = test.test("get_loss", *args, np.asarray([1.0], np.float32))
        out2, _ = test.test("get_loss", *args, np.asarray([0.5], np.float32))
        assert float(out2) == pytest.approx(float(out1) * 0.5)


class TestActorCriticAndPPOLosses:
    def test_a2c_loss_signs(self, backend):
        loss = ActorCriticLoss(value_coeff=0.5, entropy_coeff=0.0)
        spaces = {k: FloatBox(**BATCHED)
                  for k in ["log_probs", "values", "returns", "entropies"]}
        test = ComponentTest(loss, spaces, backend=backend)
        total, pl, vl = test.test(
            "get_loss",
            np.asarray([-1.0], np.float32), np.asarray([0.0], np.float32),
            np.asarray([2.0], np.float32), np.asarray([0.0], np.float32))
        # advantage = 2; policy loss = -(-1 * 2) = 2; value loss = 4
        assert float(pl) == pytest.approx(2.0)
        assert float(vl) == pytest.approx(4.0)
        assert float(total) == pytest.approx(2.0 + 0.5 * 4.0)

    def test_ppo_clipping_limits_ratio(self, backend):
        loss = PPOLoss(clip_ratio=0.2, value_coeff=0.0, entropy_coeff=0.0)
        spaces = {k: FloatBox(**BATCHED)
                  for k in ["log_probs", "old_log_probs", "advantages",
                            "values", "returns", "entropies"]}
        test = ComponentTest(loss, spaces, backend=backend)
        # ratio would be e^2 ~ 7.4, clipped to 1.2 for positive advantage
        total, pl = test.test(
            "get_loss",
            np.asarray([2.0], np.float32), np.asarray([0.0], np.float32),
            np.asarray([1.0], np.float32), np.asarray([0.0], np.float32),
            np.asarray([0.0], np.float32), np.asarray([0.0], np.float32))
        assert float(pl) == pytest.approx(-1.2, abs=1e-4)


class TestIMPALALoss:
    def test_on_policy_reduces_to_a2c_targets(self, backend):
        loss = IMPALALoss(discount=0.9, value_coeff=1.0, entropy_coeff=0.0)
        tm = dict(add_batch_rank=True, add_time_rank=True, time_major=True)
        spaces = {
            "target_log_probs": FloatBox(**tm),
            "behaviour_log_probs": FloatBox(**tm),
            "values": FloatBox(**tm),
            "bootstrap_value": FloatBox(**BATCHED),
            "rewards": FloatBox(**tm),
            "terminals": BoolBox(**tm),
            "entropies": FloatBox(**tm),
        }
        test = ComponentTest(loss, spaces, backend=backend)
        t_steps, batch = 3, 2
        lp = np.full((t_steps, batch), -0.5, np.float32)
        values = np.zeros((t_steps, batch), np.float32)
        rewards = np.ones((t_steps, batch), np.float32)
        terminals = np.zeros((t_steps, batch), bool)
        boot = np.zeros(batch, np.float32)
        total, pl, vl = test.test("get_loss", lp, lp, values, boot, rewards,
                                  terminals, values)
        # On-policy (rho = 1): vs are discounted reward sums.
        expected_vs0 = 1 + 0.9 * (1 + 0.9 * 1)
        assert float(vl) > 0
        assert np.isfinite(float(total))
        # value loss = 0.5 * mean((V - vs)^2) with V = 0
        vs = np.asarray([expected_vs0, 1 + 0.9, 1.0])
        expected_vl = 0.5 * np.mean(vs ** 2)
        assert float(vl) == pytest.approx(expected_vl, rel=1e-4)


class _QuadraticProblem(Component):
    """min ||w - target||^2 — fixture for optimizer convergence tests.

    Follows the paper's Fig. 3 pattern: the API method wires loss ->
    optimizer.step via component API calls; F ops live in graph fns only.
    """

    def __init__(self, optimizer, dim=4, scope="quadratic", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.optimizer = optimizer
        self.dim = dim
        self.add_components(optimizer)

    def create_variables(self, input_spaces):
        self.w = self.get_variable("w", shape=(self.dim,), initializer="ones")
        self.optimizer.set_variables([self.w])

    @rlgraph_api
    def update(self, target):
        loss = self._graph_fn_loss(target)
        step_op = self.optimizer.step(loss)
        return self._graph_fn_result(loss, step_op)

    @graph_fn
    def _graph_fn_loss(self, target):
        return F.reduce_mean(F.square(F.sub(self.w.read(), target)))

    @graph_fn(requires_variables=False)
    def _graph_fn_result(self, loss, step_op):
        if step_op is None:
            return loss
        return F.with_deps(loss, step_op)


class TestOptimizers:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (GradientDescent, {"learning_rate": 0.2}),
        (GradientDescent, {"learning_rate": 0.1, "momentum": 0.9}),
        (Adam, {"learning_rate": 0.2}),
        (RMSProp, {"learning_rate": 0.1}),
    ])
    def test_converges_on_quadratic(self, backend, opt_cls, kwargs):
        problem = _QuadraticProblem(opt_cls(**kwargs))
        test = ComponentTest(problem,
                             {"target": FloatBox(shape=(4,))},
                             backend=backend)
        target = np.asarray([0.5, -0.5, 2.0, 0.0], np.float32)
        losses = [float(test.test("update", target)) for _ in range(150)]
        assert losses[-1] < 1e-2
        assert losses[-1] < losses[0]
        np.testing.assert_allclose(problem.w.value, target, atol=0.15)

    def test_unbound_variables_raise(self, backend):
        opt = GradientDescent(0.1)

        class Root(Component):
            def __init__(self):
                super().__init__(scope="root")
                self.opt = opt
                self.add_components(opt)

            @rlgraph_api
            def update(self, target):
                loss = self._graph_fn_loss(target)
                return self.opt.step(loss)

            @graph_fn(requires_variables=False)
            def _graph_fn_loss(self, target):
                return F.reduce_mean(F.square(target))

        with pytest.raises(RLGraphError):
            ComponentTest(Root(), {"target": FloatBox(shape=(2,))},
                          backend=backend)

    def test_grad_clipping_bounds_update(self, backend):
        problem = _QuadraticProblem(
            GradientDescent(learning_rate=1.0, clip_grad_norm=0.001))
        test = ComponentTest(problem, {"target": FloatBox(shape=(4,))},
                             backend=backend)
        before = problem.w.value.copy()
        test.test("update", np.full(4, 100.0, np.float32))
        delta = np.linalg.norm(problem.w.value - before)
        assert delta <= 0.0011  # lr * clip_norm (+ tolerance)
