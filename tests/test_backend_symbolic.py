"""Static-graph backend tests: sessions, control deps, symbolic autodiff."""

import numpy as np
import pytest

from repro.backend import (
    Graph,
    Node,
    Session,
    Variable,
    functional as F,
    gradients,
    symbolic_mode,
)
from repro.utils import RLGraphError


def make_graph():
    return Graph(name="test", seed=123)


class TestGraphConstruction:
    def test_placeholder_and_ops(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 4), np.float32, name="x")
            y = F.mul(x, 2.0)
        assert isinstance(y, Node)
        assert y.shape == (None, 4)
        assert y.dtype == np.float32

    def test_constant_folding_cache(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            a = g.constant(3.0)
            b = g.constant(3.0)
        assert a is b

    def test_cross_graph_mixing_rejected(self):
        g1, g2 = make_graph(), make_graph()
        with g1.as_default(), symbolic_mode():
            x = g1.placeholder((2,), np.float32)
        with g2.as_default(), symbolic_mode():
            with pytest.raises(RLGraphError):
                F.mul(x, 2.0)

    def test_matmul_shape_inference(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 8), np.float32)
            w = g.constant(np.zeros((8, 3), np.float32))
            out = F.matmul(x, w)
        assert out.shape == (None, 3)

    def test_reduce_shape_inference(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 4), np.float32)
            assert F.reduce_sum(x, axis=1).shape == (None,)
            assert F.reduce_mean(x).shape == ()
            assert F.reduce_max(x, axis=0, keepdims=True).shape == (1, 4)

    def test_device_annotation(self):
        from repro.backend import device
        g = make_graph()
        with g.as_default(), symbolic_mode(), device("/sim:gpu:1"):
            x = F.add(g.constant(1.0), 2.0)
        assert x.device == "/sim:gpu:1"


class TestSession:
    def test_run_simple(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 3), np.float32, name="x")
            y = F.add(F.mul(x, 2.0), 1.0)
        sess = Session(g)
        out = sess.run(y, {x: np.ones((2, 3))})
        np.testing.assert_allclose(out, 3 * np.ones((2, 3)))

    def test_multi_fetch(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            a = F.mul(x, 2.0)
            b = F.add(x, 10.0)
        outs = Session(g).run([a, b], {x: np.asarray([1.0, 2.0])})
        np.testing.assert_allclose(outs[0], [2, 4])
        np.testing.assert_allclose(outs[1], [11, 12])

    def test_unfed_placeholder_raises(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            y = F.mul(x, 2.0)
        with pytest.raises(RLGraphError):
            Session(g).run(y)

    def test_plan_caching(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            y = F.mul(x, 2.0)
        sess = Session(g)
        sess.run(y, {x: np.zeros(2)})
        sess.run(y, {x: np.zeros(2)})
        assert sess.stats.plan_builds == 1
        assert sess.stats.run_calls == 2

    def test_plan_cache_disabled(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            y = F.mul(x, 2.0)
        sess = Session(g, cache_plans=False)
        sess.run(y, {x: np.zeros(2)})
        sess.run(y, {x: np.zeros(2)})
        assert sess.stats.plan_builds == 2

    def test_feed_dtype_cast(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            y = F.identity(x)
        out = Session(g).run(y, {x: np.asarray([1, 2], dtype=np.int64)})
        assert out.dtype == np.float32


class TestVariablesSymbolic:
    def test_read_and_assign(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            v = Variable("w", np.zeros(3, np.float32), graph=g)
            read = v.read()
            assign = v.assign(F.add(read, 1.0))
        sess = Session(g)
        np.testing.assert_allclose(sess.run(read), [0, 0, 0])
        sess.run(assign)
        np.testing.assert_allclose(v.value, [1, 1, 1])
        sess.run(assign)
        np.testing.assert_allclose(v.value, [2, 2, 2])

    def test_read_node_cached_per_graph(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            v = Variable("w", np.zeros(3), graph=g)
            assert v.read() is v.read()

    def test_scatter_update(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            v = Variable("buf", np.zeros((5, 2), np.float32), trainable=False,
                         graph=g)
            idx = g.placeholder((None,), np.int64)
            vals = g.placeholder((None, 2), np.float32)
            op = v.scatter_update(idx, vals)
        Session(g).run(op, {idx: np.asarray([1, 3]),
                            vals: np.asarray([[1.0, 1], [2, 2]])})
        np.testing.assert_allclose(v.value[1], [1, 1])
        np.testing.assert_allclose(v.value[3], [2, 2])
        np.testing.assert_allclose(v.value[0], [0, 0])

    def test_control_dependency_ordering(self):
        # Pointer must advance only after the scatter writes.
        g = make_graph()
        with g.as_default(), symbolic_mode():
            buf = Variable("buf", np.zeros(4, np.float32), trainable=False, graph=g)
            ptr = Variable("ptr", np.asarray(0, np.int64), trainable=False, graph=g)
            vals = g.placeholder((None,), np.float32)
            n = F.size_of(vals)
            idx = F.mod(F.add(F.dyn_arange(n), ptr.read()), 4)
            write = buf.scatter_update(idx, vals)
            advance = ptr.assign(F.mod(F.add(ptr.read(), n), 4)).with_deps(write)
            done = F.group(write, advance)
        sess = Session(g)
        sess.run(done, {vals: np.asarray([1.0, 2.0, 3.0])})
        np.testing.assert_allclose(buf.value, [1, 2, 3, 0])
        assert ptr.value == 3
        sess.run(done, {vals: np.asarray([9.0, 8.0])})
        np.testing.assert_allclose(buf.value, [8, 2, 3, 9])
        assert ptr.value == 1

    def test_duplicate_variable_name_rejected(self):
        g = make_graph()
        Variable("w", np.zeros(1), graph=g)
        with pytest.raises(RLGraphError):
            Variable("w", np.zeros(2), graph=g)

    def test_set_shape_mismatch(self):
        v = Variable("w", np.zeros(3))
        with pytest.raises(RLGraphError):
            v.set(np.zeros(4))


class TestSymbolicGradients:
    def _run_grad(self, build_fn, feeds_shapes, feed_values):
        """build_fn(graph, *placeholders) -> (loss_node, [wrt nodes])"""
        g = make_graph()
        with g.as_default(), symbolic_mode():
            phs = [g.placeholder(s, np.float32) for s in feeds_shapes]
            loss, wrt = build_fn(g, *phs)
            grads = gradients(loss, wrt)
        sess = Session(g)
        feed = dict(zip(phs, feed_values))
        return sess.run(grads, feed)

    def test_linear_gradient(self):
        def build(g, x):
            w = g.constant(np.asarray([[2.0], [3.0]], np.float32))
            out = F.reduce_sum(F.matmul(x, w))
            return out, [x]

        (gx,) = self._run_grad(build, [(None, 2)], [np.ones((4, 2))])
        np.testing.assert_allclose(gx, np.tile([2.0, 3.0], (4, 1)))

    def test_matches_eager_on_mlp(self):
        rng = np.random.default_rng(0)
        w1 = rng.standard_normal((4, 8)).astype(np.float32)
        w2 = rng.standard_normal((8, 1)).astype(np.float32)
        x_val = rng.standard_normal((5, 4)).astype(np.float32)

        # Symbolic.
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None, 4), np.float32)
            v1 = Variable("w1", w1, graph=g)
            v2 = Variable("w2", w2, graph=g)
            h = F.tanh(F.matmul(x, v1.read()))
            loss = F.reduce_mean(F.square(F.matmul(h, v2.read())))
            gs = gradients(loss, [v1.read(), v2.read()])
        sym_g1, sym_g2 = Session(g).run(gs, {x: x_val})

        # Eager.
        from repro.backend import ETensor, collect_leaf_grads
        t1 = ETensor(w1, requires_grad=True)
        t2 = ETensor(w2, requires_grad=True)
        h = F.tanh(F.matmul(x_val, t1))
        loss = F.reduce_mean(F.square(F.matmul(h, t2)))
        eg1, eg2 = collect_leaf_grads(loss, [t1, t2])

        np.testing.assert_allclose(sym_g1, eg1, atol=1e-5)
        np.testing.assert_allclose(sym_g2, eg2, atol=1e-5)

    def test_unreachable_returns_none(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            v = Variable("w", np.zeros(2), graph=g)
            loss = F.reduce_sum(F.square(x))
            grads = gradients(loss, [v.read()])
        assert grads == [None]

    def test_stop_gradient_symbolic(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((3,), np.float32)
            out = F.reduce_sum(F.mul(F.stop_gradient(x), x))
            (gx,) = gradients(out, [x])
        val = np.asarray([1.0, 2.0, 3.0], np.float32)
        np.testing.assert_allclose(Session(g).run(gx, {x: val}), val)

    def test_grad_through_where_and_max(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((4,), np.float32)
            target = F.stop_gradient(F.reduce_max(x))
            loss = F.reduce_sum(F.square(F.sub(x, target)))
            (gx,) = gradients(loss, [x])
        val = np.asarray([1.0, 5.0, 2.0, 3.0], np.float32)
        out = Session(g).run(gx, {x: val})
        np.testing.assert_allclose(out, 2 * (val - 5.0))

    def test_gradients_requires_symbolic_mode(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((2,), np.float32)
            y = F.reduce_sum(x)
        with pytest.raises(RLGraphError):
            gradients(y, [x])


class TestRandomOps:
    def test_random_uniform_shape_and_determinism(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            r = F.random_uniform(shape=(3,), seed=7)
        sess = Session(g)
        a = sess.run(r)
        b = sess.run(r)
        assert a.shape == (3,)
        assert not np.allclose(a, b)  # stateful stream advances

        g2 = make_graph()
        with g2.as_default(), symbolic_mode():
            r2 = F.random_uniform(shape=(3,), seed=7)
        np.testing.assert_allclose(Session(g2).run(r2), a)

    def test_random_uniform_like(self):
        g = make_graph()
        with g.as_default(), symbolic_mode():
            x = g.placeholder((None,), np.float32)
            r = F.random_uniform(like=x, seed=3)
        out = Session(g).run(r, {x: np.zeros(5)})
        assert out.shape == (5,)
        assert np.all((out >= 0) & (out < 1))
