"""Decay schedules for exploration / learning-rate annealing.

These mirror the ``time_percentage``-driven decay components in RLgraph:
a schedule maps a global timestep to a scalar value.
"""

from __future__ import annotations

import math
from typing import Any

from repro.utils.errors import RLGraphError


class Schedule:
    """Maps a global timestep to a scalar (e.g. epsilon, learning rate)."""

    def value(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        return self.value(step)


class Constant(Schedule):
    def __init__(self, value: float = 1.0):
        self.constant_value = float(value)

    def value(self, step: int) -> float:
        return self.constant_value

    def __repr__(self):
        return f"Constant({self.constant_value})"


class LinearDecay(Schedule):
    """Linear interpolation from ``from_`` to ``to_`` over ``num_timesteps``."""

    def __init__(self, from_: float = 1.0, to_: float = 0.0, num_timesteps: int = 10000,
                 start_timestep: int = 0):
        if num_timesteps <= 0:
            raise RLGraphError("num_timesteps must be positive")
        self.from_ = float(from_)
        self.to_ = float(to_)
        self.num_timesteps = int(num_timesteps)
        self.start_timestep = int(start_timestep)

    def value(self, step: int) -> float:
        t = min(max(step - self.start_timestep, 0), self.num_timesteps)
        frac = t / self.num_timesteps
        return self.from_ + (self.to_ - self.from_) * frac

    def __repr__(self):
        return (f"LinearDecay({self.from_}->{self.to_} over "
                f"{self.num_timesteps} steps)")


class ExponentialDecay(Schedule):
    """``from_ * decay_rate ** (step / half_life)`` floored at ``to_``."""

    def __init__(self, from_: float = 1.0, to_: float = 0.0, half_life: int = 1000,
                 decay_rate: float = 0.5):
        if half_life <= 0:
            raise RLGraphError("half_life must be positive")
        self.from_ = float(from_)
        self.to_ = float(to_)
        self.half_life = int(half_life)
        self.decay_rate = float(decay_rate)

    def value(self, step: int) -> float:
        raw = self.from_ * self.decay_rate ** (max(step, 0) / self.half_life)
        return max(raw, self.to_)


class PolynomialDecay(Schedule):
    """Polynomial decay (power defaults to 2.0), as in TF's polynomial_decay."""

    def __init__(self, from_: float = 1.0, to_: float = 0.0, num_timesteps: int = 10000,
                 power: float = 2.0):
        if num_timesteps <= 0:
            raise RLGraphError("num_timesteps must be positive")
        self.from_ = float(from_)
        self.to_ = float(to_)
        self.num_timesteps = int(num_timesteps)
        self.power = float(power)

    def value(self, step: int) -> float:
        t = min(max(step, 0), self.num_timesteps)
        frac = 1.0 - t / self.num_timesteps
        return self.to_ + (self.from_ - self.to_) * math.pow(frac, self.power)


def from_spec(spec: Any) -> Schedule:
    """Build a schedule from a number, a schedule, or a dict spec."""
    if isinstance(spec, Schedule):
        return spec
    if isinstance(spec, (int, float)):
        return Constant(float(spec))
    if isinstance(spec, dict):
        spec = dict(spec)
        type_name = spec.pop("type", "linear").lower()
        classes = {
            "constant": Constant,
            "linear": LinearDecay,
            "linear_decay": LinearDecay,
            "exponential": ExponentialDecay,
            "exponential_decay": ExponentialDecay,
            "polynomial": PolynomialDecay,
            "polynomial_decay": PolynomialDecay,
        }
        if type_name not in classes:
            raise RLGraphError(f"Unknown schedule type {type_name!r}")
        return classes[type_name](**spec)
    raise RLGraphError(f"Cannot build Schedule from {spec!r}")
