"""Shared utilities: errors, seeding, schedules, registries, configs."""

from repro.utils.errors import (
    RLGraphError,
    RLGraphBuildError,
    RLGraphSpaceError,
    RLGraphAPIError,
)
from repro.utils.seeding import SeedStream, derive_seed
from repro.utils.registry import Registry
from repro.utils.schedules import (
    Schedule,
    Constant,
    LinearDecay,
    ExponentialDecay,
    PolynomialDecay,
    from_spec as schedule_from_spec,
)
from repro.utils.config import resolve_config, deep_update

__all__ = [
    "RLGraphError",
    "RLGraphBuildError",
    "RLGraphSpaceError",
    "RLGraphAPIError",
    "SeedStream",
    "derive_seed",
    "Registry",
    "Schedule",
    "Constant",
    "LinearDecay",
    "ExponentialDecay",
    "PolynomialDecay",
    "schedule_from_spec",
    "resolve_config",
    "deep_update",
]
