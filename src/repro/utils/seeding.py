"""Deterministic seeding helpers.

RL experiments are notoriously seed-sensitive (Henderson et al., 2017), so
every stochastic object in the library draws from a :class:`SeedStream`
instead of the global NumPy state.  Derived seeds are stable across runs
and platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MAX_SEED = 2**32 - 1


def derive_seed(*parts) -> int:
    """Derive a stable 32-bit seed from arbitrary hashable parts.

    Uses SHA-256 over the repr of the parts so the result does not depend
    on Python's per-process hash randomization.
    """
    digest = hashlib.sha256("|".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:4], "little") % _MAX_SEED


class SeedStream:
    """A stream of deterministic child seeds and RNGs.

    Example::

        stream = SeedStream(42)
        rng_a = stream.rng("worker", 0)
        rng_b = stream.rng("worker", 1)   # independent of rng_a
    """

    def __init__(self, seed: int | None = None):
        self.seed = int(seed) if seed is not None else derive_seed("default")

    def spawn(self, *parts) -> int:
        """Return a child seed derived from this stream's seed and ``parts``."""
        return derive_seed(self.seed, *parts)

    def rng(self, *parts) -> np.random.Generator:
        """Return a NumPy ``Generator`` seeded from :meth:`spawn`."""
        return np.random.default_rng(self.spawn(*parts))

    def child(self, *parts) -> "SeedStream":
        """Return a child stream (for nested subsystems)."""
        return SeedStream(self.spawn(*parts))

    def __repr__(self):
        return f"SeedStream(seed={self.seed})"
