"""Exception hierarchy for the repro (RLgraph reproduction) library.

Keeping a dedicated hierarchy lets callers distinguish user errors
(bad spec, space mismatch) from internal build failures.
"""


class RLGraphError(Exception):
    """Base class for all library errors."""


class RLGraphSpaceError(RLGraphError):
    """A value did not match the expected :class:`~repro.spaces.Space`."""

    def __init__(self, message, space=None, value=None):
        super().__init__(message)
        self.space = space
        self.value = value


class RLGraphBuildError(RLGraphError):
    """The component-graph build could not complete.

    Raised e.g. when a component never becomes input-complete or a
    graph function receives spaces it cannot handle.
    """


class RLGraphAPIError(RLGraphError):
    """An API method was called incorrectly (unknown name, bad arity)."""


class RLGraphObsoleteError(RLGraphError):
    """An operation was attempted on an already-terminated resource."""


class RLGraphQueueError(RLGraphError):
    """A queue component operation failed (closed queue, timeout)."""
