"""A small name -> class registry with spec resolution.

RLgraph configures agents from declarative JSON specs ("type": "dense", ...).
Each extensible family (layers, memories, optimizers, agents, environments)
owns a :class:`Registry` so string specs resolve to classes uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.utils.errors import RLGraphError


class Registry:
    """Maps snake-case type names to classes and builds objects from specs."""

    def __init__(self, family: str):
        self.family = family
        self._classes: Dict[str, type] = {}

    def register(self, name: str, cls: Optional[type] = None, aliases: Iterable[str] = ()):
        """Register ``cls`` under ``name``. Usable as a decorator::

            @LAYERS.register("dense")
            class DenseLayer(...): ...
        """

        def _do(klass: type) -> type:
            for key in (name, *aliases):
                key = key.lower()
                if key in self._classes and self._classes[key] is not klass:
                    raise RLGraphError(
                        f"{self.family}: duplicate registration for {key!r}"
                    )
                self._classes[key] = klass
            return klass

        if cls is not None:
            return _do(cls)
        return _do

    def lookup(self, name: str) -> type:
        try:
            return self._classes[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._classes)) or "<empty>"
            raise RLGraphError(
                f"Unknown {self.family} type {name!r}. Known: {known}"
            ) from None

    def keys(self):
        return sorted(self._classes)

    def from_spec(self, spec: Any, **default_kwargs) -> Any:
        """Build an object from a spec.

        Accepted spec forms:

        * an instance of a registered class -> returned as-is;
        * a string -> looked up, constructed with ``default_kwargs``;
        * a dict with a ``"type"`` key -> remaining keys become kwargs;
        * a class -> constructed directly.
        """
        if spec is None:
            raise RLGraphError(f"{self.family}: cannot build from spec None")
        if isinstance(spec, str):
            return self.lookup(spec)(**default_kwargs)
        if isinstance(spec, type):
            return spec(**default_kwargs)
        if isinstance(spec, dict):
            spec = dict(spec)
            type_name = spec.pop("type", None)
            if type_name is None:
                raise RLGraphError(
                    f"{self.family}: dict spec requires a 'type' key, got {spec!r}"
                )
            kwargs = {**default_kwargs, **spec}
            return self.lookup(type_name)(**kwargs)
        # Already-constructed object: check it belongs to this family if
        # possible, otherwise trust the caller.
        return spec

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._classes

    def __repr__(self):
        return f"Registry({self.family}, {len(self._classes)} types)"
