"""Declarative configuration helpers.

Agents and networks are configurable from JSON documents (paper §3.4).
``resolve_config`` accepts a dict, a JSON string, or a path to a JSON file
and returns a plain dict; ``deep_update`` merges override dicts the way
agent constructors merge user kwargs into default configs.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Any, Dict, Optional

from repro.utils.errors import RLGraphError


def resolve_config(spec: Any, default: Optional[Dict] = None) -> Dict:
    """Resolve ``spec`` into a config dict.

    * ``None``     -> deep copy of ``default`` (or ``{}``);
    * ``dict``     -> deep copy;
    * JSON string  -> parsed;
    * file path    -> loaded (must contain a JSON object).
    """
    if spec is None:
        return copy.deepcopy(default) if default else {}
    if isinstance(spec, dict):
        return copy.deepcopy(spec)
    if isinstance(spec, str):
        if os.path.isfile(spec):
            with open(spec, "r", encoding="utf-8") as f:
                loaded = json.load(f)
        else:
            stripped = spec.strip()
            if not stripped.startswith("{") and not stripped.startswith("["):
                raise RLGraphError(
                    f"Config string {spec!r} is neither an existing file nor JSON"
                )
            loaded = json.loads(stripped)
        if not isinstance(loaded, (dict, list)):
            raise RLGraphError(f"Config {spec!r} must contain a JSON object/array")
        return loaded
    raise RLGraphError(f"Cannot resolve config from {type(spec).__name__}")


def deep_update(base: Dict, overrides: Optional[Dict]) -> Dict:
    """Recursively merge ``overrides`` into a deep copy of ``base``.

    Nested dicts merge key-wise; any other value type replaces the base
    value wholesale (lists are not concatenated -- an override list is a
    full replacement, which is what layer-list overrides want).
    """
    result = copy.deepcopy(base)
    if not overrides:
        return result
    for key, value in overrides.items():
        if isinstance(value, dict) and isinstance(result.get(key), dict):
            result[key] = deep_update(result[key], value)
        else:
            result[key] = copy.deepcopy(value)
    return result
