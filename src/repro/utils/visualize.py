"""Component-graph visualization (paper Appendix A).

The paper argues RLgraph's scoped components make computation graphs
*visualizable*: every op and variable lives under its component's scope
with an explicit device, so dataflow renders cleanly (Fig. 10) compared
to ad-hoc reference scripts (Figs. 11-15). This module renders a built
component graph as Graphviz DOT (clustered by component scope, colored
by device) and as an indented text tree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.component import Component
from repro.core.graph_builder import BuiltGraph
from repro.core.op_records import collect_records

_DEVICE_COLORS = ["#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6"]


def _device_color(device: str, palette: Dict[str, str]) -> str:
    if device not in palette:
        palette[device] = _DEVICE_COLORS[len(palette) % len(_DEVICE_COLORS)]
    return palette[device]


def component_tree(root: Component) -> str:
    """Indented text tree: scopes, devices, variables, API methods."""
    lines: List[str] = []

    def visit(comp: Component, depth: int):
        pad = "  " * depth
        device = comp.resolved_device()
        lines.append(f"{pad}{comp.scope}  [{type(comp).__name__}]"
                     f"  dev={device}")
        for name in comp.variables:
            var = comp.variables[name]
            kind = "train" if var.trainable else "state"
            lines.append(f"{pad}  · var {name.split('/')[-1]} "
                         f"{var.shape} ({kind})")
        for api in sorted(comp.api_methods):
            lines.append(f"{pad}  · api {api}()")
        for sub in comp.sub_components.values():
            visit(sub, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def to_dot(built: BuiltGraph, api_name: Optional[str] = None) -> str:
    """Graphviz DOT of the meta-graph: graph-fn nodes clustered by
    component, edges following op records, devices as fill colors.

    ``api_name`` restricts the rendering to one API method's dataflow
    (e.g. just the update path).
    """
    nodes = built._nodes
    if api_name is not None:
        endpoint = built.api[api_name]
        wanted = set()
        recs: List = []
        collect_records(endpoint.out_structure, recs)
        frontier = [r.producer for r in recs if r.producer is not None]
        while frontier:
            node = frontier.pop()
            if node.id in wanted:
                continue
            wanted.add(node.id)
            frontier.extend(r.producer for r in node.input_records()
                            if r.producer is not None)
        nodes = [n for n in nodes if n.id in wanted]

    palette: Dict[str, str] = {}
    by_component: "OrderedDict[str, List]" = OrderedDict()
    for node in nodes:
        by_component.setdefault(node.component.global_scope, []).append(node)

    out = ["digraph component_graph {",
           "  rankdir=BT;",
           "  node [shape=box, style=filled, fontsize=10];"]
    for i, (scope, comp_nodes) in enumerate(by_component.items()):
        comp = comp_nodes[0].component
        color = _device_color(comp.resolved_device(), palette)
        out.append(f'  subgraph "cluster_{i}" {{')
        out.append(f'    label="{scope}\\n{comp.resolved_device()}";')
        out.append(f'    style=filled; color="#eeeeee";')
        for node in comp_nodes:
            out.append(f'    n{node.id} [label="{node.name}", '
                       f'fillcolor="{color}"];')
        out.append("  }")
    # Data edges.
    for node in nodes:
        for rec in node.input_records():
            if rec.producer is not None:
                out.append(f"  n{rec.producer.id} -> n{node.id};")
    # External inputs.
    seen_inputs = set()
    for node in nodes:
        for rec in node.input_records():
            if rec.producer is None and rec.id not in seen_inputs:
                seen_inputs.add(rec.id)
                label = rec.label or f"input_{rec.id}"
                out.append(f'  in{rec.id} [label="{label}", shape=ellipse, '
                           f'fillcolor="#ffffcc"];')
                out.append(f"  in{rec.id} -> n{node.id};")
    out.append("}")
    return "\n".join(out)


def summarize(built: BuiltGraph) -> Dict[str, int]:
    """Quick size summary of a built graph."""
    devices = {n.component.resolved_device() for n in built._nodes}
    return {
        "components": built.stats.num_components,
        "graph_fn_nodes": built.stats.num_graph_fn_nodes,
        "api_methods": len(built.api),
        "devices": len(devices),
        "backend_nodes": (len(built.graph.nodes)
                          if built.graph is not None else 0),
    }
