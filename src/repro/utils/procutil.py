"""Multiprocessing helpers shared by the process-parallel subsystems
(raylite process actors, SubprocVectorEnv) without coupling them to
each other."""

from __future__ import annotations

import multiprocessing


def default_start_method() -> str:
    """Prefer fork (cheap, closure-friendly factories) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"
