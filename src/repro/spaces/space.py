"""Base Space class.

A Space describes the dtype and shape of tensors flowing between
components, plus two optional *special ranks*: a batch rank and a time
rank. The build process (``repro.core.graph_builder``) pushes spaces
through the component graph to infer variable shapes and create
placeholders, so spaces must be hashable, comparable and serializable.
"""

from __future__ import annotations

from typing import Optional, Tuple as TypingTuple

import numpy as np


class Space:
    """Abstract base for all spaces.

    Attributes:
        has_batch_rank: Whether values carry a leading (possibly
            time-major: second) batch dimension of unknown size.
        has_time_rank: Whether values carry a time dimension.
        time_major: If both ranks present, whether time comes first.
    """

    def __init__(self, add_batch_rank: bool = False, add_time_rank: bool = False,
                 time_major: bool = False):
        self.has_batch_rank = bool(add_batch_rank)
        self.has_time_rank = bool(add_time_rank)
        self.time_major = bool(time_major)

    # -- core geometry -------------------------------------------------
    @property
    def shape(self) -> TypingTuple[int, ...]:
        """The value shape *without* batch/time ranks."""
        raise NotImplementedError

    def get_shape(self, with_batch_rank=False, with_time_rank=False,
                  batch_size: Optional[int] = None, time_steps: Optional[int] = None):
        """Shape including requested special ranks.

        Unknown special dims are reported as ``None`` unless a concrete
        ``batch_size``/``time_steps`` is given.
        """
        prefix = []
        batch_dim = batch_size if batch_size is not None else None
        time_dim = time_steps if time_steps is not None else None
        want_batch = with_batch_rank and self.has_batch_rank
        want_time = with_time_rank and self.has_time_rank
        if want_batch and want_time:
            if self.time_major:
                prefix = [time_dim, batch_dim]
            else:
                prefix = [batch_dim, time_dim]
        elif want_batch:
            prefix = [batch_dim]
        elif want_time:
            prefix = [time_dim]
        return tuple(prefix) + tuple(self.shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def flat_dim(self) -> int:
        """Number of scalar elements in a single (un-batched) value."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def dtype(self) -> np.dtype:
        raise NotImplementedError

    # -- rank manipulation ---------------------------------------------
    def with_batch_rank(self, add: bool = True) -> "Space":
        """Return a copy with the batch rank toggled."""
        clone = self.copy()
        clone.has_batch_rank = add
        return clone

    def with_time_rank(self, add: bool = True, time_major: bool = False) -> "Space":
        clone = self.copy()
        clone.has_time_rank = add
        clone.time_major = time_major
        return clone

    def with_extra_ranks(self, add_batch_rank=True, add_time_rank=False,
                         time_major=False) -> "Space":
        clone = self.copy()
        clone.has_batch_rank = add_batch_rank
        clone.has_time_rank = add_time_rank
        clone.time_major = time_major
        return clone

    def strip_ranks(self) -> "Space":
        """Return a copy without batch/time ranks."""
        return self.with_extra_ranks(False, False, False)

    def copy(self) -> "Space":
        raise NotImplementedError

    # -- value factory methods ------------------------------------------
    def sample(self, size=None, rng: Optional[np.random.Generator] = None):
        """Draw a random value. ``size`` may be an int (batch) or tuple
        (e.g. ``(batch, time)``)."""
        raise NotImplementedError

    def zeros(self, size=None):
        """A zero-filled value of this space."""
        raise NotImplementedError

    def contains(self, value) -> bool:
        """Whether ``value`` is a single (non-batched) member of the space."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    def _size_to_prefix(self, size) -> TypingTuple[int, ...]:
        if size is None:
            return ()
        if isinstance(size, (int, np.integer)):
            return (int(size),)
        return tuple(int(s) for s in size)

    def _rank_suffix(self) -> str:
        marks = ""
        if self.has_batch_rank:
            marks += "+B"
        if self.has_time_rank:
            marks += "+T(major)" if self.time_major else "+T"
        return marks

    # -- equality/hash ----------------------------------------------------
    def _key(self):
        return (type(self).__name__, self.shape, str(self.dtype),
                self.has_batch_rank, self.has_time_rank, self.time_major)

    def __eq__(self, other):
        return isinstance(other, Space) and self._key() == other._key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash(self._key())
