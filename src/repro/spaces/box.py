"""Box spaces: n-dimensional arrays of a primitive dtype with bounds."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.spaces.space import Space
from repro.utils.errors import RLGraphSpaceError

_DEFAULT_RNG = np.random.default_rng(0)


class BoxSpace(Space):
    """An n-dimensional box of numbers with optional element-wise bounds.

    ``low``/``high`` may be scalars (applied element-wise) or arrays that
    define the shape. If ``shape`` is given explicitly, bounds must be
    scalars or match that shape.
    """

    _np_dtype: np.dtype = np.dtype(np.float32)

    def __init__(self, low=None, high=None, shape=None, add_batch_rank=False,
                 add_time_rank=False, time_major=False):
        super().__init__(add_batch_rank, add_time_rank, time_major)
        low_arr = None if low is None else np.asarray(low)
        high_arr = None if high is None else np.asarray(high)

        if shape is not None:
            self._shape = tuple(int(s) for s in shape)
        elif low_arr is not None and low_arr.ndim > 0:
            self._shape = low_arr.shape
        elif high_arr is not None and high_arr.ndim > 0:
            self._shape = high_arr.shape
        else:
            self._shape = ()

        for name, arr in (("low", low_arr), ("high", high_arr)):
            if arr is not None and arr.ndim > 0 and arr.shape != self._shape:
                raise RLGraphSpaceError(
                    f"{name} shape {arr.shape} does not match space shape {self._shape}",
                    space=self,
                )
        self.low = None if low_arr is None else low_arr.astype(self._np_dtype)
        self.high = None if high_arr is None else high_arr.astype(self._np_dtype)

    @property
    def shape(self):
        return self._shape

    @property
    def dtype(self):
        return self._np_dtype

    @property
    def bounded_below(self) -> bool:
        return self.low is not None

    @property
    def bounded_above(self) -> bool:
        return self.high is not None

    def copy(self):
        clone = type(self).__new__(type(self))
        Space.__init__(clone, self.has_batch_rank, self.has_time_rank, self.time_major)
        clone._shape = self._shape
        clone.low = None if self.low is None else self.low.copy()
        clone.high = None if self.high is None else self.high.copy()
        return clone

    def zeros(self, size=None):
        prefix = self._size_to_prefix(size)
        return np.zeros(prefix + self._shape, dtype=self._np_dtype)

    def contains(self, value) -> bool:
        arr = np.asarray(value)
        if arr.shape != self._shape:
            return False
        if self.low is not None and np.any(arr < self.low):
            return False
        if self.high is not None and np.any(arr > self.high):
            return False
        return True

    def _low_high_defaults(self):
        low = self.low if self.low is not None else np.asarray(-1.0, self._np_dtype)
        high = self.high if self.high is not None else np.asarray(1.0, self._np_dtype)
        return low, high

    def __repr__(self):
        return (f"{type(self).__name__}(shape={self._shape}{self._rank_suffix()})")

    def _key(self):
        low_key = None if self.low is None else self.low.tobytes()
        high_key = None if self.high is None else self.high.tobytes()
        return super()._key() + (low_key, high_key)


class FloatBox(BoxSpace):
    """Float32 box. Unbounded dims sample from N(0, 1)."""

    _np_dtype = np.dtype(np.float32)

    def sample(self, size=None, rng: Optional[np.random.Generator] = None):
        rng = rng if rng is not None else _DEFAULT_RNG
        prefix = self._size_to_prefix(size)
        full_shape = prefix + self._shape
        if self.low is not None and self.high is not None:
            value = rng.uniform(self.low, self.high, size=full_shape)
        else:
            value = rng.standard_normal(full_shape)
            if self.low is not None:
                value = np.maximum(value, self.low)
            if self.high is not None:
                value = np.minimum(value, self.high)
        return value.astype(self._np_dtype)


class IntBox(BoxSpace):
    """Integer box; with no args behaves like a discrete space over [0, high).

    ``IntBox(4)`` is a single categorical with 4 values. ``num_categories``
    reports ``high - low`` when bounds are scalar-like, which action
    adapters use to size their output layers.
    """

    _np_dtype = np.dtype(np.int64)

    def __init__(self, low=None, high=None, shape=None, add_batch_rank=False,
                 add_time_rank=False, time_major=False):
        # Single-arg form: IntBox(n) means {0, ..., n-1}.
        if high is None and low is not None:
            low, high = 0, low
        if low is None and high is None:
            low, high = 0, 2  # default binary
        super().__init__(low=low, high=high, shape=shape,
                         add_batch_rank=add_batch_rank,
                         add_time_rank=add_time_rank, time_major=time_major)

    @property
    def num_categories(self) -> int:
        """Number of discrete categories (``high - low``) for scalar bounds."""
        if self.low is None or self.high is None:
            raise RLGraphSpaceError("IntBox without bounds has no categories", space=self)
        low = int(np.max(self.low))
        high = int(np.min(self.high))
        return high - low

    @property
    def global_bounds(self):
        return int(np.min(self.low)), int(np.max(self.high))

    def sample(self, size=None, rng: Optional[np.random.Generator] = None):
        rng = rng if rng is not None else _DEFAULT_RNG
        prefix = self._size_to_prefix(size)
        full_shape = prefix + self._shape
        low = self.low if self.low is not None else 0
        high = self.high if self.high is not None else 2
        value = rng.integers(low, high, size=full_shape, dtype=self._np_dtype)
        return value

    def contains(self, value) -> bool:
        arr = np.asarray(value)
        if not np.issubdtype(arr.dtype, np.integer):
            if not np.all(np.equal(np.mod(arr, 1), 0)):
                return False
            arr = arr.astype(self._np_dtype)
        if arr.shape != self._shape:
            return False
        if self.low is not None and np.any(arr < self.low):
            return False
        # IntBox high bound is exclusive (category count semantics).
        if self.high is not None and np.any(arr >= self.high):
            return False
        return True


class BoolBox(BoxSpace):
    """Boolean box (used e.g. for terminal flags)."""

    _np_dtype = np.dtype(np.bool_)

    def __init__(self, shape=None, add_batch_rank=False, add_time_rank=False,
                 time_major=False):
        super().__init__(low=None, high=None, shape=shape,
                         add_batch_rank=add_batch_rank,
                         add_time_rank=add_time_rank, time_major=time_major)

    def sample(self, size=None, rng: Optional[np.random.Generator] = None):
        rng = rng if rng is not None else _DEFAULT_RNG
        prefix = self._size_to_prefix(size)
        return rng.random(prefix + self._shape) < 0.5

    def contains(self, value) -> bool:
        arr = np.asarray(value)
        return arr.shape == self._shape and arr.dtype == np.bool_
