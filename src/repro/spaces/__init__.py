"""Space objects: backend-independent type/shape descriptions of data.

Spaces are the contract between components. A component is "input-complete"
once all its API-method input spaces are known, at which point its variables
and operations can be created (paper §3.3).
"""

from repro.spaces.space import Space
from repro.spaces.box import BoxSpace, FloatBox, IntBox, BoolBox
from repro.spaces.containers import ContainerSpace, Dict, Tuple
from repro.spaces.space_utils import (
    space_from_spec,
    space_from_value,
    flatten_space,
    unflatten_from_space,
    flatten_value,
    unflatten_value,
    sanity_check_space,
    FLAT_SEP,
)

__all__ = [
    "Space",
    "BoxSpace",
    "FloatBox",
    "IntBox",
    "BoolBox",
    "ContainerSpace",
    "Dict",
    "Tuple",
    "space_from_spec",
    "space_from_value",
    "flatten_space",
    "unflatten_from_space",
    "flatten_value",
    "unflatten_value",
    "sanity_check_space",
    "FLAT_SEP",
]
