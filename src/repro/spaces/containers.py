"""Container spaces: Dict and Tuple of sub-spaces.

Container spaces are the reason RLgraph's auto split/merge utilities exist:
records flowing through the component graph routinely bundle states,
actions, rewards and terminals into one Dict space, and components like
the ContainerSplitter take them apart again (paper Fig. 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.spaces.space import Space
from repro.utils.errors import RLGraphSpaceError


class ContainerSpace(Space):
    """Base for spaces composed of sub-spaces."""

    def sub_spaces(self):
        """Yield (key, space) pairs. Keys are strs for Dict, ints for Tuple."""
        raise NotImplementedError

    @property
    def dtype(self):
        raise RLGraphSpaceError("Container spaces have no single dtype", space=self)

    @property
    def shape(self):
        raise RLGraphSpaceError("Container spaces have no single shape", space=self)

    @property
    def flat_dim(self) -> int:
        return sum(space.flat_dim for _, space in self.sub_spaces())


class Dict(ContainerSpace):
    """An ordered string-keyed mapping of sub-spaces.

    Keys are sorted for determinism, matching RLgraph's sorted flattening
    order. Sub-space specs may be Space objects or nested dicts/tuples.
    """

    def __init__(self, spec=None, add_batch_rank=False, add_time_rank=False,
                 time_major=False, **kwargs):
        super().__init__(add_batch_rank, add_time_rank, time_major)
        from repro.spaces.space_utils import space_from_spec

        items = {}
        if spec is not None:
            if not isinstance(spec, dict):
                raise RLGraphSpaceError(f"Dict space spec must be a dict, got {spec!r}")
            items.update(spec)
        items.update(kwargs)
        if not items:
            raise RLGraphSpaceError("Dict space needs at least one sub-space")
        self._spaces = OrderedDict()
        for key in sorted(items):
            if not isinstance(key, str):
                raise RLGraphSpaceError(f"Dict space keys must be str, got {key!r}")
            sub = space_from_spec(items[key])
            # Propagate this container's extra ranks down.
            sub = sub.with_extra_ranks(add_batch_rank, add_time_rank, time_major)
            self._spaces[key] = sub

    def sub_spaces(self):
        return list(self._spaces.items())

    def keys(self):
        return list(self._spaces.keys())

    def __getitem__(self, key: str) -> Space:
        return self._spaces[key]

    def __contains__(self, key) -> bool:
        return key in self._spaces

    def __len__(self):
        return len(self._spaces)

    def copy(self):
        clone = Dict.__new__(Dict)
        Space.__init__(clone, self.has_batch_rank, self.has_time_rank, self.time_major)
        clone._spaces = OrderedDict(
            (k, v.copy()) for k, v in self._spaces.items()
        )
        return clone

    def with_extra_ranks(self, add_batch_rank=True, add_time_rank=False,
                         time_major=False):
        clone = self.copy()
        Space.__init__(clone, add_batch_rank, add_time_rank, time_major)
        clone._spaces = OrderedDict(
            (k, v.with_extra_ranks(add_batch_rank, add_time_rank, time_major))
            for k, v in self._spaces.items()
        )
        return clone

    def sample(self, size=None, rng: Optional[np.random.Generator] = None):
        return {k: s.sample(size=size, rng=rng) for k, s in self._spaces.items()}

    def zeros(self, size=None):
        return {k: s.zeros(size=size) for k, s in self._spaces.items()}

    def contains(self, value) -> bool:
        if not isinstance(value, dict) or set(value) != set(self._spaces):
            return False
        return all(self._spaces[k].contains(v) for k, v in value.items())

    def _key(self):
        return ("Dict", tuple((k, s._key()) for k, s in self._spaces.items()),
                self.has_batch_rank, self.has_time_rank, self.time_major)

    def __repr__(self):
        inner = ", ".join(f"{k}: {s!r}" for k, s in self._spaces.items())
        return f"Dict({{{inner}}}{self._rank_suffix()})"


class Tuple(ContainerSpace):
    """An ordered sequence of sub-spaces."""

    def __init__(self, *components, add_batch_rank=False, add_time_rank=False,
                 time_major=False):
        super().__init__(add_batch_rank, add_time_rank, time_major)
        from repro.spaces.space_utils import space_from_spec

        if len(components) == 1 and isinstance(components[0], (list, tuple)):
            components = tuple(components[0])
        if not components:
            raise RLGraphSpaceError("Tuple space needs at least one sub-space")
        self._spaces = tuple(
            space_from_spec(c).with_extra_ranks(add_batch_rank, add_time_rank,
                                                time_major)
            for c in components
        )

    def sub_spaces(self):
        return list(enumerate(self._spaces))

    def __getitem__(self, index: int) -> Space:
        return self._spaces[index]

    def __len__(self):
        return len(self._spaces)

    def copy(self):
        clone = Tuple.__new__(Tuple)
        Space.__init__(clone, self.has_batch_rank, self.has_time_rank, self.time_major)
        clone._spaces = tuple(s.copy() for s in self._spaces)
        return clone

    def with_extra_ranks(self, add_batch_rank=True, add_time_rank=False,
                         time_major=False):
        clone = self.copy()
        Space.__init__(clone, add_batch_rank, add_time_rank, time_major)
        clone._spaces = tuple(
            s.with_extra_ranks(add_batch_rank, add_time_rank, time_major)
            for s in self._spaces
        )
        return clone

    def sample(self, size=None, rng: Optional[np.random.Generator] = None):
        return tuple(s.sample(size=size, rng=rng) for s in self._spaces)

    def zeros(self, size=None):
        return tuple(s.zeros(size=size) for s in self._spaces)

    def contains(self, value) -> bool:
        if not isinstance(value, (tuple, list)) or len(value) != len(self._spaces):
            return False
        return all(s.contains(v) for s, v in zip(self._spaces, value))

    def _key(self):
        return ("Tuple", tuple(s._key() for s in self._spaces),
                self.has_batch_rank, self.has_time_rank, self.time_major)

    def __repr__(self):
        inner = ", ".join(repr(s) for s in self._spaces)
        return f"Tuple({inner}{self._rank_suffix()})"
