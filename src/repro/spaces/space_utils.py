"""Space spec resolution, inference from values, and flatten/unflatten.

Flattening maps a (possibly nested) container space or value to an ordered
``{flat_key: leaf}`` dict. Flat keys use ``/`` as separator with ``Dict``
keys verbatim and ``Tuple`` indices rendered as ``[i]``, mirroring
RLgraph's auto-flatten utilities that "drastically reduce development
times" (paper §3.3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict as TypingDict

import numpy as np

from repro.spaces.box import BoolBox, BoxSpace, FloatBox, IntBox
from repro.spaces.containers import ContainerSpace, Dict, Tuple
from repro.spaces.space import Space
from repro.utils.errors import RLGraphSpaceError

FLAT_SEP = "/"


# ---------------------------------------------------------------------------
# Spec resolution
# ---------------------------------------------------------------------------
def space_from_spec(spec: Any, add_batch_rank: bool = False,
                    add_time_rank: bool = False) -> Space:
    """Build a Space from a spec.

    Accepted forms:

    * a Space -> returned as-is (ranks optionally added);
    * an int ``n`` -> ``IntBox(n)`` (discrete with n categories);
    * a ``"float"``/``"int"``/``"bool"`` string;
    * a tuple of ints -> ``FloatBox(shape=...)``;
    * a dict with a ``"type"`` key -> explicit box construction;
    * a plain dict -> ``Dict`` container;
    * a list -> ``Tuple`` container.
    """
    space = _space_from_spec_inner(spec)
    if add_batch_rank or add_time_rank:
        space = space.with_extra_ranks(
            add_batch_rank or space.has_batch_rank,
            add_time_rank or space.has_time_rank,
            space.time_major,
        )
    return space


def _space_from_spec_inner(spec: Any) -> Space:
    if isinstance(spec, Space):
        return spec
    if isinstance(spec, (int, np.integer)):
        return IntBox(int(spec))
    if isinstance(spec, str):
        name = spec.lower()
        if name in ("float", "float32"):
            return FloatBox()
        if name in ("int", "int64", "discrete"):
            return IntBox()
        if name == "bool":
            return BoolBox()
        raise RLGraphSpaceError(f"Unknown space type string {spec!r}")
    if isinstance(spec, tuple) and all(isinstance(s, (int, np.integer)) for s in spec):
        return FloatBox(shape=tuple(int(s) for s in spec))
    if isinstance(spec, dict):
        if "type" in spec:
            spec = dict(spec)
            type_name = spec.pop("type").lower()
            classes = {"float": FloatBox, "floatbox": FloatBox,
                       "int": IntBox, "intbox": IntBox,
                       "bool": BoolBox, "boolbox": BoolBox,
                       "dict": Dict, "tuple": Tuple}
            if type_name not in classes:
                raise RLGraphSpaceError(f"Unknown space type {type_name!r}")
            if type_name in ("dict",):
                return Dict(spec.pop("spec", None) or spec)
            if type_name in ("tuple",):
                return Tuple(*spec.pop("components", ()))
            if "shape" in spec and isinstance(spec["shape"], list):
                spec["shape"] = tuple(spec["shape"])
            return classes[type_name](**spec)
        return Dict(spec)
    if isinstance(spec, list):
        return Tuple(*spec)
    raise RLGraphSpaceError(f"Cannot build Space from spec {spec!r}")


def space_from_value(value: Any, add_batch_rank: bool = False) -> Space:
    """Infer a Space from an example value (used by define-by-run tracing)."""
    if isinstance(value, dict):
        return Dict({k: space_from_value(v) for k, v in value.items()},
                    add_batch_rank=add_batch_rank)
    if isinstance(value, (tuple, list)):
        return Tuple(*[space_from_value(v) for v in value],
                     add_batch_rank=add_batch_rank)
    arr = np.asarray(value)
    shape = arr.shape[1:] if add_batch_rank else arr.shape
    if arr.dtype == np.bool_:
        return BoolBox(shape=shape, add_batch_rank=add_batch_rank)
    if np.issubdtype(arr.dtype, np.integer):
        high = int(arr.max()) + 1 if arr.size else 2
        return IntBox(low=0, high=max(high, 1), shape=shape,
                      add_batch_rank=add_batch_rank)
    return FloatBox(shape=shape, add_batch_rank=add_batch_rank)


# ---------------------------------------------------------------------------
# Flattening
# ---------------------------------------------------------------------------
def flatten_space(space: Space, scope: str = "") -> "OrderedDict[str, Space]":
    """Flatten a (container) space into an ordered ``{flat_key: leaf_space}``.

    A non-container space flattens to ``{"": space}``.
    """
    out: "OrderedDict[str, Space]" = OrderedDict()
    _flatten_space_into(space, scope, out)
    return out


def _flatten_space_into(space, scope, out):
    if isinstance(space, Dict):
        for key, sub in space.sub_spaces():
            _flatten_space_into(sub, _join(scope, key), out)
    elif isinstance(space, Tuple):
        for idx, sub in space.sub_spaces():
            _flatten_space_into(sub, _join(scope, f"[{idx}]"), out)
    else:
        out[scope] = space


def flatten_value(value: Any, space: Space = None, scope: str = "") -> "OrderedDict[str, Any]":
    """Flatten a nested value the same way its space flattens.

    If ``space`` is given, structure is driven by the space (Dict key order
    follows the space's sorted keys); otherwise the value's own structure
    is used.
    """
    out: "OrderedDict[str, Any]" = OrderedDict()
    _flatten_value_into(value, space, scope, out)
    return out


def _flatten_value_into(value, space, scope, out):
    if space is not None and isinstance(space, Dict):
        if not isinstance(value, dict):
            raise RLGraphSpaceError(f"Expected dict for Dict space, got {type(value)}")
        for key, sub in space.sub_spaces():
            _flatten_value_into(value[key], sub, _join(scope, key), out)
    elif space is not None and isinstance(space, Tuple):
        for idx, sub in space.sub_spaces():
            _flatten_value_into(value[idx], sub, _join(scope, f"[{idx}]"), out)
    elif space is None and isinstance(value, dict):
        for key in sorted(value):
            _flatten_value_into(value[key], None, _join(scope, key), out)
    elif space is None and isinstance(value, tuple):
        for idx, sub in enumerate(value):
            _flatten_value_into(sub, None, _join(scope, f"[{idx}]"), out)
    else:
        out[scope] = value


def unflatten_value(flat: TypingDict[str, Any]) -> Any:
    """Inverse of :func:`flatten_value` (structure recovered from keys)."""
    if list(flat.keys()) == [""]:
        return flat[""]
    # Group by first path segment.
    groups: "OrderedDict[str, OrderedDict]" = OrderedDict()
    for key, value in flat.items():
        head, _, rest = key.partition(FLAT_SEP)
        groups.setdefault(head, OrderedDict())[rest] = value
    if all(_is_index_key(head) for head in groups):
        items = sorted(groups.items(), key=lambda kv: int(kv[0][1:-1]))
        return tuple(unflatten_value(sub) for _, sub in items)
    return {head: unflatten_value(sub) for head, sub in groups.items()}


def unflatten_from_space(flat: TypingDict[str, Any], space: Space) -> Any:
    """Rebuild a nested value for ``space`` from a flat dict."""
    if isinstance(space, Dict):
        out = {}
        for key, sub in space.sub_spaces():
            sub_flat = _strip_prefix(flat, key)
            out[key] = unflatten_from_space(sub_flat, sub)
        return out
    if isinstance(space, Tuple):
        parts = []
        for idx, sub in space.sub_spaces():
            sub_flat = _strip_prefix(flat, f"[{idx}]")
            parts.append(unflatten_from_space(sub_flat, sub))
        return tuple(parts)
    if set(flat.keys()) != {""}:
        raise RLGraphSpaceError(f"Flat dict {list(flat)} does not match leaf space")
    return flat[""]


def map_flattened(fn: Callable[[str, Any], Any], value: Any, space: Space = None) -> Any:
    """Apply ``fn(flat_key, leaf)`` over a nested value, keeping structure."""
    flat = flatten_value(value, space)
    mapped = OrderedDict((k, fn(k, v)) for k, v in flat.items())
    return unflatten_value(mapped)


# ---------------------------------------------------------------------------
# Sanity checking (used by components to validate their input spaces)
# ---------------------------------------------------------------------------
def sanity_check_space(space: Space, allowed_types=None, must_have_batch_rank=None,
                       must_have_time_rank=None, rank=None,
                       must_have_categories=None, num_categories=None):
    """Validate structural expectations about ``space``; raise on mismatch.

    This is the check components run when they become input-complete, so
    errors carry enough context to locate the offending connection.
    """
    if allowed_types is not None and not isinstance(space, tuple(allowed_types)):
        raise RLGraphSpaceError(
            f"Space {space!r} is not one of allowed types "
            f"{[t.__name__ for t in allowed_types]}", space=space)
    if must_have_batch_rank is not None and space.has_batch_rank != must_have_batch_rank:
        raise RLGraphSpaceError(
            f"Space {space!r} batch-rank expectation failed "
            f"(expected {must_have_batch_rank})", space=space)
    if must_have_time_rank is not None and space.has_time_rank != must_have_time_rank:
        raise RLGraphSpaceError(
            f"Space {space!r} time-rank expectation failed "
            f"(expected {must_have_time_rank})", space=space)
    if rank is not None:
        ranks = (rank,) if isinstance(rank, int) else tuple(rank)
        if space.rank not in ranks:
            raise RLGraphSpaceError(
                f"Space {space!r} has rank {space.rank}, expected {ranks}",
                space=space)
    if must_have_categories:
        if not isinstance(space, IntBox):
            raise RLGraphSpaceError(
                f"Space {space!r} must be an IntBox with categories", space=space)
        space.num_categories  # raises if unbounded
    if num_categories is not None:
        if not isinstance(space, IntBox) or space.num_categories != num_categories:
            raise RLGraphSpaceError(
                f"Space {space!r} must have exactly {num_categories} categories",
                space=space)
    return True


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
def _join(scope: str, key: str) -> str:
    return f"{scope}{FLAT_SEP}{key}" if scope else key


def _is_index_key(key: str) -> bool:
    return key.startswith("[") and key.endswith("]") and key[1:-1].isdigit()


def _strip_prefix(flat: TypingDict[str, Any], prefix: str) -> TypingDict[str, Any]:
    out = OrderedDict()
    for key, value in flat.items():
        if key == prefix:
            out[""] = value
        elif key.startswith(prefix + FLAT_SEP):
            out[key[len(prefix) + 1:]] = value
    if not out:
        raise RLGraphSpaceError(f"No flat keys under prefix {prefix!r} in {list(flat)}")
    return out
