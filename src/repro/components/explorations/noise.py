"""Additive Gaussian action noise for continuous control."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.components.explorations.epsilon_greedy import schedule_ops
from repro.utils.schedules import from_spec as schedule_from_spec


class GaussianNoise(Component):
    """Adds N(0, sigma(t)) noise to continuous actions, with clipping."""

    def __init__(self, sigma_spec=0.1, low: float = -1.0, high: float = 1.0,
                 scope: str = "gaussian-noise", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.schedule = schedule_from_spec(sigma_spec)
        self.low = float(low)
        self.high = float(high)

    @rlgraph_api
    def get_action(self, actions, time_step):
        return self._graph_fn_noise(actions, time_step)

    @graph_fn(requires_variables=False)
    def _graph_fn_noise(self, actions, time_step):
        sigma = schedule_ops(self.schedule, time_step)
        noise = F.mul(F.random_normal(like=actions), sigma)
        return F.clip(F.add(actions, noise), self.low, self.high)
