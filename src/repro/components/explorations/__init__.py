"""Exploration components."""

from repro.components.explorations.epsilon_greedy import EpsilonGreedy
from repro.components.explorations.noise import GaussianNoise

__all__ = ["EpsilonGreedy", "GaussianNoise"]
