"""Epsilon-greedy exploration with in-graph decay schedules.

The epsilon schedule is evaluated from the global time-step *inside* the
graph, so a single session call covers action selection + exploration —
one of the call-batching choices behind the paper's throughput numbers.
"""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError
from repro.utils.schedules import Constant, ExponentialDecay, LinearDecay, Schedule
from repro.utils.schedules import from_spec as schedule_from_spec


def schedule_ops(schedule: Schedule, step):
    """Evaluate a decay schedule on a (tensor) time-step with F ops."""
    step_f = F.cast(step, np.float32)
    if isinstance(schedule, Constant):
        return F.add(F.mul(step_f, 0.0), schedule.constant_value)
    if isinstance(schedule, LinearDecay):
        frac = F.clip(F.div(F.sub(step_f, float(schedule.start_timestep)),
                            float(schedule.num_timesteps)), 0.0, 1.0)
        return F.add(schedule.from_,
                     F.mul(frac, schedule.to_ - schedule.from_))
    if isinstance(schedule, ExponentialDecay):
        raw = F.mul(schedule.from_,
                    F.exp(F.mul(F.div(step_f, float(schedule.half_life)),
                                float(np.log(schedule.decay_rate)))))
        return F.maximum(raw, schedule.to_)
    raise RLGraphError(f"Schedule {schedule!r} has no in-graph form")


class EpsilonGreedy(Component):
    """Picks uniform random actions with (decaying) probability epsilon."""

    def __init__(self, num_actions: int, epsilon_spec=None,
                 scope: str = "epsilon-greedy", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.num_actions = int(num_actions)
        self.schedule = schedule_from_spec(
            epsilon_spec if epsilon_spec is not None
            else {"type": "linear", "from_": 1.0, "to_": 0.05,
                  "num_timesteps": 10000})

    @rlgraph_api
    def get_action(self, greedy_actions, time_step):
        return self._graph_fn_explore(greedy_actions, time_step)

    @graph_fn(requires_variables=False)
    def _graph_fn_explore(self, greedy_actions, time_step):
        eps = schedule_ops(self.schedule, time_step)
        u = F.random_uniform(like=F.cast(greedy_actions, np.float32))
        random_actions = F.cast(
            F.mul(F.random_uniform(like=F.cast(greedy_actions, np.float32)),
                  float(self.num_actions)), np.int64)
        explore = F.less(u, eps)
        return F.where(explore, random_actions,
                       F.cast(greedy_actions, np.int64))

    def epsilon_at(self, step: int) -> float:
        """Host-side schedule value (for logging)."""
        return self.schedule.value(step)
