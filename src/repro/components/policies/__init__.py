"""Policies: distributions, action adapters, and the Policy component."""

from repro.components.policies.distributions import (
    Bernoulli,
    Categorical,
    Distribution,
    Gaussian,
    SquashedGaussian,
    distribution_for_space,
)
from repro.components.policies.action_adapter import ActionAdapter
from repro.components.policies.policy import Policy

__all__ = [
    "Distribution",
    "Categorical",
    "Gaussian",
    "SquashedGaussian",
    "Bernoulli",
    "distribution_for_space",
    "ActionAdapter",
    "Policy",
]
