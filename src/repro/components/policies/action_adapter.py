"""ActionAdapter: maps network features to action-space parameters.

For a discrete space the outputs double as Q-values (DQN) or logits
(policy gradients); for continuous spaces they parameterize a Gaussian.
"""

from __future__ import annotations

from repro.backend import functional as F
from repro.components.policies.distributions import distribution_for_space
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces import Space
from repro.spaces.space_utils import space_from_spec


class ActionAdapter(Component):
    """A final linear layer sized by the action space."""

    def __init__(self, action_space, distribution=None,
                 scope: str = "action-adapter", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.action_space: Space = space_from_spec(action_space)
        self.distribution = (distribution if distribution is not None
                             else distribution_for_space(self.action_space))
        self.units = self.distribution.param_units(self.action_space)

    def create_variables(self, input_spaces):
        space = input_spaces["features"]
        in_dim = int(space.shape[-1])
        self.kernel = self.get_variable("kernel", shape=(in_dim, self.units),
                                        initializer="glorot")
        self.bias = self.get_variable("bias", shape=(self.units,),
                                      initializer="zeros")

    @rlgraph_api
    def get_parameters(self, features):
        return self._graph_fn_parameters(features)

    @graph_fn
    def _graph_fn_parameters(self, features):
        return F.add(F.matmul(features, self.kernel.read()), self.bias.read())
