"""Action distributions, written against the functional API so sampling,
log-probs and entropies work in both backends."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.spaces import BoolBox, FloatBox, IntBox, Space
from repro.utils.errors import RLGraphError


class Distribution:
    """Stateless distribution math over parameter tensors."""

    def param_units(self, space: Space) -> int:
        """Number of adapter output units needed for ``space``."""
        raise NotImplementedError

    def sample(self, params, deterministic=False):
        raise NotImplementedError

    def log_prob(self, params, actions):
        raise NotImplementedError

    def entropy(self, params):
        raise NotImplementedError


class Categorical(Distribution):
    """Discrete distribution parameterized by logits (B, A)."""

    def __init__(self, num_categories: int):
        self.num_categories = int(num_categories)

    def param_units(self, space: Space) -> int:
        return self.num_categories

    def sample(self, logits, deterministic=False):
        if deterministic:
            return F.argmax(logits, axis=-1)
        # Gumbel-max trick keeps sampling inside the graph.
        u = F.random_uniform(like=logits)
        gumbel = F.neg(F.log(F.neg(F.log(F.maximum(u, 1e-10)))))
        return F.argmax(F.add(logits, gumbel), axis=-1)

    def log_prob(self, logits, actions):
        log_p = F.log_softmax(logits, axis=-1)
        onehot = F.one_hot(actions, self.num_categories)
        return F.reduce_sum(F.mul(log_p, onehot), axis=-1)

    def entropy(self, logits):
        log_p = F.log_softmax(logits, axis=-1)
        p = F.softmax(logits, axis=-1)
        return F.neg(F.reduce_sum(F.mul(p, log_p), axis=-1))


class Gaussian(Distribution):
    """Diagonal Gaussian; params (B, 2D) = [mean, log_std].

    ``log_std`` is clamped to ``[LOG_STD_MIN, LOG_STD_MAX]`` = (-10, 2)
    before every use, so ``exp(log_std)`` stays inside float32 range
    (std in [4.5e-5, 7.39]) even when the adapter emits extreme values
    early in training. Without the clamp a fused/native ``exp`` kernel
    can overflow to inf and poison the whole update. The bounds are
    part of the distribution's contract: external log-prob references
    must apply the same clamp to match.
    """

    LOG_STD_MIN = -10.0
    LOG_STD_MAX = 2.0

    def __init__(self, dim: int):
        if int(dim) <= 0:
            raise RLGraphError(f"Gaussian dim must be positive, got {dim}")
        self.dim = int(dim)

    def param_units(self, space: Space) -> int:
        return 2 * self.dim

    def _split(self, params):
        mean = F.getitem(params, (slice(None), slice(0, self.dim)))
        log_std = F.getitem(params, (slice(None), slice(self.dim, 2 * self.dim)))
        log_std = F.clip(log_std, self.LOG_STD_MIN, self.LOG_STD_MAX)
        return mean, log_std

    def sample(self, params, deterministic=False):
        mean, log_std = self._split(params)
        if deterministic:
            return mean
        noise = F.random_normal(like=mean)
        return F.add(mean, F.mul(F.exp(log_std), noise))

    def log_prob(self, params, actions):
        mean, log_std = self._split(params)
        var = F.exp(F.mul(2.0, log_std))
        per_dim = F.add(
            F.div(F.square(F.sub(actions, mean)), F.maximum(var, 1e-10)),
            F.add(F.mul(2.0, log_std), float(np.log(2 * np.pi))))
        return F.mul(-0.5, F.reduce_sum(per_dim, axis=-1))

    def entropy(self, params):
        _, log_std = self._split(params)
        per_dim = F.add(log_std, 0.5 * float(np.log(2 * np.pi * np.e)))
        return F.reduce_sum(per_dim, axis=-1)


class SquashedGaussian(Gaussian):
    """Tanh-squashed diagonal Gaussian over a bounded ``FloatBox``.

    Actions are ``a = mid + scale * tanh(u)`` with ``u ~ N(mean, std)``,
    where ``scale = (high - low) / 2`` and ``mid = (high + low) / 2``, so
    every sample lands strictly inside the box. The log-prob applies the
    change-of-variables correction per dimension using the numerically
    stable identity

        log(1 - tanh²(u)) = 2 * (log 2 - u - softplus(-2u))

    which stays finite for large ``|u|`` where the naive form underflows
    to ``log(0)``. ``log_std`` inherits the clamp documented on
    :class:`Gaussian`.
    """

    _LOG2 = float(np.log(2.0))
    _HALF_LOG_2PI = 0.5 * float(np.log(2.0 * np.pi))

    def __init__(self, dim: int, low=-1.0, high=1.0):
        super().__init__(dim)
        low = np.broadcast_to(
            np.asarray(low, np.float32), (self.dim,)).copy()
        high = np.broadcast_to(
            np.asarray(high, np.float32), (self.dim,)).copy()
        if not (np.all(np.isfinite(low)) and np.all(np.isfinite(high))):
            raise RLGraphError(
                "SquashedGaussian needs finite action bounds, got "
                f"low={low!r} high={high!r}")
        if not np.all(high > low):
            raise RLGraphError(
                f"SquashedGaussian needs high > low, got low={low!r} "
                f"high={high!r}")
        self.low = low
        self.high = high
        self.scale = ((high - low) / 2.0).astype(np.float32)
        self.mid = ((high + low) / 2.0).astype(np.float32)
        # Constant sum over dims of log|scale|, folded host-side.
        self._log_scale_sum = float(np.sum(np.log(self.scale)))

    def _squash(self, u):
        return F.add(F.mul(F.tanh(u), self.scale), self.mid)

    def _squash_correction(self, u):
        """Per-dim log|da/du| = log(scale) + log(1 - tanh²(u)), summed."""
        per_dim = F.mul(2.0, F.sub(self._LOG2,
                                   F.add(u, F.softplus(F.mul(-2.0, u)))))
        return F.add(F.reduce_sum(per_dim, axis=-1), self._log_scale_sum)

    def _base_log_prob(self, u, mean, log_std):
        z = F.div(F.sub(u, mean), F.exp(log_std))
        per_dim = F.add(F.add(F.mul(0.5, F.square(z)), log_std),
                        self._HALF_LOG_2PI)
        return F.neg(F.reduce_sum(per_dim, axis=-1))

    def sample(self, params, deterministic=False):
        mean, log_std = self._split(params)
        if deterministic:
            return self._squash(mean)
        noise = F.random_normal(like=mean)
        u = F.add(mean, F.mul(F.exp(log_std), noise))
        return self._squash(u)

    def sample_with_log_prob(self, params, noise):
        """Reparameterized sample plus its log-prob from external noise.

        ``noise`` is standard-normal (B, D) — supplied by the caller so
        updates are deterministic across backends and optimize levels.
        Returns ``(actions, log_prob)`` with gradients flowing through
        both via the reparameterization ``u = mean + std * noise``.
        """
        mean, log_std = self._split(params)
        u = F.add(mean, F.mul(F.exp(log_std), noise))
        # (u - mean)/std == noise exactly, so feed noise straight into
        # the base log-density instead of re-dividing (better numerics,
        # same gradient through log_std).
        per_dim = F.add(F.add(F.mul(0.5, F.square(noise)), log_std),
                        self._HALF_LOG_2PI)
        base = F.neg(F.reduce_sum(per_dim, axis=-1))
        log_prob = F.sub(base, self._squash_correction(u))
        return self._squash(u), log_prob

    def log_prob(self, params, actions):
        mean, log_std = self._split(params)
        z = F.div(F.sub(actions, self.mid), self.scale)
        u = F.atanh(F.clip(z, -1.0 + 1e-6, 1.0 - 1e-6))
        base = self._base_log_prob(u, mean, log_std)
        return F.sub(base, self._squash_correction(u))

    def entropy(self, params):
        """Upper bound: base-Gaussian entropy plus the constant
        ``sum(log scale)``. The tanh squash only removes entropy
        (E[log(1-tanh²u)] ≤ 0), so the true value is below this; SAC
        estimates the exact entropy as ``-log_prob`` of fresh samples
        instead of calling this.
        """
        base = super().entropy(params)
        return F.add(base, self._log_scale_sum)


class Bernoulli(Distribution):
    """Element-wise Bernoulli over logits (B, D)."""

    def __init__(self, dim: int):
        self.dim = int(dim)

    def param_units(self, space: Space) -> int:
        return self.dim

    def sample(self, logits, deterministic=False):
        p = F.sigmoid(logits)
        if deterministic:
            return F.greater_equal(p, 0.5)
        u = F.random_uniform(like=p)
        return F.less(u, p)

    def log_prob(self, logits, actions):
        a = F.reshape(F.cast(actions, np.float32), (-1, self.dim))
        log_p = F.neg(F.softplus(F.neg(logits)))       # log sigmoid(x)
        log_1mp = F.neg(F.softplus(logits))            # log (1 - sigmoid(x))
        per_dim = F.add(F.mul(a, log_p), F.mul(F.sub(1.0, a), log_1mp))
        return F.reduce_sum(per_dim, axis=-1)

    def entropy(self, logits):
        p = F.clip(F.sigmoid(logits), 1e-6, 1.0 - 1e-6)
        per_dim = F.neg(F.add(F.mul(p, F.log(p)),
                              F.mul(F.sub(1.0, p), F.log(F.sub(1.0, p)))))
        return F.reduce_sum(per_dim, axis=-1)


def distribution_for_space(space: Space) -> Distribution:
    """The canonical distribution for an action space."""
    if isinstance(space, IntBox):
        if space.shape != ():
            raise RLGraphError(
                f"Only scalar IntBox action spaces supported, got {space!r}")
        return Categorical(space.num_categories)
    if isinstance(space, BoolBox):
        dim = int(np.prod(space.shape)) if space.shape else 1
        return Bernoulli(dim)
    if isinstance(space, FloatBox):
        dim = int(np.prod(space.shape)) if space.shape else 1
        return Gaussian(dim)
    raise RLGraphError(f"No distribution for space {space!r}; use a "
                       f"ContainerSplitter + one policy head per sub-space")
