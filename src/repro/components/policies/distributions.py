"""Action distributions, written against the functional API so sampling,
log-probs and entropies work in both backends."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.spaces import BoolBox, FloatBox, IntBox, Space
from repro.utils.errors import RLGraphError


class Distribution:
    """Stateless distribution math over parameter tensors."""

    def param_units(self, space: Space) -> int:
        """Number of adapter output units needed for ``space``."""
        raise NotImplementedError

    def sample(self, params, deterministic=False):
        raise NotImplementedError

    def log_prob(self, params, actions):
        raise NotImplementedError

    def entropy(self, params):
        raise NotImplementedError


class Categorical(Distribution):
    """Discrete distribution parameterized by logits (B, A)."""

    def __init__(self, num_categories: int):
        self.num_categories = int(num_categories)

    def param_units(self, space: Space) -> int:
        return self.num_categories

    def sample(self, logits, deterministic=False):
        if deterministic:
            return F.argmax(logits, axis=-1)
        # Gumbel-max trick keeps sampling inside the graph.
        u = F.random_uniform(like=logits)
        gumbel = F.neg(F.log(F.neg(F.log(F.maximum(u, 1e-10)))))
        return F.argmax(F.add(logits, gumbel), axis=-1)

    def log_prob(self, logits, actions):
        log_p = F.log_softmax(logits, axis=-1)
        onehot = F.one_hot(actions, self.num_categories)
        return F.reduce_sum(F.mul(log_p, onehot), axis=-1)

    def entropy(self, logits):
        log_p = F.log_softmax(logits, axis=-1)
        p = F.softmax(logits, axis=-1)
        return F.neg(F.reduce_sum(F.mul(p, log_p), axis=-1))


class Gaussian(Distribution):
    """Diagonal Gaussian; params (B, 2D) = [mean, log_std]."""

    def __init__(self, dim: int):
        self.dim = int(dim)

    def param_units(self, space: Space) -> int:
        return 2 * self.dim

    def _split(self, params):
        mean = F.getitem(params, (slice(None), slice(0, self.dim)))
        log_std = F.getitem(params, (slice(None), slice(self.dim, 2 * self.dim)))
        log_std = F.clip(log_std, -10.0, 2.0)
        return mean, log_std

    def sample(self, params, deterministic=False):
        mean, log_std = self._split(params)
        if deterministic:
            return mean
        noise = F.random_normal(like=mean)
        return F.add(mean, F.mul(F.exp(log_std), noise))

    def log_prob(self, params, actions):
        mean, log_std = self._split(params)
        var = F.exp(F.mul(2.0, log_std))
        per_dim = F.add(
            F.div(F.square(F.sub(actions, mean)), F.maximum(var, 1e-10)),
            F.add(F.mul(2.0, log_std), float(np.log(2 * np.pi))))
        return F.mul(-0.5, F.reduce_sum(per_dim, axis=-1))

    def entropy(self, params):
        _, log_std = self._split(params)
        per_dim = F.add(log_std, 0.5 * float(np.log(2 * np.pi * np.e)))
        return F.reduce_sum(per_dim, axis=-1)


class Bernoulli(Distribution):
    """Element-wise Bernoulli over logits (B, D)."""

    def __init__(self, dim: int):
        self.dim = int(dim)

    def param_units(self, space: Space) -> int:
        return self.dim

    def sample(self, logits, deterministic=False):
        p = F.sigmoid(logits)
        if deterministic:
            return F.greater_equal(p, 0.5)
        u = F.random_uniform(like=p)
        return F.less(u, p)

    def log_prob(self, logits, actions):
        a = F.reshape(F.cast(actions, np.float32), (-1, self.dim))
        log_p = F.neg(F.softplus(F.neg(logits)))       # log sigmoid(x)
        log_1mp = F.neg(F.softplus(logits))            # log (1 - sigmoid(x))
        per_dim = F.add(F.mul(a, log_p), F.mul(F.sub(1.0, a), log_1mp))
        return F.reduce_sum(per_dim, axis=-1)

    def entropy(self, logits):
        p = F.clip(F.sigmoid(logits), 1e-6, 1.0 - 1e-6)
        per_dim = F.neg(F.add(F.mul(p, F.log(p)),
                              F.mul(F.sub(1.0, p), F.log(F.sub(1.0, p)))))
        return F.reduce_sum(per_dim, axis=-1)


def distribution_for_space(space: Space) -> Distribution:
    """The canonical distribution for an action space."""
    if isinstance(space, IntBox):
        if space.shape != ():
            raise RLGraphError(
                f"Only scalar IntBox action spaces supported, got {space!r}")
        return Categorical(space.num_categories)
    if isinstance(space, BoolBox):
        dim = int(np.prod(space.shape)) if space.shape else 1
        return Bernoulli(dim)
    if isinstance(space, FloatBox):
        dim = int(np.prod(space.shape)) if space.shape else 1
        return Gaussian(dim)
    raise RLGraphError(f"No distribution for space {space!r}; use a "
                       f"ContainerSplitter + one policy head per sub-space")
