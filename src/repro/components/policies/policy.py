"""Policy component: network torso + action adapter (+ optional dueling
head and value head).

This is the Listing-1 component: build it from a state space and an
action space and every API method becomes individually testable.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.backend import functional as F
from repro.components.neural_networks.dueling import DuelingHead
from repro.components.neural_networks.neural_network import NeuralNetwork
from repro.components.policies.action_adapter import ActionAdapter
from repro.components.policies.distributions import distribution_for_space
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces import IntBox
from repro.spaces.space_utils import space_from_spec
from repro.utils.errors import RLGraphError


class Policy(Component):
    """A policy over an action space.

    Args:
        network_spec: layer list / JSON path / NeuralNetwork instance.
        action_space: the action Space (spec forms accepted).
        dueling: use a dueling Q head (discrete spaces only).
        value_head: add a state-value output (actor-critic/IMPALA/PPO).
        distribution: override the canonical distribution for the action
            space (e.g. ``SquashedGaussian`` for SAC's bounded actions).
    """

    def __init__(self, network_spec: Any, action_space, dueling: bool = False,
                 value_head: bool = False, distribution=None,
                 scope: str = "policy", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.action_space = space_from_spec(action_space)
        self.distribution = (distribution if distribution is not None
                             else distribution_for_space(self.action_space))
        self.network = (network_spec if isinstance(network_spec, NeuralNetwork)
                        else NeuralNetwork(network_spec))
        self.dueling = bool(dueling)
        self.value_head = bool(value_head)
        components = [self.network]
        if self.dueling:
            if not isinstance(self.action_space, IntBox):
                raise RLGraphError("Dueling heads need a discrete action space")
            self.dueling_head = DuelingHead(self.action_space.num_categories)
            components.append(self.dueling_head)
            self.action_adapter = None
        else:
            self.action_adapter = ActionAdapter(
                self.action_space, distribution=self.distribution)
            components.append(self.action_adapter)
        if self.value_head:
            self.value_adapter = ValueHead()
            components.append(self.value_adapter)
        else:
            # Without a value head this API method cannot be built.
            self.api_methods.pop("get_state_values", None)
        self.add_components(*components)

    # -- API ------------------------------------------------------------------
    @rlgraph_api
    def get_nn_output(self, nn_input):
        return self.network.call(nn_input)

    @rlgraph_api
    def get_logits(self, nn_input):
        features = self.network.call(nn_input)
        if self.dueling:
            return self.dueling_head.get_q_values(features)
        return self.action_adapter.get_parameters(features)

    @rlgraph_api
    def get_q_values(self, nn_input):
        """Alias for get_logits, meaningful for value-based methods."""
        features = self.network.call(nn_input)
        if self.dueling:
            return self.dueling_head.get_q_values(features)
        return self.action_adapter.get_parameters(features)

    @rlgraph_api
    def get_action(self, nn_input):
        """Stochastic action (sampled from the policy distribution)."""
        logits = self.get_logits(nn_input)
        return self._graph_fn_sample(logits, deterministic=False)

    @rlgraph_api
    def get_deterministic_action(self, nn_input):
        logits = self.get_logits(nn_input)
        return self._graph_fn_sample(logits, deterministic=True)

    @rlgraph_api
    def get_action_log_probs(self, nn_input, actions):
        logits = self.get_logits(nn_input)
        return self._graph_fn_log_prob(logits, actions)

    @rlgraph_api
    def get_state_values(self, nn_input):
        if not self.value_head:
            raise RLGraphError(f"Policy {self.scope} has no value head")
        features = self.network.call(nn_input)
        return self.value_adapter.get_value(features)

    @rlgraph_api
    def get_entropy(self, nn_input):
        logits = self.get_logits(nn_input)
        return self._graph_fn_entropy(logits)

    # -- graph fns --------------------------------------------------------------
    @graph_fn(requires_variables=False)
    def _graph_fn_sample(self, logits, deterministic=False):
        return self.distribution.sample(logits, deterministic=deterministic)

    @graph_fn(requires_variables=False)
    def _graph_fn_log_prob(self, logits, actions):
        return self.distribution.log_prob(logits, actions)

    @graph_fn(requires_variables=False)
    def _graph_fn_entropy(self, logits):
        return self.distribution.entropy(logits)


class ValueHead(Component):
    """Linear state-value output V(s) from features."""

    def __init__(self, scope: str = "value-head", **kwargs):
        super().__init__(scope=scope, **kwargs)

    def create_variables(self, input_spaces):
        space = input_spaces["features"]
        in_dim = int(space.shape[-1])
        self.kernel = self.get_variable("kernel", shape=(in_dim, 1),
                                        initializer="glorot")
        self.bias = self.get_variable("bias", shape=(1,), initializer="zeros")

    @rlgraph_api
    def get_value(self, features):
        return self._graph_fn_value(features)

    @graph_fn
    def _graph_fn_value(self, features):
        out = F.add(F.matmul(features, self.kernel.read()), self.bias.read())
        return F.squeeze(out, axis=-1)
