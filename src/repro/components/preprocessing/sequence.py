"""Sequence (frame-stack) preprocessor: stateful across calls.

Keeps the last ``sequence_length`` observations per environment slot in a
variable and returns them stacked along a new trailing axis — the classic
Atari 4-frame stack. Statefulness is why preprocessors must be first-class
components: the build creates the state variable from the input space.
"""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.components.preprocessing.preprocessors import PREPROCESSORS, Preprocessor
from repro.core import graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


@PREPROCESSORS.register("sequence", aliases=["frame_stack"])
class Sequence(Preprocessor):
    """Stacks the last N inputs along a new last axis.

    Args:
        sequence_length: number of frames stacked (N).
        num_slots: number of environment slots (the vector size the
            worker acts on); the batch dim of `preprocess` inputs must
            equal this.
    """

    def __init__(self, sequence_length: int = 4, num_slots: int = 1,
                 scope: str = "sequence", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if sequence_length < 1:
            raise RLGraphError("sequence_length must be >= 1")
        self.sequence_length = int(sequence_length)
        self.num_slots = int(num_slots)

    def create_variables(self, input_spaces):
        space = input_spaces["inputs"]
        self.buffer = self.get_variable(
            "stack-buffer",
            shape=(self.num_slots,) + tuple(space.shape)
            + (self.sequence_length,),
            dtype=np.float32, trainable=False, initializer="zeros")

    @rlgraph_api
    def preprocess(self, inputs):
        return self._graph_fn_preprocess(inputs)

    @graph_fn
    def _graph_fn_preprocess(self, inputs):
        current = self.buffer.read()
        shifted = F.concat(
            [F.getitem(current, (Ellipsis, slice(1, None))),
             F.expand_dims(F.cast(inputs, np.float32), -1)],
            axis=-1)
        write = self.buffer.assign(shifted)
        return F.with_deps(shifted, write) if write is not None else shifted

    def reset(self):
        if hasattr(self, "buffer"):
            self.buffer.value[...] = 0.0

    def transformed_space(self, space):
        from repro.spaces import FloatBox
        return FloatBox(shape=tuple(space.shape) + (self.sequence_length,),
                        add_batch_rank=space.has_batch_rank)

    def reset_slot(self, slot: int):
        if hasattr(self, "buffer"):
            self.buffer.value[slot] = 0.0
