"""Stateless preprocessor components."""

from __future__ import annotations

from typing import Optional, Sequence as TypingSequence

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces.box import FloatBox
from repro.spaces.space_utils import sanity_check_space
from repro.utils.errors import RLGraphError
from repro.utils.registry import Registry

PREPROCESSORS = Registry("preprocessor")


class Preprocessor(Component):
    """Base: one `preprocess` API method; stateless by default."""

    @rlgraph_api
    def preprocess(self, inputs):
        return self._graph_fn_preprocess(inputs)

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        raise NotImplementedError

    def reset(self):
        """Clear internal state (no-op for stateless preprocessors)."""

    def transformed_space(self, space):
        """Output space for a given input space (shape bookkeeping used by
        agents to size their memories without building first)."""
        return space


@PREPROCESSORS.register("grayscale")
class GrayScale(Preprocessor):
    """Channel-weighted grayscale for (B, H, W, C) images.

    ``keepdims=False`` drops the channel dim (-> (B, H, W)); the default
    keeps a singleton channel so conv layers can follow directly.
    """

    def __init__(self, weights: Optional[TypingSequence[float]] = None,
                 keepdims: bool = True, scope: str = "grayscale", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.weights = weights
        self.keepdims = keepdims

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        from repro.backend.ops import handle_shape
        shape = handle_shape(inputs)
        channels = int(shape[-1]) if shape is not None and shape[-1] else 3
        weights = (np.asarray(self.weights, np.float32) if self.weights
                   else np.full(channels, 1.0 / channels, np.float32))
        if len(weights) != channels:
            raise RLGraphError(
                f"GrayScale weights ({len(weights)}) != channels ({channels})")
        out = F.reduce_sum(F.mul(inputs, weights), axis=-1,
                           keepdims=self.keepdims)
        return out

    def transformed_space(self, space):
        shape = space.shape[:-1] + ((1,) if self.keepdims else ())
        return FloatBox(shape=shape, add_batch_rank=space.has_batch_rank,
                        add_time_rank=space.has_time_rank,
                        time_major=space.time_major)


@PREPROCESSORS.register("image_resize", aliases=["resize"])
class ImageResize(Preprocessor):
    """Nearest-neighbour resize of (B, H, W[, C]) images to (height, width).

    Index maps are precomputed from the input space (no per-frame
    arithmetic), which is what makes batched preprocessing cheap.
    """

    def __init__(self, width: int, height: int, scope: str = "image-resize",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.width = int(width)
        self.height = int(height)

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        from repro.backend.ops import handle_shape
        shape = handle_shape(inputs)
        if shape is None or shape[1] is None or shape[2] is None:
            raise RLGraphError("ImageResize needs known H/W dims")
        in_h, in_w = int(shape[1]), int(shape[2])
        rows = np.minimum((np.arange(self.height) * in_h / self.height)
                          .astype(np.int64), in_h - 1)
        cols = np.minimum((np.arange(self.width) * in_w / self.width)
                          .astype(np.int64), in_w - 1)
        out = F.getitem(inputs, (slice(None), rows))
        out = F.getitem(out, (slice(None), slice(None), cols))
        return out

    def transformed_space(self, space):
        shape = (self.height, self.width) + tuple(space.shape[2:])
        return FloatBox(shape=shape, add_batch_rank=space.has_batch_rank,
                        add_time_rank=space.has_time_rank,
                        time_major=space.time_major)


@PREPROCESSORS.register("divide")
class Divide(Preprocessor):
    """Divides by a constant (e.g. 255 for uint8 frames)."""

    def __init__(self, divisor: float = 255.0, scope: str = "divide", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if divisor == 0:
            raise RLGraphError("divisor must be non-zero")
        self.divisor = float(divisor)

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        return F.div(F.cast(inputs, np.float32), self.divisor)

    def transformed_space(self, space):
        return FloatBox(shape=space.shape, add_batch_rank=space.has_batch_rank,
                        add_time_rank=space.has_time_rank,
                        time_major=space.time_major)


@PREPROCESSORS.register("clip")
class Clip(Preprocessor):
    """Clips values into [low, high] (e.g. reward clipping to [-1, 1])."""

    def __init__(self, low: float = -1.0, high: float = 1.0,
                 scope: str = "clip", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if low > high:
            raise RLGraphError(f"Clip low {low} > high {high}")
        self.low = float(low)
        self.high = float(high)

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        return F.clip(inputs, self.low, self.high)


@PREPROCESSORS.register("normalize")
class Normalize(Preprocessor):
    """Shift/scale by fixed mean/std."""

    def __init__(self, mean: float = 0.0, std: float = 1.0,
                 scope: str = "normalize", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if std == 0:
            raise RLGraphError("std must be non-zero")
        self.mean = float(mean)
        self.std = float(std)

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        return F.div(F.sub(F.cast(inputs, np.float32), self.mean), self.std)

    def transformed_space(self, space):
        return FloatBox(shape=space.shape, add_batch_rank=space.has_batch_rank,
                        add_time_rank=space.has_time_rank,
                        time_major=space.time_major)


@PREPROCESSORS.register("flatten")
class Flatten(Preprocessor):
    """(B, ...) -> (B, prod)."""

    def __init__(self, scope: str = "flatten-preprocessor", **kwargs):
        super().__init__(scope=scope, **kwargs)

    @graph_fn(requires_variables=False)
    def _graph_fn_preprocess(self, inputs):
        return F.flatten_batch(inputs)

    def transformed_space(self, space):
        return FloatBox(shape=(space.flat_dim,),
                        add_batch_rank=space.has_batch_rank)
