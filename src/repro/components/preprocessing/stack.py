"""PreprocessorStack: sequential composition of preprocessors."""

from __future__ import annotations

from typing import Any, List, Sequence as TypingSequence

from repro.components.preprocessing.preprocessors import (
    PREPROCESSORS,
    Preprocessor,
)
from repro.core import Component, rlgraph_api
from repro.utils.errors import RLGraphError


class PreprocessorStack(Component):
    """Chains preprocessors; `preprocess` applies them in order.

    Specs may be Preprocessor instances or dicts like
    ``{"type": "grayscale", "keepdims": False}``.
    """

    def __init__(self, specs: TypingSequence[Any],
                 scope: str = "preprocessor-stack", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.preprocessors: List[Preprocessor] = []
        for i, spec in enumerate(specs or []):
            pre = (spec if isinstance(spec, Preprocessor)
                   else PREPROCESSORS.from_spec(spec))
            if not isinstance(pre, Preprocessor):
                raise RLGraphError(f"Spec {spec!r} is not a preprocessor")
            if pre.scope in self.sub_components:
                pre.scope = f"{pre.scope}-{i}"
            self.preprocessors.append(pre)
            self.add_components(pre)

    @rlgraph_api
    def preprocess(self, inputs):
        out = inputs
        for pre in self.preprocessors:
            out = pre.preprocess(out)
        return out

    def reset(self):
        for pre in self.preprocessors:
            pre.reset()

    def transformed_space(self, space):
        for pre in self.preprocessors:
            space = pre.transformed_space(space)
        return space
