"""Preprocessing components — first-class citizens in RLgraph, so every
heuristic (grayscale, rescale, frame-stacking, ...) is individually
buildable and testable (paper §1, point 4)."""

from repro.components.preprocessing.preprocessors import (
    PREPROCESSORS,
    Clip,
    Divide,
    Flatten,
    GrayScale,
    ImageResize,
    Normalize,
    Preprocessor,
)
from repro.components.preprocessing.sequence import Sequence
from repro.components.preprocessing.stack import PreprocessorStack

__all__ = [
    "PREPROCESSORS",
    "Preprocessor",
    "GrayScale",
    "ImageResize",
    "Divide",
    "Clip",
    "Normalize",
    "Flatten",
    "Sequence",
    "PreprocessorStack",
]
