"""PPO clipped-surrogate loss (Schulman et al. 2017)."""

from __future__ import annotations

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


class PPOLoss(Component):
    """Clipped surrogate objective.

    ``get_loss`` inputs: log_probs (new policy), old_log_probs (behaviour,
    stop-gradient), advantages, values, returns, entropies — all (B,).
    """

    def __init__(self, clip_ratio: float = 0.2, value_coeff: float = 0.5,
                 entropy_coeff: float = 0.01, scope: str = "ppo-loss",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        if clip_ratio <= 0:
            raise RLGraphError("clip_ratio must be positive")
        self.clip_ratio = float(clip_ratio)
        self.value_coeff = float(value_coeff)
        self.entropy_coeff = float(entropy_coeff)

    @rlgraph_api
    def get_loss(self, log_probs, old_log_probs, advantages, values, returns,
                 entropies):
        return self._graph_fn_loss(log_probs, old_log_probs, advantages,
                                   values, returns, entropies)

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_loss(self, log_probs, old_log_probs, advantages, values,
                       returns, entropies):
        ratio = F.exp(F.sub(log_probs, F.stop_gradient(old_log_probs)))
        adv = F.stop_gradient(advantages)
        unclipped = F.mul(ratio, adv)
        clipped = F.mul(F.clip(ratio, 1.0 - self.clip_ratio,
                               1.0 + self.clip_ratio), adv)
        policy_loss = F.neg(F.reduce_mean(F.minimum(unclipped, clipped)))
        value_loss = F.reduce_mean(F.square(F.sub(values, returns)))
        entropy = F.reduce_mean(entropies)
        total = F.sub(F.add(policy_loss, F.mul(self.value_coeff, value_loss)),
                      F.mul(self.entropy_coeff, entropy))
        return total, policy_loss
