"""IMPALA V-trace loss (Espeholt et al. 2018, paper §5.1 Fig. 9).

Operates on time-major rollouts: the learner consumes (T, B, ...) batches
dequeued from the shared FIFO queue, computes v-trace corrected targets
off-policy, and applies policy-gradient + baseline + entropy terms.
"""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api


class IMPALALoss(Component):
    """V-trace actor-learner loss.

    ``get_loss`` inputs (all time-major):
        target_log_probs:    log pi(a|s) under the learner, (T, B)
        behaviour_log_probs: log mu(a|s) under the actor,   (T, B)
        values:              V(s) under the learner,        (T, B)
        bootstrap_value:     V(s_T),                        (B,)
        rewards:             (T, B)
        terminals:           (T, B) bool
        entropies:           (T, B)
    """

    def __init__(self, discount: float = 0.99, value_coeff: float = 0.5,
                 entropy_coeff: float = 0.01, clip_rho_threshold: float = 1.0,
                 clip_pg_rho_threshold: float = 1.0, scope: str = "impala-loss",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.discount = float(discount)
        self.value_coeff = float(value_coeff)
        self.entropy_coeff = float(entropy_coeff)
        self.clip_rho_threshold = clip_rho_threshold
        self.clip_pg_rho_threshold = clip_pg_rho_threshold

    @rlgraph_api
    def get_loss(self, target_log_probs, behaviour_log_probs, values,
                 bootstrap_value, rewards, terminals, entropies):
        return self._graph_fn_loss(target_log_probs, behaviour_log_probs,
                                   values, bootstrap_value, rewards,
                                   terminals, entropies)

    @graph_fn(returns=3, requires_variables=False)
    def _graph_fn_loss(self, target_log_probs, behaviour_log_probs, values,
                       bootstrap_value, rewards, terminals, entropies):
        log_rhos = F.stop_gradient(F.sub(target_log_probs,
                                         behaviour_log_probs))
        discounts = F.mul(F.sub(1.0, F.cast(terminals, np.float32)),
                          self.discount)
        vs, pg_adv = F.vtrace(
            log_rhos, discounts, rewards, F.stop_gradient(values),
            bootstrap_value,
            clip_rho_threshold=self.clip_rho_threshold,
            clip_pg_rho_threshold=self.clip_pg_rho_threshold)
        policy_loss = F.neg(F.reduce_mean(F.mul(target_log_probs,
                                                F.stop_gradient(pg_adv))))
        value_loss = F.mul(0.5, F.reduce_mean(
            F.square(F.sub(values, F.stop_gradient(vs)))))
        entropy = F.reduce_mean(entropies)
        total = F.sub(F.add(policy_loss, F.mul(self.value_coeff, value_loss)),
                      F.mul(self.entropy_coeff, entropy))
        return total, policy_loss, value_loss
