"""Advantage actor-critic loss (A2C-style)."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api


class ActorCriticLoss(Component):
    """Policy-gradient + value + entropy loss over a batch.

    ``get_loss`` inputs: log_probs (B,), values (B,), returns (B,),
    entropies (B,). Advantages = returns - stop_grad(values).
    """

    def __init__(self, value_coeff: float = 0.5, entropy_coeff: float = 0.01,
                 scope: str = "actor-critic-loss", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.value_coeff = float(value_coeff)
        self.entropy_coeff = float(entropy_coeff)

    @rlgraph_api
    def get_loss(self, log_probs, values, returns, entropies):
        return self._graph_fn_loss(log_probs, values, returns, entropies)

    @graph_fn(returns=3, requires_variables=False)
    def _graph_fn_loss(self, log_probs, values, returns, entropies):
        advantages = F.stop_gradient(F.sub(returns, values))
        policy_loss = F.neg(F.reduce_mean(F.mul(log_probs, advantages)))
        value_loss = F.reduce_mean(F.square(F.sub(values, returns)))
        entropy = F.reduce_mean(entropies)
        total = F.sub(F.add(policy_loss, F.mul(self.value_coeff, value_loss)),
                      F.mul(self.entropy_coeff, entropy))
        return total, policy_loss, value_loss
