"""Loss-function components."""

from repro.components.loss_functions.dqn_loss import DQNLoss
from repro.components.loss_functions.actor_critic_loss import ActorCriticLoss
from repro.components.loss_functions.ppo_loss import PPOLoss
from repro.components.loss_functions.impala_loss import IMPALALoss

__all__ = ["DQNLoss", "ActorCriticLoss", "PPOLoss", "IMPALALoss"]
