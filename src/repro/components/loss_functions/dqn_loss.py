"""DQN loss (Mnih et al. 2015) with double-Q (van Hasselt 2016), n-step
targets and importance-sampling weights — the loss behind the paper's
dueling-DQN/Ape-X experiments."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


class DQNLoss(Component):
    """TD loss over a batch of transitions.

    ``get_loss`` inputs:
        q_values:        online Q(s, ·), (B, A)
        actions:         (B,) int
        rewards:         (B,) float (already n-step accumulated if n > 1)
        terminals:       (B,) bool
        q_next:          online Q(s', ·) — used for double-Q argmax
        q_next_target:   target-net Q(s', ·)
        importance_weights: (B,) float (ones when not prioritized)

    Returns (scalar loss, per-item |td| for priority updates).
    """

    def __init__(self, num_actions: int, discount: float = 0.99,
                 double_q: bool = True, huber_delta: float = 1.0,
                 n_step: int = 1, scope: str = "dqn-loss", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if not 0.0 <= discount <= 1.0:
            raise RLGraphError(f"discount must be in [0, 1], got {discount}")
        self.num_actions = int(num_actions)
        self.discount = float(discount)
        self.double_q = bool(double_q)
        self.huber_delta = huber_delta
        self.n_step = int(n_step)

    @rlgraph_api
    def get_loss(self, q_values, actions, rewards, terminals, q_next,
                 q_next_target, importance_weights):
        return self._graph_fn_loss(q_values, actions, rewards, terminals,
                                   q_next, q_next_target, importance_weights)

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_loss(self, q_values, actions, rewards, terminals, q_next,
                       q_next_target, importance_weights):
        onehot = F.one_hot(actions, self.num_actions)
        q_sa = F.reduce_sum(F.mul(q_values, onehot), axis=-1)

        if self.double_q:
            best_next = F.argmax(q_next, axis=-1)
            next_onehot = F.one_hot(best_next, self.num_actions)
            q_next_best = F.reduce_sum(F.mul(q_next_target, next_onehot),
                                       axis=-1)
        else:
            q_next_best = F.reduce_max(q_next_target, axis=-1)

        not_done = F.sub(1.0, F.cast(terminals, np.float32))
        gamma_n = self.discount ** self.n_step
        target = F.add(rewards, F.mul(gamma_n, F.mul(not_done, q_next_best)))
        td = F.sub(q_sa, F.stop_gradient(target))

        if self.huber_delta is not None:
            per_item = F.huber_loss(td, delta=self.huber_delta)
        else:
            per_item = F.mul(0.5, F.square(td))
        weighted = F.mul(per_item, importance_weights)
        loss = F.reduce_mean(weighted)
        return loss, F.abs(F.stop_gradient(td))
