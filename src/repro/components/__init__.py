"""Off-the-shelf RLgraph components (paper §3.3: buffers, optimizers,
neural networks, splitters/mergers, preprocessors, ...)."""
