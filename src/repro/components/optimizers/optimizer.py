"""Optimizer components.

``step(loss)`` computes gradients of ``loss`` w.r.t. a fixed variable list
and applies an update rule. The gradient computation goes through
:func:`repro.backend.gradients.grads_of`, so one graph-function body
creates static update ops at build time *and* performs immediate updates
in define-by-run mode — paper Fig. 3, line 11.

Tower averaging for the synchronous multi-device strategy is exposed as
``step_towers(*losses)`` (gradients averaged before applying).

Two update constructions exist:

* **fused** (default whenever the build's ``optimize`` level is not
  ``"none"``) — the variable list is coalesced into one contiguous
  :class:`~repro.backend.variables.ParamSlab`, per-variable gradients
  collapse into a flat buffer through a single ``flatcat`` node, global
  norm clipping becomes one squared-norm reduction plus one scale over
  the slab, and the whole update is ONE multi-tensor op
  (``fused_adam``/``fused_rmsprop``/``fused_sgd``) — O(1) graph nodes
  regardless of the number of variables K, vs O(10·K) per-variable.
* **per-variable** (``optimize="none"``, or ``fused=False``) — the seed
  construction, kept as the paper-faithful ablation baseline.

Both produce identical weights (bitwise without clipping; the flat
global-norm reduction reorders one summation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.backend import context
from repro.backend import functional as F
from repro.backend.gradients import grads_of
from repro.backend.variables import ParamSlab, Variable
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError
from repro.utils.registry import Registry

OPTIMIZERS = Registry("optimizer")


class Optimizer(Component):
    """Base optimizer over an explicit variable list.

    The variable list is bound with :meth:`set_variables` before the
    build (agents bind their policy's registry); slot variables are
    created lazily the first time the update ops build.
    """

    def __init__(self, learning_rate: float = 1e-3, clip_grad_norm: Optional[float] = None,
                 fused: Optional[bool] = None, scope: str = "optimizer",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.learning_rate = float(learning_rate)
        self.clip_grad_norm = clip_grad_norm
        # None = auto: fused unless the build runs at optimize="none"
        # (the paper-faithful per-variable ablation).
        self.fused = fused
        self._use_fused: Optional[bool] = None
        self._param_slab: Optional[ParamSlab] = None
        self._variables: List[Variable] = []
        self._variables_provider = None
        self._step_var = None
        # Nodes added by the update construction itself (everything past
        # the gradient computation) — the O(10·K) vs O(1) metric.
        self.update_node_count: Optional[int] = None

    def set_variables(self, variables: Sequence[Variable]) -> None:
        self._variables = list(variables)

    def set_variables_provider(self, provider) -> None:
        """Defer the variable list to build time (``provider`` is called
        when the update ops are created, after the owning policy has made
        its variables)."""
        self._variables_provider = provider

    def create_variables(self, input_spaces):
        self._step_var = self.get_variable("step", shape=(), dtype=np.int64,
                                           trainable=False)

    # -- API ------------------------------------------------------------------
    @rlgraph_api
    def step(self, loss):
        return self._graph_fn_step(loss)

    @rlgraph_api
    def step_towers(self, *losses):
        return self._graph_fn_step(*losses)

    @rlgraph_api
    def compute_flat_grads(self, loss):
        return self._graph_fn_flat_grads(loss)

    @rlgraph_api
    def apply_flat_grads(self, flat_grads):
        return self._graph_fn_apply_flat(flat_grads)

    # -- update construction ----------------------------------------------------
    @graph_fn
    def _graph_fn_step(self, *losses):
        self._resolve_variables()
        tower_grads = [grads_of(loss, self._variables) for loss in losses]
        graph = context.current_graph() if context.is_symbolic() else None
        base_nodes = len(graph.nodes) if graph is not None else 0
        if self._resolve_fused():
            out = self._fused_step(tower_grads)
        else:
            out = self._per_variable_step(tower_grads)
        if graph is not None:
            self.update_node_count = len(graph.nodes) - base_nodes
        return out

    @graph_fn
    def _graph_fn_flat_grads(self, loss):
        """The gradient half of the fused step: per-variable gradients
        of ``loss`` collapse through ONE ``flatcat`` node into the flat
        slab vector (members in slab order, i.e. sorted by name) —
        *unclipped*, so a downstream all-reduce averages raw shard
        gradients and clipping applies once to the averaged vector,
        exactly as the single-learner in-graph step clips the full-batch
        gradient."""
        self._resolve_variables()
        grads = grads_of(loss, self._variables)
        by_var = {id(v): g for v, g in zip(self._variables, grads)}
        members = self._flat_members()
        return F.flatcat([by_var[id(m)] for m in members])

    @graph_fn
    def _graph_fn_apply_flat(self, flat_grads):
        """Apply half: feed an externally produced flat gradient vector
        through the exact fused lowering of :meth:`_graph_fn_step`
        (clip → shared step bump → one multi-tensor op), so an
        extract-then-apply round trip is bitwise-comparable to the
        in-graph step."""
        self._resolve_variables()
        if not self._resolve_fused():
            raise RLGraphError(
                f"Optimizer {self.global_scope}: apply_flat_grads needs the "
                f"fused construction (optimize != 'none' and a fused update "
                f"rule); the per-variable ablation has no flat-slab layout "
                f"to scatter into")
        from repro.core.component import get_current_build
        if (get_current_build() is not None
                and isinstance(flat_grads, np.ndarray)
                and flat_grads.size != self.flat_grad_size()):
            # Eager (define-by-run) shape-inference build: the example
            # pushed through the batch-ranked input space has an
            # arbitrary length; substitute a slab-sized zero vector so
            # the fused kernels see consistent shapes (any variable
            # mutation is snapshot-restored by the builder afterwards).
            flat_grads = np.zeros(self.flat_grad_size(), np.float32)
        return self._apply_flat(flat_grads)

    # -- precomputed-gradient entry points ---------------------------------------
    # Some agents (SAC) cannot express their update as gradients of one
    # scalar loss over the full variable list: the actor loss must not
    # touch critic weights and vice versa, so the root computes each
    # group's gradients itself (``grads_of(actor_loss, policy_vars)``,
    # ...) and hands the assembled per-variable list here. These helpers
    # are called from inside the agent's graph functions (like
    # ``grads_of``), not as API methods.

    def step_from_grads(self, grads):
        """Apply ONE update from precomputed per-variable gradients
        (ordered like ``self._variables``), routed through the exact
        fused or per-variable lowering :meth:`step` would build."""
        self._resolve_variables()
        grads = list(grads)
        if len(grads) != len(self._variables):
            raise RLGraphError(
                f"Optimizer {self.global_scope}: step_from_grads got "
                f"{len(grads)} gradients for {len(self._variables)} "
                f"variables")
        if self._resolve_fused():
            return self._fused_step([grads])
        return self._per_variable_step([grads])

    def flatcat_grads(self, grads):
        """Collapse precomputed per-variable gradients into the flat
        slab vector (members sorted by name), *unclipped* — the
        extraction half for precomputed-grad agents, mirroring
        :meth:`compute_flat_grads`."""
        self._resolve_variables()
        grads = list(grads)
        if len(grads) != len(self._variables):
            raise RLGraphError(
                f"Optimizer {self.global_scope}: flatcat_grads got "
                f"{len(grads)} gradients for {len(self._variables)} "
                f"variables")
        by_var = {id(v): g for v, g in zip(self._variables, grads)}
        return F.flatcat([by_var[id(m)] for m in self._flat_members()])

    def _resolve_variables(self) -> None:
        if not self._variables and self._variables_provider is not None:
            self._variables = list(self._variables_provider())
        if not self._variables:
            raise RLGraphError(
                f"Optimizer {self.global_scope}: set_variables() was never "
                f"called")

    def _flat_members(self) -> List[Variable]:
        """Variables in flat-vector order: the slab's member order when
        fused, the same sorted-by-name order (without claiming storage)
        in the per-variable ablation."""
        if self._resolve_fused():
            return list(self._ensure_param_slab().members)
        return sorted(self._variables, key=lambda v: v.name)

    def flat_grad_size(self) -> int:
        """Element count of the flat gradient vector (== ParamSlab size)."""
        self._resolve_variables()
        return int(sum(int(np.prod(v.shape, dtype=np.int64))
                       for v in self._variables))

    def _resolve_fused(self) -> bool:
        """Decide (once) between the fused and per-variable paths.

        Explicit ``fused=`` wins; otherwise fused unless the owning
        build runs at ``optimize="none"``. Falls back to per-variable
        when the subclass has no fused rule or a variable cannot
        coalesce (non-float32)."""
        if self._use_fused is not None:
            return self._use_fused
        if self.fused is not None:
            use = bool(self.fused)
        else:
            from repro.core.component import get_current_build
            build = get_current_build()
            level = getattr(build, "optimize", "fused") \
                if build is not None else "fused"
            use = level != "none"
        if use and type(self)._apply_fused_update \
                is Optimizer._apply_fused_update:
            use = False
        if use and any(v.dtype != np.float32 for v in self._variables):
            use = False
        self._use_fused = use
        return use

    # -- fused (flat-parameter) construction ------------------------------------
    def _fused_step(self, tower_grads):
        slab = self._ensure_param_slab()
        # Gradients arrive in self._variables order; the slab layout is
        # sorted by name — reorder so segment i belongs to member i.
        by_var = [{id(v): g for v, g in zip(self._variables, tg)}
                  for tg in tower_grads]
        flats = [F.flatcat([bv[id(m)] for m in slab.members])
                 for bv in by_var]
        if len(flats) == 1:
            flat = flats[0]
        else:
            flat = F.mul(1.0 / len(flats), _sum_handles(flats))
        return self._apply_flat(flat)

    def _apply_flat(self, flat):
        """Everything past the flat gradient: clip (one squared-norm
        reduction + one scale over the slab), the shared step bump, and
        ONE multi-tensor update op. Shared by the in-graph fused step
        and the external ``apply_flat_grads`` path — identical nodes,
        identical arithmetic."""
        slab = self._ensure_param_slab()
        if self.clip_grad_norm is not None:
            total = F.reduce_sum(F.square(flat))
            norm = F.sqrt(F.maximum(total, 1e-12))
            scale = F.minimum(1.0, F.div(float(self.clip_grad_norm), norm))
            flat = F.mul(flat, scale)
        step_read = self._step_var.read()
        bumped = F.add(step_read, np.int64(1))
        t = F.cast(bumped, np.float32)
        bump = self._step_var.assign(bumped)
        ops = [bump] if bump is not None else []
        update = self._apply_fused_update(slab, flat, t)
        if update is not None:
            ops.append(update)
        return F.group(*ops)

    def _ensure_param_slab(self) -> ParamSlab:
        if self._param_slab is None:
            self._param_slab = ParamSlab.ensure(
                self._variables, name=f"{self.global_scope}/slab")
        return self._param_slab

    def _flat_slot(self, kind: str, slab: ParamSlab) -> Variable:
        """One flat slot variable matching the whole parameter slab."""
        return self.get_variable(f"{kind}-slab", shape=(slab.size,),
                                 dtype=np.float32, trainable=False,
                                 initializer="zeros")

    def _apply_fused_update(self, slab: ParamSlab, flat_grad, t):
        """Build the single multi-tensor update op (subclass hook)."""
        raise NotImplementedError

    # -- per-variable construction (seed behavior; optimize="none") -------------
    def _per_variable_step(self, tower_grads):
        if len(tower_grads) == 1:
            grads = tower_grads[0]
        else:
            # Synchronous multi-device strategy: average tower gradients.
            inv = 1.0 / len(tower_grads)
            grads = [
                F.mul(inv, _sum_handles([tg[i] for tg in tower_grads]))
                for i in range(len(self._variables))
            ]
        if self.clip_grad_norm is not None:
            grads = self._clip_by_global_norm(grads)
        ops = []
        # `t` and the bump share ONE add node: the add is the assign's
        # input, so its value is fixed before the in-place bump and
        # every consumer sees t = step + 1 regardless of schedule. (Two
        # separate add nodes — the seed construction — left the second
        # one free to execute after the assign and read the already
        # bumped step through the live read_var buffer.)
        step_read = self._step_var.read()
        bumped = F.add(step_read, np.int64(1))
        t = F.cast(bumped, np.float32)
        bump = self._step_var.assign(bumped)
        if bump is not None:
            ops.append(bump)
        for i, (var, grad) in enumerate(zip(self._variables, grads)):
            update_ops = self._apply_update(i, var, grad, t)
            ops.extend(op for op in update_ops if op is not None)
        return F.group(*ops)

    def _clip_by_global_norm(self, grads):
        sq = [F.reduce_sum(F.square(g)) for g in grads]
        total = _sum_handles(sq)
        norm = F.sqrt(F.maximum(total, 1e-12))
        scale = F.minimum(1.0, F.div(float(self.clip_grad_norm), norm))
        return [F.mul(g, scale) for g in grads]

    def _slot(self, kind: str, index: int, var: Variable) -> Variable:
        return self.get_variable(f"{kind}-{index}", shape=var.shape,
                                 dtype=np.float32, trainable=False,
                                 initializer="zeros")

    def _apply_update(self, index: int, var: Variable, grad, t):
        raise NotImplementedError


def _sum_handles(handles):
    total = handles[0]
    for h in handles[1:]:
        total = F.add(total, h)
    return total


@OPTIMIZERS.register("sgd", aliases=["gradient_descent"])
class GradientDescent(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, learning_rate: float = 1e-3, momentum: float = 0.0,
                 scope: str = "sgd", **kwargs):
        super().__init__(learning_rate=learning_rate, scope=scope, **kwargs)
        self.momentum = float(momentum)

    def _apply_update(self, index, var, grad, t):
        if self.momentum:
            mom = self._slot("momentum", index, var)
            new_m = F.add(F.mul(self.momentum, mom.read()), grad)
            op1 = mom.assign(new_m)
            op2 = var.assign_add(F.mul(-self.learning_rate, new_m))
            return [op1, op2]
        return [var.assign_add(F.mul(-self.learning_rate, grad))]

    def _apply_fused_update(self, slab, flat_grad, t):
        mom = self._flat_slot("momentum", slab) if self.momentum else None
        return F.fused_sgd(flat_grad, slab.flat_variable(),
                           lr=self.learning_rate, momentum=self.momentum,
                           momentum_var=mom)


@OPTIMIZERS.register("adam")
class Adam(Optimizer):
    """Adam (Kingma & Ba 2015)."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8,
                 scope: str = "adam", **kwargs):
        super().__init__(learning_rate=learning_rate, scope=scope, **kwargs)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)

    def _apply_update(self, index, var, grad, t):
        m = self._slot("m", index, var)
        v = self._slot("v", index, var)
        new_m = F.add(F.mul(self.beta1, m.read()),
                      F.mul(1.0 - self.beta1, grad))
        new_v = F.add(F.mul(self.beta2, v.read()),
                      F.mul(1.0 - self.beta2, F.square(grad)))
        # beta^t via exp(t * log(beta)) — t is a runtime tensor.
        bc1 = F.sub(1.0, F.exp(F.mul(t, float(np.log(self.beta1)))))
        bc2 = F.sub(1.0, F.exp(F.mul(t, float(np.log(self.beta2)))))
        m_hat = F.div(new_m, F.maximum(bc1, 1e-8))
        v_hat = F.div(new_v, F.maximum(bc2, 1e-8))
        delta = F.mul(-self.learning_rate,
                      F.div(m_hat, F.add(F.sqrt(v_hat), self.epsilon)))
        return [m.assign(new_m), v.assign(new_v), var.assign_add(delta)]

    def _apply_fused_update(self, slab, flat_grad, t):
        m = self._flat_slot("m", slab)
        v = self._flat_slot("v", slab)
        return F.fused_adam(flat_grad, t, slab.flat_variable(), m, v,
                            lr=self.learning_rate, beta1=self.beta1,
                            beta2=self.beta2, epsilon=self.epsilon)


@OPTIMIZERS.register("rmsprop")
class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton 2012) — the Ape-X/IMPALA default."""

    def __init__(self, learning_rate: float = 1e-3, decay: float = 0.99,
                 epsilon: float = 1e-8, scope: str = "rmsprop", **kwargs):
        super().__init__(learning_rate=learning_rate, scope=scope, **kwargs)
        self.decay = float(decay)
        self.epsilon = float(epsilon)

    def _apply_update(self, index, var, grad, t):
        ms = self._slot("mean-square", index, var)
        new_ms = F.add(F.mul(self.decay, ms.read()),
                       F.mul(1.0 - self.decay, F.square(grad)))
        delta = F.mul(-self.learning_rate,
                      F.div(grad, F.add(F.sqrt(new_ms), self.epsilon)))
        return [ms.assign(new_ms), var.assign_add(delta)]

    def _apply_fused_update(self, slab, flat_grad, t):
        ms = self._flat_slot("mean-square", slab)
        return F.fused_rmsprop(flat_grad, slab.flat_variable(), ms,
                               lr=self.learning_rate, decay=self.decay,
                               epsilon=self.epsilon)
