"""Optimizer components (SGD, Adam, RMSProp) with mode-agnostic updates."""

from repro.components.optimizers.optimizer import (
    OPTIMIZERS,
    Adam,
    GradientDescent,
    Optimizer,
    RMSProp,
)

__all__ = ["OPTIMIZERS", "Optimizer", "GradientDescent", "Adam", "RMSProp"]
