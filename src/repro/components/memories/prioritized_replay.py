"""PrioritizedReplay component (paper Fig. 2; Schaul et al. 2016).

Priorities are held in a graph variable; sampling uses a vectorized
inverse-CDF (cumsum + searchsorted) over p^alpha, which is the dense
equivalent of the segment-tree walk (the pure-Python segment-tree twin in
``python_memory`` is cross-checked against this component in the tests).
"""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.components.memories.memory import Memory
from repro.core import graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


class PrioritizedReplay(Memory):
    """Proportional prioritized replay with importance-sampling weights."""

    def __init__(self, capacity: int = 1000, alpha: float = 0.6,
                 beta: float = 0.4, scope: str = "prioritized-replay",
                 **kwargs):
        super().__init__(capacity=capacity, scope=scope, **kwargs)
        if alpha < 0.0:
            raise RLGraphError("alpha must be >= 0")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def create_variables(self, input_spaces):
        super().create_variables(input_spaces)
        self.priority_var = self.get_variable(
            "priorities", shape=(self.capacity,), dtype=np.float32,
            trainable=False, initializer="zeros")
        self.max_priority_var = self.get_variable(
            "max-priority", shape=(), dtype=np.float32, trainable=False,
            initializer=1.0)

    # ------------------------------------------------------------------
    @rlgraph_api
    def insert_records(self, records):
        return self._graph_fn_insert(records)

    @rlgraph_api
    def get_records(self, batch_size):
        return self._graph_fn_sample(batch_size)

    @rlgraph_api
    def update_records(self, indices, update):
        return self._graph_fn_update(indices, update)

    # ------------------------------------------------------------------
    @graph_fn
    def _graph_fn_insert(self, records):
        ops, idx = self._insert_ops(records)
        # New records enter at max priority so they are seen at least once.
        maxp = self.max_priority_var.read()
        pvals = F.mul(F.ones_like(idx, dtype=np.float32), maxp)
        pw = self.priority_var.scatter_update(idx, pvals)
        if pw is not None:
            ops.append(pw)
        return F.group(*ops)

    @graph_fn(returns=3)
    def _graph_fn_sample(self, batch_size):
        size = self.size_var.read()
        size_f = F.maximum(F.cast(size, np.float32), 1.0)
        positions = F.dyn_arange(np.int64(self.capacity))
        valid = F.less(F.cast(positions, np.float32), size_f)
        p_alpha = F.where(valid, F.power(self.priority_var.read(), self.alpha),
                          0.0)
        csum = F.cumsum(p_alpha, axis=0)
        total = F.maximum(F.getitem(csum, -1), 1e-8)
        u = F.mul(F.random_uniform(
            like=F.cast(F.dyn_arange(batch_size), np.float32)), total)
        idx = F.searchsorted(csum, u, side="left")
        idx = F.minimum(idx, F.maximum(F.cast(size, np.int64) - np.int64(1),
                                       np.int64(0)))
        probs = F.div(F.maximum(F.gather(p_alpha, idx), 1e-12), total)
        weights = F.power(F.mul(probs, size_f), -self.beta)
        weights = F.div(weights, F.maximum(F.reduce_max(weights), 1e-12))
        records = self._read_records(idx)
        return records, idx, weights

    @graph_fn
    def _graph_fn_update(self, indices, update):
        new_p = F.add(F.abs(update), 1e-8)
        write = self.priority_var.scatter_update(indices,
                                                 F.cast(new_p, np.float32))
        new_max = F.maximum(self.max_priority_var.read(),
                            F.cast(F.reduce_max(new_p), np.float32))
        bump = self.max_priority_var.assign(new_max)
        return F.group(write, bump)
