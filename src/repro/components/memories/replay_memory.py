"""Uniform replay memory component."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.components.memories.memory import Memory
from repro.core import graph_fn, rlgraph_api


class ReplayMemory(Memory):
    """Ring-buffer replay with uniform sampling.

    ``get_records`` returns (records, indices, importance_weights) with
    unit weights, so DQN-family agents can treat uniform and prioritized
    memories interchangeably.
    """

    def __init__(self, capacity: int = 1000, scope: str = "replay-memory",
                 **kwargs):
        super().__init__(capacity=capacity, scope=scope, **kwargs)

    @rlgraph_api
    def insert_records(self, records):
        return self._graph_fn_insert(records)

    @rlgraph_api
    def get_records(self, batch_size):
        return self._graph_fn_sample(batch_size)

    @rlgraph_api
    def get_size(self, batch_size):
        # `batch_size` anchors the call; only the size variable is read.
        return self._graph_fn_size(batch_size)

    @graph_fn
    def _graph_fn_insert(self, records):
        ops, _ = self._insert_ops(records)
        return F.group(*ops)

    @graph_fn(returns=3)
    def _graph_fn_sample(self, batch_size):
        idx = self._uniform_indices(batch_size)
        records = self._read_records(idx)
        weights = F.add(F.mul(F.cast(idx, np.float32), 0.0), 1.0)
        return records, idx, weights

    @graph_fn
    def _graph_fn_size(self, batch_size):
        return F.add(self.size_var.read(),
                     F.mul(F.cast(batch_size, np.int64), np.int64(0)))
