"""Uniform replay memory component."""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.components.memories.memory import Memory
from repro.core import graph_fn, rlgraph_api


class ReplayMemory(Memory):
    """Ring-buffer replay with uniform sampling.

    ``get_records`` returns (records, indices, importance_weights) with
    unit weights, so DQN-family agents can treat uniform and prioritized
    memories interchangeably.
    """

    def __init__(self, capacity: int = 1000, scope: str = "replay-memory",
                 **kwargs):
        super().__init__(capacity=capacity, scope=scope, **kwargs)

    @rlgraph_api
    def insert_records(self, records):
        return self._graph_fn_insert(records)

    @rlgraph_api
    def get_records(self, batch_size):
        return self._graph_fn_sample(batch_size)

    @rlgraph_api
    def get_size(self, batch_size):
        # `batch_size` anchors the call; only the size variable is read.
        return self._graph_fn_size(batch_size)

    @graph_fn
    def _graph_fn_insert(self, records):
        ops, _ = self._insert_ops(records)
        return F.group(*ops)

    @graph_fn(returns=3)
    def _graph_fn_sample(self, batch_size):
        idx = self._uniform_indices(batch_size)
        records = self._read_records(idx)
        # Unit importance weights: one cheap shape-tracking kernel (the
        # seed burned a cast + mul + add chain per sample).
        weights = F.ones_like(idx, dtype=np.float32)
        return records, idx, weights

    @graph_fn
    def _graph_fn_size(self, batch_size):
        # `anchor` threads the batch_size dependency through at zero
        # runtime cost — the compiler elides it to the size read.
        return F.anchor(self.size_var.read(), batch_size)
