"""Pure-Python replay buffers.

These are the host-side memories used by distributed replay-shard actors
(Ape-X keeps its buffers in dedicated processes, not in the learner's
graph) and by the RLlib-like baseline. They share sampling semantics with
the in-graph memory components, which the test-suite cross-checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.components.memories.segment_tree import (
    MinSegmentTree,
    SumSegmentTree,
)
from repro.utils.errors import RLGraphError


def _next_power_of_two(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


class ReplayBuffer:
    """Uniform ring-buffer replay over dicts of equally sized arrays."""

    def __init__(self, capacity: int, seed: Optional[int] = None):
        if capacity <= 0:
            raise RLGraphError("capacity must be positive")
        self.capacity = int(capacity)
        self.rng = np.random.default_rng(seed)
        self._storage: Dict[str, np.ndarray] = {}
        self.index = 0
        self.size = 0

    def _ensure_storage(self, records: Dict[str, np.ndarray]):
        if self._storage:
            return
        for key, value in records.items():
            value = np.asarray(value)
            self._storage[key] = np.zeros((self.capacity,) + value.shape[1:],
                                          dtype=value.dtype)

    def insert(self, records: Dict[str, np.ndarray]) -> np.ndarray:
        """Insert a batch (dict of (N, ...) arrays); returns row indices."""
        self._ensure_storage(records)
        n = len(next(iter(records.values())))
        idx = (self.index + np.arange(n)) % self.capacity
        for key, value in records.items():
            self._storage[key][idx] = np.asarray(value)
        self.index = int((self.index + n) % self.capacity)
        self.size = int(min(self.size + n, self.capacity))
        return idx

    def sample(self, batch_size: int) -> Dict[str, np.ndarray]:
        if self.size == 0:
            raise RLGraphError("Cannot sample from an empty buffer")
        idx = self.rng.integers(0, self.size, size=batch_size)
        return {key: arr[idx] for key, arr in self._storage.items()}

    def state_dict(self) -> Dict:
        """Snapshot contents + cursors + sampling RNG for checkpointing.

        Restoring into a same-capacity buffer reproduces the exact
        sample sequence of the captured run (replay-cursor restore is
        what makes bitwise resume-equivalence pass).
        """
        return {
            "storage": {k: np.array(v, copy=True)
                        for k, v in self._storage.items()},
            "index": self.index,
            "size": self.size,
            "rng_state": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: Dict) -> None:
        self._storage = {k: np.array(v, copy=True)
                         for k, v in state["storage"].items()}
        self.index = int(state["index"])
        self.size = int(state["size"])
        self.rng = np.random.default_rng()
        self.rng.bit_generator.state = state["rng_state"]

    def __len__(self):
        return self.size


class PrioritizedReplayBuffer(ReplayBuffer):
    """Proportional prioritized replay with segment trees."""

    def __init__(self, capacity: int, alpha: float = 0.6, beta: float = 0.4,
                 seed: Optional[int] = None):
        super().__init__(capacity, seed=seed)
        if alpha < 0:
            raise RLGraphError("alpha must be >= 0")
        self.alpha = float(alpha)
        self.beta = float(beta)
        tree_capacity = _next_power_of_two(self.capacity)
        self.sum_tree = SumSegmentTree(tree_capacity)
        self.min_tree = MinSegmentTree(tree_capacity)
        self.max_priority = 1.0

    def insert(self, records: Dict[str, np.ndarray],
               priorities: Optional[np.ndarray] = None) -> np.ndarray:
        idx = super().insert({k: v for k, v in records.items()
                              if k != "priorities"})
        if priorities is None:
            priorities = records.get("priorities")
        if priorities is None:
            priorities = np.full(len(idx), self.max_priority)
        priorities = np.maximum(np.asarray(priorities, dtype=np.float64), 1e-8)
        if priorities.size:
            self.max_priority = max(self.max_priority,
                                    float(priorities.max()))
            scaled = priorities ** self.alpha
            self.sum_tree.set_batch(idx, scaled)
            self.min_tree.set_batch(idx, scaled)
        return idx

    def sample(self, batch_size: int):
        """Returns (records, indices, importance_weights)."""
        if self.size == 0:
            raise RLGraphError("Cannot sample from an empty buffer")
        total = self.sum_tree.sum(0, self.size)
        prefixes = self.rng.uniform(0.0, total, size=batch_size)
        idx = self.sum_tree.index_of_prefixsum_batch(prefixes)
        idx = np.minimum(idx, self.size - 1)
        probs = self.sum_tree.get_batch(idx) / max(total, 1e-12)
        min_prob = self.min_tree.min(0, self.size) / max(total, 1e-12)
        max_weight = (min_prob * self.size) ** (-self.beta)
        weights = ((probs * self.size) ** (-self.beta)) / max(max_weight, 1e-12)
        records = {key: arr[idx] for key, arr in self._storage.items()}
        return records, idx, weights.astype(np.float32)

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state["sum_tree"] = np.array(self.sum_tree.values, copy=True)
        state["min_tree"] = np.array(self.min_tree.values, copy=True)
        state["max_priority"] = self.max_priority
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self.sum_tree.values[:] = state["sum_tree"]
        self.min_tree.values[:] = state["min_tree"]
        self.max_priority = float(state["max_priority"])

    def update_priorities(self, indices: np.ndarray, priorities: np.ndarray):
        indices = np.asarray(indices, dtype=np.int64)
        priorities = np.maximum(np.asarray(priorities, dtype=np.float64), 1e-8)
        if indices.size == 0:
            return
        bad = (indices < 0) | (indices >= self.capacity)
        if np.any(bad):
            raise RLGraphError(
                f"Priority index {int(indices[bad][0])} out of range")
        self.max_priority = max(self.max_priority, float(priorities.max()))
        scaled = priorities ** self.alpha
        self.sum_tree.set_batch(indices, scaled)
        self.min_tree.set_batch(indices, scaled)
