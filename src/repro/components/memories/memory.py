"""Base Memory component (paper Fig. 2).

Memories hold experience records as *variables* keyed by the flattened
record space, so the same component builds as static-graph state
(scatter/gather ops) or as define-by-run NumPy arrays. Variable shapes are
derived from the ``records`` input space when the component becomes
input-complete — the canonical example of the build barrier in §3.3.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict as TypingDict

import numpy as np

from repro.backend import functional as F
from repro.core import Component
from repro.spaces import Space
from repro.spaces.containers import ContainerSpace
from repro.spaces.space_utils import flatten_space, sanity_check_space
from repro.utils.errors import RLGraphError


class Memory(Component):
    """Common state/variable handling for replay memories."""

    def __init__(self, capacity: int = 1000, scope: str = "memory", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if capacity <= 0:
            raise RLGraphError("Memory capacity must be positive")
        self.capacity = int(capacity)
        # Only the record space gates variable creation — `update_records`
        # consumes this memory's own sampling outputs (paper §3.2).
        self.variable_creation_args = {"records", "batch_size"}
        self.record_space: Space = None
        self.flat_record_spaces = None
        self.buffers: "OrderedDict[str, object]" = OrderedDict()

    def check_input_spaces(self, input_spaces):
        space = input_spaces.get("records")
        if space is not None:
            if not space.has_batch_rank:
                raise RLGraphError(
                    f"Memory {self.global_scope}: records space must have a "
                    f"batch rank, got {space!r}")

    def create_variables(self, input_spaces):
        space = input_spaces["records"]
        self.record_space = space
        self.flat_record_spaces = flatten_space(space)
        for key, sub in self.flat_record_spaces.items():
            var_name = f"buffer/{key}" if key else "buffer"
            self.buffers[key] = self.get_variable(
                var_name, from_space=sub.strip_ranks(),
                add_batch_dim=self.capacity, trainable=False,
                initializer="zeros")
        self.index_var = self.get_variable("index", shape=(), dtype=np.int64,
                                           trainable=False)
        self.size_var = self.get_variable("size", shape=(), dtype=np.int64,
                                          trainable=False)

    # -- shared graph-fn helpers -----------------------------------------------
    def _flat_handles(self, records):
        """Flatten a (possibly nested) record handle structure by the same
        keys as the record space."""
        from repro.spaces.space_utils import flatten_value

        if isinstance(records, (dict, tuple)):
            return flatten_value(records)
        return OrderedDict({"": records})

    def _insert_ops(self, records):
        """Write a record batch at the ring index; returns (ops, indices)."""
        flat = self._flat_handles(records)
        first = next(iter(flat.values()))
        n = F.getitem(F.shape_of(first), 0)
        idx = F.mod(F.add(F.dyn_arange(n), self.index_var.read()),
                    self.capacity)
        writes = []
        for key, handle in flat.items():
            if key not in self.buffers:
                raise RLGraphError(
                    f"Memory {self.global_scope}: unexpected record key "
                    f"{key!r}; buffers are {list(self.buffers)}")
            writes.append(self.buffers[key].scatter_update(idx, handle))
        new_index = F.mod(F.add(self.index_var.read(), n), self.capacity)
        adv = self.index_var.assign(new_index)
        new_size = F.minimum(F.add(self.size_var.read(), n),
                             np.int64(self.capacity))
        grow = self.size_var.assign(new_size)
        for op in (adv, grow):
            if op is not None:
                op.with_deps(*[w for w in writes if w is not None])
        ops = [w for w in writes if w is not None]
        ops += [op for op in (adv, grow) if op is not None]
        return ops, idx

    def _read_records(self, idx):
        """Gather rows at ``idx`` for every buffer, re-nesting structure."""
        from repro.spaces.space_utils import unflatten_value

        flat = OrderedDict(
            (key, F.gather(buf.read(), idx))
            for key, buf in self.buffers.items())
        if list(flat.keys()) == [""]:
            return flat[""]
        return unflatten_value(flat)

    def _uniform_indices(self, batch_size):
        """Random in-range row indices (uniform over current size)."""
        u = F.random_uniform(like=F.cast(F.dyn_arange(batch_size), np.float32))
        size_f = F.maximum(F.cast(self.size_var.read(), np.float32), 1.0)
        return F.cast(F.mul(u, size_f), np.int64)
