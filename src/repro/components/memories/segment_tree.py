"""Segment trees for prioritized experience replay (Schaul et al. 2016).

The sum tree supports O(log n) prefix-sum sampling and the min tree
O(log 1) minimum queries for importance-weight normalization. This is the
sub-component shown inside the PrioritizedReplay example in paper Fig. 2.
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

from repro.utils.errors import RLGraphError


class SegmentTree:
    """A binary-indexed segment tree over a fixed capacity.

    ``capacity`` must be a power of two; internal nodes live at indices
    [1, capacity), leaves at [capacity, 2 * capacity).
    """

    def __init__(self, capacity: int, operation: Callable = operator.add,
                 neutral_element: float = 0.0, np_operation=None):
        if capacity <= 0 or capacity & (capacity - 1) != 0:
            raise RLGraphError(
                f"SegmentTree capacity must be a positive power of two, "
                f"got {capacity}")
        self.capacity = capacity
        self.operation = operation
        self.neutral_element = neutral_element
        # Vectorized twin of ``operation`` (e.g. np.add for a sum tree);
        # enables the batched level-by-level updates in set_batch.
        self.np_operation = np_operation
        self.values = np.full(2 * capacity, neutral_element, dtype=np.float64)

    def __setitem__(self, idx: int, value: float):
        if not 0 <= idx < self.capacity:
            raise IndexError(idx)
        pos = idx + self.capacity
        self.values[pos] = value
        pos //= 2
        while pos >= 1:
            self.values[pos] = self.operation(self.values[2 * pos],
                                              self.values[2 * pos + 1])
            pos //= 2

    def __getitem__(self, idx: int) -> float:
        if not 0 <= idx < self.capacity:
            raise IndexError(idx)
        return float(self.values[idx + self.capacity])

    def set_batch(self, idx, values) -> None:
        """Vectorized ``self[idx[k]] = values[k]`` for index arrays.

        Instead of one root-to-leaf walk per element, all touched leaves
        are written at once and each affected tree level is recomputed in
        a single NumPy operation — O(log n) array ops per batch rather
        than O(batch * log n) Python steps. Duplicate indices follow
        NumPy fancy-assignment semantics (last write wins), matching a
        sequential loop.
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        values = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self.capacity:
            raise IndexError(int(idx[(idx < 0) | (idx >= self.capacity)][0]))
        if self.np_operation is None:
            for i, v in zip(idx, values):  # no vectorized operation known
                self[int(i)] = float(v)
            return
        self.values[idx + self.capacity] = values
        parents = np.unique(idx + self.capacity) >> 1
        while parents[0] > 0:
            self.values[parents] = self.np_operation(
                self.values[2 * parents], self.values[2 * parents + 1])
            parents = np.unique(parents >> 1)

    def get_batch(self, idx) -> np.ndarray:
        """Vectorized leaf read: ``values[idx]`` as a float64 array."""
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= self.capacity):
            raise IndexError(int(idx[(idx < 0) | (idx >= self.capacity)][0]))
        return self.values[idx + self.capacity]

    def reduce(self, start: int = 0, end: int = None) -> float:
        """Apply the operation over [start, end)."""
        if end is None:
            end = self.capacity
        if end < 0:
            end += self.capacity
        start += self.capacity
        end += self.capacity
        result = self.neutral_element
        while start < end:
            if start & 1:
                result = self.operation(result, self.values[start])
                start += 1
            if end & 1:
                end -= 1
                result = self.operation(result, self.values[end])
            start //= 2
            end //= 2
        return float(result)


class SumSegmentTree(SegmentTree):
    def __init__(self, capacity: int):
        super().__init__(capacity, operator.add, 0.0, np_operation=np.add)

    def sum(self, start: int = 0, end: int = None) -> float:
        return self.reduce(start, end)

    def index_of_prefixsum(self, prefixsum: float) -> int:
        """Smallest leaf index i with sum(values[:i+1]) > prefixsum."""
        if not 0 <= prefixsum <= self.sum() + 1e-5:
            raise RLGraphError(f"prefixsum {prefixsum} out of range "
                               f"[0, {self.sum()}]")
        pos = 1
        while pos < self.capacity:
            left = 2 * pos
            if self.values[left] > prefixsum:
                pos = left
            else:
                prefixsum -= self.values[left]
                pos = left + 1
        return pos - self.capacity

    def index_of_prefixsum_batch(self, prefixes) -> np.ndarray:
        """Vectorized :meth:`index_of_prefixsum` for a prefix array.

        One level-by-level descent over the flat tree array: every
        iteration resolves one tree level for the whole batch (same
        float-subtraction order as the scalar walk, so results are
        bitwise identical).
        """
        prefixes = np.atleast_1d(np.asarray(prefixes, dtype=np.float64))
        if prefixes.size == 0:
            return np.zeros(0, dtype=np.int64)
        total = self.sum()
        bad = (prefixes < 0) | (prefixes > total + 1e-5)
        if np.any(bad):
            raise RLGraphError(f"prefixsum {float(prefixes[bad][0])} out of "
                               f"range [0, {total}]")
        prefixes = prefixes.copy()
        pos = np.ones(prefixes.shape, dtype=np.int64)
        while pos[0] < self.capacity:  # all positions share one level
            left = 2 * pos
            left_values = self.values[left]
            go_left = left_values > prefixes
            prefixes = np.where(go_left, prefixes, prefixes - left_values)
            pos = np.where(go_left, left, left + 1)
        return pos - self.capacity


class MinSegmentTree(SegmentTree):
    def __init__(self, capacity: int):
        super().__init__(capacity, min, float("inf"), np_operation=np.minimum)

    def min(self, start: int = 0, end: int = None) -> float:
        return self.reduce(start, end)
