"""Segment trees for prioritized experience replay (Schaul et al. 2016).

The sum tree supports O(log n) prefix-sum sampling and the min tree
O(log 1) minimum queries for importance-weight normalization. This is the
sub-component shown inside the PrioritizedReplay example in paper Fig. 2.
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

from repro.utils.errors import RLGraphError


class SegmentTree:
    """A binary-indexed segment tree over a fixed capacity.

    ``capacity`` must be a power of two; internal nodes live at indices
    [1, capacity), leaves at [capacity, 2 * capacity).
    """

    def __init__(self, capacity: int, operation: Callable = operator.add,
                 neutral_element: float = 0.0):
        if capacity <= 0 or capacity & (capacity - 1) != 0:
            raise RLGraphError(
                f"SegmentTree capacity must be a positive power of two, "
                f"got {capacity}")
        self.capacity = capacity
        self.operation = operation
        self.neutral_element = neutral_element
        self.values = np.full(2 * capacity, neutral_element, dtype=np.float64)

    def __setitem__(self, idx: int, value: float):
        if not 0 <= idx < self.capacity:
            raise IndexError(idx)
        pos = idx + self.capacity
        self.values[pos] = value
        pos //= 2
        while pos >= 1:
            self.values[pos] = self.operation(self.values[2 * pos],
                                              self.values[2 * pos + 1])
            pos //= 2

    def __getitem__(self, idx: int) -> float:
        if not 0 <= idx < self.capacity:
            raise IndexError(idx)
        return float(self.values[idx + self.capacity])

    def reduce(self, start: int = 0, end: int = None) -> float:
        """Apply the operation over [start, end)."""
        if end is None:
            end = self.capacity
        if end < 0:
            end += self.capacity
        start += self.capacity
        end += self.capacity
        result = self.neutral_element
        while start < end:
            if start & 1:
                result = self.operation(result, self.values[start])
                start += 1
            if end & 1:
                end -= 1
                result = self.operation(result, self.values[end])
            start //= 2
            end //= 2
        return float(result)


class SumSegmentTree(SegmentTree):
    def __init__(self, capacity: int):
        super().__init__(capacity, operator.add, 0.0)

    def sum(self, start: int = 0, end: int = None) -> float:
        return self.reduce(start, end)

    def index_of_prefixsum(self, prefixsum: float) -> int:
        """Smallest leaf index i with sum(values[:i+1]) > prefixsum."""
        if not 0 <= prefixsum <= self.sum() + 1e-5:
            raise RLGraphError(f"prefixsum {prefixsum} out of range "
                               f"[0, {self.sum()}]")
        pos = 1
        while pos < self.capacity:
            left = 2 * pos
            if self.values[left] > prefixsum:
                pos = left
            else:
                prefixsum -= self.values[left]
                pos = left + 1
        return pos - self.capacity


class MinSegmentTree(SegmentTree):
    def __init__(self, capacity: int):
        super().__init__(capacity, min, float("inf"))

    def min(self, start: int = 0, end: int = None) -> float:
        return self.reduce(start, end)
