"""Memory components: ring buffers, uniform and prioritized replay."""

from repro.components.memories.segment_tree import (
    MinSegmentTree,
    SegmentTree,
    SumSegmentTree,
)
from repro.components.memories.python_memory import (
    PrioritizedReplayBuffer,
    ReplayBuffer,
)
from repro.components.memories.memory import Memory
from repro.components.memories.replay_memory import ReplayMemory
from repro.components.memories.prioritized_replay import PrioritizedReplay

__all__ = [
    "SegmentTree",
    "SumSegmentTree",
    "MinSegmentTree",
    "ReplayBuffer",
    "PrioritizedReplayBuffer",
    "Memory",
    "ReplayMemory",
    "PrioritizedReplay",
]
