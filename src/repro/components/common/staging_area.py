"""StagingArea: a one-slot device buffer used to hide transfer latency.

IMPALA's learner stages the next batch while training on the previous one
(paper §5.1). On our simulated devices the latency-hiding effect is a
single-slot double buffer; ``stage`` deposits a batch and returns the
previously staged one (or the same batch on the first call).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api


class StagingArea(Component):
    """Single-slot staging buffer (get-then-put semantics)."""

    def __init__(self, scope: str = "staging-area", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self._slot = None
        self.stage_count = 0

    @rlgraph_api
    def stage(self, records):
        return self._graph_fn_stage(records)

    @graph_fn(requires_variables=False)
    def _graph_fn_stage(self, records):
        from repro.spaces.space_utils import flatten_value, unflatten_value

        flat = flatten_value(records) if isinstance(records, (dict, tuple)) \
            else {"": records}
        keys = list(flat.keys())

        def _swap(*leaves):
            incoming = {k: np.asarray(v) for k, v in zip(keys, leaves)}
            previous = self._slot if self._slot is not None else incoming
            self._slot = incoming
            self.stage_count += 1
            return tuple(previous[k] for k in keys)

        outs = []
        for i, key in enumerate(keys):
            # One py_func per leaf would re-run the swap; instead run the
            # swap once and read cached leaves for the remaining keys.
            if i == 0:
                def _first(*leaves):
                    self._last_out = _swap(*leaves)
                    return self._last_out[0]

                outs.append(F.py_func(_first, list(flat.values())))
            else:
                def _rest(_anchor, idx=i):
                    return self._last_out[idx]

                outs.append(F.py_func(_rest, [outs[0]]))
        flat_out = dict(zip(keys, outs))
        if keys == [""]:
            return flat_out[""]
        return unflatten_value(flat_out)
