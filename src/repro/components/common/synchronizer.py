"""Synchronizer: copies variables from a source to a target component.

Used for DQN target networks and for worker <- learner weight pulls in
the distributed executors. Pairing is by variable name suffix (the part
below each component's scope), so structurally identical components sync
regardless of where they sit in the tree.
"""

from __future__ import annotations

from typing import Optional

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


def _relative_names(component):
    prefix = component.global_scope + "/"
    registry = component.variable_registry(trainable_only=True)
    out = {}
    for name, var in registry.items():
        if not name.startswith(prefix):
            raise RLGraphError(f"Variable {name} outside scope {prefix}")
        out[name[len(prefix):]] = var
    return out


class Synchronizer(Component):
    """Assigns every trainable variable of ``source`` onto ``target``.

    Optionally performs a soft (Polyak) update with rate ``tau``.
    """

    def __init__(self, source: Component, target: Component,
                 tau: Optional[float] = None, scope: str = "synchronizer",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.source = source
        self.target = target
        self.tau = tau
        # Both components' variables must exist before our sync ops build.
        self.build_dependencies = [source, target]

    @rlgraph_api
    def sync(self):
        return self._graph_fn_sync()

    @graph_fn(requires_variables=False)
    def _graph_fn_sync(self):
        src = _relative_names(self.source)
        dst = _relative_names(self.target)
        if set(src) != set(dst):
            raise RLGraphError(
                f"Synchronizer: variable structure mismatch "
                f"{sorted(src)} vs {sorted(dst)}")
        ops = []
        for key in sorted(src):
            if src[key].shape != dst[key].shape:
                raise RLGraphError(
                    f"Synchronizer: shape mismatch for {key}: "
                    f"{src[key].shape} vs {dst[key].shape}")
            if self.tau is None:
                ops.append(dst[key].assign(src[key].read()))
            else:
                blended = F.add(F.mul(self.tau, src[key].read()),
                                F.mul(1.0 - self.tau, dst[key].read()))
                ops.append(dst[key].assign(blended))
        return F.group(*ops)
