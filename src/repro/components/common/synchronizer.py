"""Synchronizer: copies variables from a source to a target component.

Used for DQN target networks and for worker <- learner weight pulls in
the distributed executors. Pairing is by variable name suffix (the part
below each component's scope), so structurally identical components sync
regardless of where they sit in the tree.

The sorted key pairing is computed and validated ONCE (first sync build
/ call) and cached — the seed re-sorted and re-validated shapes on every
define-by-run sync call. Validation reports *all* mismatched keys in one
aggregated error. When the build's ``optimize`` level is not ``"none"``,
both sides coalesce into flat parameter slabs
(:class:`~repro.backend.variables.ParamSlab`) and the sync moves ONE
flat ndarray (a single assign, or three nodes for a Polyak blend)
instead of a per-variable copy loop; ``optimize="none"`` keeps the seed
per-variable construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.backend import functional as F
from repro.backend.variables import ParamSlab, Variable
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


def _relative_names(component):
    prefix = component.global_scope + "/"
    registry = component.variable_registry(trainable_only=True)
    out = {}
    for name, var in registry.items():
        if not name.startswith(prefix):
            raise RLGraphError(f"Variable {name} outside scope {prefix}")
        out[name[len(prefix):]] = var
    return out


class Synchronizer(Component):
    """Assigns every trainable variable of ``source`` onto ``target``.

    Optionally performs a soft (Polyak) update with rate ``tau``.

    ``flat=False`` pins the per-variable construction even at optimized
    levels. This is required when the source's variables are a strict
    subset of a larger optimizer slab (e.g. SAC's per-critic syncs under
    a joint policy+critics+temperature optimizer): a subset cannot
    re-coalesce into its own slab, and forcing the per-variable path
    avoids depending on which side claims storage first. The blend
    arithmetic is elementwise-identical on both paths.
    """

    def __init__(self, source: Component, target: Component,
                 tau: Optional[float] = None, flat: Optional[bool] = None,
                 scope: str = "synchronizer", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.source = source
        self.target = target
        self.tau = tau
        # Both components' variables must exist before our sync ops build.
        self.build_dependencies = [source, target]
        # Build-time caches: sorted (src, dst) variable pairing and,
        # on the flat path, the two coalesced slabs.
        self._pairs: Optional[List[Tuple[Variable, Variable]]] = None
        self._slabs: Optional[Tuple[ParamSlab, ParamSlab]] = None
        # flat=False forces per-variable; None resolves from the build.
        self._use_flat: Optional[bool] = False if flat is False else None

    @rlgraph_api
    def sync(self):
        return self._graph_fn_sync()

    def _build_pairs(self) -> None:
        """Compute + validate the sorted key pairing once; raise one
        aggregated error listing every structural/shape mismatch."""
        src = _relative_names(self.source)
        dst = _relative_names(self.target)
        problems = []
        only_src = sorted(set(src) - set(dst))
        only_dst = sorted(set(dst) - set(src))
        if only_src:
            problems.append(f"only in source: {only_src}")
        if only_dst:
            problems.append(f"only in target: {only_dst}")
        for key in sorted(set(src) & set(dst)):
            if src[key].shape != dst[key].shape:
                problems.append(
                    f"shape mismatch for {key!r}: {src[key].shape} vs "
                    f"{dst[key].shape}")
        if problems:
            raise RLGraphError(
                f"Synchronizer {self.global_scope}: variable structure "
                f"mismatch — " + "; ".join(problems))
        self._pairs = [(src[key], dst[key]) for key in sorted(src)]

    def _resolve_flat(self) -> bool:
        """Flat slab sync unless the build runs at ``optimize="none"``
        (the paper-faithful ablation) or the sides cannot coalesce."""
        if self._use_flat is not None:
            return self._use_flat
        from repro.core.component import get_current_build
        build = get_current_build()
        level = getattr(build, "optimize", "fused") \
            if build is not None else "fused"
        use = level != "none"
        if use:
            try:
                # Sorted by full name == sorted by relative name (the
                # scope prefix is constant per side), so segment i of
                # the source slab pairs with segment i of the target.
                src_slab = ParamSlab.ensure(
                    [s for s, _ in self._pairs],
                    name=f"{self.source.global_scope}/slab")
                dst_slab = ParamSlab.ensure(
                    [d for _, d in self._pairs],
                    name=f"{self.target.global_scope}/slab")
                self._slabs = (src_slab, dst_slab)
            except RLGraphError:
                use = False  # mixed dtypes / partial slab: per-var path
        self._use_flat = use
        return use

    @graph_fn(requires_variables=False)
    def _graph_fn_sync(self):
        if self._pairs is None:
            self._build_pairs()
        if self._resolve_flat():
            src_slab, dst_slab = self._slabs
            src_flat = src_slab.flat_variable().read()
            dst_var = dst_slab.flat_variable()
            if self.tau is None:
                op = dst_var.assign(src_flat)
            else:
                blended = F.add(F.mul(self.tau, src_flat),
                                F.mul(1.0 - self.tau, dst_var.read()))
                op = dst_var.assign(blended)
            return F.group(*([op] if op is not None else []))
        ops = []
        for src_var, dst_var in self._pairs:
            if self.tau is None:
                ops.append(dst_var.assign(src_var.read()))
            else:
                blended = F.add(F.mul(self.tau, src_var.read()),
                                F.mul(1.0 - self.tau, dst_var.read()))
                ops.append(dst_var.assign(blended))
        return F.group(*ops)
