"""Container split/merge components (paper Fig. 3, line 5).

RLgraph records routinely bundle (states, actions, rewards, next states,
terminals) into one Dict space; the splitter takes such a record apart
into individually connectable streams, and the merger is its inverse.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces import Dict as DictSpace, Tuple as TupleSpace
from repro.utils.errors import RLGraphError


class ContainerSplitter(Component):
    """Splits a Dict (or Tuple) record into its sub-values.

    Args:
        *output_order: for Dict inputs, the key order of the returned
            tuple. For Tuple inputs pass indices (or nothing for all, in
            order).
    """

    def __init__(self, *output_order, scope: str = "splitter", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.output_order: Sequence = output_order
        if not output_order:
            raise RLGraphError(
                "ContainerSplitter needs an explicit output order (the "
                "number of outputs must be known at assembly time)")

    @rlgraph_api
    def split(self, inputs):
        return self._graph_fn_split(inputs)

    # Dynamically declared number of outputs: override the decorator's
    # static `returns` by constructing per-instance.
    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)

    def _graph_fn_split(self, inputs):
        raise NotImplementedError  # replaced per-instance in __new__

    def __new__(cls, *output_order, **kwargs):
        # Each instance gets a graph_fn with the right number of returns.
        instance = super().__new__(cls)

        @graph_fn(returns=len(output_order) if output_order else 1,
                  requires_variables=False)
        def _graph_fn_split(self, inputs):
            parts = []
            for key in self.output_order:
                if isinstance(inputs, dict):
                    if key not in inputs:
                        raise RLGraphError(
                            f"Splitter key {key!r} not in record keys "
                            f"{sorted(inputs)}")
                    parts.append(inputs[key])
                elif isinstance(inputs, (tuple, list)):
                    parts.append(inputs[int(key)])
                else:
                    raise RLGraphError(
                        f"ContainerSplitter got non-container input "
                        f"{type(inputs).__name__}")
            return tuple(parts) if len(parts) > 1 else parts[0]

        instance._graph_fn_split = _graph_fn_split.__get__(instance, cls)
        return instance


class ContainerMerger(Component):
    """Merges individual streams back into a Dict record."""

    def __init__(self, *keys, scope: str = "merger", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if not keys:
            raise RLGraphError("ContainerMerger needs the output keys")
        self.keys = list(keys)

    @rlgraph_api
    def merge(self, *values):
        return self._graph_fn_merge(*values)

    @graph_fn(requires_variables=False)
    def _graph_fn_merge(self, *values):
        if len(values) != len(self.keys):
            raise RLGraphError(
                f"ContainerMerger expects {len(self.keys)} values "
                f"({self.keys}), got {len(values)}")
        return {key: value for key, value in zip(self.keys, values)}
