"""FIFOQueue component: the globally shared blocking queue IMPALA uses
(paper §5.1: actors enqueue rollouts, the learner dequeues them).

The queue itself is host-side Python state; enqueue/dequeue appear in the
computation graph as stateful ``py_func`` ops, mirroring TF's queue ops.
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Optional

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphQueueError


class FIFOQueue(Component):
    """Bounded, thread-safe FIFO of record batches.

    ``dequeue`` blocks until data is available (with an optional timeout,
    after which it raises), which is exactly the back-pressure behaviour
    the IMPALA learner relies on.
    """

    def __init__(self, capacity: int = 64, timeout: Optional[float] = 10.0,
                 scope: str = "fifo-queue", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.capacity = int(capacity)
        self.timeout = timeout
        self._queue: _queue.Queue = _queue.Queue(maxsize=self.capacity)
        self._closed = threading.Event()

    # -- host-side primitives (shared by both backends via py_func) -------
    def put(self, item) -> int:
        if self._closed.is_set():
            raise RLGraphQueueError(f"Queue {self.scope} is closed")
        try:
            self._queue.put(item, timeout=self.timeout)
        except _queue.Full:
            raise RLGraphQueueError(
                f"Queue {self.scope} full after {self.timeout}s") from None
        return self._queue.qsize()

    def get(self):
        import time
        deadline = (None if self.timeout is None
                    else time.monotonic() + self.timeout)
        while True:
            if self._closed.is_set() and self._queue.empty():
                raise RLGraphQueueError(f"Queue {self.scope} is closed")
            try:
                return self._queue.get(timeout=0.05)
            except _queue.Empty:
                if deadline is not None and time.monotonic() > deadline:
                    raise RLGraphQueueError(
                        f"Queue {self.scope} empty after {self.timeout}s"
                    ) from None

    def close(self):
        self._closed.set()

    def size(self) -> int:
        return self._queue.qsize()

    # -- component API ------------------------------------------------------
    @rlgraph_api
    def enqueue(self, records):
        return self._graph_fn_enqueue(records)

    @rlgraph_api
    def dequeue(self, token):
        # ``token`` is a dummy tensor input so the op has a feedable
        # anchor in static-graph mode; its value is ignored.
        return self._graph_fn_dequeue(token)

    @graph_fn(requires_variables=False)
    def _graph_fn_enqueue(self, records):
        from repro.spaces.space_utils import flatten_value, unflatten_value

        flat = flatten_value(records) if isinstance(records, (dict, tuple)) \
            else {"": records}
        keys = list(flat.keys())

        def _put(*leaves):
            self.put({k: np.asarray(v) for k, v in zip(keys, leaves)})
            return np.asarray(0, dtype=np.int64)

        return F.py_func(_put, list(flat.values()), shape=(), dtype=np.int64)

    @graph_fn(requires_variables=False)
    def _graph_fn_dequeue(self, token):
        def _get(_):
            item = self.get()
            # Stash structured item; py_func returns a ticket the caller
            # redeems via `last_dequeued`.
            self._last = item
            return np.asarray(len(item), dtype=np.int64)

        return F.py_func(_get, [token], shape=(), dtype=np.int64)

    def last_dequeued(self):
        """The flat dict captured by the most recent dequeue op run."""
        from repro.spaces.space_utils import unflatten_value
        return unflatten_value(self._last)
