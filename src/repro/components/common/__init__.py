"""Common plumbing components: container split/merge, sync, queues."""

from repro.components.common.splitters import ContainerSplitter, ContainerMerger
from repro.components.common.synchronizer import Synchronizer
from repro.components.common.fifo_queue import FIFOQueue
from repro.components.common.staging_area import StagingArea
from repro.components.common.batch_splitter import (
    BatchSplitter,
    shard_sizes,
    split_batch,
)

__all__ = [
    "ContainerSplitter",
    "ContainerMerger",
    "Synchronizer",
    "FIFOQueue",
    "StagingArea",
    "BatchSplitter",
    "shard_sizes",
    "split_batch",
]
