"""BatchSplitter: splits an input batch into per-device sub-batches.

This is the generic input-space splitter the graph executor inserts when
expanding the component graph for the synchronous multi-GPU strategy
(paper §4.1): each replica trains on one shard, gradients are averaged.

Two entry points share one remainder policy:

* the :class:`BatchSplitter` component — the in-graph splitter used by
  the multi-device tower construction;
* :func:`split_batch` — the host-side splitter every executor-side
  shard split routes through (learner groups, replay fan-out), so
  K∤batch_size behavior is *one* documented decision instead of ad-hoc
  slicing at each call site.

Remainder policies (``B = batch size``, ``K = num shards``):

* ``"last"`` (default) — contiguous shards of ``B // K`` rows, the last
  shard absorbing the ``B % K`` remainder.  No row is ever dropped;
  shard boundaries are a pure function of ``(B, K)`` so repeated runs
  shard identically.
* ``"drop"`` — the seed behavior: every shard gets exactly ``B // K``
  rows and the trailing remainder is discarded.  Only for callers that
  pad/trim upstream and want uniform shards.
* ``"strict"`` — raise unless ``K`` divides ``B`` (host-side only).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError

REMAINDER_POLICIES = ("last", "drop", "strict")


def shard_sizes(batch_size: int, num_shards: int,
                remainder: str = "last") -> List[int]:
    """Deterministic shard sizes for ``batch_size`` rows over
    ``num_shards`` shards under ``remainder`` (see module docstring)."""
    if remainder not in REMAINDER_POLICIES:
        raise RLGraphError(
            f"Unknown remainder policy {remainder!r}; expected one of "
            f"{REMAINDER_POLICIES}")
    batch_size, num_shards = int(batch_size), int(num_shards)
    if num_shards < 1:
        raise RLGraphError("num_shards must be >= 1")
    base, rem = divmod(batch_size, num_shards)
    if base < 1:
        raise RLGraphError(
            f"Cannot split a batch of {batch_size} rows into {num_shards} "
            f"non-empty shards")
    if remainder == "strict" and rem:
        raise RLGraphError(
            f"remainder='strict': batch size {batch_size} is not divisible "
            f"by num_shards {num_shards}")
    sizes = [base] * num_shards
    if remainder == "last":
        sizes[-1] += rem
    return sizes


def split_batch(batch: Dict[str, np.ndarray], num_shards: int,
                remainder: str = "last", axis: int = 0,
                axes: Optional[Dict[str, int]] = None
                ) -> List[Dict[str, np.ndarray]]:
    """Split a dict-of-arrays batch into ``num_shards`` contiguous
    shards along ``axis`` (per-key override via ``axes``; a key mapped
    to ``None`` is replicated whole into every shard — e.g. IMPALA's
    ``bootstrap_states`` ride along unsplit when rollouts shard on the
    time-major batch axis).

    Shards are contiguous slices in original row order, so
    concatenating per-shard results (TD errors, priorities) restores
    the input's row alignment exactly.
    """
    if not batch:
        raise RLGraphError("split_batch: empty batch dict")
    axes = axes or {}
    split_keys = [k for k in batch if axes.get(k, axis) is not None]
    if not split_keys:
        raise RLGraphError("split_batch: every key is replicated; nothing "
                           "determines the batch size")
    first = split_keys[0]
    batch_size = np.asarray(batch[first]).shape[axes.get(first, axis)]
    sizes = shard_sizes(batch_size, num_shards, remainder=remainder)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    shards: List[Dict[str, np.ndarray]] = []
    for i in range(num_shards):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        shard: Dict[str, np.ndarray] = {}
        for key, value in batch.items():
            ax = axes.get(key, axis)
            if ax is None:
                shard[key] = value
                continue
            arr = np.asarray(value)
            if arr.shape[ax] != batch_size:
                raise RLGraphError(
                    f"split_batch: key {key!r} has {arr.shape[ax]} rows on "
                    f"axis {ax}, expected {batch_size} (key {first!r})")
            index = [slice(None)] * arr.ndim
            index[ax] = slice(lo, hi)
            shard[key] = arr[tuple(index)]
        shards.append(shard)
    return shards


class BatchSplitter(Component):
    """Splits the leading batch dim into ``num_shards`` slices.

    Container records are split leaf-wise, preserving structure per
    shard.  ``remainder`` follows the module-level policy table
    (``"strict"`` needs a host-side batch size and is therefore not
    available in-graph): with the default ``"last"`` the final shard
    absorbs the ``B % K`` rows; ``"drop"`` reproduces the seed behavior
    of silently discarding them.
    """

    def __init__(self, num_shards: int, remainder: str = "last",
                 scope: str = "batch-splitter", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if num_shards < 1:
            raise RLGraphError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self.remainder = remainder

    def __new__(cls, num_shards, remainder: str = "last", **kwargs):
        if remainder not in ("last", "drop"):
            raise RLGraphError(
                f"BatchSplitter remainder must be 'last' or 'drop', "
                f"got {remainder!r}")
        instance = super().__new__(cls)

        @graph_fn(returns=num_shards, requires_variables=False)
        def _graph_fn_split(self, records):
            from repro.spaces.space_utils import flatten_value, unflatten_value

            is_container = isinstance(records, (dict, tuple))
            flat = flatten_value(records) if is_container else {"": records}
            first = next(iter(flat.values()))
            batch = F.getitem(F.shape_of(first), 0)
            shard = F.cast(F.div(F.cast(batch, np.float32),
                                 float(self.num_shards)), np.int64)
            shards = []
            for i in range(self.num_shards):
                if remainder == "last" and i == self.num_shards - 1:
                    # Last shard absorbs the remainder: size = B - s*(K-1).
                    size = F.sub(batch, F.mul(shard,
                                              np.int64(self.num_shards - 1)))
                else:
                    size = shard
                idx = F.add(F.dyn_arange(size), F.mul(shard, i))
                piece = {k: F.gather(v, idx) for k, v in flat.items()}
                shards.append(unflatten_value(piece) if is_container
                              else piece[""])
            return tuple(shards) if self.num_shards > 1 else shards[0]

        instance._graph_fn_split = _graph_fn_split.__get__(instance, cls)
        return instance

    @rlgraph_api
    def split(self, records):
        return self._graph_fn_split(records)

    def _graph_fn_split(self, records):
        raise NotImplementedError  # replaced per-instance in __new__
