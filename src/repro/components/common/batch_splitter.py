"""BatchSplitter: splits an input batch into per-device sub-batches.

This is the generic input-space splitter the graph executor inserts when
expanding the component graph for the synchronous multi-GPU strategy
(paper §4.1): each replica trains on one shard, gradients are averaged.
"""

from __future__ import annotations

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.utils.errors import RLGraphError


class BatchSplitter(Component):
    """Splits the leading batch dim into ``num_shards`` equal slices.

    Container records are split leaf-wise, preserving structure per shard.
    The batch size must be divisible by ``num_shards`` (the executor pads
    or trims update batches to guarantee this).
    """

    def __init__(self, num_shards: int, scope: str = "batch-splitter", **kwargs):
        super().__init__(scope=scope, **kwargs)
        if num_shards < 1:
            raise RLGraphError("num_shards must be >= 1")
        self.num_shards = int(num_shards)

    def __new__(cls, num_shards, **kwargs):
        instance = super().__new__(cls)

        @graph_fn(returns=num_shards, requires_variables=False)
        def _graph_fn_split(self, records):
            from repro.spaces.space_utils import flatten_value, unflatten_value

            is_container = isinstance(records, (dict, tuple))
            flat = flatten_value(records) if is_container else {"": records}
            first = next(iter(flat.values()))
            batch = F.getitem(F.shape_of(first), 0)
            shard = F.cast(F.div(F.cast(batch, np.float32),
                                 float(self.num_shards)), np.int64)
            shards = []
            for i in range(self.num_shards):
                idx = F.add(F.dyn_arange(shard), F.mul(shard, i))
                piece = {k: F.gather(v, idx) for k, v in flat.items()}
                shards.append(unflatten_value(piece) if is_container
                              else piece[""])
            return tuple(shards) if self.num_shards > 1 else shards[0]

        instance._graph_fn_split = _graph_fn_split.__get__(instance, cls)
        return instance

    @rlgraph_api
    def split(self, records):
        return self._graph_fn_split(records)

    def _graph_fn_split(self, records):
        raise NotImplementedError  # replaced per-instance in __new__
