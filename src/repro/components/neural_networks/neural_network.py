"""NeuralNetwork: a sequential stack of layer components.

Built from declarative specs (list of layer dicts, a JSON file path, or
layer instances), matching the paper's "network with list of layers"
configuration style (§3.4). A Flatten layer is auto-inserted between a
conv (rank-3) output and the first dense layer so common Atari configs
"just work".
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.components.neural_networks.layers import (
    LAYERS,
    DenseLayer,
    FlattenLayer,
    Layer,
)
from repro.core import Component, rlgraph_api
from repro.utils.config import resolve_config
from repro.utils.errors import RLGraphError


class NeuralNetwork(Component):
    """Sequential network. ``call`` chains each layer's ``apply``."""

    def __init__(self, layers: Any, scope: str = "neural-network", **kwargs):
        super().__init__(scope=scope, **kwargs)
        specs = self._resolve_layer_specs(layers)
        self.layers: List[Layer] = []
        used_scopes = set()
        needs_flatten_before_dense = False
        for i, spec in enumerate(specs):
            layer = LAYERS.from_spec(spec) if not isinstance(spec, Layer) else spec
            if (needs_flatten_before_dense and isinstance(layer, DenseLayer)
                    and not any(isinstance(l, FlattenLayer) for l in self.layers[-1:])):
                flat = FlattenLayer(scope=f"auto-flatten-{i}")
                self.layers.append(flat)
            if isinstance(layer, LAYERS.lookup("conv2d")):
                needs_flatten_before_dense = True
            elif isinstance(layer, (DenseLayer, FlattenLayer)):
                needs_flatten_before_dense = False
            if layer.scope in used_scopes:
                layer.scope = f"{layer.scope}-{i}"
            used_scopes.add(layer.scope)
            self.layers.append(layer)
        if not self.layers:
            raise RLGraphError("NeuralNetwork needs at least one layer")
        self.add_components(*self.layers)

    @staticmethod
    def _resolve_layer_specs(layers: Any) -> Sequence:
        if isinstance(layers, str):
            loaded = resolve_config(layers)
            if isinstance(loaded, dict):
                loaded = loaded.get("layers", loaded)
            return loaded
        if isinstance(layers, dict):
            return layers.get("layers", [layers])
        return list(layers)

    @rlgraph_api
    def call(self, nn_input):
        out = nn_input
        for layer in self.layers:
            out = layer.apply(out)
        return out

    @property
    def output_units(self) -> Optional[int]:
        """Units of the last dense/LSTM layer, if determinable."""
        for layer in reversed(self.layers):
            units = getattr(layer, "units", None)
            if units is not None:
                return units
        return None
