"""Layer components.

Layers are ordinary components with one API method (``apply``), so they
are individually buildable and testable from spaces, and compose into
:class:`~repro.components.neural_networks.neural_network.NeuralNetwork`
stacks via JSON specs (paper §3.4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces.space_utils import sanity_check_space
from repro.spaces.box import FloatBox, IntBox
from repro.utils.errors import RLGraphError
from repro.utils.registry import Registry

LAYERS = Registry("layer")

_ACTIVATIONS = {
    None: lambda x: x,
    "linear": lambda x: x,
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "softplus": F.softplus,
}


def apply_activation(x, name: Optional[str]):
    if name not in _ACTIVATIONS:
        raise RLGraphError(f"Unknown activation {name!r}")
    return _ACTIVATIONS[name](x)


class Layer(Component):
    """Base layer: one `apply` API method backed by one graph function."""

    @rlgraph_api
    def apply(self, inputs):
        return self._graph_fn_apply(inputs)

    @graph_fn
    def _graph_fn_apply(self, inputs):
        raise NotImplementedError


@LAYERS.register("dense", aliases=["fc", "linear"])
class DenseLayer(Layer):
    """Fully connected layer on (batch, in_dim) inputs."""

    def __init__(self, units: int, activation: Optional[str] = "relu",
                 use_bias: bool = True, scope: str = "dense", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.units = int(units)
        self.activation = activation
        self.use_bias = use_bias

    def check_input_spaces(self, input_spaces):
        space = input_spaces.get("inputs")
        if space is not None:
            sanity_check_space(space, allowed_types=[FloatBox, IntBox])

    def create_variables(self, input_spaces):
        space = input_spaces["inputs"]
        in_dim = int(space.shape[-1]) if space.shape else 1
        self.kernel = self.get_variable("kernel", shape=(in_dim, self.units),
                                        initializer="glorot")
        self.bias = (self.get_variable("bias", shape=(self.units,),
                                       initializer="zeros")
                     if self.use_bias else None)

    @graph_fn
    def _graph_fn_apply(self, inputs):
        out = F.matmul(inputs, self.kernel.read())
        if self.bias is not None:
            out = F.add(out, self.bias.read())
        return apply_activation(out, self.activation)


@LAYERS.register("conv2d", aliases=["conv"])
class Conv2DLayer(Layer):
    """NHWC 2-D convolution."""

    def __init__(self, filters: int, kernel_size: int = 3, stride: int = 1,
                 padding: str = "VALID", activation: Optional[str] = "relu",
                 use_bias: bool = True, scope: str = "conv2d", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = padding
        self.activation = activation
        self.use_bias = use_bias

    def check_input_spaces(self, input_spaces):
        space = input_spaces.get("inputs")
        if space is not None:
            sanity_check_space(space, allowed_types=[FloatBox], rank=3)

    def create_variables(self, input_spaces):
        space = input_spaces["inputs"]
        in_channels = int(space.shape[-1])
        self.kernel = self.get_variable(
            "kernel",
            shape=(self.kernel_size, self.kernel_size, in_channels,
                   self.filters),
            initializer="glorot")
        self.bias = (self.get_variable("bias", shape=(self.filters,),
                                       initializer="zeros")
                     if self.use_bias else None)

    @graph_fn
    def _graph_fn_apply(self, inputs):
        out = F.conv2d(inputs, self.kernel.read(), stride=self.stride,
                       padding=self.padding)
        if self.bias is not None:
            out = F.add(out, self.bias.read())
        return apply_activation(out, self.activation)


@LAYERS.register("flatten")
class FlattenLayer(Layer):
    """Collapses all non-batch dims: (B, ...) -> (B, prod)."""

    def __init__(self, scope: str = "flatten", **kwargs):
        super().__init__(scope=scope, **kwargs)

    @graph_fn(requires_variables=False)
    def _graph_fn_apply(self, inputs):
        return F.flatten_batch(inputs)


@LAYERS.register("activation")
class ActivationLayer(Layer):
    """A standalone activation (useful for testing sub-graphs)."""

    def __init__(self, activation: str = "relu", scope: str = "activation",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.activation = activation

    @graph_fn(requires_variables=False)
    def _graph_fn_apply(self, inputs):
        return apply_activation(inputs, self.activation)


@LAYERS.register("lstm")
class LSTMLayer(Layer):
    """Time-major LSTM over (T, B, D) sequences, returning (T, B, H).

    ``apply_step`` runs a single acting step on (B, D) inputs with
    caller-provided state, returning (out, h, c).
    """

    def __init__(self, units: int, scope: str = "lstm", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.units = int(units)

    def create_variables(self, input_spaces):
        space = (input_spaces.get("inputs")
                 or input_spaces.get("step_inputs"))
        in_dim = int(space.shape[-1])
        self.w = self.get_variable("w", shape=(in_dim + self.units,
                                               4 * self.units),
                                   initializer="glorot")
        self.b = self.get_variable("b", shape=(4 * self.units,),
                                   initializer="zeros")

    @rlgraph_api
    def apply(self, inputs):
        return self._graph_fn_apply(inputs)

    @rlgraph_api
    def apply_step(self, step_inputs, h_in, c_in):
        return self._graph_fn_step(step_inputs, h_in, c_in)

    @graph_fn
    def _graph_fn_apply(self, inputs):
        batch = F.getitem(F.shape_of(inputs), 1)
        h0 = F.zeros2d(batch, self.units)
        c0 = F.zeros2d(batch, self.units)
        return F.lstm_seq(inputs, self.w.read(), self.b.read(), h0, c0)

    @graph_fn(returns=3)
    def _graph_fn_step(self, step_inputs, h_in, c_in):
        x = F.expand_dims(step_inputs, 0)  # (1, B, D)
        outs = F.lstm_seq(x, self.w.read(), self.b.read(), h_in, c_in)
        h_out = F.take_index(outs, 0, axis=0)
        c_out = F.lstm_final_c(x, self.w.read(), self.b.read(), h_in, c_in)
        return h_out, h_out, c_out
