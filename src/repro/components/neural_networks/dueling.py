"""DuelingHead: state-value / advantage decomposition (Wang et al. 2016).

Q(s, a) = V(s) + A(s, a) - mean_a A(s, a)

The paper's evaluation architecture ("dueling DQN with prioritized
replay, 43 components") and the Fig. 5b act benchmark both use this head
after the convolutional torso.
"""

from __future__ import annotations

from repro.backend import functional as F
from repro.core import Component, graph_fn, rlgraph_api


class DuelingHead(Component):
    """Computes dueling Q-values from a feature vector."""

    def __init__(self, num_actions: int, units: int = 256,
                 scope: str = "dueling-head", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.num_actions = int(num_actions)
        self.units = int(units)

    def create_variables(self, input_spaces):
        space = input_spaces["features"]
        in_dim = int(space.shape[-1])
        self.v_hidden = self.get_variable("v_hidden", shape=(in_dim, self.units),
                                          initializer="glorot")
        self.v_out = self.get_variable("v_out", shape=(self.units, 1),
                                       initializer="glorot")
        self.a_hidden = self.get_variable("a_hidden", shape=(in_dim, self.units),
                                          initializer="glorot")
        self.a_out = self.get_variable("a_out",
                                       shape=(self.units, self.num_actions),
                                       initializer="glorot")

    @rlgraph_api
    def get_q_values(self, features):
        return self._graph_fn_q_values(features)

    @rlgraph_api
    def get_state_values(self, features):
        return self._graph_fn_state_values(features)

    @graph_fn
    def _graph_fn_q_values(self, features):
        v = F.matmul(F.relu(F.matmul(features, self.v_hidden.read())),
                     self.v_out.read())                      # (B, 1)
        a = F.matmul(F.relu(F.matmul(features, self.a_hidden.read())),
                     self.a_out.read())                      # (B, A)
        a_centered = F.sub(a, F.reduce_mean(a, axis=-1, keepdims=True))
        return F.add(v, a_centered)

    @graph_fn
    def _graph_fn_state_values(self, features):
        return F.matmul(F.relu(F.matmul(features, self.v_hidden.read())),
                        self.v_out.read())
