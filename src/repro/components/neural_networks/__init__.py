"""Neural-network components: layers, stacks, dueling heads."""

from repro.components.neural_networks.layers import (
    LAYERS,
    ActivationLayer,
    Conv2DLayer,
    DenseLayer,
    FlattenLayer,
    LSTMLayer,
    Layer,
)
from repro.components.neural_networks.neural_network import NeuralNetwork
from repro.components.neural_networks.dueling import DuelingHead

__all__ = [
    "LAYERS",
    "Layer",
    "DenseLayer",
    "Conv2DLayer",
    "ActivationLayer",
    "FlattenLayer",
    "LSTMLayer",
    "NeuralNetwork",
    "DuelingHead",
]
