"""IMPALA agent (Espeholt et al. 2018; paper §5.1, Fig. 9).

Actors run the policy and enqueue fixed-length rollouts with behaviour
log-probs; the learner dequeues time-major (T, B, ...) batches, computes
v-trace corrected targets and applies one optimizer step. The shared
FIFO queue and the staging area live in the execution layer
(:mod:`repro.execution.impala_runner`); this module is the model graph.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.agents.agent import AGENTS, Agent
from repro.backend import functional as F
from repro.backend.ops import handle_shape
from repro.components.loss_functions import IMPALALoss
from repro.components.optimizers import OPTIMIZERS
from repro.components.policies import Policy
from repro.components.preprocessing import PreprocessorStack
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces import BoolBox, FloatBox, IntBox
from repro.utils.errors import RLGraphError

_UINT31 = 2**31 - 1


class IMPALARoot(Component):
    def __init__(self, agent: "IMPALAAgent", scope="impala-agent", **kwargs):
        super().__init__(scope=scope, **kwargs)
        cfg = agent.config
        self.preprocessor = PreprocessorStack(cfg["preprocessing_spec"],
                                              scope="preprocessor")
        self.policy = Policy(cfg["network_spec"], agent.action_space,
                             value_head=True, scope="policy")
        self.loss = IMPALALoss(
            discount=agent.discount, value_coeff=cfg["value_coeff"],
            entropy_coeff=cfg["entropy_coeff"],
            clip_rho_threshold=cfg["clip_rho_threshold"],
            clip_pg_rho_threshold=cfg["clip_pg_rho_threshold"], scope="loss")
        self.optimizer = OPTIMIZERS.from_spec(cfg["optimizer_spec"])
        self.optimizer.set_variables_provider(
            lambda: list(self.policy.variable_registry().values()))
        self.optimizer.build_dependencies = [self.policy]
        self.add_components(self.preprocessor, self.policy, self.loss,
                            self.optimizer)

    # -- actor side ------------------------------------------------------------
    @rlgraph_api
    def act_with_log_probs(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_action(preprocessed)
        log_probs = self.policy.get_action_log_probs(preprocessed, actions)
        return actions, log_probs, preprocessed

    @rlgraph_api
    def get_greedy_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_deterministic_action(preprocessed)
        return actions, preprocessed

    # -- learner side -------------------------------------------------------------
    @rlgraph_api
    def update_from_rollout(self, rollout_states, rollout_actions,
                            behaviour_log_probs, rewards, terminals,
                            bootstrap_states):
        """One v-trace update from a time-major rollout batch."""
        flat_states, flat_actions = self._graph_fn_fold_time(
            rollout_states, rollout_actions)
        log_probs_flat = self.policy.get_action_log_probs(flat_states,
                                                          flat_actions)
        values_flat = self.policy.get_state_values(flat_states)
        entropies_flat = self.policy.get_entropy(flat_states)
        bootstrap_values = self.policy.get_state_values(bootstrap_states)
        log_probs, values, entropies = self._graph_fn_unfold_time(
            log_probs_flat, values_flat, entropies_flat, rewards)
        total, policy_loss, value_loss = self.loss.get_loss(
            log_probs, behaviour_log_probs, values, bootstrap_values,
            rewards, terminals, entropies)
        step_op = self.optimizer.step(total)
        return self._graph_fn_result(total, policy_loss, value_loss, step_op)

    @rlgraph_api
    def compute_gradients(self, rollout_states, rollout_actions,
                          behaviour_log_probs, rewards, terminals,
                          bootstrap_states):
        """V-trace loss composition minus the step: extract the flat
        gradient slab for a (time-major) rollout shard."""
        flat_states, flat_actions = self._graph_fn_fold_time(
            rollout_states, rollout_actions)
        log_probs_flat = self.policy.get_action_log_probs(flat_states,
                                                          flat_actions)
        values_flat = self.policy.get_state_values(flat_states)
        entropies_flat = self.policy.get_entropy(flat_states)
        bootstrap_values = self.policy.get_state_values(bootstrap_states)
        log_probs, values, entropies = self._graph_fn_unfold_time(
            log_probs_flat, values_flat, entropies_flat, rewards)
        total, policy_loss, value_loss = self.loss.get_loss(
            log_probs, behaviour_log_probs, values, bootstrap_values,
            rewards, terminals, entropies)
        flat_grads = self.optimizer.compute_flat_grads(total)
        return flat_grads, total, policy_loss, value_loss

    @rlgraph_api
    def apply_gradients(self, flat_grads):
        return self.optimizer.apply_flat_grads(flat_grads)

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_fold_time(self, states, actions):
        """(T, B, ...) -> (T*B, ...) for batched network evaluation."""
        shape = handle_shape(states)
        if shape is None or any(d is None for d in shape[2:]):
            raise RLGraphError("fold_time needs known feature dims")
        flat_states = F.reshape(states, (-1,) + tuple(shape[2:]))
        flat_actions = F.reshape(actions, (-1,))
        return flat_states, flat_actions

    @graph_fn(returns=3, requires_variables=False)
    def _graph_fn_unfold_time(self, log_probs, values, entropies, ref):
        return (F.reshape_like(log_probs, ref), F.reshape_like(values, ref),
                F.reshape_like(entropies, ref))

    @graph_fn(returns=3, requires_variables=False)
    def _graph_fn_result(self, total, policy_loss, value_loss, step_op):
        if step_op is not None:
            total = F.with_deps(total, step_op)
        return total, policy_loss, value_loss


@AGENTS.register("impala")
class IMPALAAgent(Agent):
    """Importance-weighted actor-learner agent."""

    def __init__(self, state_space, action_space, **kwargs):
        config = {
            "network_spec": [{"type": "dense", "units": 128,
                              "activation": "relu"}],
            "preprocessing_spec": [],
            "value_coeff": 0.5,
            "entropy_coeff": 0.01,
            "clip_rho_threshold": 1.0,
            "clip_pg_rho_threshold": 1.0,
            "rollout_length": 20,
            "optimizer_spec": {"type": "rmsprop", "learning_rate": 1e-3},
        }
        agent_kwargs = {}
        for key in ("backend", "discount", "observe_flush_size", "seed",
                    "auto_build", "device_map", "optimize"):
            if key in kwargs:
                agent_kwargs[key] = kwargs.pop(key)
        unknown = set(kwargs) - set(config)
        if unknown:
            raise RLGraphError(f"Unknown IMPALA config keys: {sorted(unknown)}")
        config.update(kwargs)
        self.config = config
        super().__init__(state_space, action_space, **agent_kwargs)

    def build_root(self) -> Component:
        return IMPALARoot(self)

    def preprocessed_space(self):
        stack = PreprocessorStack(self.config["preprocessing_spec"])
        return stack.transformed_space(self.state_space)

    def input_spaces(self) -> Dict[str, Any]:
        preprocessed = self.preprocessed_space()
        tm = dict(add_batch_rank=True, add_time_rank=True, time_major=True)
        spaces = {
            "states": self.state_space.with_batch_rank(),
            "time_step": IntBox(low=0, high=_UINT31),
            "rollout_states": preprocessed.strip_ranks().with_extra_ranks(**tm),
            "rollout_actions": self.action_space.strip_ranks()
                                                .with_extra_ranks(**tm),
            "behaviour_log_probs": FloatBox(**tm),
            "rewards": FloatBox(**tm),
            "terminals": BoolBox(**tm),
            "bootstrap_states": preprocessed.with_batch_rank(),
        }
        if self.optimize != "none":
            spaces["flat_grads"] = FloatBox(add_batch_rank=True)
        return spaces

    def get_actions(self, states, explore: bool = True, preprocess: bool = True):
        """Returns (actions, log_probs, preprocessed)."""
        states, single = self._batch_states(states)
        if explore:
            out = self.call_api("act_with_log_probs", states,
                                np.asarray(self.timesteps))
        else:
            actions, preprocessed = self.call_api(
                "get_greedy_actions", states, np.asarray(self.timesteps))
            out = (actions, np.zeros(len(states), np.float32), preprocessed)
        self.timesteps += len(states)
        return out

    def update(self, batch: Optional[Dict] = None):
        """V-trace update from a time-major rollout dict:
        states (T,B,...), actions (T,B), behaviour_log_probs (T,B),
        rewards (T,B), terminals (T,B), bootstrap_states (B,...)."""
        if batch is None:
            raise RLGraphError("IMPALA updates require a rollout batch")
        total, policy_loss, value_loss = self.call_api(
            "update_from_rollout", np.asarray(batch["states"]),
            np.asarray(batch["actions"]),
            np.asarray(batch["behaviour_log_probs"], np.float32),
            np.asarray(batch["rewards"], np.float32),
            np.asarray(batch["terminals"], bool),
            np.asarray(batch["bootstrap_states"]))
        self.updates += 1
        return (float(np.asarray(total)), float(np.asarray(policy_loss)),
                float(np.asarray(value_loss)))

    def shard_spec(self):
        """Rollout tensors are time-major (T, B, ...): learner groups
        shard along axis 1; ``bootstrap_states`` is (B, ...) and shards
        along axis 0 with the same boundaries."""
        return 1, {"bootstrap_states": 0}

    def _compute_gradients(self, batch: Dict):
        """Gradient extraction for a time-major rollout dict (same keys
        as :meth:`update`).  Learner groups shard rollouts along the
        batch axis (axis 1 of the (T, B, ...) tensors)."""
        flat_grads, total, policy_loss, value_loss = self.call_api(
            "compute_gradients", np.asarray(batch["states"]),
            np.asarray(batch["actions"]),
            np.asarray(batch["behaviour_log_probs"], np.float32),
            np.asarray(batch["rewards"], np.float32),
            np.asarray(batch["terminals"], bool),
            np.asarray(batch["bootstrap_states"]))
        return np.asarray(flat_grads), {
            "losses": (float(np.asarray(total)),
                       float(np.asarray(policy_loss)),
                       float(np.asarray(value_loss))),
        }
