"""DQN-family agents: vanilla/double/dueling DQN with uniform or
prioritized replay, and the Ape-X learner/actor variant.

The root component reproduces the paper's running example: a dueling DQN
with prioritized replay builds to roughly the "43 components" measured in
Fig. 5a, and the API methods mirror Fig. 3 (update samples from memory,
splits the record, feeds the loss, steps the optimizer).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.backend import XGRAPH, functional as F
from repro.components.common import ContainerSplitter, Synchronizer
from repro.components.explorations import EpsilonGreedy
from repro.components.loss_functions import DQNLoss
from repro.components.memories import PrioritizedReplay, ReplayMemory
from repro.components.optimizers import OPTIMIZERS
from repro.components.policies import Policy
from repro.components.preprocessing import PreprocessorStack
from repro.core import Component, graph_fn, rlgraph_api
from repro.agents.agent import AGENTS, Agent
from repro.spaces import BoolBox, Dict as DictSpace, FloatBox, IntBox
from repro.utils.errors import RLGraphError

_UINT31 = 2**31 - 1

DEFAULT_NETWORK = [{"type": "dense", "units": 256, "activation": "relu"},
                   {"type": "dense", "units": 256, "activation": "relu"}]


class DQNRoot(Component):
    """Root component wiring preprocessor, policies, memory, loss, opt."""

    def __init__(self, agent: "DQNAgent", scope: str = "dqn-agent", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.agent = agent
        cfg = agent.config

        self.preprocessor = PreprocessorStack(cfg["preprocessing_spec"],
                                              scope="preprocessor")
        network_spec = cfg["network_spec"]
        self.policy = Policy(network_spec, agent.action_space,
                             dueling=cfg["dueling"], scope="policy")
        self.target_policy = Policy(
            _clone_network_spec(network_spec), agent.action_space,
            dueling=cfg["dueling"], scope="target-policy")
        self.exploration = EpsilonGreedy(
            num_actions=agent.action_space.num_categories,
            epsilon_spec=cfg["epsilon_spec"])
        memory_cls = (PrioritizedReplay if cfg["prioritized_replay"]
                      else ReplayMemory)
        memory_kwargs = dict(capacity=cfg["memory_capacity"], scope="memory")
        if cfg["prioritized_replay"]:
            memory_kwargs.update(alpha=cfg["alpha"], beta=cfg["beta"])
        self.memory = memory_cls(**memory_kwargs)
        self.splitter = ContainerSplitter(
            "states", "actions", "rewards", "terminals", "next_states",
            scope="record-splitter")
        self.dqn_loss = DQNLoss(
            num_actions=agent.action_space.num_categories,
            discount=agent.discount, double_q=cfg["double_q"],
            huber_delta=cfg["huber_delta"], n_step=cfg["n_step"],
            scope="loss")
        self.optimizer = OPTIMIZERS.from_spec(cfg["optimizer_spec"])
        self.optimizer.set_variables_provider(
            lambda: list(self.policy.variable_registry().values()))
        self.optimizer.build_dependencies = [self.policy]
        self.synchronizer = Synchronizer(self.policy, self.target_policy,
                                         scope="target-synchronizer")
        components = [self.preprocessor, self.policy, self.target_policy,
                      self.exploration, self.memory, self.splitter,
                      self.dqn_loss, self.optimizer, self.synchronizer]
        # Synchronous multi-device strategy (paper §4.1): the executor
        # expands the graph with a batch splitter; per-tower losses feed
        # gradient averaging in the optimizer.
        self.num_devices = int(cfg.get("num_devices", 1))
        if self.num_devices > 1:
            from repro.components.common import BatchSplitter
            self.batch_splitter = BatchSplitter(self.num_devices,
                                                scope="device-batch-splitter")
            self.tower_splitters = []
            for i in range(self.num_devices):
                splitter = ContainerSplitter(
                    "states", "actions", "rewards", "terminals", "next_states",
                    scope=f"tower-{i}-splitter", device=f"/sim:gpu:{i}")
                self.tower_splitters.append(splitter)
            components.append(self.batch_splitter)
            components.extend(self.tower_splitters)
        self.add_components(*components)

    # -- acting --------------------------------------------------------------
    @rlgraph_api
    def get_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        q_values = self.policy.get_q_values(preprocessed)
        greedy = self._graph_fn_argmax(q_values)
        actions = self.exploration.get_action(greedy, time_step)
        return actions, preprocessed

    @rlgraph_api
    def get_greedy_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        q_values = self.policy.get_q_values(preprocessed)
        greedy = self._graph_fn_argmax(q_values)
        return greedy, preprocessed

    @graph_fn(requires_variables=False)
    def _graph_fn_argmax(self, q_values):
        return F.argmax(q_values, axis=-1)

    # -- observing ------------------------------------------------------------
    @rlgraph_api
    def insert_records(self, records):
        return self.memory.insert_records(records)

    # -- updating ----------------------------------------------------------------
    @rlgraph_api
    def update_from_memory(self, batch_size):
        sample, indices, importance_weights = self.memory.get_records(
            batch_size)
        s, a, r, t, next_s = self.splitter.split(sample)
        loss, td = self._loss_and_step(s, a, r, t, next_s, importance_weights)
        prio = (self.memory.update_records(indices, td)
                if self.agent.config["prioritized_replay"] else None)
        return self._graph_fn_result(loss, td, prio)

    @rlgraph_api
    def get_td_errors(self, preprocessed_states, actions, rewards, terminals,
                      next_states, importance_weights):
        """TD errors without an optimizer step (worker-side
        prioritization, Ape-X heuristic)."""
        q_values = self.policy.get_q_values(preprocessed_states)
        q_next = self.policy.get_q_values(next_states)
        q_next_target = self.target_policy.get_q_values(next_states)
        _, td = self.dqn_loss.get_loss(q_values, actions, rewards, terminals,
                                       q_next, q_next_target,
                                       importance_weights)
        return td

    @rlgraph_api
    def update_from_external(self, preprocessed_states, actions, rewards,
                             terminals, next_states, importance_weights):
        if self.num_devices > 1:
            return self._update_multi_device(
                preprocessed_states, actions, rewards, terminals, next_states,
                importance_weights)
        loss, td = self._loss_and_step(preprocessed_states, actions, rewards,
                                       terminals, next_states,
                                       importance_weights)
        return self._graph_fn_result(loss, td, None)

    def _update_multi_device(self, states, actions, rewards, terminals,
                             next_states, importance_weights):
        """Split the batch over simulated devices; average tower grads."""
        record = self._graph_fn_pack(states, actions, rewards, terminals,
                                     next_states)
        shards = self.batch_splitter.split(record)
        tower_losses, tower_tds = [], []
        for i, shard in enumerate(shards if self.num_devices > 1 else [shards]):
            s, a, r, t, ns = self.tower_splitters[i].split(shard)
            q = self.policy.get_q_values(s)
            qn = self.policy.get_q_values(ns)
            qt = self.target_policy.get_q_values(ns)
            loss_i, td_i = self.dqn_loss.get_loss(
                q, a, r, t, qn, qt, self._graph_fn_ones_like(r))
            tower_losses.append(loss_i)
            tower_tds.append(td_i)
        step_op = self.optimizer.step_towers(*tower_losses)
        loss = self._graph_fn_mean_losses(*tower_losses)
        td = self._graph_fn_concat_tds(*tower_tds)
        loss = self._graph_fn_after_step(loss, step_op)
        return self._graph_fn_result(loss, td, None)

    @graph_fn(requires_variables=False)
    def _graph_fn_pack(self, states, actions, rewards, terminals, next_states):
        return {"states": states, "actions": actions, "rewards": rewards,
                "terminals": terminals, "next_states": next_states}

    @graph_fn(requires_variables=False)
    def _graph_fn_ones_like(self, rewards):
        return F.ones_like(rewards, dtype=np.float32)

    @graph_fn(requires_variables=False)
    def _graph_fn_mean_losses(self, *losses):
        total = losses[0]
        for l in losses[1:]:
            total = F.add(total, l)
        return F.div(total, float(len(losses)))

    @graph_fn(requires_variables=False)
    def _graph_fn_concat_tds(self, *tds):
        return F.concat(list(tds), axis=0)

    # -- gradient extraction (learner groups) ---------------------------------
    @rlgraph_api
    def compute_gradients(self, preprocessed_states, actions, rewards,
                          terminals, next_states, importance_weights):
        """Same loss composition as ``update_from_external`` but the
        optimizer only *extracts* the flat gradient slab — no step."""
        q_values = self.policy.get_q_values(preprocessed_states)
        q_next = self.policy.get_q_values(next_states)
        q_next_target = self.target_policy.get_q_values(next_states)
        loss, td = self.dqn_loss.get_loss(q_values, actions, rewards,
                                          terminals, q_next, q_next_target,
                                          importance_weights)
        flat_grads = self.optimizer.compute_flat_grads(loss)
        return flat_grads, loss, td

    @rlgraph_api
    def apply_gradients(self, flat_grads):
        return self.optimizer.apply_flat_grads(flat_grads)

    def _loss_and_step(self, s, a, r, t, next_s, importance_weights):
        """Shared composition (plain helper called from API methods)."""
        q_values = self.policy.get_q_values(s)
        q_next = self.policy.get_q_values(next_s)
        q_next_target = self.target_policy.get_q_values(next_s)
        loss, td = self.dqn_loss.get_loss(q_values, a, r, t, q_next,
                                          q_next_target, importance_weights)
        step_op = self.optimizer.step(loss)
        loss = self._graph_fn_after_step(loss, step_op)
        return loss, td

    @graph_fn(requires_variables=False)
    def _graph_fn_after_step(self, loss, step_op):
        if step_op is None:
            return loss
        return F.with_deps(loss, step_op)

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_result(self, loss, td, prio_op):
        if prio_op is not None:
            loss = F.with_deps(loss, prio_op)
        return loss, td

    # -- target sync -----------------------------------------------------------
    @rlgraph_api
    def sync_target(self):
        return self.synchronizer.sync()


def _clone_network_spec(spec):
    """Deep-copy a network spec so online/target nets get separate layers."""
    import copy
    from repro.components.neural_networks import NeuralNetwork
    if isinstance(spec, NeuralNetwork):
        raise RLGraphError(
            "Pass a layer-spec (list/path), not a NeuralNetwork instance, "
            "so the target network can be cloned")
    return copy.deepcopy(spec)


@AGENTS.register("dqn")
class DQNAgent(Agent):
    """DQN (Mnih et al. 2015) with the paper's standard extensions.

    Config keys (kwargs): network_spec, preprocessing_spec, dueling,
    double_q, prioritized_replay, alpha, beta, n_step, memory_capacity,
    batch_size, optimizer_spec, epsilon_spec, sync_interval, huber_delta.
    """

    ROOT_SCOPE = "dqn-agent"

    def __init__(self, state_space, action_space, **kwargs):
        config = {
            "network_spec": DEFAULT_NETWORK,
            "preprocessing_spec": [],
            "dueling": False,
            "double_q": True,
            "prioritized_replay": False,
            "alpha": 0.6,
            "beta": 0.4,
            "n_step": 1,
            "memory_capacity": 10_000,
            "batch_size": 32,
            "optimizer_spec": {"type": "adam", "learning_rate": 1e-3},
            "epsilon_spec": {"type": "linear", "from_": 1.0, "to_": 0.05,
                             "num_timesteps": 10_000},
            "sync_interval": 10,
            "huber_delta": 1.0,
            "num_devices": 1,
        }
        agent_kwargs = {}
        for key in ("backend", "discount", "observe_flush_size", "seed",
                    "auto_build", "device_map", "optimize"):
            if key in kwargs:
                agent_kwargs[key] = kwargs.pop(key)
        unknown = set(kwargs) - set(config)
        if unknown:
            raise RLGraphError(f"Unknown DQN config keys: {sorted(unknown)}")
        config.update(kwargs)
        self.config = config
        super().__init__(state_space, action_space, **agent_kwargs)
        if not isinstance(self.action_space, IntBox):
            raise RLGraphError("DQN requires a discrete (IntBox) action space")

    # -- wiring ---------------------------------------------------------------
    def build_root(self) -> Component:
        return DQNRoot(self, scope=self.ROOT_SCOPE)

    def preprocessed_space(self):
        stack = PreprocessorStack(self.config["preprocessing_spec"])
        return stack.transformed_space(self.state_space)

    def input_spaces(self) -> Dict[str, Any]:
        preprocessed = self.preprocessed_space().with_batch_rank()
        records = DictSpace(
            states=preprocessed.strip_ranks(),
            actions=self.action_space.strip_ranks(),
            rewards=FloatBox(),
            terminals=BoolBox(),
            next_states=preprocessed.strip_ranks(),
            add_batch_rank=True,
        )
        spaces = {
            "states": self.state_space.with_batch_rank(),
            "preprocessed_states": preprocessed,
            "time_step": IntBox(low=0, high=_UINT31),
            "records": records,
            "batch_size": IntBox(low=0, high=_UINT31),
            "importance_weights": FloatBox(add_batch_rank=True),
            "actions": self.action_space.with_batch_rank(),
            "rewards": FloatBox(add_batch_rank=True),
            "terminals": BoolBox(add_batch_rank=True),
            "next_states": preprocessed,
        }
        if self.optimize != "none":
            # Gradient-extraction/apply endpoints need the fused flat-slab
            # construction; omitting the space skips their assembly in the
            # per-variable ablation build.
            spaces["flat_grads"] = FloatBox(add_batch_rank=True)
        return spaces

    # -- API ----------------------------------------------------------------------
    def get_actions(self, states, explore: bool = True,
                    preprocess: bool = True):
        """Act on a batch of states; returns (actions, preprocessed)."""
        states, single = self._batch_states(states)
        api = "get_actions" if explore else "get_greedy_actions"
        actions, preprocessed = self.call_api(api, states,
                                              np.asarray(self.timesteps))
        self.timesteps += len(states)
        if single:
            return int(actions[0]), preprocessed[0]
        return np.asarray(actions), preprocessed

    def _insert_records(self, records: Dict[str, np.ndarray]) -> None:
        self.call_api("insert_records", records)

    def update(self, batch: Optional[Dict] = None):
        """One training step.

        With ``batch=None`` samples from the internal memory; otherwise
        ``batch`` must contain states/actions/rewards/terminals/
        next_states (+ optional importance_weights). Returns (loss, td).
        """
        if batch is None:
            loss, td = self.call_api("update_from_memory",
                                     np.asarray(self.config["batch_size"]))
        else:
            weights = batch.get("importance_weights")
            if weights is None:
                weights = np.ones(len(batch["rewards"]), np.float32)
            loss, td = self.call_api(
                "update_from_external", batch["states"], batch["actions"],
                np.asarray(batch["rewards"], np.float32),
                np.asarray(batch["terminals"], bool), batch["next_states"],
                np.asarray(weights, np.float32))
        self.updates += 1
        if self.config["sync_interval"] and \
                self.updates % self.config["sync_interval"] == 0:
            self.sync_target()
        return float(np.asarray(loss)), np.asarray(td)

    def _compute_gradients(self, batch: Dict):
        weights = batch.get("importance_weights")
        if weights is None:
            weights = np.ones(len(batch["rewards"]), np.float32)
        flat_grads, loss, td = self.call_api(
            "compute_gradients", batch["states"], batch["actions"],
            np.asarray(batch["rewards"], np.float32),
            np.asarray(batch["terminals"], bool), batch["next_states"],
            np.asarray(weights, np.float32))
        return np.asarray(flat_grads), {
            "losses": (float(np.asarray(loss)),),
            "td": np.asarray(td),
        }

    def apply_gradients(self, flat_grads) -> bool:
        """Fused apply + the same target-sync cadence as :meth:`update`."""
        self.call_api("apply_gradients",
                      np.ascontiguousarray(flat_grads, dtype=np.float32))
        self.updates += 1
        if self.config["sync_interval"] and \
                self.updates % self.config["sync_interval"] == 0:
            self.sync_target()
            return True
        return False

    def sync_target(self):
        self.call_api("sync_target")


@AGENTS.register("apex")
class ApexAgent(DQNAgent):
    """Ape-X configuration of DQN (Horgan et al. 2018, paper §5.1).

    Same graph as DQN but defaults match the distributed setting: dueling
    + double-Q + n-step worker-side targets + prioritized semantics. The
    distributed replay itself lives in raylite actors
    (:mod:`repro.execution.ray.apex_executor`); the learner trains through
    ``update_from_external`` on batches pulled from those shards.
    """

    ROOT_SCOPE = "apex-agent"

    def __init__(self, state_space, action_space, **kwargs):
        kwargs.setdefault("dueling", True)
        kwargs.setdefault("double_q", True)
        kwargs.setdefault("n_step", 3)
        kwargs.setdefault("prioritized_replay", False)  # shards hold priorities
        kwargs.setdefault("memory_capacity", 4)  # in-graph memory unused
        super().__init__(state_space, action_space, **kwargs)
