"""PPO agent: clipped-surrogate updates with multiple epochs per batch."""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.agents.agent import AGENTS, Agent
from repro.agents.actor_critic_agent import discounted_returns
from repro.backend import functional as F
from repro.components.loss_functions import PPOLoss
from repro.components.optimizers import OPTIMIZERS
from repro.components.policies import Policy
from repro.components.preprocessing import PreprocessorStack
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

_UINT31 = 2**31 - 1


class PPORoot(Component):
    def __init__(self, agent: "PPOAgent", scope="ppo-agent", **kwargs):
        super().__init__(scope=scope, **kwargs)
        cfg = agent.config
        self.preprocessor = PreprocessorStack(cfg["preprocessing_spec"],
                                              scope="preprocessor")
        self.policy = Policy(cfg["network_spec"], agent.action_space,
                             value_head=True, scope="policy")
        self.loss = PPOLoss(clip_ratio=cfg["clip_ratio"],
                            value_coeff=cfg["value_coeff"],
                            entropy_coeff=cfg["entropy_coeff"], scope="loss")
        self.optimizer = OPTIMIZERS.from_spec(cfg["optimizer_spec"])
        self.optimizer.set_variables_provider(
            lambda: list(self.policy.variable_registry().values()))
        self.optimizer.build_dependencies = [self.policy]
        self.add_components(self.preprocessor, self.policy, self.loss,
                            self.optimizer)

    @rlgraph_api
    def act_with_log_probs(self, states, time_step):
        """Returns (actions, log_probs, values, preprocessed) for rollout
        collection — PPO needs behaviour log-probs for the ratio."""
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_action(preprocessed)
        log_probs = self.policy.get_action_log_probs(preprocessed, actions)
        values = self.policy.get_state_values(preprocessed)
        return actions, log_probs, values, preprocessed

    @rlgraph_api
    def get_greedy_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_deterministic_action(preprocessed)
        return actions, preprocessed

    @rlgraph_api
    def update_from_batch(self, next_states, actions, old_log_probs,
                          advantages, returns):
        log_probs = self.policy.get_action_log_probs(next_states, actions)
        values = self.policy.get_state_values(next_states)
        entropies = self.policy.get_entropy(next_states)
        total, policy_loss = self.loss.get_loss(
            log_probs, old_log_probs, advantages, values, returns, entropies)
        step_op = self.optimizer.step(total)
        return self._graph_fn_result(total, policy_loss, step_op)

    @rlgraph_api
    def compute_gradients(self, next_states, actions, old_log_probs,
                          advantages, returns):
        log_probs = self.policy.get_action_log_probs(next_states, actions)
        values = self.policy.get_state_values(next_states)
        entropies = self.policy.get_entropy(next_states)
        total, policy_loss = self.loss.get_loss(
            log_probs, old_log_probs, advantages, values, returns, entropies)
        flat_grads = self.optimizer.compute_flat_grads(total)
        return flat_grads, total, policy_loss

    @rlgraph_api
    def apply_gradients(self, flat_grads):
        return self.optimizer.apply_flat_grads(flat_grads)

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_result(self, total, policy_loss, step_op):
        if step_op is not None:
            total = F.with_deps(total, step_op)
        return total, policy_loss


@AGENTS.register("ppo")
class PPOAgent(Agent):
    """PPO (Schulman et al. 2017) with multi-epoch minibatch updates."""

    def __init__(self, state_space, action_space, **kwargs):
        config = {
            "network_spec": [{"type": "dense", "units": 128,
                              "activation": "tanh"}],
            "preprocessing_spec": [],
            "clip_ratio": 0.2,
            "value_coeff": 0.5,
            "entropy_coeff": 0.01,
            "epochs": 4,
            "minibatch_size": 64,
            "optimizer_spec": {"type": "adam", "learning_rate": 3e-4},
        }
        agent_kwargs = {}
        for key in ("backend", "discount", "observe_flush_size", "seed",
                    "auto_build", "device_map", "optimize"):
            if key in kwargs:
                agent_kwargs[key] = kwargs.pop(key)
        unknown = set(kwargs) - set(config)
        if unknown:
            raise RLGraphError(f"Unknown PPO config keys: {sorted(unknown)}")
        config.update(kwargs)
        self.config = config
        super().__init__(state_space, action_space, **agent_kwargs)

    def build_root(self) -> Component:
        return PPORoot(self)

    def preprocessed_space(self):
        stack = PreprocessorStack(self.config["preprocessing_spec"])
        return stack.transformed_space(self.state_space)

    def input_spaces(self) -> Dict[str, Any]:
        spaces = {
            "states": self.state_space.with_batch_rank(),
            "time_step": IntBox(low=0, high=_UINT31),
            "next_states": self.preprocessed_space().with_batch_rank(),
            "actions": self.action_space.with_batch_rank(),
            "old_log_probs": FloatBox(add_batch_rank=True),
            "advantages": FloatBox(add_batch_rank=True),
            "returns": FloatBox(add_batch_rank=True),
        }
        if self.optimize != "none":
            spaces["flat_grads"] = FloatBox(add_batch_rank=True)
        return spaces

    def get_actions(self, states, explore: bool = True, preprocess: bool = True):
        """Returns (actions, log_probs, values, preprocessed)."""
        states, single = self._batch_states(states)
        if explore:
            out = self.call_api("act_with_log_probs", states,
                                np.asarray(self.timesteps))
        else:
            actions, preprocessed = self.call_api(
                "get_greedy_actions", states, np.asarray(self.timesteps))
            out = (actions, np.zeros(len(states), np.float32),
                   np.zeros(len(states), np.float32), preprocessed)
        self.timesteps += len(states)
        return out

    def update(self, batch: Optional[Dict] = None):
        """Multi-epoch minibatch PPO update.

        ``batch``: states (preprocessed), actions, old_log_probs, rewards,
        terminals (or precomputed returns/advantages), values.
        """
        if batch is None:
            raise RLGraphError("PPO is on-policy; pass a rollout batch")
        states = np.asarray(batch["states"])
        actions = np.asarray(batch["actions"])
        old_log_probs = np.asarray(batch["old_log_probs"], np.float32)
        if "returns" in batch:
            returns = np.asarray(batch["returns"], np.float32)
        else:
            returns = discounted_returns(batch["rewards"], batch["terminals"],
                                          self.discount)
        if "advantages" in batch:
            advantages = np.asarray(batch["advantages"], np.float32)
        else:
            advantages = returns - np.asarray(batch["values"], np.float32)
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        n = len(states)
        mb = min(self.config["minibatch_size"], n)
        rng = self.seeds.rng("ppo-minibatch", self.updates)
        losses = []
        for _ in range(self.config["epochs"]):
            order = rng.permutation(n)
            for start in range(0, n, mb):
                idx = order[start:start + mb]
                total, _ = self.call_api(
                    "update_from_batch", states[idx], actions[idx],
                    old_log_probs[idx], advantages[idx], returns[idx])
                losses.append(float(np.asarray(total)))
        self.updates += 1
        return float(np.mean(losses))

    def _compute_gradients(self, batch: Dict):
        """Single-step gradient extraction (one pass over the batch — no
        epoch/minibatch loop; learner groups shard the prepared batch
        instead).  Advantage normalization mirrors :meth:`update` and is
        therefore a statistic of *this* batch — when sharded across a
        learner group it becomes per-shard (documented group semantics).
        """
        states = np.asarray(batch["states"])
        actions = np.asarray(batch["actions"])
        old_log_probs = np.asarray(batch["old_log_probs"], np.float32)
        if "returns" in batch:
            returns = np.asarray(batch["returns"], np.float32)
        else:
            returns = discounted_returns(batch["rewards"], batch["terminals"],
                                          self.discount)
        if "advantages" in batch:
            advantages = np.asarray(batch["advantages"], np.float32)
        else:
            advantages = returns - np.asarray(batch["values"], np.float32)
        advantages = ((advantages - advantages.mean())
                      / (advantages.std() + 1e-8))
        flat_grads, total, policy_loss = self.call_api(
            "compute_gradients", states, actions, old_log_probs,
            advantages, returns)
        return np.asarray(flat_grads), {
            "losses": (float(np.asarray(total)),
                       float(np.asarray(policy_loss))),
        }
