"""Soft Actor-Critic (Haarnoja et al. 2018): the continuous-control agent.

The policy head is a tanh-squashed diagonal Gaussian
(:class:`~repro.components.policies.distributions.SquashedGaussian`), so
sampled actions always land inside the ``FloatBox`` bounds and the
log-prob carries the stable change-of-variables correction
``log(1 - tanh²(u)) = 2·(log2 − u − softplus(−2u))``. Twin Q critics
take ``concat([states, actions])``; the backup target is the min of the
two *target* critics minus the entropy bonus; target nets track the
online critics by Polyak averaging through the existing
:class:`~repro.components.common.synchronizer.Synchronizer`; the
temperature α is learned against an entropy target.

Unlike the discrete agents, SAC's update cannot be phrased as gradients
of one scalar loss over one variable list — the actor loss must not
update the critics and vice versa. The root therefore computes each
group's gradients itself (``grads_of(actor_loss, policy_vars)``, ...)
and feeds the assembled per-variable list through the optimizer's
precomputed-gradient entry points (``step_from_grads`` /
``flatcat_grads``), which reuse the exact fused/per-variable lowering of
``step`` — so SAC inherits every ``optimize`` level and the flat-slab
learner-group machinery unchanged.

Reparameterization noise is generated HOST-side (``SeedStream`` keyed on
the update counter, or passed in the batch as ``noise``/``next_noise``)
rather than with in-graph ``random_normal`` nodes: the in-graph RNGs are
backend-specific, and host noise is what makes the parity matrix exact
across backends/optimize levels and checkpoint resume bitwise. Acting
still samples in-graph (exploration needs no cross-backend parity).

Batches shard row-major on axis 0 for every key (including the noise
keys), so the base :meth:`Agent.shard_spec` already describes SAC to
learner groups.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

import numpy as np

from repro.backend import functional as F
from repro.backend.gradients import grads_of
from repro.backend.ops import handle_shape
from repro.components.common import ContainerSplitter, Synchronizer
from repro.components.memories import ReplayMemory
from repro.components.neural_networks.neural_network import NeuralNetwork
from repro.components.optimizers import OPTIMIZERS
from repro.components.policies import Policy, SquashedGaussian
from repro.components.policies.policy import ValueHead
from repro.components.preprocessing import PreprocessorStack
from repro.core import Component, graph_fn, rlgraph_api
from repro.agents.agent import AGENTS, Agent
from repro.spaces import BoolBox, Dict as DictSpace, FloatBox, IntBox
from repro.spaces.space_utils import space_from_spec
from repro.utils.errors import RLGraphError

_UINT31 = 2**31 - 1

DEFAULT_NETWORK = [{"type": "dense", "units": 256, "activation": "relu"},
                   {"type": "dense", "units": 256, "activation": "relu"}]


class ContinuousQFunction(Component):
    """Q(s, a) for vector actions: torso over concat([s, a]) + scalar head."""

    def __init__(self, network_spec, scope: str = "q-function", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.network = NeuralNetwork(copy.deepcopy(network_spec))
        self.q_head = ValueHead(scope="q-head")
        self.add_components(self.network, self.q_head)

    @rlgraph_api
    def get_q_value(self, states, actions):
        state_actions = self._graph_fn_concat(states, actions)
        features = self.network.call(state_actions)
        return self.q_head.get_value(features)

    @graph_fn(requires_variables=False)
    def _graph_fn_concat(self, states, actions):
        return F.concat([states, F.cast(actions, np.float32)], axis=-1)


class Temperature(Component):
    """Holds the learned log-temperature log(α) as a trainable variable,
    so it joins the optimizer's flat slab like any network weight."""

    def __init__(self, initial_alpha: float = 1.0, scope: str = "temperature",
                 **kwargs):
        super().__init__(scope=scope, **kwargs)
        if initial_alpha <= 0.0:
            raise RLGraphError(
                f"SAC initial_alpha must be positive, got {initial_alpha}")
        self.initial_alpha = float(initial_alpha)
        self.log_alpha: Optional[Any] = None

    def create_variables(self, input_spaces):
        self.log_alpha = self.get_variable(
            "log-alpha", shape=(1,), dtype=np.float32, trainable=True,
            initializer=float(np.log(self.initial_alpha)))


class SACRoot(Component):
    """Root component wiring policy, twin critics, targets, α, memory."""

    def __init__(self, agent: "SACAgent", scope: str = "sac-agent", **kwargs):
        super().__init__(scope=scope, **kwargs)
        self.agent = agent
        cfg = agent.config
        space = agent.action_space
        dim = agent.action_dim

        self.preprocessor = PreprocessorStack(cfg["preprocessing_spec"],
                                              scope="preprocessor")
        distribution = SquashedGaussian(dim, low=space.low, high=space.high)
        self.policy = Policy(cfg["network_spec"], space,
                             distribution=distribution, scope="policy")
        q_spec = cfg["q_network_spec"] or cfg["network_spec"]
        self.q1 = ContinuousQFunction(q_spec, scope="q1")
        self.q2 = ContinuousQFunction(q_spec, scope="q2")
        self.target_q1 = ContinuousQFunction(q_spec, scope="target-q1")
        self.target_q2 = ContinuousQFunction(q_spec, scope="target-q2")
        self.temperature = Temperature(cfg["initial_alpha"],
                                       scope="temperature")
        self.memory = ReplayMemory(capacity=cfg["memory_capacity"],
                                   scope="memory")
        self.splitter = ContainerSplitter(
            "states", "actions", "rewards", "terminals", "next_states",
            scope="record-splitter")
        self.optimizer = OPTIMIZERS.from_spec(cfg["optimizer_spec"])
        self.optimizer.set_variables_provider(self._trainables)
        self.optimizer.build_dependencies = [
            self.policy, self.q1, self.q2, self.temperature]
        # Per-critic Polyak trackers. flat=False: each critic's variable
        # set is a subset of the joint optimizer slab and cannot
        # re-coalesce into its own (see Synchronizer docstring).
        self.sync1 = Synchronizer(self.q1, self.target_q1, tau=cfg["tau"],
                                  flat=False, scope="target-synchronizer-1")
        self.sync2 = Synchronizer(self.q2, self.target_q2, tau=cfg["tau"],
                                  flat=False, scope="target-synchronizer-2")
        # No root-level build_dependencies: the critics' input spaces
        # derive from _graph_fn_policy_sample's output, so gating the
        # root's graph fns on the critics would deadlock the fixpoint.
        # Ordering is already guaranteed by dataflow — the loss node's
        # inputs are outputs of policy/critic/target nodes (their
        # variables exist by readiness) and Temperature is vacuously
        # input-complete (created in the first completion sweep).
        self.add_components(self.preprocessor, self.policy, self.q1, self.q2,
                            self.target_q1, self.target_q2, self.temperature,
                            self.memory, self.splitter, self.optimizer,
                            self.sync1, self.sync2)

    def _trainables(self):
        """Joint optimizer variable list — order is the contract between
        the provider and the gradient groups in the update graph fns."""
        out = []
        for comp in (self.policy, self.q1, self.q2, self.temperature):
            out.extend(comp.variable_registry().values())
        return out

    # -- acting --------------------------------------------------------------
    @rlgraph_api
    def get_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_action(preprocessed)
        return actions, preprocessed

    @rlgraph_api
    def get_greedy_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_deterministic_action(preprocessed)
        return actions, preprocessed

    # -- observing ------------------------------------------------------------
    @rlgraph_api
    def insert_records(self, records):
        return self.memory.insert_records(records)

    # -- updating ----------------------------------------------------------------
    @rlgraph_api
    def update_from_memory(self, batch_size, noise, next_noise):
        sample, indices, importance_weights = self.memory.get_records(
            batch_size)
        s, a, r, t, next_s = self.splitter.split(sample)
        return self._update(s, a, r, t, next_s, noise, next_noise)

    @rlgraph_api
    def update_from_external(self, preprocessed_states, actions, rewards,
                             terminals, next_states, noise, next_noise):
        return self._update(preprocessed_states, actions, rewards, terminals,
                            next_states, noise, next_noise)

    @rlgraph_api
    def compute_gradients(self, preprocessed_states, actions, rewards,
                          terminals, next_states, noise, next_noise):
        """Same loss composition as ``update_from_external`` but the
        grouped gradients only flatcat into the slab vector — no step."""
        parts = self._forward(preprocessed_states, actions, rewards, terminals,
                              next_states, noise, next_noise)
        return self._graph_fn_extract_grads(*parts)

    @rlgraph_api
    def apply_gradients(self, flat_grads):
        return self.optimizer.apply_flat_grads(flat_grads)

    def _update(self, s, a, r, t, next_s, noise, next_noise):
        parts = self._forward(s, a, r, t, next_s, noise, next_noise)
        return self._graph_fn_losses_and_step(*parts)

    def _forward(self, s, a, r, t, next_s, noise, next_noise):
        """Shared forward composition (plain helper called from APIs):
        squashed samples for both state batches, the five Q evaluations,
        and the tensors the loss functions need."""
        params = self.policy.get_logits(s)
        next_params = self.policy.get_logits(next_s)
        new_a, log_pi, next_a, next_log_pi = self._graph_fn_policy_sample(
            params, next_params, noise, next_noise)
        q1_pred = self.q1.get_q_value(s, a)
        q2_pred = self.q2.get_q_value(s, a)
        q1_new = self.q1.get_q_value(s, new_a)
        q2_new = self.q2.get_q_value(s, new_a)
        q1_target = self.target_q1.get_q_value(next_s, next_a)
        q2_target = self.target_q2.get_q_value(next_s, next_a)
        return (r, t, q1_pred, q2_pred, q1_new, q2_new, q1_target, q2_target,
                log_pi, next_log_pi)

    @graph_fn(returns=4, requires_variables=False)
    def _graph_fn_policy_sample(self, params, next_params, noise, next_noise):
        noise = self._build_sized_noise(params, noise)
        next_noise = self._build_sized_noise(next_params, next_noise)
        dist = self.policy.distribution
        new_a, log_pi = dist.sample_with_log_prob(params, noise)
        next_a, next_log_pi = dist.sample_with_log_prob(next_params,
                                                        next_noise)
        return new_a, log_pi, next_a, next_log_pi

    def _build_sized_noise(self, params, noise):
        """During the define-by-run shape-inference build the memory path
        samples ``batch_size``-example rows while the noise example has
        the standard example batch; substitute zeros of the right row
        count so the build sees consistent shapes (mirrors the
        apply_flat_grads build guard)."""
        from repro.core.component import get_current_build
        if get_current_build() is None:
            return noise
        pshape, nshape = handle_shape(params), handle_shape(noise)
        if (pshape and nshape and pshape[0] is not None
                and nshape[0] is not None and pshape[0] != nshape[0]):
            return np.zeros((pshape[0], self.agent.action_dim), np.float32)
        return noise

    def _sac_losses(self, r, t, q1_pred, q2_pred, q1_new, q2_new, q1_target,
                    q2_target, log_pi, next_log_pi):
        """Loss trio + grouped gradients in optimizer-variable order.
        Called from inside a graph function (needs a backend context)."""
        log_alpha = self.temperature.log_alpha.read()
        alpha = F.exp(F.stop_gradient(log_alpha))
        # Critic: y = r + γ(1-t)·(min(Q1t,Q2t)(s',a') − α·logπ(a'|s'))
        not_done = F.sub(1.0, F.cast(t, np.float32))
        soft_q_next = F.sub(F.minimum(q1_target, q2_target),
                            F.mul(alpha, next_log_pi))
        y = F.stop_gradient(
            F.add(r, F.mul(float(self.agent.discount),
                           F.mul(not_done, soft_q_next))))
        td = F.sub(q1_pred, y)
        critic_loss = F.mul(0.5, F.add(
            F.reduce_mean(F.square(td)),
            F.reduce_mean(F.square(F.sub(q2_pred, y)))))
        # Actor: mean(α·logπ(a_new|s) − min(Q1,Q2)(s, a_new))
        actor_loss = F.reduce_mean(
            F.sub(F.mul(alpha, log_pi), F.minimum(q1_new, q2_new)))
        # Temperature: −mean(log_alpha·(logπ + H_target)), logπ detached.
        entropy_err = F.stop_gradient(
            F.add(log_pi, float(self.agent.target_entropy)))
        alpha_loss = F.neg(F.reduce_mean(F.mul(log_alpha, entropy_err)))

        policy_vars = list(self.policy.variable_registry().values())
        q_vars = (list(self.q1.variable_registry().values())
                  + list(self.q2.variable_registry().values()))
        alpha_vars = list(self.temperature.variable_registry().values())
        grads = (grads_of(actor_loss, policy_vars)
                 + grads_of(critic_loss, q_vars)
                 + grads_of(alpha_loss, alpha_vars))
        total = F.add(F.add(critic_loss, actor_loss), alpha_loss)
        return total, td, grads

    @graph_fn(returns=2, requires_variables=False)
    def _graph_fn_losses_and_step(self, *parts):
        total, td, grads = self._sac_losses(*parts)
        step_op = self.optimizer.step_from_grads(grads)
        if step_op is not None:
            total = F.with_deps(total, step_op)
        return total, td

    @graph_fn(returns=3, requires_variables=False)
    def _graph_fn_extract_grads(self, *parts):
        total, td, grads = self._sac_losses(*parts)
        return self.optimizer.flatcat_grads(grads), total, td

    # -- target sync -----------------------------------------------------------
    @rlgraph_api
    def sync_targets(self):
        return self._graph_fn_group_syncs(self.sync1.sync(),
                                          self.sync2.sync())

    @graph_fn(requires_variables=False)
    def _graph_fn_group_syncs(self, op1, op2):
        return F.group(*[op for op in (op1, op2) if op is not None])


@AGENTS.register("sac")
class SACAgent(Agent):
    """Soft Actor-Critic (Haarnoja et al. 2018) for FloatBox actions.

    Config keys (kwargs): network_spec, q_network_spec, preprocessing_spec,
    memory_capacity, batch_size, optimizer_spec, tau, sync_interval,
    initial_alpha, target_entropy.

    ``target_entropy=None`` uses the standard −dim(A). ``sync_interval``
    counts updates between Polyak syncs (default 1: every update, the
    usual SAC cadence — ``tau`` keeps the tracking soft).
    """

    ROOT_SCOPE = "sac-agent"

    def __init__(self, state_space, action_space, **kwargs):
        config = {
            "network_spec": DEFAULT_NETWORK,
            "q_network_spec": None,
            "preprocessing_spec": [],
            "memory_capacity": 10_000,
            "batch_size": 64,
            "optimizer_spec": {"type": "adam", "learning_rate": 3e-4},
            "tau": 0.005,
            "sync_interval": 1,
            "initial_alpha": 1.0,
            "target_entropy": None,
        }
        agent_kwargs = {}
        for key in ("backend", "discount", "observe_flush_size", "seed",
                    "auto_build", "device_map", "optimize"):
            if key in kwargs:
                agent_kwargs[key] = kwargs.pop(key)
        unknown = set(kwargs) - set(config)
        if unknown:
            raise RLGraphError(f"Unknown SAC config keys: {sorted(unknown)}")
        config.update(kwargs)
        self.config = config
        # Space checks + derived sizes must precede build() in the base
        # constructor (build_root reads them).
        action = space_from_spec(action_space)
        if not isinstance(action, FloatBox) or len(action.shape) != 1:
            raise RLGraphError(
                f"SAC requires a rank-1 FloatBox action space, got {action!r}")
        if action.low is None or action.high is None:
            raise RLGraphError(
                "SAC requires bounded actions (the tanh squash maps onto "
                "[low, high])")
        self.action_dim = int(action.shape[0])
        if config["target_entropy"] is None:
            self.target_entropy = -float(self.action_dim)
        else:
            self.target_entropy = float(config["target_entropy"])
        super().__init__(state_space, action_space, **agent_kwargs)

    # -- wiring ---------------------------------------------------------------
    def build_root(self) -> Component:
        return SACRoot(self, scope=self.ROOT_SCOPE)

    def preprocessed_space(self):
        stack = PreprocessorStack(self.config["preprocessing_spec"])
        return stack.transformed_space(self.state_space)

    def input_spaces(self) -> Dict[str, Any]:
        preprocessed = self.preprocessed_space().with_batch_rank()
        records = DictSpace(
            states=preprocessed.strip_ranks(),
            actions=self.action_space.strip_ranks(),
            rewards=FloatBox(),
            terminals=BoolBox(),
            next_states=preprocessed.strip_ranks(),
            add_batch_rank=True,
        )
        noise_space = FloatBox(shape=(self.action_dim,), add_batch_rank=True)
        spaces = {
            "states": self.state_space.with_batch_rank(),
            "preprocessed_states": preprocessed,
            "time_step": IntBox(low=0, high=_UINT31),
            "records": records,
            "batch_size": IntBox(low=0, high=_UINT31),
            "actions": self.action_space.with_batch_rank(),
            "rewards": FloatBox(add_batch_rank=True),
            "terminals": BoolBox(add_batch_rank=True),
            "next_states": preprocessed,
            "noise": noise_space,
            "next_noise": FloatBox(shape=(self.action_dim,),
                                   add_batch_rank=True),
        }
        if self.optimize != "none":
            # Gradient-apply endpoint needs the fused flat-slab
            # construction; omitting the space skips its assembly in the
            # per-variable ablation build.
            spaces["flat_grads"] = FloatBox(add_batch_rank=True)
        return spaces

    # -- API ----------------------------------------------------------------------
    def get_actions(self, states, explore: bool = True,
                    preprocess: bool = True):
        """Act on states; returns (action_vectors, preprocessed)."""
        states, single = self._batch_states(states)
        api = "get_actions" if explore else "get_greedy_actions"
        actions, preprocessed = self.call_api(api, states,
                                              np.asarray(self.timesteps))
        self.timesteps += len(states)
        actions = np.asarray(actions)
        if single:
            return actions[0], preprocessed[0]
        return actions, preprocessed

    def _insert_records(self, records: Dict[str, np.ndarray]) -> None:
        records = dict(records)
        records["actions"] = np.asarray(records["actions"],
                                        np.float32).reshape(
            -1, self.action_dim)
        self.call_api("insert_records", records)

    # -- noise plumbing -----------------------------------------------------------
    def _update_noise(self, batch_size: int, batch: Optional[Dict] = None):
        """Reparameterization noise for one update: taken from the batch
        when the caller supplies it (learner groups shard it with the
        data), else drawn from the seed stream keyed on the update
        counter — deterministic across backends and across
        checkpoint/resume."""
        if batch is not None and "noise" in batch:
            return (np.asarray(batch["noise"], np.float32),
                    np.asarray(batch["next_noise"], np.float32))
        rng = self.seeds.rng("sac-noise", self.updates)
        shape = (int(batch_size), self.action_dim)
        return (rng.standard_normal(shape).astype(np.float32),
                rng.standard_normal(shape).astype(np.float32))

    def _maybe_sync(self) -> bool:
        if self.config["sync_interval"] and \
                self.updates % self.config["sync_interval"] == 0:
            self.sync_targets()
            return True
        return False

    def update(self, batch: Optional[Dict] = None):
        """One SAC step (critics + actor + α through one fused update),
        then the Polyak target sync on its cadence. Returns (loss, td)."""
        if batch is None:
            batch_size = self.config["batch_size"]
            noise, next_noise = self._update_noise(batch_size)
            loss, td = self.call_api("update_from_memory",
                                     np.asarray(batch_size), noise,
                                     next_noise)
        else:
            noise, next_noise = self._update_noise(len(batch["rewards"]),
                                                   batch)
            loss, td = self.call_api(
                "update_from_external", batch["states"],
                np.asarray(batch["actions"], np.float32),
                np.asarray(batch["rewards"], np.float32),
                np.asarray(batch["terminals"], bool), batch["next_states"],
                noise, next_noise)
        self.updates += 1
        self._maybe_sync()
        return float(np.asarray(loss)), np.asarray(td)

    def _compute_gradients(self, batch: Dict):
        noise, next_noise = self._update_noise(len(batch["rewards"]), batch)
        flat_grads, loss, td = self.call_api(
            "compute_gradients", batch["states"],
            np.asarray(batch["actions"], np.float32),
            np.asarray(batch["rewards"], np.float32),
            np.asarray(batch["terminals"], bool), batch["next_states"],
            noise, next_noise)
        return np.asarray(flat_grads), {
            "losses": (float(np.asarray(loss)),),
            "td": np.asarray(td),
        }

    def apply_gradients(self, flat_grads) -> bool:
        """Fused apply + the same Polyak cadence as :meth:`update`."""
        self.call_api("apply_gradients",
                      np.ascontiguousarray(flat_grads, dtype=np.float32))
        self.updates += 1
        return self._maybe_sync()

    def sync_targets(self):
        self.call_api("sync_targets")
