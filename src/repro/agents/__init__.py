"""Agents: pre-built models configurable from declarative specs (§3.4)."""

from repro.agents.agent import AGENTS, Agent
from repro.agents.dqn_agent import ApexAgent, DQNAgent
from repro.agents.actor_critic_agent import ActorCriticAgent
from repro.agents.ppo_agent import PPOAgent
from repro.agents.impala_agent import IMPALAAgent
from repro.agents.sac_agent import SACAgent

__all__ = [
    "AGENTS",
    "Agent",
    "DQNAgent",
    "ApexAgent",
    "ActorCriticAgent",
    "PPOAgent",
    "IMPALAAgent",
    "SACAgent",
]
