"""The abstract agent API (paper Listing 2).

Agents own a root component, build it through the GraphBuilder for the
chosen backend, and serve the general-purpose API (get_actions / observe /
update / weights / import / export) by dispatching to the built graph's
op registry — one executor call per API request.
"""

from __future__ import annotations

import pickle
import time
from collections import defaultdict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend import XGRAPH
from repro.core import BuiltGraph, Component, GraphBuilder
from repro.spaces import Space
from repro.spaces.space_utils import space_from_spec
from repro.utils.errors import RLGraphError
from repro.utils.registry import Registry
from repro.utils.seeding import SeedStream

AGENTS = Registry("agent")


class Agent:
    """Base agent: spaces + root component + executor plumbing.

    Subclasses implement :meth:`build_root` (component composition) and
    :meth:`input_spaces` (spaces for the root API), then expose their
    algorithm through the generic API below.

    ``optimize`` selects the graph-compiler level for every session the
    agent builds: ``"none"`` (paper-faithful interpreter), ``"basic"``
    (fold/CSE/DNE + slot executor + buffer donation), ``"fused"``
    (default; adds elementwise fusion), or ``"native"`` (lowers the
    fused plan to compiled C segments — falls back to ``"fused"`` with
    a one-time warning when no C toolchain is available).
    """

    def __init__(self, state_space, action_space, backend: str = XGRAPH,
                 discount: float = 0.99, observe_flush_size: int = 64,
                 seed: Optional[int] = None, auto_build: bool = True,
                 device_map: Optional[Dict[str, str]] = None,
                 optimize: str = "fused"):
        self.state_space: Space = space_from_spec(state_space)
        self.action_space: Space = space_from_spec(action_space)
        self.backend = backend
        self.optimize = optimize
        self.discount = float(discount)
        self.observe_flush_size = int(observe_flush_size)
        self.seeds = SeedStream(seed)
        self.device_map = device_map

        self.root: Optional[Component] = None
        self.graph: Optional[BuiltGraph] = None
        self._flat_layout = None
        self.timesteps = 0
        self.updates = 0

        # Per-environment observation buffers (python-side, flushed in
        # batches through the observe/insert API — a deliberate batching
        # choice the paper's throughput analysis highlights).
        self._buffers: Dict[str, Dict[str, List]] = defaultdict(
            lambda: {"states": [], "actions": [], "rewards": [],
                     "terminals": [], "next_states": []})
        self._buffered = 0

        if auto_build:
            self.build()

    # -- to be implemented by concrete agents --------------------------------
    def build_root(self) -> Component:
        raise NotImplementedError

    def input_spaces(self) -> Dict[str, Any]:
        raise NotImplementedError

    # -- build ------------------------------------------------------------------
    def build(self, options: Optional[Dict] = None) -> "Agent":
        """Build the component graph for the configured backend."""
        if self.graph is not None:
            raise RLGraphError("Agent already built")
        self.root = self.build_root()
        builder = GraphBuilder(backend=self.backend,
                               seed=self.seeds.spawn("graph"),
                               optimize=self.optimize)
        self.graph = builder.build(self.root, self.input_spaces(),
                                   device_map=self.device_map)
        return self

    @property
    def build_stats(self):
        return self.graph.stats if self.graph else None

    def call_api(self, name: str, *args):
        if self.graph is None:
            raise RLGraphError("Agent not built; call build() first")
        return self.graph.execute(name, *args)

    # -- generic API (Listing 2) ---------------------------------------------------
    def get_actions(self, states, explore: bool = True,
                    preprocess: bool = True):
        raise NotImplementedError

    def _batch_states(self, states):
        """Normalize an act input to a batch: returns (batched, single).

        A single unbatched observation (serving's shape) is auto-expanded
        with a leading batch axis; callers squeeze the result when
        ``single`` is True.  Anything that is neither one observation nor
        a batch of them fails *here* with the shapes spelled out, instead
        of surfacing as a broadcasting error deep inside the graph.
        """
        states = np.asarray(states)
        expected = self.state_space.shape
        if states.shape == expected:
            return states[None], True
        if states.shape[1:] == expected and states.ndim == len(expected) + 1:
            return states, False
        raise RLGraphError(
            f"{type(self).__name__}.get_actions: observation of shape "
            f"{states.shape} matches neither one observation of the state "
            f"space (shape {expected}) nor a batch of them "
            f"(shape (N,{', '.join(str(d) for d in expected)}))")

    def serving_act_fn(self, explore: bool = False):
        """A batched act callable for the serving hot path.

        Returns ``fn(states) -> actions`` over an already-batched state
        array.  With ``explore=False`` (the serving default) the greedy
        endpoint executes through the cached compiled plumbing of
        :meth:`BuiltGraph.make_callable` — no per-call feed/fetch
        bookkeeping — so micro-batched inference amortizes to one
        session dispatch per batch.  Greedy serving is eval traffic,
        not experience: it does NOT advance :attr:`timesteps`, so
        exploration schedules and exported checkpoint counters only
        reflect training steps.  The explore variant keeps the training
        semantics (schedules advance per acted row).
        """
        if self.graph is None:
            raise RLGraphError("Agent not built; call build() first")
        if explore:
            def act(states):
                out = self.get_actions(states, explore=True)
                return np.asarray(out[0] if isinstance(out, tuple) else out)
            return act
        fn = self.graph.make_callable("get_greedy_actions")

        def act(states):
            out = fn(states, np.asarray(self.timesteps))
            actions = out[0] if isinstance(out, tuple) else out
            return np.asarray(actions)
        return act

    def act(self, vector_env, num_steps: int, explore: bool = True) -> Dict:
        """Batched acting loop over a vector-env engine (no learning).

        One ``get_actions`` call per step for the whole vector; stepping
        is dispatched through the engine's ``step_async``/``step_wait``
        split so on the threaded/async engines the environments run
        concurrently with the agent's Python-side dispatch.  Episode
        accounting accumulates on ``vector_env``.  Returns throughput
        stats (the acting-cost metric of paper Fig. 7a).
        """
        states = vector_env.reset_all()
        t0 = time.perf_counter()
        for _ in range(int(num_steps)):
            out = self.get_actions(states, explore=explore)
            actions = out[0] if isinstance(out, tuple) else out
            vector_env.step_async(actions)
            states, _, _ = vector_env.step_wait()
        wall = time.perf_counter() - t0
        frames = int(num_steps) * vector_env.num_envs
        return {
            "env_frames": frames,
            "wall_time": wall,
            "env_frames_per_second": frames / wall if wall else 0.0,
            "mean_return": vector_env.mean_finished_return(),
        }

    def observe(self, state, action, reward, terminal, next_state,
                env_id: str = "env0") -> None:
        """Buffer one transition; flush to the memory in batches."""
        buf = self._buffers[env_id]
        buf["states"].append(state)
        buf["actions"].append(action)
        buf["rewards"].append(reward)
        buf["terminals"].append(terminal)
        buf["next_states"].append(next_state)
        self._buffered += 1
        if self._buffered >= self.observe_flush_size:
            self.flush_observations()

    def observe_batch(self, states, actions, rewards, terminals,
                      next_states) -> None:
        """Insert a ready-made batch directly (vectorized workers)."""
        self._insert_records({
            "states": np.asarray(states),
            "actions": np.asarray(actions),
            "rewards": np.asarray(rewards, dtype=np.float32),
            "terminals": np.asarray(terminals, dtype=bool),
            "next_states": np.asarray(next_states),
        })

    def flush_observations(self) -> None:
        if self._buffered == 0:
            return
        merged = {k: [] for k in ["states", "actions", "rewards", "terminals",
                                  "next_states"]}
        for buf in self._buffers.values():
            for key in merged:
                merged[key].extend(buf[key])
            for key in buf:
                buf[key].clear()
        self._buffered = 0
        self._insert_records({
            "states": np.asarray(merged["states"]),
            "actions": np.asarray(merged["actions"]),
            "rewards": np.asarray(merged["rewards"], dtype=np.float32),
            "terminals": np.asarray(merged["terminals"], dtype=bool),
            "next_states": np.asarray(merged["next_states"]),
        })

    def _insert_records(self, records: Dict[str, np.ndarray]) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} has no memory to observe into")

    def update(self, batch: Optional[Dict] = None):
        raise NotImplementedError

    # -- gradient extraction (data-parallel learner groups) -------------------
    def update_from_batch(self, batch: Dict, apply: bool = True):
        """Update from an external batch, or — with ``apply=False`` —
        run only the gradient half of the fused step and return
        ``(flat_grads, stats)`` without touching any variable.

        ``flat_grads`` is ONE contiguous float32 vector in the
        optimizer's ParamSlab order (sorted by name), ready for a
        shared-memory all-reduce; feeding the (averaged) vector back
        through :meth:`apply_gradients` reuses the exact fused lowering
        of the in-graph step, so extract-then-apply is
        bitwise-comparable to a plain :meth:`update`.
        """
        if apply:
            return self.update(batch)
        return self.get_gradients(batch, flat=True)

    def get_gradients(self, batch: Dict, flat: bool = True):
        """Flat gradient slab for ``batch``: ``(flat_grads, stats)``.

        ``stats`` carries the loss scalars (``stats["losses"]``, in the
        same order the agent's :meth:`update` returns them) and, for
        TD-based agents, the per-row TD errors (``stats["td"]``).
        """
        if not flat:
            raise RLGraphError(
                "get_gradients: only flat=True is supported — per-variable "
                "gradient dicts never leave the graph (the flat slab is the "
                "transport format)")
        return self._compute_gradients(batch)

    def _compute_gradients(self, batch: Dict):
        raise NotImplementedError(
            f"{type(self).__name__} has no gradient-extraction build path")

    def apply_gradients(self, flat_grads: np.ndarray) -> bool:
        """Apply a flat gradient vector through the fused optimizer step.

        Advances :attr:`updates` exactly like :meth:`update` (including
        any target-network sync cadence — see subclass overrides).
        Returns True when the apply crossed a target-sync boundary, so
        group drivers can mirror the sync on replicas.
        """
        self.call_api("apply_gradients",
                      np.ascontiguousarray(flat_grads, dtype=np.float32))
        self.updates += 1
        return False

    def flat_grad_size(self) -> int:
        """Element count of the flat gradient vector (the optimizer's
        ParamSlab size — policy trainables only, smaller than the
        :meth:`flat_layout` weight vector whenever target networks
        exist)."""
        opt = getattr(self.root, "optimizer", None)
        if opt is None:
            raise RLGraphError(
                f"{type(self).__name__} has no optimizer component")
        return opt.flat_grad_size()

    def shard_spec(self):
        """How learner groups shard this agent's update batches:
        ``(default_axis, per_key_axis_overrides)`` as consumed by
        :func:`repro.components.common.batch_splitter.split_batch`.
        Row-major agents shard every key on axis 0; time-major agents
        (IMPALA) override this."""
        return 0, {}

    # -- weights -----------------------------------------------------------------
    def flat_layout(self):
        """The cached flat packing of this agent's trainable variables —
        identical across same-architecture agents, so a flat vector from
        a learner scatters correctly into an actor's variables."""
        if self._flat_layout is None:
            if self.root is None:
                raise RLGraphError("Agent not built; call build() first")
            self._flat_layout = self.root.flat_layout()
        return self._flat_layout

    def get_weights(self, flat: bool = False):
        """All trainable weights: a per-variable dict (default; used by
        checkpoints), or with ``flat=True`` ONE float32 vector in the
        deterministic :meth:`flat_layout` order — the zero-copy sync
        path executors ship as a single shared-memory block."""
        if flat:
            return self.flat_layout().gather()
        return self.root.get_weights()

    def set_weights(self, weights) -> None:
        """Accepts a per-variable dict or a flat vector from
        :meth:`get_weights(flat=True) <get_weights>`."""
        if isinstance(weights, np.ndarray) and weights.ndim == 1:
            self.flat_layout().scatter(weights)
            return
        self.root.set_weights(weights)

    # -- full state (checkpoint/resume) --------------------------------------
    _RANDOM_OPS = ("random_uniform", "random_normal")

    def full_state(self) -> Dict[str, Any]:
        """Capture the agent's COMPLETE mutable state for checkpointing.

        Unlike :meth:`export_model` (trainable weights + counters — an
        inference artifact), this snapshot restores mid-run training
        exactly: every variable including optimizer slot slabs, target
        networks, in-graph replay buffers and their index/size cursors
        (``trainable_only=False`` reaches all of them), plus the
        un-flushed observe buffers and the backend RNG states — the
        per-node generators of the symbolic graph's random ops and the
        eager seed counter.  ``restore_full_state`` of this payload into
        a same-config agent continues bitwise-identically to a run that
        was never interrupted.
        """
        if self.graph is None:
            raise RLGraphError("Agent not built; call build() first")
        variables = {
            name: np.array(var.value, copy=True)
            for name, var in self.root.variable_registry(
                trainable_only=False).items()}
        buffers = {env_id: {key: list(vals) for key, vals in buf.items()}
                   for env_id, buf in self._buffers.items()}
        return {
            "variables": variables,
            "timesteps": self.timesteps,
            "updates": self.updates,
            "buffers": buffers,
            "buffered": self._buffered,
            "rng": self._rng_state(),
        }

    def restore_full_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`full_state` snapshot (same-config agent).

        Variable values are written in place, so the flat-layout slab
        aliasing (PR 4) survives the restore.
        """
        if self.graph is None:
            raise RLGraphError("Agent not built; call build() first")
        registry = self.root.variable_registry(trainable_only=False)
        missing = set(state["variables"]) - set(registry)
        if missing:
            raise RLGraphError(
                f"Checkpoint variables not in this agent (config "
                f"mismatch?): {sorted(missing)[:5]}")
        for name, value in state["variables"].items():
            registry[name].set(value)
        self.timesteps = int(state["timesteps"])
        self.updates = int(state["updates"])
        self._buffers.clear()
        for env_id, buf in state["buffers"].items():
            target = self._buffers[env_id]
            for key, vals in buf.items():
                target[key] = list(vals)
        self._buffered = int(state["buffered"])
        self._restore_rng(state["rng"])

    def _rng_state(self) -> Dict[str, Any]:
        from repro.backend import functional
        state: Dict[str, Any] = {
            "eager_seed_counter": functional._eager_seed_counter[0]}
        graph = self.graph.graph
        if graph is not None:
            node_states = {}
            for node in graph.nodes:
                if node.op in self._RANDOM_OPS:
                    rng = node.attrs.get("_rng")
                    if rng is not None:
                        node_states[node.id] = rng.bit_generator.state
            state["graph_rng"] = node_states
        return state

    def _restore_rng(self, state: Dict[str, Any]) -> None:
        from repro.backend import functional
        functional._eager_seed_counter[0] = int(state["eager_seed_counter"])
        graph = self.graph.graph
        if graph is None:
            return
        node_states = state.get("graph_rng", {})
        for node in graph.nodes:
            if node.op in self._RANDOM_OPS:
                saved = node_states.get(node.id)
                if saved is None:
                    # Never drawn at capture time: drop any generator so
                    # it is lazily re-seeded exactly as on a fresh run.
                    node.attrs.pop("_rng", None)
                else:
                    rng = np.random.default_rng()
                    rng.bit_generator.state = saved
                    # Compiled session plans hold node.attrs by
                    # reference for stateful ops, so writing here
                    # reaches live plans without a rebuild.
                    node.attrs["_rng"] = rng

    def export_model(self, path: str) -> None:
        """Serialize weights (+ counters) to ``path``."""
        payload = {"weights": self.get_weights(),
                   "timesteps": self.timesteps, "updates": self.updates}
        with open(path, "wb") as f:
            pickle.dump(payload, f)

    def import_model(self, path: str) -> None:
        with open(path, "rb") as f:
            payload = pickle.load(f)
        self.set_weights(payload["weights"])
        self.timesteps = payload.get("timesteps", 0)
        self.updates = payload.get("updates", 0)

    def __repr__(self):
        return (f"{type(self).__name__}(backend={self.backend}, "
                f"t={self.timesteps}, updates={self.updates})")
