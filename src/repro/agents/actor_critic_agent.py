"""Advantage actor-critic (A2C) agent: on-policy, batch updates from
worker-collected rollouts with host-side discounted returns."""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.agents.agent import AGENTS, Agent
from repro.backend import functional as F
from repro.components.loss_functions import ActorCriticLoss
from repro.components.optimizers import OPTIMIZERS
from repro.components.policies import Policy
from repro.components.preprocessing import PreprocessorStack
from repro.core import Component, graph_fn, rlgraph_api
from repro.spaces import BoolBox, FloatBox, IntBox
from repro.utils.errors import RLGraphError

_UINT31 = 2**31 - 1


def discounted_returns(rewards, terminals, discount: float,
                       bootstrap_value: float = 0.0) -> np.ndarray:
    """Host-side discounted return computation over a rollout."""
    rewards = np.asarray(rewards, dtype=np.float32)
    terminals = np.asarray(terminals, dtype=bool)
    out = np.empty_like(rewards)
    acc = float(bootstrap_value)
    for t in range(len(rewards) - 1, -1, -1):
        if terminals[t]:
            acc = 0.0
        acc = rewards[t] + discount * acc
        out[t] = acc
    return out


class ActorCriticRoot(Component):
    def __init__(self, agent: "ActorCriticAgent", scope="a2c-agent", **kwargs):
        super().__init__(scope=scope, **kwargs)
        cfg = agent.config
        self.preprocessor = PreprocessorStack(cfg["preprocessing_spec"],
                                              scope="preprocessor")
        self.policy = Policy(cfg["network_spec"], agent.action_space,
                             value_head=True, scope="policy")
        self.loss = ActorCriticLoss(value_coeff=cfg["value_coeff"],
                                    entropy_coeff=cfg["entropy_coeff"],
                                    scope="loss")
        self.optimizer = OPTIMIZERS.from_spec(cfg["optimizer_spec"])
        self.optimizer.set_variables_provider(
            lambda: list(self.policy.variable_registry().values()))
        self.optimizer.build_dependencies = [self.policy]
        self.add_components(self.preprocessor, self.policy, self.loss,
                            self.optimizer)

    @rlgraph_api
    def get_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_action(preprocessed)
        return actions, preprocessed

    @rlgraph_api
    def get_greedy_actions(self, states, time_step):
        preprocessed = self.preprocessor.preprocess(states)
        actions = self.policy.get_deterministic_action(preprocessed)
        return actions, preprocessed

    @rlgraph_api
    def update_from_batch(self, next_states, actions, returns):
        # `next_states` carries the already-preprocessed rollout states
        # (naming matches the shared agent input-space convention).
        log_probs = self.policy.get_action_log_probs(next_states, actions)
        values = self.policy.get_state_values(next_states)
        entropies = self.policy.get_entropy(next_states)
        total, policy_loss, value_loss = self.loss.get_loss(
            log_probs, values, returns, entropies)
        step_op = self.optimizer.step(total)
        return self._graph_fn_result(total, policy_loss, value_loss, step_op)

    @rlgraph_api
    def compute_gradients(self, next_states, actions, returns):
        log_probs = self.policy.get_action_log_probs(next_states, actions)
        values = self.policy.get_state_values(next_states)
        entropies = self.policy.get_entropy(next_states)
        total, policy_loss, value_loss = self.loss.get_loss(
            log_probs, values, returns, entropies)
        flat_grads = self.optimizer.compute_flat_grads(total)
        return flat_grads, total, policy_loss, value_loss

    @rlgraph_api
    def apply_gradients(self, flat_grads):
        return self.optimizer.apply_flat_grads(flat_grads)

    @graph_fn(returns=3, requires_variables=False)
    def _graph_fn_result(self, total, policy_loss, value_loss, step_op):
        if step_op is not None:
            total = F.with_deps(total, step_op)
        return total, policy_loss, value_loss


@AGENTS.register("a2c", aliases=["actor_critic"])
class ActorCriticAgent(Agent):
    """A2C with host-side return computation (GAE omitted for clarity)."""

    def __init__(self, state_space, action_space, **kwargs):
        config = {
            "network_spec": [{"type": "dense", "units": 128,
                              "activation": "tanh"}],
            "preprocessing_spec": [],
            "value_coeff": 0.5,
            "entropy_coeff": 0.01,
            "optimizer_spec": {"type": "adam", "learning_rate": 1e-3},
        }
        agent_kwargs = {}
        for key in ("backend", "discount", "observe_flush_size", "seed",
                    "auto_build", "device_map", "optimize"):
            if key in kwargs:
                agent_kwargs[key] = kwargs.pop(key)
        unknown = set(kwargs) - set(config)
        if unknown:
            raise RLGraphError(f"Unknown A2C config keys: {sorted(unknown)}")
        config.update(kwargs)
        self.config = config
        super().__init__(state_space, action_space, **agent_kwargs)

    def build_root(self) -> Component:
        return ActorCriticRoot(self)

    def preprocessed_space(self):
        stack = PreprocessorStack(self.config["preprocessing_spec"])
        return stack.transformed_space(self.state_space)

    def input_spaces(self) -> Dict[str, Any]:
        spaces = {
            "states": self.state_space.with_batch_rank(),
            "time_step": IntBox(low=0, high=_UINT31),
            "next_states": self.preprocessed_space().with_batch_rank(),
            "actions": self.action_space.with_batch_rank(),
            "returns": FloatBox(add_batch_rank=True),
        }
        if self.optimize != "none":
            spaces["flat_grads"] = FloatBox(add_batch_rank=True)
        return spaces

    def get_actions(self, states, explore: bool = True, preprocess: bool = True):
        states, single = self._batch_states(states)
        api = "get_actions" if explore else "get_greedy_actions"
        actions, preprocessed = self.call_api(api, states,
                                              np.asarray(self.timesteps))
        self.timesteps += len(states)
        if single:
            return np.asarray(actions)[0], preprocessed[0]
        return np.asarray(actions), preprocessed

    def update(self, batch: Optional[Dict] = None):
        """On-policy update from a rollout batch with precomputed returns.

        ``batch``: states (preprocessed), actions, returns.
        """
        if batch is None:
            raise RLGraphError("A2C is on-policy; pass a rollout batch")
        total, policy_loss, value_loss = self.call_api(
            "update_from_batch", np.asarray(batch["states"]),
            np.asarray(batch["actions"]),
            np.asarray(batch["returns"], np.float32))
        self.updates += 1
        return (float(np.asarray(total)), float(np.asarray(policy_loss)),
                float(np.asarray(value_loss)))

    def _compute_gradients(self, batch: Dict):
        flat_grads, total, policy_loss, value_loss = self.call_api(
            "compute_gradients", np.asarray(batch["states"]),
            np.asarray(batch["actions"]),
            np.asarray(batch["returns"], np.float32))
        return np.asarray(flat_grads), {
            "losses": (float(np.asarray(total)),
                       float(np.asarray(policy_loss)),
                       float(np.asarray(value_loss))),
        }
