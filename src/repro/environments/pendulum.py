"""Pendulum swing-up: the classic continuous-control task (NumPy port of
the standard gym dynamics). The only env in the suite with a ``FloatBox``
action space — torque in [-2, 2] — so it exercises the continuous-action
path end to end (SAC, squashed Gaussian policies, vector-action serving).

Episodes are fixed-length (never terminate early); reward is the negative
cost ``-(θ² + 0.1·θ̇² + 0.001·u²)`` with the angle normalized to [-π, π],
so returns rise toward 0 as the pendulum learns to balance upright.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.spaces import FloatBox


@ENVIRONMENTS.register("pendulum")
class Pendulum(Environment):
    """Swing a pendulum upright; state [cos θ, sin θ, θ̇], action torque."""

    GRAVITY = 10.0
    MASS = 1.0
    LENGTH = 1.0
    DT = 0.05
    MAX_SPEED = 8.0
    MAX_TORQUE = 2.0

    def __init__(self, max_steps: int = 200, seed: Optional[int] = None):
        super().__init__(seed=seed)
        self.max_steps = int(max_steps)
        high = np.asarray([1.0, 1.0, self.MAX_SPEED], dtype=np.float32)
        self.state_space = FloatBox(low=-high, high=high)
        self.action_space = FloatBox(low=np.asarray([-self.MAX_TORQUE],
                                                    dtype=np.float32),
                                     high=np.asarray([self.MAX_TORQUE],
                                                     dtype=np.float32))
        self.theta = 0.0
        self.theta_dot = 0.0

    def _obs(self) -> np.ndarray:
        return np.asarray([np.cos(self.theta), np.sin(self.theta),
                           self.theta_dot], dtype=np.float32)

    def reset(self) -> np.ndarray:
        self._track_reset()
        self.theta = float(self.rng.uniform(-np.pi, np.pi))
        self.theta_dot = float(self.rng.uniform(-1.0, 1.0))
        return self._obs()

    def step(self, action):
        u = float(np.clip(np.asarray(action, dtype=np.float32).reshape(-1)[0],
                          -self.MAX_TORQUE, self.MAX_TORQUE))
        theta, theta_dot = self.theta, self.theta_dot
        # Normalize to [-pi, pi) so the cost is smallest upright.
        norm = ((theta + np.pi) % (2 * np.pi)) - np.pi
        cost = norm ** 2 + 0.1 * theta_dot ** 2 + 0.001 * u ** 2
        g, m, length, dt = self.GRAVITY, self.MASS, self.LENGTH, self.DT
        theta_dot = theta_dot + dt * (
            3.0 * g / (2.0 * length) * np.sin(theta)
            + 3.0 / (m * length ** 2) * u)
        theta_dot = float(np.clip(theta_dot, -self.MAX_SPEED, self.MAX_SPEED))
        theta = theta + dt * theta_dot
        self.theta, self.theta_dot = float(theta), theta_dot
        reward = -float(cost)
        self._track_step(reward)
        terminal = self.episode_steps >= self.max_steps
        return self._obs(), reward, terminal, {}
