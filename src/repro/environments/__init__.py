"""Environments.

The paper evaluates on Atari Pong (ALE) and a DeepMind Lab task; neither
is available offline, so this package provides NumPy-native substitutes
with the same interface shape (see DESIGN.md §2): SimPong (image-based,
±1 score rewards, 21-point episodes), SeekAvoid (expensive-to-render RGB
arena), plus classic control (CartPole), GridWorld and RandomEnv for
tests, and a pluggable family of vector-environment engines
(sequential / threaded / async — see :mod:`repro.environments.vector_env`)
behind the paper's batched sample-collection interface.
"""

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.environments.grid_world import GridWorld
from repro.environments.cart_pole import CartPole
from repro.environments.pendulum import Pendulum
from repro.environments.sim_pong import SimPong
from repro.environments.seek_avoid import SeekAvoid
from repro.environments.random_env import RandomEnv
from repro.environments.vector_env import (
    VECTOR_ENVS,
    AsyncVectorEnv,
    SequentialVectorEnv,
    ThreadedVectorEnv,
    VectorEnv,
    vector_env_from_spec,
)
from repro.environments.subproc_vector_env import SubprocVectorEnv

__all__ = [
    "ENVIRONMENTS",
    "Environment",
    "GridWorld",
    "CartPole",
    "Pendulum",
    "SimPong",
    "SeekAvoid",
    "RandomEnv",
    "VECTOR_ENVS",
    "VectorEnv",
    "SequentialVectorEnv",
    "ThreadedVectorEnv",
    "AsyncVectorEnv",
    "SubprocVectorEnv",
    "vector_env_from_spec",
]
