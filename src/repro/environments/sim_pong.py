"""SimPong: a deterministic NumPy Pong with ALE-compatible conventions.

Substitute for Atari Pong (DESIGN.md §2): grayscale frames, frame-skip
with reward accumulation, ±1 score events, and an episode that ends when
either side reaches 21 — so "reward 21" means a solved game exactly as in
the paper's Fig. 7b/8. The opponent tracks the ball with a configurable
error rate, giving a real learnable signal for the agent paddle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.spaces import FloatBox, IntBox


@ENVIRONMENTS.register("sim_pong", aliases=["pong"])
class SimPong(Environment):
    """Two-paddle pong on a ``size`` x ``size`` frame.

    Actions: 0 = noop, 1 = up, 2 = down (for the right paddle).
    Observations: (size, size, 1) float32 in [0, 255] (ALE-style pixel
    range so Divide(255) preprocessing is exercised).
    """

    def __init__(self, size: int = 32, frame_skip: int = 4,
                 paddle_height: Optional[int] = None,
                 opponent_skill: float = 0.8, points_to_win: int = 21,
                 max_steps: int = 5000, seed: Optional[int] = None):
        super().__init__(seed=seed)
        self.size = int(size)
        self.frame_skip = max(int(frame_skip), 1)
        self.paddle_height = paddle_height or max(self.size // 6, 2)
        self.opponent_skill = float(opponent_skill)
        self.points_to_win = int(points_to_win)
        self.max_steps = int(max_steps)
        self.state_space = FloatBox(shape=(self.size, self.size, 1))
        self.action_space = IntBox(3)
        self._frame = np.zeros((self.size, self.size, 1), dtype=np.float32)
        self.reset()

    # -- internals ------------------------------------------------------------
    def _serve(self, direction: int):
        self.ball = np.asarray([self.size / 2.0, self.size / 2.0])
        angle = self.rng.uniform(-0.35, 0.35)
        speed = max(self.size / 32.0, 1.0)
        self.ball_vel = np.asarray([speed * np.sin(angle),
                                    direction * speed * np.cos(angle)])

    def reset(self) -> np.ndarray:
        self._track_reset()
        mid = self.size // 2
        self.left_paddle = float(mid)
        self.right_paddle = float(mid)
        self.score = [0, 0]  # [opponent, agent]
        self._steps = 0
        self._serve(direction=1 if self.rng.random() < 0.5 else -1)
        return self._render()

    def _move_paddle(self, pos: float, delta: float) -> float:
        half = self.paddle_height / 2.0
        return float(np.clip(pos + delta, half, self.size - half))

    def _physics_step(self, action: int) -> float:
        """One sub-frame; returns score delta (+1 agent point, -1 opponent)."""
        speed = max(self.size / 32.0, 1.0)
        if action == 1:
            self.right_paddle = self._move_paddle(self.right_paddle, -speed)
        elif action == 2:
            self.right_paddle = self._move_paddle(self.right_paddle, speed)
        # Opponent: tracks the ball, with lapses.
        if self.rng.random() < self.opponent_skill:
            target = self.ball[0]
            delta = np.clip(target - self.left_paddle, -speed, speed)
            self.left_paddle = self._move_paddle(self.left_paddle, delta)

        self.ball = self.ball + self.ball_vel
        # Bounce off top/bottom.
        if self.ball[0] <= 0:
            self.ball[0] = -self.ball[0]
            self.ball_vel[0] = -self.ball_vel[0]
        elif self.ball[0] >= self.size - 1:
            self.ball[0] = 2 * (self.size - 1) - self.ball[0]
            self.ball_vel[0] = -self.ball_vel[0]

        half = self.paddle_height / 2.0
        # Right (agent) side.
        if self.ball[1] >= self.size - 2:
            if abs(self.ball[0] - self.right_paddle) <= half + 1:
                self.ball[1] = self.size - 2
                self.ball_vel[1] = -abs(self.ball_vel[1])
                # Add english depending on hit point.
                self.ball_vel[0] += 0.3 * np.sign(self.ball[0]
                                                  - self.right_paddle)
            else:
                self.score[0] += 1
                self._serve(direction=-1)
                return -1.0
        # Left (opponent) side.
        if self.ball[1] <= 1:
            if abs(self.ball[0] - self.left_paddle) <= half + 1:
                self.ball[1] = 1
                self.ball_vel[1] = abs(self.ball_vel[1])
            else:
                self.score[1] += 1
                self._serve(direction=1)
                return 1.0
        return 0.0

    def _render(self) -> np.ndarray:
        frame = self._frame
        frame[:] = 0.0
        half = int(self.paddle_height // 2)
        lp, rp = int(self.left_paddle), int(self.right_paddle)
        frame[max(lp - half, 0):lp + half + 1, 0:2, 0] = 255.0
        frame[max(rp - half, 0):rp + half + 1, -2:, 0] = 255.0
        br = int(np.clip(self.ball[0], 0, self.size - 1))
        bc = int(np.clip(self.ball[1], 0, self.size - 1))
        frame[br, bc, 0] = 255.0
        return frame.copy()

    # -- Environment API ----------------------------------------------------------
    def step(self, action):
        action = int(action)
        reward = 0.0
        for _ in range(self.frame_skip):
            reward += self._physics_step(action)
        self._steps += 1
        terminal = (max(self.score) >= self.points_to_win
                    or self._steps >= self.max_steps)
        self._track_step(reward)
        return self._render(), reward, bool(terminal), {"score": tuple(self.score)}
