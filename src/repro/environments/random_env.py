"""RandomEnv: arbitrary-space environment with random dynamics.

Useful for throughput benchmarks (no learnable structure, configurable
observation cost) and for fuzzing agents against odd space layouts.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.spaces import IntBox
from repro.spaces.space_utils import space_from_spec


@ENVIRONMENTS.register("random_env")
class RandomEnv(Environment):
    """Emits random states; terminates with probability ``terminal_prob``."""

    def __init__(self, state_space=(4,), action_space=2,
                 terminal_prob: float = 0.05, step_cost: float = 0.0,
                 cpu_work: int = 0, seed: Optional[int] = None):
        super().__init__(seed=seed)
        self.state_space = space_from_spec(state_space)
        self.action_space = space_from_spec(action_space)
        self.terminal_prob = float(terminal_prob)
        self.step_cost = float(step_cost)
        # Pure-Python spin per step: models a CPU-bound env that *holds*
        # the GIL (thread engines serialize on it; process engines
        # scale).  Contrast with step_cost, which sleeps (GIL released).
        self.cpu_work = int(cpu_work)

    def reset(self):
        self._track_reset()
        return self.state_space.sample(rng=self.rng)

    def step(self, action):
        if self.step_cost > 0:
            time.sleep(self.step_cost)
        if self.cpu_work > 0:
            acc = 0
            for i in range(self.cpu_work):
                acc += i  # GIL-holding busy loop by design

        state = self.state_space.sample(rng=self.rng)
        reward = float(self.rng.normal())
        terminal = bool(self.rng.random() < self.terminal_prob)
        self._track_step(reward)
        return state, reward, terminal, {}
