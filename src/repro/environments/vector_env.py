"""Vector-environment execution engines.

The paper's workers act on a *vector* of environments with one batched
inference call per step ("Each worker executed 4 environments ...
(called sequentially)", §5.1, Fig. 7a).  This module turns that single
hard-coded loop into a pluggable engine family behind one interface:

* :class:`SequentialVectorEnv` — the paper-faithful baseline: steps the
  vector in a Python loop on the calling thread.  Acting cost grows
  linearly with the vector size.
* :class:`ThreadedVectorEnv` — steps all environments on a persistent
  thread pool; results are written in place into shared NumPy batch
  buffers.  ``time.sleep``/IO/native-code environments step in parallel
  (the GIL is released), so acting cost approaches the cost of the
  slowest single environment.
* :class:`AsyncVectorEnv` — thread-pool stepping plus *double-buffered*
  output: ``step_async``/``step_wait`` overlap environment stepping with
  the caller's batched inference and post-processing, and the previous
  step's returned arrays stay valid while the next step is in flight.

All engines share auto-reset semantics and episode accounting (finished
episode returns/lengths are recorded on the main thread in slot order,
so accounting is deterministic regardless of thread scheduling).

Engines register in :data:`VECTOR_ENVS` and resolve uniformly from
declarative specs via :func:`vector_env_from_spec` — the
``vector_env_spec`` config key accepted by the executors::

    vector_env_from_spec(None, envs=envs)                  # sequential
    vector_env_from_spec("threaded", envs=envs)
    vector_env_from_spec({"type": "async", "num_threads": 4}, envs=envs)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.environments.environment import Environment
from repro.utils.errors import RLGraphError
from repro.utils.registry import Registry

VECTOR_ENVS = Registry("vector_env")


class VectorEnv:
    """Base class: N single environments behind a batched step interface.

    The stepping contract is split in two so engines can overlap work
    with the caller:

    * :meth:`step_async` — submit one action per environment; engines
      may begin stepping immediately on background threads.
    * :meth:`step_wait` — block until the step completes and return
      ``(states, rewards, terminals)`` stacked over the vector.

    :meth:`step` is the fused convenience call.  Terminated environments
    auto-reset: the returned state is the fresh post-reset state while
    the terminal flag still reports the episode end.
    """

    def __init__(self, env_fns: Sequence[Callable[[], Environment]] = None,
                 envs: Sequence[Environment] = None):
        if envs is not None:
            self.envs: List[Environment] = list(envs)
        elif env_fns is not None:
            self.envs = [fn() for fn in env_fns]
        else:
            raise RLGraphError("Provide env_fns or envs")
        if not self.envs:
            raise RLGraphError(f"{type(self).__name__} needs >= 1 environment")
        first = self.envs[0]
        self._init_accounting(len(self.envs), first.state_space,
                              first.action_space)

    def _init_accounting(self, num_envs: int, state_space,
                         action_space) -> None:
        """Shared slot-order episode accounting state.  Engines that do
        not build envs on the calling process (:class:`SubprocVectorEnv`)
        call this directly instead of ``VectorEnv.__init__``."""
        self.state_space = state_space
        self.action_space = action_space
        self.num_envs = num_envs
        # Episode accounting (batched, the fast path RLgraph workers use).
        self.episode_returns = np.zeros(self.num_envs, dtype=np.float64)
        self.episode_steps = np.zeros(self.num_envs, dtype=np.int64)
        self.finished_episode_returns: List[float] = []
        self.finished_episode_steps: List[int] = []
        self._pending_actions = None
        self._was_reset = False

    # -- stepping contract ------------------------------------------------
    def reset_all(self) -> np.ndarray:
        self.episode_returns[:] = 0.0
        self.episode_steps[:] = 0
        self._was_reset = True
        return self._reset_envs()

    def _reset_envs(self) -> np.ndarray:
        return np.stack([env.reset() for env in self.envs])

    def step(self, actions):
        """Batched step; auto-resets terminated envs.

        Returns (states, rewards, terminals) stacked over the vector.
        """
        self.step_async(actions)
        return self.step_wait()

    def step_async(self, actions) -> None:
        """Submit the next action vector (engines may start stepping)."""
        if not self._was_reset:
            raise RLGraphError("Call reset_all before step")
        if self._pending_actions is not None:
            raise RLGraphError(
                "step_async called with a step already in flight; call "
                "step_wait first")
        actions = np.asarray(actions)
        if len(actions) != self.num_envs:
            raise RLGraphError(
                f"Expected {self.num_envs} actions, got {len(actions)}")
        self._pending_actions = actions

    def step_wait(self):
        """Block until the in-flight step completes; return its results."""
        raise NotImplementedError

    def _take_pending(self) -> np.ndarray:
        if self._pending_actions is None:
            raise RLGraphError("step_wait called without step_async")
        actions, self._pending_actions = self._pending_actions, None
        return actions

    # -- episode accounting (main thread, slot order) ---------------------
    def _record_step(self, i: int, reward: float, terminal: bool) -> None:
        self.episode_returns[i] += reward
        self.episode_steps[i] += 1
        if terminal:
            self.finished_episode_returns.append(
                float(self.episode_returns[i]))
            self.finished_episode_steps.append(int(self.episode_steps[i]))
            self.episode_returns[i] = 0.0
            self.episode_steps[i] = 0

    def finished_returns_since(self, offset: int):
        """Incremental episode-stat shipping: returns
        ``(new_returns, new_offset)`` where ``new_returns`` are the
        episodes finished since ``offset``.  Callers that may drop a
        shipment (queue back-pressure) should only advance their stored
        offset once the shipment is accepted.
        """
        finished = self.finished_episode_returns
        return finished[offset:], len(finished)

    def mean_finished_return(self, last_n: int = 100) -> Optional[float]:
        if not self.finished_episode_returns:
            return None
        return float(np.mean(self.finished_episode_returns[-last_n:]))

    def close(self):
        for env in self.envs:
            env.close()

    def __len__(self):
        return self.num_envs

    def __repr__(self):
        return f"{type(self).__name__}(num_envs={self.num_envs})"


@VECTOR_ENVS.register("sequential")
class SequentialVectorEnv(VectorEnv):
    """The paper-faithful baseline: steps the vector in a Python loop.

    ``step_async`` only validates and stores the actions; all stepping
    happens synchronously inside ``step_wait`` on the calling thread.
    """

    def step_wait(self):
        actions = self._take_pending()
        states = []
        rewards = np.empty(self.num_envs, dtype=np.float32)
        terminals = np.empty(self.num_envs, dtype=bool)
        for i, (env, action) in enumerate(zip(self.envs, actions)):
            state, reward, terminal, _ = env.step(action)
            rewards[i] = reward
            terminals[i] = terminal
            self._record_step(i, float(reward), bool(terminal))
            if terminal:
                state = env.reset()
            states.append(state)
        return np.stack(states), rewards, terminals


class _BatchBuffers:
    """One set of shared output buffers, written in place by step threads."""

    def __init__(self, num_envs: int, sample_state: np.ndarray):
        sample = np.asarray(sample_state)
        self.states = np.empty((num_envs,) + sample.shape, dtype=sample.dtype)
        # float64 so episode accounting matches the sequential engine
        # bit-for-bit; the step() return is cast to float32 like the base.
        self.rewards = np.empty(num_envs, dtype=np.float64)
        self.terminals = np.empty(num_envs, dtype=bool)


@VECTOR_ENVS.register("threaded")
class ThreadedVectorEnv(VectorEnv):
    """Thread-pool stepping into shared NumPy batch buffers.

    ``step_async`` dispatches one step-(and maybe reset)-task per
    environment to a persistent pool; each task writes its slot of the
    shared ``(N, ...)`` state/reward/terminal buffers in place.
    ``step_wait`` joins the tasks and performs episode accounting in
    slot order on the calling thread.

    By default (``copy_output=True``) the returned states are a
    *snapshot copy* of the shared buffer.  This matters because agents
    whose preprocessing is the identity hand the input array straight
    back as "preprocessed", and workers accumulate those arrays across
    a whole rollout — aliasing the live buffer would silently turn the
    rollout into T references to the final step.  The copy is a few
    microseconds against a millisecond-scale env step.

    ``copy_output=False`` opts into the raw zero-copy buffers for hot
    loops that obey the in-place contract: the returned states are
    overwritten by the *next* ``step_async`` — consume them (run
    inference, copy what you keep) before submitting the next action
    vector.  Rewards/terminals are always returned as fresh arrays.
    """

    def __init__(self, env_fns: Sequence[Callable[[], Environment]] = None,
                 envs: Sequence[Environment] = None,
                 num_threads: Optional[int] = None,
                 copy_output: bool = True):
        super().__init__(env_fns=env_fns, envs=envs)
        self.copy_output = bool(copy_output)
        workers = min(int(num_threads), self.num_envs) if num_threads \
            else self.num_envs
        self._pool = ThreadPoolExecutor(
            max_workers=max(workers, 1),
            thread_name_prefix=f"{type(self).__name__.lower()}")
        self._write: Optional[_BatchBuffers] = None
        self._futures = None

    # -- buffer management ------------------------------------------------
    def _make_buffers(self, sample_state) -> None:
        self._write = _BatchBuffers(self.num_envs, sample_state)

    def _reset_envs(self) -> np.ndarray:
        states = list(self._pool.map(lambda env: env.reset(), self.envs))
        if self._write is None:
            self._make_buffers(states[0])
        for i, state in enumerate(states):
            self._write.states[i] = state
        return self._write.states.copy() if self.copy_output \
            else self._write.states

    # -- stepping ---------------------------------------------------------
    def _step_slot(self, i: int) -> None:
        env = self.envs[i]
        state, reward, terminal, _ = env.step(self._pending_actions[i])
        if terminal:
            state = env.reset()
        self._write.states[i] = state
        self._write.rewards[i] = reward
        self._write.terminals[i] = terminal

    def step_async(self, actions) -> None:
        super().step_async(actions)  # base guard ensures buffers exist
        self._before_dispatch()
        self._futures = [self._pool.submit(self._step_slot, i)
                         for i in range(self.num_envs)]

    def _before_dispatch(self) -> None:
        """Hook for subclasses to adjust buffers before tasks launch."""

    def step_wait(self):
        if self._futures is None:
            raise RLGraphError("step_wait called without step_async")
        futures, self._futures = self._futures, None
        # Drain every task before clearing state or re-raising: straggler
        # threads must not keep reading actions / writing buffers while
        # the caller handles the error and possibly resets.
        first_error = None
        for future in futures:
            try:
                future.result()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        self._pending_actions = None
        if first_error is not None:
            raise first_error
        buf = self._write
        for i in range(self.num_envs):
            self._record_step(i, float(buf.rewards[i]), bool(buf.terminals[i]))
        states = buf.states.copy() if self.copy_output else buf.states
        return states, buf.rewards.astype(np.float32), buf.terminals.copy()

    def close(self):
        self._pool.shutdown(wait=True)
        super().close()


@VECTOR_ENVS.register("async")
class AsyncVectorEnv(ThreadedVectorEnv):
    """Double-buffered thread-pool stepping for step/act overlap.

    Two buffer sets alternate as the write target: ``step_async`` flips
    to the back buffer before dispatching, so in zero-copy mode
    (``copy_output=False``) the arrays returned by the *previous*
    ``step_wait`` stay valid while the next step is in flight — one
    extra step of grace over :class:`ThreadedVectorEnv`.  The intended
    hot loop overlaps the learner's batched inference and rollout
    post-processing with environment stepping::

        states = vec.reset_all()
        while acting:
            actions = agent.get_actions(states)   # batched inference
            vec.step_async(actions)               # envs step in background
            record(states, actions, ...)          # overlapped post-processing
            states, rewards, terminals = vec.step_wait()
    """

    def __init__(self, env_fns: Sequence[Callable[[], Environment]] = None,
                 envs: Sequence[Environment] = None,
                 num_threads: Optional[int] = None,
                 copy_output: bool = True):
        super().__init__(env_fns=env_fns, envs=envs, num_threads=num_threads,
                         copy_output=copy_output)
        self._back: Optional[_BatchBuffers] = None

    def _make_buffers(self, sample_state) -> None:
        self._write = _BatchBuffers(self.num_envs, sample_state)
        self._back = _BatchBuffers(self.num_envs, sample_state)

    def _before_dispatch(self) -> None:
        # Flip to the back buffer: the previously returned arrays stay
        # valid while this step runs.
        self._write, self._back = self._back, self._write


def vector_env_from_spec(spec=None, envs: Sequence[Environment] = None,
                         env_fns: Sequence[Callable] = None) -> VectorEnv:
    """Resolve a ``vector_env_spec`` config value to an engine instance.

    Accepted forms (the executors' ``vector_env_spec`` key):

    * ``None`` — the paper-faithful :class:`SequentialVectorEnv` default;
    * a string — engine type name (``"sequential"``/``"threaded"``/``"async"``);
    * a dict — ``{"type": "threaded", "num_threads": 4}`` style;
    * a :class:`VectorEnv` subclass, or an already-built instance
      (returned as-is; ``envs``/``env_fns`` are ignored).
    """
    if isinstance(spec, VectorEnv):
        return spec
    if spec is None:
        spec = "sequential"
    built = VECTOR_ENVS.from_spec(spec, envs=envs, env_fns=env_fns)
    if not isinstance(built, VectorEnv):
        raise RLGraphError(
            f"vector_env_spec resolved to {type(built).__name__}, "
            f"which is not a VectorEnv")
    return built


# Registered on import so "subproc" resolves from specs; imported last
# to avoid a cycle (the module subclasses VectorEnv above).
from repro.environments import subproc_vector_env  # noqa: E402,F401
