"""SequentialVectorEnv: a vector of environments stepped sequentially.

This matches the paper's setup exactly — "Each worker executed 4
environments ... (called sequentially)" (§5.1, Fig. 7a) — so acting cost
scales with the vector while inference is batched once per step.
Auto-resets on terminal, returning the fresh state (the terminal flag
still reports the episode end).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.environments.environment import Environment
from repro.utils.errors import RLGraphError


class SequentialVectorEnv:
    """Wraps N single environments behind a batched step interface."""

    def __init__(self, env_fns: Sequence[Callable[[], Environment]] = None,
                 envs: Sequence[Environment] = None):
        if envs is not None:
            self.envs: List[Environment] = list(envs)
        elif env_fns is not None:
            self.envs = [fn() for fn in env_fns]
        else:
            raise RLGraphError("Provide env_fns or envs")
        if not self.envs:
            raise RLGraphError("SequentialVectorEnv needs >= 1 environment")
        first = self.envs[0]
        self.state_space = first.state_space
        self.action_space = first.action_space
        self.num_envs = len(self.envs)
        # Episode accounting (batched, the fast path RLgraph workers use).
        self.episode_returns = np.zeros(self.num_envs, dtype=np.float64)
        self.episode_steps = np.zeros(self.num_envs, dtype=np.int64)
        self.finished_episode_returns: List[float] = []
        self.finished_episode_steps: List[int] = []

    def reset_all(self) -> np.ndarray:
        self.episode_returns[:] = 0.0
        self.episode_steps[:] = 0
        return np.stack([env.reset() for env in self.envs])

    def step(self, actions):
        """Batched step; auto-resets terminated envs.

        Returns (states, rewards, terminals) stacked over the vector.
        """
        actions = np.asarray(actions)
        if len(actions) != self.num_envs:
            raise RLGraphError(
                f"Expected {self.num_envs} actions, got {len(actions)}")
        states = []
        rewards = np.empty(self.num_envs, dtype=np.float32)
        terminals = np.empty(self.num_envs, dtype=bool)
        for i, (env, action) in enumerate(zip(self.envs, actions)):
            state, reward, terminal, _ = env.step(action)
            rewards[i] = reward
            terminals[i] = terminal
            self.episode_returns[i] += reward
            self.episode_steps[i] += 1
            if terminal:
                self.finished_episode_returns.append(
                    float(self.episode_returns[i]))
                self.finished_episode_steps.append(int(self.episode_steps[i]))
                self.episode_returns[i] = 0.0
                self.episode_steps[i] = 0
                state = env.reset()
            states.append(state)
        return np.stack(states), rewards, terminals

    def mean_finished_return(self, last_n: int = 100) -> Optional[float]:
        if not self.finished_episode_returns:
            return None
        return float(np.mean(self.finished_episode_returns[-last_n:]))

    def close(self):
        for env in self.envs:
            env.close()
