"""CartPole: classic control (Barto, Sutton & Anderson 1983), NumPy port
of the standard gym dynamics. Used for learning-curve benchmarks where a
conv net would be overkill."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.spaces import FloatBox, IntBox


@ENVIRONMENTS.register("cart_pole", aliases=["cartpole"])
class CartPole(Environment):
    """Balance a pole on a cart; +1 per step; episode ends on fall/bounds."""

    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    TOTAL_MASS = CART_MASS + POLE_MASS
    POLE_HALF_LENGTH = 0.5
    POLE_MASS_LENGTH = POLE_MASS * POLE_HALF_LENGTH
    FORCE_MAG = 10.0
    TAU = 0.02
    THETA_LIMIT = 12 * 2 * math.pi / 360
    X_LIMIT = 2.4

    def __init__(self, max_steps: int = 200, seed: Optional[int] = None):
        super().__init__(seed=seed)
        self.max_steps = int(max_steps)
        high = np.asarray([self.X_LIMIT * 2, 10.0, self.THETA_LIMIT * 2, 10.0],
                          dtype=np.float32)
        self.state_space = FloatBox(low=-high, high=high)
        self.action_space = IntBox(2)
        self.state = np.zeros(4, dtype=np.float32)

    def reset(self) -> np.ndarray:
        self._track_reset()
        self.state = self.rng.uniform(-0.05, 0.05, size=4).astype(np.float32)
        return self.state.copy()

    def step(self, action):
        x, x_dot, theta, theta_dot = self.state
        force = self.FORCE_MAG if int(action) == 1 else -self.FORCE_MAG
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        temp = (force + self.POLE_MASS_LENGTH * theta_dot ** 2 * sin_t) \
            / self.TOTAL_MASS
        theta_acc = (self.GRAVITY * sin_t - cos_t * temp) / (
            self.POLE_HALF_LENGTH
            * (4.0 / 3.0 - self.POLE_MASS * cos_t ** 2 / self.TOTAL_MASS))
        x_acc = temp - self.POLE_MASS_LENGTH * theta_acc * cos_t \
            / self.TOTAL_MASS
        x += self.TAU * x_dot
        x_dot += self.TAU * x_acc
        theta += self.TAU * theta_dot
        theta_dot += self.TAU * theta_acc
        self.state = np.asarray([x, x_dot, theta, theta_dot], dtype=np.float32)
        terminal = bool(abs(x) > self.X_LIMIT or abs(theta) > self.THETA_LIMIT)
        reward = 1.0
        self._track_step(reward)
        if self.episode_steps >= self.max_steps:
            terminal = True
        return self.state.copy(), reward, terminal, {}
