"""GridWorld: a small deterministic MDP for learning tests.

Agents must reliably solve this in a few hundred updates, which makes it
the canonical "does the algorithm learn at all" fixture.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.spaces import FloatBox, IntBox
from repro.utils.errors import RLGraphError

# Cells: S start, G goal (+1), H hole (-1, terminal), ' ' free.
MAPS = {
    "4x4": ["S   ",
            " H  ",
            "   H",
            "  G "],
    "2x2": ["S ",
            " G"],
    "corridor": ["S      G"],
}


@ENVIRONMENTS.register("grid_world", aliases=["gridworld"])
class GridWorld(Environment):
    """Deterministic grid with one-hot state observations.

    Actions: 0=up, 1=right, 2=down, 3=left. Step reward -0.01, goal +1,
    hole -1. Episodes cap at ``max_steps``.
    """

    def __init__(self, map_name: str = "4x4", max_steps: int = 100,
                 seed: Optional[int] = None):
        super().__init__(seed=seed)
        if map_name not in MAPS:
            raise RLGraphError(f"Unknown map {map_name!r}; have {list(MAPS)}")
        self.grid = [list(row) for row in MAPS[map_name]]
        self.n_rows = len(self.grid)
        self.n_cols = len(self.grid[0])
        self.num_cells = self.n_rows * self.n_cols
        self.max_steps = int(max_steps)
        self.start = next((r, c) for r in range(self.n_rows)
                          for c in range(self.n_cols)
                          if self.grid[r][c] == "S")
        self.state_space = FloatBox(shape=(self.num_cells,))
        self.action_space = IntBox(4)
        self.pos = self.start

    def _obs(self) -> np.ndarray:
        out = np.zeros(self.num_cells, dtype=np.float32)
        out[self.pos[0] * self.n_cols + self.pos[1]] = 1.0
        return out

    def reset(self) -> np.ndarray:
        self._track_reset()
        self.pos = self.start
        return self._obs()

    def step(self, action):
        action = int(action)
        if not 0 <= action < 4:
            raise RLGraphError(f"Invalid action {action}")
        dr, dc = [(-1, 0), (0, 1), (1, 0), (0, -1)][action]
        r = min(max(self.pos[0] + dr, 0), self.n_rows - 1)
        c = min(max(self.pos[1] + dc, 0), self.n_cols - 1)
        self.pos = (r, c)
        cell = self.grid[r][c]
        if cell == "G":
            reward, terminal = 1.0, True
        elif cell == "H":
            reward, terminal = -1.0, True
        else:
            reward, terminal = -0.01, False
        self._track_step(reward)
        if self.episode_steps >= self.max_steps:
            terminal = True
        return self._obs(), reward, terminal, {}
