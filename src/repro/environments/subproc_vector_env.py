"""SubprocVectorEnv: env shards stepped in worker processes.

The thread-based engines in :mod:`repro.environments.vector_env` only
parallelize environments that release the GIL.  CPU-bound pure-Python
environments — exactly the kind the paper's Ape-X/IMPALA experiments
hammer with many actors — serialize on it.  This engine moves the env
shards onto real processes while keeping the data path allocation-free:

* N environments are split into contiguous shards over W worker
  processes (default: one worker per core, capped at N);
* the parent preallocates shared ``(N, ...)`` state/reward/terminal
  buffers plus an action buffer in ``multiprocessing.shared_memory``;
  per step, the parent writes the action vector in place and sends each
  worker a 1-byte-ish "step" message; workers step their shard and
  write observations/rewards/terminals **in place** into their slice —
  no pickling of NumPy data in either direction, ever;
* auto-reset, slot-order episode accounting, and the
  snapshot-copy-by-default / ``copy_output=False`` zero-copy contract
  mirror :class:`~repro.environments.vector_env.ThreadedVectorEnv`
  exactly, so trajectories are bitwise-identical to the sequential
  baseline for identically seeded envs.

Buffers are sized lazily on the first ``reset_all`` from the actual
reset states (a probe reset would perturb env RNG streams and break
parity).  A crashed worker surfaces as a descriptive
:class:`RLGraphError` naming the worker and its env slice instead of a
hang.  Spawn-safe: the worker entry point is module-level and all env
payloads ship through ``Process(args=)`` (inherited under fork, pickled
once under spawn).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.environments.environment import Environment
from repro.environments.vector_env import VECTOR_ENVS, VectorEnv
from repro.utils.errors import RLGraphError

from repro.utils.procutil import default_start_method

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None


class _BufferSpec:
    """Picklable description of one shared array: (name, shape, dtype)."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def attach(self):
        shm = shared_memory.SharedMemory(name=self.name)
        array = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                           buffer=shm.buf)
        return shm, array


def _subproc_worker(conn, env_payload, payload_is_fns: bool,
                    start_index: int) -> None:
    """Worker entry point: build the env shard, serve step commands.

    Shared buffers are global (N, ...) arrays; this worker only touches
    rows ``start_index : start_index + len(envs)``.
    """
    shms: list = []
    try:
        if payload_is_fns:
            envs = [fn() for fn in env_payload]
        else:
            envs = list(env_payload)
        conn.send(("ready", (envs[0].state_space, envs[0].action_space)))
    except BaseException as exc:
        import traceback
        conn.send(("err", exc, traceback.format_exc()))
        conn.close()
        return
    states_arr = rewards_arr = terminals_arr = actions_arr = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind, arg = message
        try:
            if kind == "close":
                break
            elif kind == "attach":
                for shm in shms:
                    shm.close()
                shms.clear()
                shm_s, states_arr = arg["states"].attach()
                shm_r, rewards_arr = arg["rewards"].attach()
                shm_t, terminals_arr = arg["terminals"].attach()
                shms.extend([shm_s, shm_r, shm_t])
                conn.send(("ok", None))
            elif kind == "actions":
                shm_a, actions_arr = arg.attach()
                shms.append(shm_a)
                conn.send(("ok", None))
            elif kind == "reset":
                states = [env.reset() for env in envs]
                if states_arr is None:
                    # First reset: buffers do not exist yet; ship states
                    # once so the parent can size them from real data.
                    conn.send(("states", states))
                else:
                    for j, state in enumerate(states):
                        states_arr[start_index + j] = state
                    conn.send(("ok", None))
            elif kind == "step":
                for j, env in enumerate(envs):
                    i = start_index + j
                    state, reward, terminal, _ = env.step(actions_arr[i])
                    if terminal:
                        state = env.reset()
                    states_arr[i] = state
                    rewards_arr[i] = reward
                    terminals_arr[i] = terminal
                conn.send(("ok", None))
            else:
                raise RLGraphError(f"Unknown worker command {kind!r}")
        except BaseException as exc:
            import traceback
            try:
                conn.send(("err", exc, traceback.format_exc()))
            except Exception:
                conn.send(("err",
                           RLGraphError(f"{type(exc).__name__}: {exc}"),
                           traceback.format_exc()))
    for env in envs:
        env.close()
    for shm in shms:
        shm.close()
    conn.close()


@VECTOR_ENVS.register("subproc")
class SubprocVectorEnv(VectorEnv):
    """Process-parallel stepping into shared ``(N, ...)`` buffers.

    Mirrors :class:`ThreadedVectorEnv` semantics (auto-reset, slot-order
    accounting, ``copy_output`` snapshot/zero-copy contract) with env
    shards living in worker processes.  Prefer this engine when env
    stepping is CPU-bound pure Python; prefer the threaded engines when
    envs release the GIL (native code / IO), where threads are cheaper.
    """

    def __init__(self, env_fns: Sequence[Callable[[], Environment]] = None,
                 envs: Sequence[Environment] = None,
                 num_workers: Optional[int] = None,
                 copy_output: bool = True,
                 start_method: Optional[str] = None):
        if shared_memory is None:  # pragma: no cover
            raise RLGraphError(
                "SubprocVectorEnv requires multiprocessing.shared_memory")
        if envs is not None:
            payload: Sequence = list(envs)
            payload_is_fns = False
        elif env_fns is not None:
            payload = list(env_fns)
            payload_is_fns = True
        else:
            raise RLGraphError("Provide env_fns or envs")
        if not payload:
            raise RLGraphError(
                f"{type(self).__name__} needs >= 1 environment")
        self.envs: List[Environment] = []  # live in the workers
        self.copy_output = bool(copy_output)
        num_envs = len(payload)
        workers = min(int(num_workers), num_envs) if num_workers \
            else min(os.cpu_count() or 1, num_envs)
        workers = max(workers, 1)
        # Start the resource tracker *before* forking so every worker
        # shares it; a worker forked first would lazily spawn a private
        # tracker on attach and spuriously warn about "leaked" blocks
        # it does not own at exit.
        try:
            from multiprocessing import resource_tracker
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover
            pass
        ctx = multiprocessing.get_context(
            start_method or default_start_method())
        self._conns = []
        self._procs = []
        self._shard_bounds: List[Tuple[int, int]] = []
        shard_sizes = [len(part) for part in
                       np.array_split(np.arange(num_envs), workers)]
        start = 0
        for w, size in enumerate(shard_sizes):
            shard = payload[start:start + size]
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_subproc_worker,
                args=(child_conn, shard, payload_is_fns, start),
                name=f"subproc-vec-env-{w}", daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
            self._shard_bounds.append((start, start + size))
            start += size
        state_space = action_space = None
        for w in range(workers):
            reply = self._recv(w)
            if w == 0:
                state_space, action_space = reply
        self._init_accounting(num_envs, state_space, action_space)
        self._shms: List = []       # parent-owned blocks (unlinked on close)
        self._states = None         # (N, ...) view over shared memory
        self._rewards = None        # float64: accounting parity with threaded
        self._terminals = None
        self._actions = None
        self._action_spec = None
        self._inflight = False
        self._closed = False

    # -- worker plumbing ----------------------------------------------------
    def _worker_desc(self, w: int) -> str:
        lo, hi = self._shard_bounds[w]
        return f"worker {w} (envs {lo}..{hi - 1})"

    def _recv(self, w: int):
        """Receive one reply from worker ``w``; raise descriptively on
        actor errors or a dead process."""
        try:
            reply = self._conns[w].recv()
        except (EOFError, OSError):
            self._procs[w].join(timeout=1.0)
            raise RLGraphError(
                f"SubprocVectorEnv {self._worker_desc(w)} died unexpectedly "
                f"(exit code {self._procs[w].exitcode}); the env shard is "
                f"lost — recreate the vector env") from None
        if reply[0] == "err":
            _, exc, tb = reply
            raise RLGraphError(
                f"SubprocVectorEnv {self._worker_desc(w)} failed:\n{tb}"
            ) from exc
        return reply[1]

    def _send_all(self, message) -> None:
        for w, conn in enumerate(self._conns):
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                raise RLGraphError(
                    f"SubprocVectorEnv {self._worker_desc(w)} is gone; "
                    f"cannot send {message[0]!r}") from None

    def _alloc(self, shape: Tuple[int, ...], dtype) -> Tuple[_BufferSpec,
                                                             np.ndarray]:
        nbytes = max(int(np.prod(shape)) * np.dtype(dtype).itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._shms.append(shm)
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        return _BufferSpec(shm.name, shape, np.dtype(dtype).str), array

    # -- stepping contract --------------------------------------------------
    def _reset_envs(self) -> np.ndarray:
        self._send_all(("reset", None))
        if self._states is None:
            shard_states = [self._recv(w) for w in range(len(self._conns))]
            sample = np.asarray(shard_states[0][0])
            states_spec, self._states = self._alloc(
                (self.num_envs,) + sample.shape, sample.dtype)
            rewards_spec, self._rewards = self._alloc(
                (self.num_envs,), np.float64)
            terminals_spec, self._terminals = self._alloc(
                (self.num_envs,), bool)
            for (lo, _), states in zip(self._shard_bounds, shard_states):
                for j, state in enumerate(states):
                    self._states[lo + j] = state
            self._send_all(("attach", {"states": states_spec,
                                       "rewards": rewards_spec,
                                       "terminals": terminals_spec}))
            for w in range(len(self._conns)):
                self._recv(w)
        else:
            for w in range(len(self._conns)):
                self._recv(w)
        return self._states.copy() if self.copy_output else self._states

    def step_async(self, actions) -> None:
        super().step_async(actions)
        actions = self._pending_actions
        if (self._action_spec is None
                or self._action_spec.shape != actions.shape
                or np.dtype(self._action_spec.dtype) != actions.dtype):
            spec, self._actions = self._alloc(actions.shape, actions.dtype)
            self._action_spec = spec
            self._send_all(("actions", spec))
            for w in range(len(self._conns)):
                self._recv(w)
        np.copyto(self._actions, actions)
        self._send_all(("step", None))
        self._inflight = True

    def step_wait(self):
        if not self._inflight:
            raise RLGraphError("step_wait called without step_async")
        self._inflight = False
        self._pending_actions = None
        # Drain every worker before re-raising so stragglers are not
        # left mid-write while the caller handles the error.
        first_error = None
        for w in range(len(self._conns)):
            try:
                self._recv(w)
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        for i in range(self.num_envs):
            self._record_step(i, float(self._rewards[i]),
                              bool(self._terminals[i]))
        states = self._states.copy() if self.copy_output else self._states
        return (states, self._rewards.astype(np.float32),
                self._terminals.copy())

    # -- teardown -----------------------------------------------------------
    def close(self):
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        # Drop our views first so the blocks have no exported buffers.
        self._states = self._rewards = self._terminals = None
        self._actions = None
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
            except BufferError:
                # A zero-copy caller still holds returned views; leave
                # the block registered so the resource tracker reaps it
                # at interpreter exit.
                pass
        self._shms = []

    def __del__(self):  # belt and braces; close() is idempotent
        try:
            self.close()
        except Exception:
            pass
