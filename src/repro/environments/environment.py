"""Environment interface (gym-like, with Space-typed state/action spaces)."""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.spaces import Space
from repro.utils.registry import Registry

ENVIRONMENTS = Registry("environment")


class Environment:
    """Minimal environment contract used by workers and executors.

    ``step`` returns (next_state, reward, terminal, info). Environments
    must be independently seedable for distributed sample collection.
    """

    state_space: Space = None
    action_space: Space = None

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)
        self.episode_return = 0.0
        self.episode_steps = 0

    def reset(self) -> np.ndarray:
        raise NotImplementedError

    def step(self, action) -> Tuple[np.ndarray, float, bool, dict]:
        raise NotImplementedError

    def seed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def close(self) -> None:
        """Release resources (no-op by default)."""

    def _track_reset(self):
        self.episode_return = 0.0
        self.episode_steps = 0

    def _track_step(self, reward: float):
        self.episode_return += float(reward)
        self.episode_steps += 1

    def __repr__(self):
        return (f"{type(self).__name__}(state={self.state_space!r}, "
                f"action={self.action_space!r})")
