"""Environment interface (gym-like, with Space-typed state/action spaces)."""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.spaces import Space
from repro.utils.registry import Registry

ENVIRONMENTS = Registry("environment")


class Environment:
    """Minimal environment contract used by workers and executors.

    ``step`` returns (next_state, reward, terminal, info). Environments
    must be independently seedable for distributed sample collection.
    """

    state_space: Space = None
    action_space: Space = None

    def __init__(self, seed: Optional[int] = None):
        self.rng = np.random.default_rng(seed)
        self.episode_return = 0.0
        self.episode_steps = 0

    def reset(self) -> np.ndarray:
        raise NotImplementedError

    def step(self, action) -> Tuple[np.ndarray, float, bool, dict]:
        raise NotImplementedError

    def seed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def close(self) -> None:
        """Release resources (no-op by default)."""

    # -- checkpoint state ---------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Snapshot the environment's mutable state for checkpointing.

        The generic implementation deep-copies every instance attribute
        except the spaces (immutable config) and captures the RNG's
        bit-generator state, which covers pure-Python environments
        (GridWorld, CartPole, random envs) completely.  Environments
        wrapping external simulators override this pair.
        """
        state = {key: copy.deepcopy(value)
                 for key, value in self.__dict__.items()
                 if key not in ("rng", "state_space", "action_space")}
        state["__rng_state__"] = copy.deepcopy(self.rng.bit_generator.state)
        return state

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`get_state` snapshot; stepping continues
        bitwise-identically to the captured run."""
        state = dict(state)
        rng_state = state.pop("__rng_state__")
        for key, value in state.items():
            setattr(self, key, copy.deepcopy(value))
        self.rng = np.random.default_rng()
        self.rng.bit_generator.state = copy.deepcopy(rng_state)

    def _track_reset(self):
        self.episode_return = 0.0
        self.episode_steps = 0

    def _track_step(self, reward: float):
        self.episode_return += float(reward)
        self.episode_steps += 1

    def __repr__(self):
        return (f"{type(self).__name__}(state={self.state_space!r}, "
                f"action={self.action_space!r})")
