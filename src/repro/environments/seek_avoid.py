"""SeekAvoid: a 2.5-D arena standing in for DM Lab's seekavoid_arena_01.

The paper uses this task in the IMPALA comparison (Fig. 9) precisely
because frames are *more expensive to render than Atari* — so the
substitute renders a textured column-projection view (a cheap ray-cast)
and supports an additional artificial ``render_cost`` to scale per-frame
expense. Good apples (+1) attract, bad lemons (-1) repel; the episode
ends after ``max_steps`` or when all apples are collected.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.environments.environment import ENVIRONMENTS, Environment
from repro.spaces import FloatBox, IntBox


@ENVIRONMENTS.register("seek_avoid", aliases=["seekavoid_arena_01"])
class SeekAvoid(Environment):
    """First-person item collection with RGB observations.

    Actions: 0 = forward, 1 = turn left, 2 = turn right, 3 = noop.
    Observations: (height, width, 3) float32 RGB in [0, 255].
    """

    def __init__(self, width: int = 96, height: int = 72, arena_size: float = 10.0,
                 num_good: int = 6, num_bad: int = 4, max_steps: int = 300,
                 render_cost: float = 0.0, seed: Optional[int] = None):
        super().__init__(seed=seed)
        self.width = int(width)
        self.height = int(height)
        self.arena_size = float(arena_size)
        self.num_good = int(num_good)
        self.num_bad = int(num_bad)
        self.max_steps = int(max_steps)
        self.render_cost = float(render_cost)
        self.state_space = FloatBox(shape=(self.height, self.width, 3))
        self.action_space = IntBox(4)
        self.reset()

    def reset(self) -> np.ndarray:
        self._track_reset()
        s = self.arena_size
        self.pos = np.asarray([s / 2, s / 2])
        self.angle = float(self.rng.uniform(0, 2 * np.pi))
        n = self.num_good + self.num_bad
        self.items = self.rng.uniform(0.5, s - 0.5, size=(n, 2))
        self.item_good = np.concatenate([np.ones(self.num_good, bool),
                                         np.zeros(self.num_bad, bool)])
        self.item_alive = np.ones(n, bool)
        self._steps = 0
        return self._render()

    def step(self, action):
        action = int(action)
        if action == 0:
            step_vec = 0.4 * np.asarray([np.cos(self.angle), np.sin(self.angle)])
            self.pos = np.clip(self.pos + step_vec, 0.3,
                               self.arena_size - 0.3)
        elif action == 1:
            self.angle = (self.angle + 0.3) % (2 * np.pi)
        elif action == 2:
            self.angle = (self.angle - 0.3) % (2 * np.pi)

        reward = 0.0
        dists = np.linalg.norm(self.items - self.pos, axis=1)
        hit = (dists < 0.5) & self.item_alive
        for idx in np.nonzero(hit)[0]:
            reward += 1.0 if self.item_good[idx] else -1.0
            self.item_alive[idx] = False
        self._steps += 1
        terminal = (self._steps >= self.max_steps
                    or not np.any(self.item_alive & self.item_good))
        self._track_step(reward)
        return self._render(), reward, bool(terminal), {}

    # -- rendering -----------------------------------------------------------------
    def _render(self) -> np.ndarray:
        """Column-projected view: floor/sky gradient + item billboards."""
        if self.render_cost > 0:
            time.sleep(self.render_cost)
        h, w = self.height, self.width
        frame = np.empty((h, w, 3), dtype=np.float32)
        # Sky (top half) and floor (bottom half) gradients.
        rows = np.linspace(0, 1, h, dtype=np.float32)[:, None, None]
        frame[:] = 60.0 + 120.0 * rows
        frame[: h // 2, :, 2] += 60.0  # bluish sky

        fov = np.pi / 2
        alive = np.nonzero(self.item_alive)[0]
        if alive.size:
            rel = self.items[alive] - self.pos
            dist = np.linalg.norm(rel, axis=1) + 1e-6
            bearing = np.arctan2(rel[:, 1], rel[:, 0]) - self.angle
            bearing = (bearing + np.pi) % (2 * np.pi) - np.pi
            visible = np.abs(bearing) < fov / 2
            for k in np.nonzero(visible)[0]:
                idx = alive[k]
                col = int((bearing[k] / fov + 0.5) * (w - 1))
                size = int(np.clip(h / (dist[k] + 0.5), 2, h // 2))
                top = h // 2 - size // 2
                c0, c1 = max(col - size // 4, 0), min(col + size // 4 + 1, w)
                color = (np.asarray([40.0, 220.0, 40.0]) if self.item_good[idx]
                         else np.asarray([230.0, 220.0, 30.0]))
                frame[top:top + size, c0:c1] = color
        return frame
