"""DeepMind-reference IMPALA baseline.

The paper's Fig. 9 gap (10–15 %) traces to two reference-code artifacts:
redundant per-step actor variable assignments and preprocessing placed
after unstaging (higher variance). This wrapper pins the shared runner to
that configuration; removing the assignments is exactly bench E8.
"""

from __future__ import annotations

from typing import Callable

from repro.execution.impala_runner import IMPALARunner


class DMReferenceIMPALARunner(IMPALARunner):
    """IMPALARunner with the reference actor's redundant assignments."""

    def __init__(self, learner_agent, agent_factory: Callable,
                 env_factory: Callable, **kwargs):
        kwargs.pop("redundant_assignments", None)
        super().__init__(learner_agent, agent_factory, env_factory,
                         redundant_assignments=True, **kwargs)
