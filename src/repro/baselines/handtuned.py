"""Hand-tuned bare-bones actor (Fig. 5b's "PT hand-tuned").

A direct NumPy forward pass of the same conv + dueling architecture with
zero framework dispatch: no components, no API decorators, no tape. This
is the lower bound that isolates RLgraph's define-by-run per-call
overhead in the act-throughput benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.backend import kernels
from repro.utils.errors import RLGraphError


class HandTunedActor:
    """Inference-only actor mirroring an agent's policy weights.

    Build it from a built DQN-family agent via :meth:`from_agent`; its
    ``act`` runs raw kernel calls on the preprocessed frames.
    """

    def __init__(self, conv_layers: List[Dict], dense_layers: List[Dict],
                 dueling: Dict = None, divide: float = 255.0):
        self.conv_layers = conv_layers      # [{w, b, stride, padding}]
        self.dense_layers = dense_layers    # [{w, b, activation}]
        self.dueling = dueling              # {v_hidden, v_out, a_hidden, a_out}
        self.divide = float(divide)

    @classmethod
    def from_agent(cls, agent, divide: float = 255.0) -> "HandTunedActor":
        policy = agent.root.policy
        conv_layers, dense_layers = [], []
        for layer in policy.network.layers:
            name = type(layer).__name__
            if name == "Conv2DLayer":
                conv_layers.append({
                    "w": layer.kernel.value, "b": layer.bias.value,
                    "stride": layer.stride, "padding": layer.padding})
            elif name == "DenseLayer":
                dense_layers.append({
                    "w": layer.kernel.value, "b": layer.bias.value,
                    "activation": layer.activation})
            elif name == "FlattenLayer":
                continue
            else:
                raise RLGraphError(f"HandTunedActor cannot mirror {name}")
        dueling = None
        if getattr(policy, "dueling", False):
            head = policy.dueling_head
            dueling = {"v_hidden": head.v_hidden.value,
                       "v_out": head.v_out.value,
                       "a_hidden": head.a_hidden.value,
                       "a_out": head.a_out.value}
        else:
            adapter = policy.action_adapter
            dense_layers.append({"w": adapter.kernel.value,
                                 "b": adapter.bias.value, "activation": None})
        return cls(conv_layers, dense_layers, dueling, divide=divide)

    def act(self, frames: np.ndarray) -> np.ndarray:
        """Greedy actions for a batch of raw frames."""
        x = np.asarray(frames, dtype=np.float32) / self.divide
        for layer in self.conv_layers:
            x = kernels.conv2d_forward(x, layer["w"], layer["stride"],
                                       layer["padding"]) + layer["b"]
            np.maximum(x, 0.0, out=x)
        x = x.reshape(len(x), -1)
        for layer in self.dense_layers:
            x = x @ layer["w"] + layer["b"]
            if layer["activation"] == "relu":
                np.maximum(x, 0.0, out=x)
            elif layer["activation"] == "tanh":
                np.tanh(x, out=x)
        if self.dueling is not None:
            d = self.dueling
            v = np.maximum(x @ d["v_hidden"], 0.0) @ d["v_out"]
            a = np.maximum(x @ d["a_hidden"], 0.0) @ d["a_out"]
            x = v + a - a.mean(axis=1, keepdims=True)
        return x.argmax(axis=1)
