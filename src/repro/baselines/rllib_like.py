"""RLlib-like Ape-X baseline.

The paper attributes RLgraph's Fig. 6 margin to a concrete mechanism:
"RLlib's policy evaluators execute multiple session calls to
incrementally post-process batches. RLgraph instead splits
post-processing in incremental and batched parts to minimize calls to
the TensorFlow runtime" (§5.1). This baseline therefore runs the *same*
coordination loop as :class:`~repro.execution.ray.ApexExecutor` but with
workers in incremental mode: per-env Python accounting for the n-step
window and one extra executor call per emitted sample for worker-side
prioritization — faithfully the described pattern, not an artificial
slow-down.
"""

from __future__ import annotations

from typing import Callable

from repro.execution.ray.apex_executor import ApexExecutor


class RLlibLikeApexExecutor(ApexExecutor):
    """ApexExecutor pinned to the incremental policy-evaluator mode."""

    def __init__(self, learner_agent, agent_factory: Callable,
                 env_factory: Callable, **kwargs):
        kwargs.pop("worker_mode", None)
        super().__init__(learner_agent, agent_factory, env_factory,
                         worker_mode="rllib_like", **kwargs)
