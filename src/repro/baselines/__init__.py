"""Baseline implementations the paper compares against (DESIGN.md §2):

* ``rllib_like`` — Ape-X with RLlib v0.5.2's incremental post-processing
  pattern (Figs. 6, 7a, 7b);
* ``dm_impala`` — the DeepMind IMPALA reference actor with its redundant
  per-step variable assignments (Figs. 9 + §5.1's 20 % single-worker
  observation);
* ``handtuned`` — a bare-bones NumPy actor for the Fig. 5b comparison.
"""

from repro.baselines.rllib_like import RLlibLikeApexExecutor
from repro.baselines.dm_impala import DMReferenceIMPALARunner
from repro.baselines.handtuned import HandTunedActor

__all__ = ["RLlibLikeApexExecutor", "DMReferenceIMPALARunner", "HandTunedActor"]
