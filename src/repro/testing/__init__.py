"""Testing utilities: sub-graph component tests (paper Listing 1)."""

from repro.testing.component_test import ComponentTest

__all__ = ["ComponentTest"]
