"""ComponentTest: build and probe arbitrary sub-graphs from input spaces.

This is the incremental sub-graph testing facility from paper §3.3
(Listing 1): any component (with its sub-components) can be built in
isolation against user-supplied input spaces, then exercised with sample
data drawn from those spaces — no manual tensor plumbing.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.backend import XGRAPH
from repro.core.component import Component
from repro.core.graph_builder import GraphBuilder
from repro.spaces.space_utils import space_from_spec
from repro.utils.errors import RLGraphError


class ComponentTest:
    """Builds a component as its own root and executes its API methods.

    Example::

        test = ComponentTest(policy, input_spaces=dict(nn_input=state_space))
        out = test.test("get_action", state_space.sample(8))
    """

    def __init__(self, component: Component,
                 input_spaces: Dict[str, Any],
                 backend: str = XGRAPH,
                 seed: Optional[int] = 10,
                 device_map: Optional[Dict[str, str]] = None):
        if not isinstance(component, Component):
            raise RLGraphError(f"{component!r} is not a Component")
        self.component = component
        self.input_spaces = {k: space_from_spec(v)
                             for k, v in input_spaces.items()}
        self.builder = GraphBuilder(backend=backend, seed=seed)
        self.built = self.builder.build(component, self.input_spaces,
                                        device_map=device_map)

    def test(self, api_method: str, *args, expected: Any = None,
             decimals: int = 5):
        """Execute ``api_method`` with ``args``; optionally assert the
        result matches ``expected`` (array-compare with ``decimals``)."""
        result = self.built.execute(api_method, *args)
        if expected is not None:
            self.assert_equal(result, expected, decimals=decimals)
        return result

    @staticmethod
    def assert_equal(result, expected, decimals: int = 5):
        if isinstance(expected, dict):
            assert isinstance(result, dict) and set(result) == set(expected), \
                f"dict keys differ: {result.keys()} vs {expected.keys()}"
            for key in expected:
                ComponentTest.assert_equal(result[key], expected[key], decimals)
        elif isinstance(expected, (tuple, list)):
            assert len(result) == len(expected)
            for r, e in zip(result, expected):
                ComponentTest.assert_equal(r, e, decimals)
        else:
            np.testing.assert_almost_equal(np.asarray(result),
                                           np.asarray(expected),
                                           decimal=decimals)

    def variables(self, trainable_only: bool = False):
        return self.component.variable_registry(trainable_only=trainable_only)

    def get_variable_values(self):
        return {name: var.value.copy()
                for name, var in self.variables().items()}

    @property
    def stats(self):
        return self.built.stats
