"""The Component base class (paper §3.2).

A Component encapsulates arbitrary computations behind declared API
methods. Components nest into a tree rooted at an agent's *root
component*; data may only flow along API-method calls; all backend
tensors live inside graph functions. Variables are created exactly once,
when the component becomes *input-complete* (all its API input spaces are
known) during the build.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend import context as backend_context
from repro.backend.variables import Variable
from repro.core.decorators import ASSEMBLY, get_phase
from repro.core.op_records import OpRec, collect_records
from repro.spaces import Space
from repro.spaces.containers import ContainerSpace
from repro.spaces.space_utils import flatten_space
from repro.utils.errors import RLGraphBuildError, RLGraphError

_build_state = threading.local()


def set_current_build(build):
    _build_state.current = build


def get_current_build():
    return getattr(_build_state, "current", None)


def _spaces_compatible(a: Space, b: Space) -> bool:
    """Structural compatibility: same container structure / shape / dtype.

    Bounds are ignored — a space inferred from a graph node carries no
    bound information, but shape and dtype are what variable creation
    needs.
    """
    from repro.spaces.containers import ContainerSpace
    from repro.spaces.space_utils import flatten_space

    if isinstance(a, ContainerSpace) != isinstance(b, ContainerSpace):
        return False
    flat_a, flat_b = flatten_space(a), flatten_space(b)
    if list(flat_a) != list(flat_b):
        return False
    for key in flat_a:
        sa, sb = flat_a[key], flat_b[key]
        if sa.shape != sb.shape:
            return False
        if np.issubdtype(sa.dtype, np.floating) != np.issubdtype(
                sb.dtype, np.floating):
            return False
    return True


class Component:
    """Base class for all RLgraph components.

    Args:
        scope: this component's name segment (must be unique among
            siblings); global scope is the '/'-joined path from the root.
        device: optional device for this component's variables and ops
            (entries in the agent's device map override this).
    """

    def __init__(self, scope: Optional[str] = None, device: Optional[str] = None):
        self.scope = scope or type(self).__name__.lower()
        self.device = device
        self.parent: Optional[Component] = None
        self.sub_components: "OrderedDict[str, Component]" = OrderedDict()

        # Discovered API methods: name -> bound wrapper.
        self.api_methods: Dict[str, Any] = {}
        for attr_name in dir(type(self)):
            attr = getattr(type(self), attr_name, None)
            if attr is not None and getattr(attr, "_rlgraph_api", False):
                self.api_methods[attr._api_name] = getattr(self, attr_name)

        # Build-time state.
        # Components listed here must have their variables created before
        # any of this component's graph functions execute (used by weight
        # synchronizers that pair up two policies' variables).
        self.build_dependencies: List["Component"] = []
        # If set, only these API args gate input-completeness. This covers
        # the paper's "input spaces to one method depend on outputs of its
        # other methods" case (§3.2): e.g. a prioritized memory's
        # `update_records(indices, ...)` consumes its own sampling output,
        # but variable creation only needs the `records` space.
        self.variable_creation_args: Optional[set] = None
        self.api_input_records: Dict[str, List[OpRec]] = {}
        self.input_spaces: Dict[str, Space] = {}
        self.input_complete = False
        self.variables_created = False
        self.variables: "OrderedDict[str, Variable]" = OrderedDict()
        self.built = False

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def add_components(self, *components: "Component") -> None:
        """Attach sub-components (paper: arbitrary nesting)."""
        for comp in components:
            if not isinstance(comp, Component):
                raise RLGraphError(f"{comp!r} is not a Component")
            if comp.scope in self.sub_components:
                raise RLGraphError(
                    f"Duplicate sub-component scope {comp.scope!r} under "
                    f"{self.global_scope!r}")
            if comp.parent is not None:
                raise RLGraphError(
                    f"Component {comp.scope!r} already has a parent")
            comp.parent = self
            self.sub_components[comp.scope] = comp

    @property
    def global_scope(self) -> str:
        parts = []
        node: Optional[Component] = self
        while node is not None:
            parts.append(node.scope)
            node = node.parent
        return "/".join(reversed(parts))

    def get_all_components(self, include_self: bool = True) -> List["Component"]:
        """This component and all transitive sub-components."""
        out = [self] if include_self else []
        for sub in self.sub_components.values():
            out.extend(sub.get_all_components())
        return out

    def get_sub_component(self, path: str) -> "Component":
        """Look up a nested sub-component by '/'-joined scopes."""
        node = self
        for part in path.split("/"):
            try:
                node = node.sub_components[part]
            except KeyError:
                raise RLGraphError(
                    f"No sub-component {part!r} under {node.global_scope!r}"
                ) from None
        return node

    # ------------------------------------------------------------------
    # Assembly bookkeeping (called by the decorators)
    # ------------------------------------------------------------------
    def _record_api_call(self, api_name: str, func, args, kwargs) -> None:
        if get_phase() != ASSEMBLY:
            return
        import inspect
        sig = inspect.signature(func)
        params = [p for n, p in sig.parameters.items() if n != "self"]
        names: List[str] = []
        for i, _ in enumerate(args):
            if i < len(params) and params[i].kind != inspect.Parameter.VAR_POSITIONAL:
                names.append(params[i].name)
            else:
                # *args parameter: give each element its own slot name.
                var_param = params[-1].name if params else "args"
                names.append(f"{var_param}[{i}]")
        bound_args = list(args) + [kwargs[k] for k in kwargs]
        names = names + list(kwargs)
        for arg_name, value in zip(names, bound_args):
            recs: List[OpRec] = []
            collect_records(value, recs)
            if recs:
                self.api_input_records.setdefault(arg_name, []).extend(recs)

    def _register_graph_fn_node(self, node) -> None:
        build = get_current_build()
        if build is None:
            raise RLGraphBuildError(
                f"graph_fn {node.name} invoked with no active build")
        build.register_graph_fn_node(node)

    # ------------------------------------------------------------------
    # Input-completeness / variable creation (build phase)
    # ------------------------------------------------------------------
    def update_input_completeness(self) -> bool:
        """Re-derive input-completeness from recorded API input records."""
        if self.input_complete:
            return True
        complete = True
        for arg_name, recs in self.api_input_records.items():
            spaces = {id(r): r.space for r in recs}
            known = [s for s in spaces.values() if s is not None]
            gating = (self.variable_creation_args is None
                      or arg_name in self.variable_creation_args)
            if len(known) < len(spaces):
                if gating:
                    complete = False
                continue
            first = known[0] if known else None
            for s in known[1:]:
                if not _spaces_compatible(first, s):
                    raise RLGraphBuildError(
                        f"Component {self.global_scope!r} arg {arg_name!r} "
                        f"received conflicting spaces {first!r} vs {s!r}")
            if first is not None:
                self.input_spaces[arg_name] = first
        self.input_complete = complete
        return complete

    def ensure_variables(self) -> None:
        """Create variables once, inside the right device scope (the
        completion function from the paper's build algorithm)."""
        if self.variables_created:
            return
        device = self.resolved_device()
        with backend_context.device(device):
            self.check_input_spaces(self.input_spaces)
            self.create_variables(self.input_spaces)
        self.variables_created = True

    def resolved_device(self) -> str:
        """This component's device, inherited from ancestors if unset."""
        node: Optional[Component] = self
        while node is not None:
            if node.device is not None:
                return node.device
            node = node.parent
        return backend_context.current_device()

    # -- hooks for subclasses -------------------------------------------------
    def check_input_spaces(self, input_spaces: Dict[str, Space]) -> None:
        """Validate input spaces; raise RLGraphSpaceError on mismatch."""

    def create_variables(self, input_spaces: Dict[str, Space]) -> None:
        """Create this component's internal state from known input spaces."""

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------
    def get_variable(self, name: str, shape=None, dtype=np.float32,
                     initializer="zeros", trainable: bool = True,
                     from_space: Optional[Space] = None,
                     add_batch_dim: Optional[int] = None) -> Variable:
        """Create (or return an existing) variable owned by this component.

        ``from_space`` derives shape/dtype from a Space; ``add_batch_dim``
        prepends a fixed capacity dim (memory buffers).
        """
        full_name = f"{self.global_scope}/{name}"
        if full_name in self.variables:
            return self.variables[full_name]
        if from_space is not None:
            if isinstance(from_space, ContainerSpace):
                raise RLGraphError(
                    f"get_variable({name!r}): flatten container spaces "
                    f"before creating variables")
            shape = from_space.shape
            dtype = from_space.dtype
        if shape is None:
            raise RLGraphError(f"get_variable({name!r}) needs shape or from_space")
        shape = tuple(int(s) for s in shape)
        if add_batch_dim is not None:
            shape = (int(add_batch_dim),) + shape
        value = self._init_value(initializer, shape, dtype, seed_key=full_name)
        build = get_current_build()
        graph = build.graph if build is not None else None
        var = Variable(full_name, value, trainable=trainable, dtype=dtype,
                       graph=graph)
        self.variables[full_name] = var
        return var

    @staticmethod
    def _init_value(initializer, shape, dtype, seed_key=""):
        from repro.utils.seeding import derive_seed
        # Seed by name *and* shape: two same-shaped layers must not start
        # with identical weights.
        rng = np.random.default_rng(derive_seed(seed_key, shape))
        if isinstance(initializer, (int, float)):
            return np.full(shape, initializer, dtype=dtype)
        if isinstance(initializer, np.ndarray):
            return initializer.astype(dtype)
        if initializer == "zeros":
            return np.zeros(shape, dtype=dtype)
        if initializer == "ones":
            return np.ones(shape, dtype=dtype)
        if initializer == "glorot":
            fan_in = shape[0] if len(shape) >= 1 else 1
            fan_out = shape[-1] if len(shape) >= 2 else 1
            if len(shape) == 4:  # conv filters (KH, KW, Cin, Cout)
                receptive = shape[0] * shape[1]
                fan_in, fan_out = receptive * shape[2], receptive * shape[3]
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            return rng.uniform(-limit, limit, size=shape).astype(dtype)
        if initializer == "normal":
            return (rng.standard_normal(shape) * 0.05).astype(dtype)
        raise RLGraphError(f"Unknown initializer {initializer!r}")

    def variable_registry(self, trainable_only: bool = True,
                          include_subcomponents: bool = True
                          ) -> "OrderedDict[str, Variable]":
        """All (transitively owned) variables keyed by global name."""
        out: "OrderedDict[str, Variable]" = OrderedDict()
        comps = (self.get_all_components() if include_subcomponents else [self])
        for comp in comps:
            for name, var in comp.variables.items():
                if trainable_only and not var.trainable:
                    continue
                out[name] = var
        return out

    def coalesce_variables(self, trainable_only: bool = True):
        """Coalesce this component tree's variables into one contiguous
        :class:`~repro.backend.variables.ParamSlab` (sorted by name).
        Each Variable becomes a zero-copy view into the slab; returns
        the slab (cached — repeated calls reuse it)."""
        from repro.backend.variables import ParamSlab
        registry = self.variable_registry(trainable_only=trainable_only)
        return ParamSlab.ensure(list(registry.values()),
                                name=f"{self.global_scope}/slab")

    def flat_layout(self):
        """Deterministic flat packing of this tree's trainable variables
        (no storage claim) — the layout flat weight sync agrees on."""
        from repro.backend.variables import FlatLayout
        return FlatLayout(self.variable_registry(trainable_only=True))

    def get_weights(self) -> Dict[str, np.ndarray]:
        return {name: var.value.copy()
                for name, var in self.variable_registry().items()}

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        registry = self.variable_registry()
        for name, value in weights.items():
            if name not in registry:
                raise RLGraphError(f"No variable {name!r} under "
                                   f"{self.global_scope!r}")
            registry[name].set(value)

    # ------------------------------------------------------------------
    def __repr__(self):
        return (f"{type(self).__name__}(scope={self.scope!r}, "
                f"subs={list(self.sub_components)})")
