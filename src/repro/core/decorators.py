"""``@rlgraph_api`` and ``@graph_fn`` decorators plus the build-phase state.

The decorators give one method definition three behaviours:

* **assembly** — the method body runs with :class:`OpRec` placeholders;
  graph-fn calls create meta-graph nodes instead of computing;
* **build** — the GraphBuilder executes graph-fn nodes directly (symbolic
  node creation, or eager shape-inference execution for define-by-run);
* **runtime** — in define-by-run mode, API methods execute their bodies
  on real arrays every call (the per-call overhead Fig. 5b measures);
  in static-graph mode runtime goes through the Session instead.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Any, Callable, Optional

from repro.core.op_records import GraphFnNode, OpRec, contains_records
from repro.utils.errors import RLGraphAPIError, RLGraphError

_state = threading.local()

ASSEMBLY = "assembly"
RUNTIME_EAGER = "runtime_eager"


def _phase_stack():
    if not hasattr(_state, "phase"):
        _state.phase = [None]
    return _state.phase


def get_phase() -> Optional[str]:
    return _phase_stack()[-1]


class phase:
    """Context manager setting the current build phase."""

    def __init__(self, name: Optional[str]):
        self.name = name

    def __enter__(self):
        _phase_stack().append(self.name)
        return self

    def __exit__(self, *exc):
        _phase_stack().pop()
        return False


def rlgraph_api(fn: Optional[Callable] = None, *, name: Optional[str] = None,
                must_be_complete: bool = True):
    """Mark a component method as an API method (paper §3.2).

    API methods are the only legal interaction points between components.
    The root component's API methods define the externally visible agent
    API and are traced once during assembly (Algorithm 1).
    """

    def decorate(func: Callable) -> Callable:
        api_name = name or func.__name__

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            current = get_phase()
            if current == ASSEMBLY:
                self._record_api_call(api_name, func, args, kwargs)
                return func(self, *args, **kwargs)
            if current == RUNTIME_EAGER:
                return func(self, *args, **kwargs)
            raise RLGraphAPIError(
                f"API method {type(self).__name__}.{api_name} called outside "
                f"a build/runtime phase. Static-graph agents must call API "
                f"methods through their GraphExecutor.")

        wrapper._rlgraph_api = True
        wrapper._api_name = api_name
        wrapper._must_be_complete = must_be_complete
        wrapper._signature = inspect.signature(func)
        wrapper._raw_fn = func
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate


def graph_fn(fn: Optional[Callable] = None, *, returns: int = 1,
             flatten_ops: bool = False, requires_variables: bool = True):
    """Mark a method as a graph function (paper §3.3 phase 3).

    Graph functions are the only places where backend tensors appear. The
    body is written against :mod:`repro.backend.functional`, so it builds
    static-graph nodes or computes eagerly depending on mode.

    Args:
        returns: number of returned tensors (needed for >1 because the
            body is not executed during assembly).
        flatten_ops: if True and an input is a (nested) container, the
            body is invoked once per flat leaf and outputs are re-nested —
            the auto split/merge utility from Fig. 3.
        requires_variables: execute only after the owning component's
            variables exist (the input-completeness barrier).
    """

    def decorate(func: Callable) -> Callable:
        fn_name = func.__name__

        @functools.wraps(func)
        def wrapper(self, *args, **kwargs):
            current = get_phase()
            if current == ASSEMBLY:
                node = GraphFnNode(
                    component=self, fn=func, name=fn_name, inputs=args,
                    literals=dict(kwargs), num_outputs=returns,
                    flatten_ops=flatten_ops,
                    requires_variables=requires_variables)
                self._register_graph_fn_node(node)
                if returns == 1:
                    return node.outputs[0]
                return tuple(node.outputs)
            if current == RUNTIME_EAGER:
                return _execute_graph_fn(func, self, args, kwargs, flatten_ops)
            raise RLGraphError(
                f"graph_fn {type(self).__name__}.{fn_name} called outside a "
                f"build/runtime phase")

        wrapper._rlgraph_graph_fn = True
        wrapper._returns = returns
        wrapper._flatten_ops = flatten_ops
        wrapper._raw_fn = func
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate


def _execute_graph_fn(func, component, args, kwargs, flatten_ops):
    """Run a graph-fn body, honouring flatten_ops container handling."""
    if not flatten_ops:
        return func(component, *args, **kwargs)
    from repro.spaces.space_utils import flatten_value, unflatten_value

    flat_args = []
    container_keys = None
    for arg in args:
        if isinstance(arg, (dict, tuple)) and not hasattr(arg, "shape"):
            flat = flatten_value(arg)
            flat_args.append(flat)
            if container_keys is None:
                container_keys = list(flat.keys())
        else:
            flat_args.append(None)
    if container_keys is None or container_keys == [""]:
        plain = [a if f is None else f[""] for a, f in zip(args, flat_args)]
        return func(component, *plain, **kwargs)
    results = {}
    for key in container_keys:
        call_args = [a if f is None else f[key] for a, f in zip(args, flat_args)]
        results[key] = func(component, *call_args, **kwargs)
    return unflatten_value(results)


execute_graph_fn_body = _execute_graph_fn
