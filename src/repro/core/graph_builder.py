"""Component-graph assembly and build (paper §3.3, Algorithm 1).

The builder runs the three phases:

1. component composition happened already (user code);
2. **assembly** — each root API method is called once with OpRec
   placeholders, producing the backend-independent meta-graph;
3. **build** — input spaces flow from the root; components become
   input-complete, create their variables, and their graph functions
   execute (creating symbolic nodes, or eagerly inferring shapes for the
   define-by-run backend) in breadth-first fixpoint order.

The result is a :class:`BuiltGraph`: an op/API registry plus, for the
static backend, a Session — everything a graph executor needs.
"""

from __future__ import annotations

import inspect
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend import (
    Graph,
    Node,
    Session,
    XGRAPH,
    XTAPE,
    eager_mode,
    no_grad,
    symbolic_mode,
)
from repro.backend import context as backend_context
from repro.core import component as component_mod
from repro.core.component import Component
from repro.core.decorators import ASSEMBLY, RUNTIME_EAGER, phase
from repro.core.op_records import GraphFnNode, OpRec, map_records
from repro.core.decorators import execute_graph_fn_body
from repro.spaces import (
    BoolBox,
    Dict as DictSpace,
    FloatBox,
    IntBox,
    Space,
    Tuple as TupleSpace,
)
from repro.spaces.containers import ContainerSpace
from repro.spaces.space_utils import flatten_value, unflatten_value
from repro.utils.errors import RLGraphBuildError, RLGraphError

_EXAMPLE_BATCH = 2
_EXAMPLE_TIME = 2


# ---------------------------------------------------------------------------
# Space <-> handle conversions
# ---------------------------------------------------------------------------
def placeholders_from_space(space: Space, graph: Graph, name: str):
    """Create a (possibly nested) placeholder structure for ``space``."""
    if isinstance(space, DictSpace):
        return {k: placeholders_from_space(s, graph, f"{name}/{k}")
                for k, s in space.sub_spaces()}
    if isinstance(space, TupleSpace):
        return tuple(placeholders_from_space(s, graph, f"{name}/{i}")
                     for i, s in space.sub_spaces())
    shape = space.get_shape(with_batch_rank=True, with_time_rank=True)
    return graph.placeholder(shape, dtype=space.dtype, name=name)


def example_from_space(space: Space):
    """Zero example value used to push through define-by-run builds."""
    if isinstance(space, DictSpace):
        return {k: example_from_space(s) for k, s in space.sub_spaces()}
    if isinstance(space, TupleSpace):
        return tuple(example_from_space(s) for _, s in space.sub_spaces())
    size = None
    if space.has_batch_rank and space.has_time_rank:
        size = ((_EXAMPLE_TIME, _EXAMPLE_BATCH) if space.time_major
                else (_EXAMPLE_BATCH, _EXAMPLE_TIME))
    elif space.has_batch_rank:
        size = _EXAMPLE_BATCH
    elif space.has_time_rank:
        size = _EXAMPLE_TIME
    value = space.zeros(size=size)
    if isinstance(space, IntBox):
        # Integer inputs often act as sizes/counts (e.g. batch_size); a
        # zero example would push empty tensors through the graph, so use
        # the smallest positive in-range value instead.
        low = int(np.max(space.low)) if space.low is not None else 0
        high = int(np.min(space.high)) if space.high is not None else 2
        example = min(max(low, 0) + 1, high - 1)
        value = np.full_like(value, max(example, low))
    return value


def _leaf_space_from_shape(shape, dtype) -> Optional[Space]:
    if shape is None:
        return None
    leading_none = 0
    for dim in shape:
        if dim is None:
            leading_none += 1
        else:
            break
    rest = tuple(shape[leading_none:])
    if any(d is None for d in rest):
        return None
    kwargs = dict(add_batch_rank=leading_none >= 1,
                  add_time_rank=leading_none >= 2,
                  time_major=leading_none >= 2)
    if dtype is not None and np.issubdtype(dtype, np.bool_):
        return BoolBox(shape=rest, **kwargs)
    if dtype is not None and np.issubdtype(dtype, np.integer):
        return IntBox(low=0, high=2, shape=rest, **kwargs)
    return FloatBox(shape=rest, **kwargs)


def space_from_handle(handle) -> Optional[Space]:
    """Best-effort Space for a build-time handle (node or example value)."""
    if isinstance(handle, dict):
        subs = {k: space_from_handle(v) for k, v in handle.items()}
        if any(s is None for s in subs.values()):
            return None
        return DictSpace(subs)
    if isinstance(handle, tuple):
        subs = [space_from_handle(v) for v in handle]
        if any(s is None for s in subs):
            return None
        return TupleSpace(*subs)
    if isinstance(handle, Node):
        return _leaf_space_from_shape(handle.shape, handle.dtype)
    arr = np.asarray(handle)
    shape = (None,) + arr.shape[1:] if arr.ndim >= 1 else arr.shape
    return _leaf_space_from_shape(shape, arr.dtype)


def _unwrap_eager(structure):
    """Convert ETensors to plain arrays at the define-by-run API boundary."""
    from repro.backend.eager import ETensor

    if isinstance(structure, ETensor):
        return structure.data
    if isinstance(structure, dict):
        return {k: _unwrap_eager(v) for k, v in structure.items()}
    if isinstance(structure, tuple):
        return tuple(_unwrap_eager(v) for v in structure)
    if isinstance(structure, list):
        return [_unwrap_eager(v) for v in structure]
    return structure


# ---------------------------------------------------------------------------
# Build result
# ---------------------------------------------------------------------------
class APIEndpoint:
    """One externally callable API method of the built graph."""

    __slots__ = ("name", "arg_names", "in_records", "out_structure")

    def __init__(self, name, arg_names, in_records, out_structure):
        self.name = name
        self.arg_names = arg_names
        self.in_records: List[OpRec] = in_records
        self.out_structure = out_structure


class BuildStats:
    """Timings reported in Fig. 5a (trace = assembly, build = op creation)."""

    def __init__(self):
        self.trace_time = 0.0
        self.build_time = 0.0
        self.var_creation_time = 0.0
        self.num_components = 0
        self.num_graph_fn_nodes = 0
        self.backend = None

    @property
    def build_overhead(self) -> float:
        """Build time excluding variable creation — the paper's metric
        ("time spent on top of creating variables and operations")."""
        return max(self.build_time - self.var_creation_time, 0.0)

    def as_dict(self):
        return {"trace_time": self.trace_time, "build_time": self.build_time,
                "var_creation_time": self.var_creation_time,
                "build_overhead": self.build_overhead,
                "num_components": self.num_components,
                "num_graph_fn_nodes": self.num_graph_fn_nodes,
                "backend": self.backend}


class BuiltGraph:
    """Executable result of a build: API registry + backend state.

    For the static backend, ``execute`` looks up placeholders and output
    ops and issues one Session call (op-registry execution). For the
    define-by-run backend, ``execute`` calls the root API method directly
    in eager runtime mode.
    """

    def __init__(self, root: Component, backend: str, api: Dict[str, APIEndpoint],
                 graph: Optional[Graph], session: Optional[Session],
                 stats: BuildStats, nodes: Optional[List[GraphFnNode]] = None):
        self.root = root
        self.backend = backend
        self.api = api
        self.graph = graph
        self.session = session
        self.stats = stats
        self._nodes = nodes or []
        # Define-by-run fast path: per-API flat graph-fn call plans that
        # bypass component API dispatch ("edge contractions", paper §5.1).
        self.eager_fastpath = False
        self._fast_plans: Dict[str, List[GraphFnNode]] = {}
        self._callables: Dict[str, Any] = {}

    def execute(self, api_name: str, *args):
        endpoint = self.api.get(api_name)
        if endpoint is None:
            raise RLGraphError(
                f"Unknown API method {api_name!r}; have {sorted(self.api)}")
        if self.backend == XGRAPH:
            return self._execute_symbolic(endpoint, args)
        return self._execute_eager(endpoint, args)

    # -- static graph ------------------------------------------------------
    def _execute_symbolic(self, endpoint: APIEndpoint, args):
        if len(args) != len(endpoint.in_records):
            raise RLGraphError(
                f"API {endpoint.name!r} expects {len(endpoint.in_records)} "
                f"args ({endpoint.arg_names}), got {len(args)}")
        feed = {}
        for rec, value in zip(endpoint.in_records, args):
            handle_flat = flatten_value(rec.handle)
            value_flat = flatten_value(value, rec.space)
            for key, ph in handle_flat.items():
                feed[ph] = value_flat[key]
        handles = map_records(endpoint.out_structure, lambda r: r.handle)
        if handles is None:
            return None
        flat = flatten_value(handles)
        fetches = list(flat.values())
        results = self.session.run(fetches, feed)
        flat_out = OrderedDict(zip(flat.keys(), results))
        return unflatten_value(flat_out)

    def make_callable(self, api_name: str):
        """A cached fast executor for one API endpoint (serving hot path).

        ``execute`` re-derives the placeholder/fetch plumbing — flattening
        input handles and the output structure — on *every* call.  For a
        request-serving loop that issues the same endpoint thousands of
        times per second that bookkeeping is pure overhead, so this
        precomputes it once: the placeholder list per argument, the fetch
        list, and the output keys.  The compiled session plan for the
        fetch-set is warmed eagerly, so the first served request pays no
        compile latency.  Leaf-space arguments (the common case: one
        state batch) feed with zero flattening work per call.
        """
        fn = self._callables.get(api_name)
        if fn is not None:
            return fn
        endpoint = self.api.get(api_name)
        if endpoint is None:
            raise RLGraphError(
                f"Unknown API method {api_name!r}; have {sorted(self.api)}")
        if self.backend != XGRAPH:
            fn = lambda *args: self.execute(api_name, *args)  # noqa: E731
            self._callables[api_name] = fn
            return fn
        # Per-argument placeholder structures; a single-leaf argument
        # skips flatten_value at call time entirely.
        arg_plumbing = []
        for rec in endpoint.in_records:
            handle_flat = flatten_value(rec.handle)
            if len(handle_flat) == 1:
                arg_plumbing.append((next(iter(handle_flat.values())), None))
            else:
                arg_plumbing.append((None, (handle_flat, rec.space)))
        handles = map_records(endpoint.out_structure, lambda r: r.handle)
        if handles is None:
            fn = lambda *args: self.execute(api_name, *args)  # noqa: E731
            self._callables[api_name] = fn
            return fn
        out_flat = flatten_value(handles)
        fetches = list(out_flat.values())
        out_keys = list(out_flat.keys())
        session = self.session
        self.session.warm_up(fetches)
        n_args = len(arg_plumbing)
        name = endpoint.name
        arg_names = endpoint.arg_names

        def fn(*args):
            if len(args) != n_args:
                raise RLGraphError(
                    f"API {name!r} expects {n_args} args ({arg_names}), "
                    f"got {len(args)}")
            feed = {}
            for (leaf_ph, nested), value in zip(arg_plumbing, args):
                if leaf_ph is not None:
                    feed[leaf_ph] = value
                else:
                    handle_flat, space = nested
                    value_flat = flatten_value(value, space)
                    for key, ph in handle_flat.items():
                        feed[ph] = value_flat[key]
            results = session.run(fetches, feed)
            return unflatten_value(OrderedDict(zip(out_keys, results)))

        self._callables[api_name] = fn
        return fn

    # -- define-by-run ---------------------------------------------------------
    def _execute_eager(self, endpoint: APIEndpoint, args):
        if len(args) != len(endpoint.in_records):
            raise RLGraphError(
                f"API {endpoint.name!r} expects {len(endpoint.in_records)} "
                f"args ({endpoint.arg_names}), got {len(args)}")
        if self.eager_fastpath:
            return self._execute_eager_fast(endpoint, args)
        method = self.root.api_methods[endpoint.name]
        with phase(RUNTIME_EAGER), eager_mode():
            return _unwrap_eager(method(*args))

    def _fast_plan(self, endpoint: APIEndpoint) -> List[GraphFnNode]:
        """Topologically ordered graph-fn nodes feeding this endpoint."""
        plan = self._fast_plans.get(endpoint.name)
        if plan is not None:
            return plan
        needed: List[OpRec] = []
        from repro.core.op_records import collect_records
        collect_records(endpoint.out_structure, needed)
        wanted = set()
        frontier = [r.producer for r in needed if r.producer is not None]
        while frontier:
            node = frontier.pop()
            if node.id in wanted:
                continue
            wanted.add(node.id)
            frontier.extend(r.producer for r in node.input_records()
                            if r.producer is not None)
        plan = [n for n in self._nodes if n.id in wanted]
        plan.sort(key=lambda n: n.id)
        self._fast_plans[endpoint.name] = plan
        return plan

    def _execute_eager_fast(self, endpoint: APIEndpoint, args):
        """Replay the meta-graph directly: one flat pass over graph-fn
        calls, no per-component API dispatch."""
        values: Dict[int, Any] = {}
        for rec, value in zip(endpoint.in_records, args):
            values[rec.id] = value

        def resolve(rec: OpRec):
            if rec.id not in values:
                raise RLGraphError(
                    f"fast path: record {rec.label!r} not computed (dynamic "
                    f"control flow is not fast-path compatible)")
            return values[rec.id]

        with phase(RUNTIME_EAGER), eager_mode():
            for node in self._fast_plan(endpoint):
                call_args = map_records(tuple(node.inputs), resolve)
                result = execute_graph_fn_body(
                    node.fn, node.component, call_args, node.literals,
                    node.flatten_ops)
                results = (result,) if len(node.outputs) == 1 else result
                for rec, value in zip(node.outputs, results):
                    values[rec.id] = value
            out = map_records(endpoint.out_structure, resolve)
        return _unwrap_eager(out)

    def variables(self, trainable_only: bool = True):
        return self.root.variable_registry(trainable_only=trainable_only)


# ---------------------------------------------------------------------------
# The builder
# ---------------------------------------------------------------------------
class GraphBuilder:
    """Builds a root component into a :class:`BuiltGraph`."""

    def __init__(self, backend: str = XGRAPH, seed: Optional[int] = None,
                 optimize: str = "fused"):
        if backend not in (XGRAPH, XTAPE):
            raise RLGraphError(f"Unknown backend {backend!r}")
        self.backend = backend
        self.seed = seed
        self.optimize = optimize
        self.graph: Optional[Graph] = None
        self.nodes: List[GraphFnNode] = []
        self.stats = BuildStats()

    # Called by Component._register_graph_fn_node via the build context.
    def register_graph_fn_node(self, node: GraphFnNode) -> None:
        self.nodes.append(node)

    # ------------------------------------------------------------------
    def build(self, root: Component, input_spaces: Dict[str, Any],
              device_map: Optional[Dict[str, str]] = None) -> BuiltGraph:
        from repro.spaces.space_utils import space_from_spec

        input_spaces = {k: space_from_spec(v) for k, v in input_spaces.items()}
        if device_map:
            for scope_path, dev in device_map.items():
                comp = (root if scope_path in ("", root.scope)
                        else root.get_sub_component(scope_path))
                comp.device = dev

        component_mod.set_current_build(self)
        try:
            t0 = time.perf_counter()
            api = self._assemble(root, input_spaces)
            self.stats.trace_time = time.perf_counter() - t0

            t1 = time.perf_counter()
            if self.backend == XGRAPH:
                session = self._build_symbolic(root, api)
            else:
                session = None
                self._build_eager(root, api)
            self.stats.build_time = time.perf_counter() - t1
        finally:
            component_mod.set_current_build(None)

        self.stats.num_components = len(root.get_all_components())
        self.stats.num_graph_fn_nodes = len(self.nodes)
        self.stats.backend = self.backend
        root.built = True
        return BuiltGraph(root, self.backend, api, self.graph, session,
                          self.stats, nodes=self.nodes)

    # -- phase 2: assembly ---------------------------------------------------
    def _assemble(self, root: Component,
                  input_spaces: Dict[str, Space]) -> Dict[str, APIEndpoint]:
        api: Dict[str, APIEndpoint] = {}
        skipped: List[str] = []
        with phase(ASSEMBLY):
            for api_name, method in root.api_methods.items():
                sig = method._signature
                params = [p for n, p in sig.parameters.items() if n != "self"]
                in_records: List[OpRec] = []
                arg_names: List[str] = []
                call_args: List[Any] = []
                buildable = True
                for param in params:
                    if param.name in input_spaces:
                        rec = OpRec(space=input_spaces[param.name],
                                    label=f"{api_name}/{param.name}")
                        in_records.append(rec)
                        arg_names.append(param.name)
                        call_args.append(rec)
                    elif param.default is not inspect.Parameter.empty:
                        call_args.append(param.default)
                    else:
                        # No space provided for a required arg: this API
                        # method is simply not part of the built graph
                        # (RLgraph only builds connected dataflow).
                        buildable = False
                        break
                if not buildable:
                    skipped.append(api_name)
                    continue
                outs = method(*call_args)
                api[api_name] = APIEndpoint(api_name, arg_names, in_records,
                                            outs)
        if not api:
            raise RLGraphBuildError(
                f"No API method of {root.scope!r} could be assembled; "
                f"skipped (missing input spaces): {skipped}")
        return api

    # -- phase 3: build ---------------------------------------------------------
    def _assign_input_handles_symbolic(self, api: Dict[str, APIEndpoint]):
        for endpoint in api.values():
            for rec, arg_name in zip(endpoint.in_records, endpoint.arg_names):
                handle = placeholders_from_space(
                    rec.space, self.graph, f"{endpoint.name}/{arg_name}")
                rec.set_handle(handle)

    def _assign_input_handles_eager(self, api: Dict[str, APIEndpoint]):
        for endpoint in api.values():
            for rec in endpoint.in_records:
                rec.set_handle(example_from_space(rec.space))

    def _build_symbolic(self, root, api) -> Session:
        self.graph = Graph(name=root.scope, seed=self.seed)
        with self.graph.as_default(), symbolic_mode():
            self._assign_input_handles_symbolic(api)
            self._fixpoint(root)
        return Session(self.graph, optimize=self.optimize)

    def _build_eager(self, root, api) -> None:
        self.graph = None
        snapshots: Dict[int, np.ndarray] = {}
        with eager_mode(), no_grad():
            self._assign_input_handles_eager(api)
            self._fixpoint(root, snapshots=snapshots)
        # Undo state mutations caused by pushing example data through
        # stateful graph functions during shape inference.
        for var, initial in snapshots.values():
            var.value[...] = initial

    # -- the BFS fixpoint from the paper's build algorithm ------------------------
    def _fixpoint(self, root: Component,
                  snapshots: Optional[Dict[int, Any]] = None) -> None:
        pending: "OrderedDict[int, GraphFnNode]" = OrderedDict(
            (n.id, n) for n in sorted(self.nodes, key=lambda n: n.id))
        all_components = root.get_all_components()
        progress = True
        while pending and progress:
            progress = False
            # Completion sweep: any component whose API input spaces are all
            # known gets its variables now (other components may depend on
            # them, e.g. weight synchronizers).
            for comp in all_components:
                comp.update_input_completeness()
                if comp.input_complete and not comp.variables_created:
                    self._ensure_component_variables(comp, snapshots)
                    progress = True
            for node_id in list(pending):
                node = pending[node_id]
                comp = node.component
                comp.update_input_completeness()
                if not node.ready():
                    continue
                if node.requires_variables:
                    if not comp.input_complete:
                        continue
                    self._ensure_component_variables(comp, snapshots)
                deps = getattr(comp, "build_dependencies", None)
                if deps and not all(
                        all(c.variables_created for c in d.get_all_components())
                        for d in deps):
                    continue
                self._execute_node(node)
                del pending[node_id]
                progress = True
        if pending:
            names = [f"{n.component.global_scope}/{n.name}"
                     for n in pending.values()]
            raise RLGraphBuildError(
                f"Build did not converge; {len(pending)} graph functions "
                f"never became executable: {names[:10]}")
        # Components with variables but no graph-fn nodes (e.g. pure state
        # holders) still need their completion function to run.
        for comp in root.get_all_components():
            comp.update_input_completeness()
            if comp.input_complete:
                self._ensure_component_variables(comp, snapshots)

    def _ensure_component_variables(self, comp: Component, snapshots) -> None:
        before = set(comp.variables)
        t0 = time.perf_counter()
        comp.ensure_variables()
        self.stats.var_creation_time += time.perf_counter() - t0
        if snapshots is not None:
            for name, var in comp.variables.items():
                if name not in before and id(var) not in snapshots:
                    snapshots[id(var)] = (var, var.value.copy())

    def _execute_node(self, node: GraphFnNode) -> None:
        comp = node.component
        args = map_records(tuple(node.inputs), lambda r: r.handle)
        with backend_context.device(comp.resolved_device()):
            result = execute_graph_fn_body(node.fn, comp, args, node.literals,
                                           node.flatten_ops)
        node.executed = True
        outputs = node.outputs
        if len(outputs) == 1:
            results = (result,)
        else:
            if not isinstance(result, tuple) or len(result) != len(outputs):
                raise RLGraphBuildError(
                    f"graph_fn {comp.global_scope}/{node.name} declared "
                    f"returns={len(outputs)} but returned {type(result)}")
            results = result
        for rec, value in zip(outputs, results):
            rec.set_handle(value, space_from_handle(value))


def build_graph(root: Component, input_spaces: Dict[str, Any],
                backend: str = XGRAPH, seed: Optional[int] = None,
                device_map: Optional[Dict[str, str]] = None,
                optimize: str = "fused") -> BuiltGraph:
    """Convenience wrapper: build ``root`` for ``backend``."""
    return GraphBuilder(backend=backend, seed=seed, optimize=optimize).build(
        root, input_spaces, device_map=device_map)
