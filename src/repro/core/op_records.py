"""Meta-graph records (paper §3.3, phase 2).

During the *assembly* phase, API methods execute with :class:`OpRec`
placeholders instead of tensors. Only graph-function calls create meta
nodes; API-method composition is plain Python, so records flow through
call bodies naturally. The resulting bipartite DAG (OpRecs <-> GraphFnNode)
is what the GraphBuilder later walks to create backend operations.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.spaces import Space

_rec_ids = itertools.count()
_node_ids = itertools.count()


class OpRec:
    """A dimension-less data record in the component graph.

    ``space`` is filled in as soon as it is known (root inputs know theirs
    immediately; graph-fn outputs learn theirs when their node executes).
    ``handle`` is the backend object (symbolic Node / NumPy example value)
    assigned during the build phase.
    """

    __slots__ = ("id", "space", "handle", "has_handle", "producer", "label")

    def __init__(self, space: Optional[Space] = None, producer=None, label=""):
        self.id = next(_rec_ids)
        self.space = space
        self.handle = None
        self.has_handle = False
        self.producer = producer  # GraphFnNode or None (external input)
        self.label = label

    def set_handle(self, handle, space: Optional[Space] = None):
        self.handle = handle
        self.has_handle = True
        if space is not None:
            self.space = space

    def __repr__(self):
        state = "handle" if self.has_handle else ("space" if self.space else "empty")
        return f"<OpRec #{self.id} {self.label or ''} [{state}]>"


class GraphFnNode:
    """One invocation of a graph function in the meta-graph."""

    __slots__ = ("id", "component", "fn", "name", "inputs", "literals",
                 "outputs", "flatten_ops", "executed", "requires_variables")

    def __init__(self, component, fn: Callable, name: str,
                 inputs: Sequence[Any], literals: Dict[str, Any],
                 num_outputs: int, flatten_ops: bool,
                 requires_variables: bool):
        self.id = next(_node_ids)
        self.component = component
        self.fn = fn
        self.name = name
        # ``inputs`` is the positional arg structure; each element may be an
        # OpRec, a literal, or a (nested) dict/tuple containing OpRecs.
        self.inputs = list(inputs)
        self.literals = literals
        self.outputs = [OpRec(producer=self, label=f"{name}:out{i}")
                        for i in range(num_outputs)]
        self.flatten_ops = flatten_ops
        self.requires_variables = requires_variables
        self.executed = False

    def input_records(self) -> List[OpRec]:
        recs: List[OpRec] = []
        for arg in self.inputs:
            collect_records(arg, recs)
        return recs

    def ready(self) -> bool:
        return all(r.has_handle for r in self.input_records())

    def __repr__(self):
        return (f"<GraphFnNode {self.component.global_scope}/{self.name} "
                f"#{self.id} executed={self.executed}>")


# ---------------------------------------------------------------------------
# Structure helpers: OpRecs may be nested in dicts/tuples/lists.
# ---------------------------------------------------------------------------
def collect_records(structure, out: List[OpRec]):
    if isinstance(structure, OpRec):
        out.append(structure)
    elif isinstance(structure, dict):
        for key in sorted(structure):
            collect_records(structure[key], out)
    elif isinstance(structure, (tuple, list)):
        for item in structure:
            collect_records(item, out)


def contains_records(structure) -> bool:
    recs: List[OpRec] = []
    collect_records(structure, recs)
    return bool(recs)


def map_records(structure, fn: Callable[[OpRec], Any]):
    """Replace each OpRec in a nested structure via ``fn``."""
    if isinstance(structure, OpRec):
        return fn(structure)
    if isinstance(structure, dict):
        return {k: map_records(v, fn) for k, v in structure.items()}
    if isinstance(structure, tuple):
        return tuple(map_records(v, fn) for v in structure)
    if isinstance(structure, list):
        return [map_records(v, fn) for v in structure]
    return structure
