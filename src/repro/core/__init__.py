"""Core component-graph machinery: Components, decorators, builder."""

from repro.core.component import Component
from repro.core.decorators import graph_fn, rlgraph_api
from repro.core.graph_builder import (
    APIEndpoint,
    BuildStats,
    BuiltGraph,
    GraphBuilder,
    build_graph,
    example_from_space,
    space_from_handle,
)
from repro.core.op_records import GraphFnNode, OpRec

__all__ = [
    "Component",
    "graph_fn",
    "rlgraph_api",
    "APIEndpoint",
    "BuildStats",
    "BuiltGraph",
    "GraphBuilder",
    "build_graph",
    "example_from_space",
    "space_from_handle",
    "GraphFnNode",
    "OpRec",
]
